//! Vendored, offline subset of the [`rand`](https://crates.io/crates/rand)
//! crate, API-compatible with the rand 0.9 surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! `rand = { path = "vendor/rand" }`. Only the pieces the DPar2 reproduction
//! needs are provided:
//!
//! * [`Rng`] with the generic [`Rng::random`] method (uniform `f64` in
//!   `[0, 1)`, full-range integers, `bool`),
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — here a xoshiro256++ generator (Blackman & Vigna),
//!   seeded through SplitMix64 exactly as the xoshiro reference code
//!   recommends. The streams differ from upstream rand's ChaCha-based
//!   `StdRng`, which is fine: nothing in this workspace depends on the
//!   exact stream, only on determinism-given-seed and statistical quality.
//!
//! Everything is deterministic, `no_std`-free plain Rust, and dependency
//! free, so swapping back to the real crate is a one-line change in the
//! workspace manifest.

/// A source of randomness: the subset of `rand::Rng` used by this workspace.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution:
    /// `f64`/`f32` uniform in `[0, 1)`, integers over their full range,
    /// `bool` fair.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from their "standard" distribution via [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one sample from `rng`.
    fn sample_from<R: Rng>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `bits >> 11` ⋅ 2⁻⁵³ construction).
    fn sample_from<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_from<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn sample_from<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample_from<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for usize {
    fn sample_from<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn sample_from<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; seeded via
    /// SplitMix64 so that every 64-bit seed yields a well-mixed state
    /// (including seed 0).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        // SplitMix64 seeding must not leave the all-zero state.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(first.iter().any(|&x| x != 0));
    }

    #[test]
    fn rng_impl_for_mut_ref() {
        fn takes_rng(rng: &mut impl Rng) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let via_ref = takes_rng(&mut &mut rng);
        assert!((0.0..1.0).contains(&via_ref));
    }
}
