//! Vendored, offline subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, API-compatible with the surface the workspace's
//! benches use: `Criterion`, `benchmark_group`/`sample_size`/`finish`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of upstream's statistical analysis it runs a fixed warmup, then
//! takes `sample_size` timed samples of an adaptively chosen batch size and
//! reports median/min/max ns-per-iteration to stdout. That is enough for
//! the paper-reproduction benches to give stable relative numbers while the
//! build environment has no registry access; swapping back to the real
//! crate is a one-line change in the workspace manifest.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Entry point holding global defaults for groups created from it.
#[derive(Debug, Clone)]
pub struct Criterion {
    default_sample_size: usize,
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20, measurement: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Mirrors upstream's CLI hook; arguments are accepted and ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            group_name: name.to_string(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let measurement = self.measurement;
        run_benchmark(name, sample_size, measurement, f);
    }
}

/// A set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    group_name: String,
    sample_size: usize,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.group_name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, self.criterion.measurement, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream writes reports here; the shim only prints).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// A bare parameter value (for single-function parameter sweeps).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion allowing both `BenchmarkId` and plain `&str` names.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmarked closure; records the routine to time.
pub struct Bencher {
    iters_per_sample: u64,
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it `sample_size` batches of an adaptively
    /// chosen batch size.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup + batch-size calibration: grow the batch until one batch
        // costs ≳ 1/sample_size of the measurement budget.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(5) || batch > (1 << 20) {
                break;
            }
            batch *= 2;
        }
        self.iters_per_sample = batch;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples_ns.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, _measurement: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher =
        Bencher { iters_per_sample: 0, samples_ns: Vec::with_capacity(sample_size), sample_size };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{label:<48} (no measurement: Bencher::iter never called)");
        return;
    }
    let mut s = bencher.samples_ns.clone();
    s.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
    let median = s[s.len() / 2];
    println!(
        "{label:<48} median {:>12} min {:>12} max {:>12} ({} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(s[0]),
        fmt_ns(*s.last().expect("non-empty")),
        s.len(),
        bencher.iters_per_sample,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generates `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion { default_sample_size: 3, measurement: Duration::from_millis(10) };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("rsvd", "400x120").into_benchmark_id(), "rsvd/400x120");
        assert_eq!(BenchmarkId::from_parameter(2).into_benchmark_id(), "2");
    }
}
