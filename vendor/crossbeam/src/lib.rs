//! Vendored, offline subset of the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, API-compatible with the surface this workspace uses:
//!
//! * [`channel::unbounded`] — backed by `std::sync::mpsc` (the `Sender` is
//!   clonable and the `Receiver` iterable, which is all the thread pool
//!   needs),
//! * [`thread::scope`] — backed by `std::thread::scope`, with crossbeam's
//!   `Result`-returning signature (a panicking worker surfaces as `Err`
//!   instead of propagating directly).
//!
//! The build environment has no access to crates.io, so the workspace pins
//! `crossbeam = { path = "vendor/crossbeam" }`. Swapping back to the real
//! crate is a one-line change in the workspace manifest.

pub mod channel {
    //! Multi-producer channels re-exported from `std::sync::mpsc`.

    pub use std::sync::mpsc::{Receiver, SendError, Sender};

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's panic-capturing `scope` signature.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A handle for spawning scoped threads; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a unit placeholder
        /// where crossbeam passes a nested `&Scope` (this workspace never
        /// uses the nested handle).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Runs `f` with a scope in which borrowed-lifetime threads can be
    /// spawned; joins them all before returning. Returns `Err` with the
    /// panic payload if any spawned thread (or `f` itself) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let (tx, rx) = channel::unbounded::<u64>();
        thread::scope(|scope| {
            for &x in &data {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(x * 10).unwrap());
            }
            drop(tx);
        })
        .expect("no worker panicked");
        let mut got: Vec<u64> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20, 30, 40]);
    }

    #[test]
    fn worker_panic_returns_err() {
        let result = thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn scope_returns_closure_value() {
        let out = thread::scope(|_| 42).expect("no panic");
        assert_eq!(out, 42);
    }
}
