//! The [`Strategy`] trait and the combinators/primitive strategies the
//! workspace's property tests use.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is simply a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Derives a second strategy from each generated value — the standard
    /// way to generate shape-dependent data (e.g. dims first, then a
    /// matching buffer).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                /// Uniform over `[start, end)`.
                ///
                /// # Panics
                /// Panics if the range is empty.
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.random::<u64>() % span) as $t
                }
            }
        )*
    };
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                /// Uniform over `[start, end)`.
                ///
                /// # Panics
                /// Panics if the range is empty.
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.random::<u64>() % span) as i128) as $t
                }
            }
        )*
    };
}

signed_range_strategy!(i64, i32, i16, i8, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                /// Uniform over `[start, end)`.
                ///
                /// # Panics
                /// Panics if the range is empty or not finite.
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end && self.start.is_finite() && self.end.is_finite(),
                        "invalid float range strategy"
                    );
                    let u = rng.random::<f64>() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
        )*
    };
}

float_range_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::test_rng;

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = test_rng("int_range");
        let s = 3usize..9;
        for _ in 0..1000 {
            let v = s.new_value(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = test_rng("float_range");
        let s = -2.0f64..5.0;
        for _ in 0..1000 {
            let v = s.new_value(&mut rng);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn flat_map_threads_shape_through() {
        let mut rng = test_rng("flat_map");
        let s = (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
            crate::collection::vec(0.0f64..1.0, r * c).prop_map(move |v| (r, c, v))
        });
        for _ in 0..100 {
            let (r, c, v) = s.new_value(&mut rng);
            assert_eq!(v.len(), r * c);
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = test_rng("just");
        assert_eq!(Just(7).new_value(&mut rng), 7);
    }
}
