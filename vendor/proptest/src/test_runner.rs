//! Test-runner configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Marker message used by `prop_assume!` to discard (rather than fail) a
/// generated case.
pub const REJECT_SENTINEL: &str = "__proptest_shim_reject__";

/// The RNG handed to strategies. A type alias so strategy signatures stay
/// close to upstream's `TestRunner`-mediated design without the machinery.
pub type TestRng = StdRng;

/// Subset of upstream `ProptestConfig`: only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Upstream's default of 256 cases.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Builds the deterministic per-test RNG: the test name is FNV-1a hashed
/// into a seed so each test gets an independent, stable stream.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}
