//! Vendored, offline subset of the [`proptest`](https://crates.io/crates/proptest)
//! crate, API-compatible with the surface this workspace's property tests
//! use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with
//!   [`prop_map`](strategy::Strategy::prop_map) and
//!   [`prop_flat_map`](strategy::Strategy::prop_flat_map),
//! * range strategies (`1usize..12`, `-100.0f64..100.0`, `0u64..500`),
//!   tuple strategies up to arity 6, and [`collection::vec()`],
//! * the [`proptest!`] macro with `#![proptest_config(..)]` support and
//!   `pat in strategy` arguments,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! What is deliberately missing relative to upstream: shrinking (a failing
//! case reports the raw generated value), persistence of failure seeds, and
//! the `any::<T>()` arbitrary machinery. Cases are generated from a fixed
//! seed so CI failures reproduce locally.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports for property tests, mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub mod prop {
    //! The `prop::` path exposed by the upstream prelude.

    pub use crate::collection;
}

/// Defines property tests. Mirrors upstream `proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(a in 0usize..10, (x, y) in my_pair_strategy()) {
///         prop_assert!(a < 10);
///     }
/// }
/// ```
///
/// Each test runs `config.cases` times with freshly generated inputs from a
/// deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::test_rng(stringify!($name));
                for case in 0..config.cases {
                    let mut run = || -> ::std::result::Result<(), String> {
                        $(
                            let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                        )*
                        $body
                        ::std::result::Result::Ok(())
                    };
                    match run() {
                        Ok(()) => {}
                        Err(msg) if msg == $crate::test_runner::REJECT_SENTINEL => {}
                        Err(msg) => panic!("proptest case {case}/{} failed: {msg}", config.cases),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body; failure aborts the case
/// with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!("assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}"));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!($($fmt)*));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!("assertion failed: `left != right`\n  both: {l:?}"));
        }
    }};
}

/// Discards the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::REJECT_SENTINEL.to_string());
        }
    };
}
