//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Number-of-elements specification for [`vec()`]: an exact count or a
/// `[min, max)` range, mirroring upstream's `Into<SizeRange>` inputs.
#[derive(Debug, Clone)]
pub enum SizeRange {
    /// Exactly this many elements.
    Exact(usize),
    /// Uniformly chosen length in `[start, end)`.
    Span(usize, usize),
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange::Exact(n)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange::Span(r.start, r.end)
    }
}

/// Strategy producing a `Vec` whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = match self.size {
            SizeRange::Exact(n) => n,
            SizeRange::Span(lo, hi) => (lo..hi).new_value(rng),
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::test_rng;

    #[test]
    fn exact_length() {
        let mut rng = test_rng("vec_exact");
        let v = vec(0.0f64..1.0, 12).new_value(&mut rng);
        assert_eq!(v.len(), 12);
    }

    #[test]
    fn ranged_length() {
        let mut rng = test_rng("vec_ranged");
        for _ in 0..100 {
            let v = vec(0u32..5, 2usize..6).new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }
}
