//! # dpar2-repro
//!
//! Umbrella crate for the Rust reproduction of *"DPar2: Fast and Scalable
//! PARAFAC2 Decomposition for Irregular Dense Tensors"* (Jang & Kang,
//! ICDE 2022).
//!
//! This crate re-exports every sub-crate of the workspace so that examples,
//! integration tests, and downstream users can depend on a single package:
//!
//! * [`linalg`] — dense linear algebra (gemm, QR, SVD, eig, pinv) plus CSR
//!   sparse kernels (`sparse::SparseSlice`, SpMM/Gram/MTTKRP) that are
//!   bit-identical to their densified naive counterparts.
//! * [`tensor`] — regular/irregular tensors (dense and CSR-sparse),
//!   matricization, ⊗/⊙/∗ products.
//! * [`rsvd`] — randomized SVD (Algorithm 1).
//! * [`parallel`] — thread pool + greedy slice partitioning (Algorithm 4).
//! * [`core`] — the DPar2 solver (Algorithm 3).
//! * [`baselines`] — PARAFAC2-ALS, RD-ALS, SPARTan-dense, and the O(nnz)
//!   SPARTan-sparse solver (Algorithm 2 & §V).
//! * [`data`] — synthetic stand-ins for the paper's eight datasets, plus
//!   Bernoulli-observed planted sparse models.
//! * [`analysis`] — feature correlations, stock similarity, k-NN, RWR (§IV-E).
//! * [`obs`] — lock-free metrics registry (counters, gauges, log₂-bucket
//!   latency histograms, RAII spans) plus Prometheus-text and JSON export.
//! * [`serve`] — model persistence, versioned registry, concurrent query
//!   engine, streaming ingest (the online half of the system).
//! * [`net`] — wire-protocol TCP front-end over the query engine:
//!   length-prefixed binary protocol + curl-able HTTP text mode, bounded
//!   admission queues, request batching, graceful shutdown.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory.

pub use dpar2_analysis as analysis;
pub use dpar2_baselines as baselines;
pub use dpar2_core as core;
pub use dpar2_data as data;
pub use dpar2_linalg as linalg;
pub use dpar2_net as net;
pub use dpar2_obs as obs;
pub use dpar2_parallel as parallel;
pub use dpar2_rsvd as rsvd;
pub use dpar2_serve as serve;
pub use dpar2_tensor as tensor;
