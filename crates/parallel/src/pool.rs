//! Minimal scoped thread pool built on crossbeam's scoped threads.
//!
//! DPar2 parallelizes two kinds of work (§III-F):
//!
//! 1. the stage-1 compression, where slices are assigned to threads by
//!    [`crate::greedy_partition`] because costs are proportional to `I_k`;
//! 2. the per-iteration `R×R` SVDs and Lemma 1–3 accumulations, where work
//!    per slice is uniform and an even chunking suffices.
//!
//! [`ThreadPool::run_partitioned`] covers the first case,
//! [`ThreadPool::map`] the second. Results always come back in item order,
//! so callers are oblivious to the scheduling.

use crossbeam::channel;
use dpar2_obs::{Counter, MetricsRegistry};
use std::time::Instant;

/// Telemetry handles for a [`ThreadPool`]: how many work items it ran and
/// how long its workers were busy, accumulated across every `run_*`/`map`
/// call. Both are monotone counters, so rates and utilization fall out of
/// snapshot deltas. Recording is lock-free and allocation-free.
#[derive(Debug, Clone)]
pub struct PoolMetrics {
    /// Work items executed (one per item/chunk, across all calls).
    pub tasks: Counter,
    /// Cumulative worker busy time in nanoseconds (sums across workers, so
    /// it can exceed wall clock on a multi-threaded pool).
    pub busy_ns: Counter,
}

impl PoolMetrics {
    /// Registers `{prefix}_tasks_total` and `{prefix}_busy_ns_total` in
    /// `registry`.
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> PoolMetrics {
        PoolMetrics {
            tasks: registry.counter(&format!("{prefix}_tasks_total")),
            busy_ns: registry.counter(&format!("{prefix}_busy_ns_total")),
        }
    }
}

/// A lightweight parallel executor with a fixed thread count.
///
/// Threads are spawned per call via `crossbeam::thread::scope` — for the
/// granularity of PARAFAC2 work items (matrix factorizations), spawn
/// overhead is negligible, and scoping lets closures borrow from the
/// caller's stack without `'static` bounds.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
    metrics: Option<PoolMetrics>,
}

impl ThreadPool {
    /// Creates a pool configuration with `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "ThreadPool: need at least one thread");
        ThreadPool { threads, metrics: None }
    }

    /// Attaches telemetry: every subsequent call records its item count
    /// and worker busy time into `metrics`. Without this the pool is
    /// entirely uninstrumented (no clocks read on the work path).
    pub fn with_metrics(mut self, metrics: PoolMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(item)` for every item index in `partition` (one bucket per
    /// thread) and returns the results ordered by item index.
    ///
    /// The partition must cover `0..n` exactly once, where `n` is the total
    /// number of items across buckets (as produced by
    /// [`crate::greedy_partition`]).
    ///
    /// # Panics
    /// Panics if the partition contains duplicate or out-of-range indices,
    /// or if a worker panics.
    pub fn run_partitioned<R, F>(&self, partition: &[Vec<usize>], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let n: usize = partition.iter().map(Vec::len).sum();
        if n == 0 {
            return Vec::new();
        }
        let metrics = self.metrics.as_ref();
        if let Some(m) = metrics {
            m.tasks.add(n as u64);
        }
        // Single-threaded fast path: no spawning, no channel.
        if self.threads == 1 || partition.iter().filter(|b| !b.is_empty()).count() <= 1 {
            let busy = metrics.map(|_| Instant::now());
            let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
            for bucket in partition {
                for &item in bucket {
                    indexed.push((item, f(item)));
                }
            }
            record_busy(metrics, busy);
            return into_ordered(indexed, n);
        }

        let (tx, rx) = channel::unbounded::<(usize, R)>();
        crossbeam::thread::scope(|scope| {
            for bucket in partition.iter().filter(|b| !b.is_empty()) {
                let tx = tx.clone();
                let f = &f;
                scope.spawn(move |_| {
                    let busy = metrics.map(|_| Instant::now());
                    for &item in bucket {
                        tx.send((item, f(item))).expect("result channel closed");
                    }
                    record_busy(metrics, busy);
                });
            }
            drop(tx);
        })
        .expect("worker thread panicked");
        into_ordered(rx.into_iter().collect(), n)
    }

    /// Splits `data` into disjoint consecutive chunks of `chunk_len`
    /// elements (the last chunk may be shorter) and runs `f(chunk_index,
    /// chunk)` on every chunk, distributing chunks round-robin over the
    /// pool's threads.
    ///
    /// This is the borrowed-scope fan-out used by the blocked GEMM layer:
    /// each chunk is a row panel of the output matrix, so workers write
    /// disjoint `&mut` slices of one buffer without locks or channels. The
    /// chunk boundaries depend only on `chunk_len`, never on the thread
    /// count, and each chunk is processed by exactly one closure call — so
    /// any per-chunk computation that is itself deterministic yields results
    /// that are bit-identical for every pool size.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0` (with non-empty data) or a worker panics.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        assert!(chunk_len > 0, "for_each_chunk_mut: chunk_len must be positive");
        let n_chunks = data.len().div_ceil(chunk_len);
        let metrics = self.metrics.as_ref();
        if let Some(m) = metrics {
            m.tasks.add(n_chunks as u64);
        }
        if self.threads == 1 || n_chunks <= 1 {
            let busy = metrics.map(|_| Instant::now());
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            record_busy(metrics, busy);
            return;
        }
        // Deal chunks round-robin into one bucket per thread. GEMM row
        // panels are uniform work items, so a static assignment balances
        // as well as a queue without any synchronization.
        let workers = self.threads.min(n_chunks);
        let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            buckets[i % workers].push((i, chunk));
        }
        crossbeam::thread::scope(|scope| {
            for bucket in buckets {
                let f = &f;
                scope.spawn(move |_| {
                    let busy = metrics.map(|_| Instant::now());
                    for (i, chunk) in bucket {
                        f(i, chunk);
                    }
                    record_busy(metrics, busy);
                });
            }
        })
        .expect("worker thread panicked");
    }

    /// Applies `f(index, item)` to every element of `items` with an even
    /// static chunking over the pool's threads; results in input order.
    ///
    /// # Panics
    /// Panics if a worker panics.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let metrics = self.metrics.as_ref();
        if let Some(m) = metrics {
            m.tasks.add(n as u64);
        }
        if self.threads == 1 || n == 1 {
            let busy = metrics.map(|_| Instant::now());
            let out = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
            record_busy(metrics, busy);
            return out;
        }
        let chunk = n.div_ceil(self.threads);
        let (tx, rx) = channel::unbounded::<(usize, R)>();
        crossbeam::thread::scope(|scope| {
            for (c, chunk_items) in items.chunks(chunk).enumerate() {
                let tx = tx.clone();
                let f = &f;
                let base = c * chunk;
                scope.spawn(move |_| {
                    let busy = metrics.map(|_| Instant::now());
                    for (off, item) in chunk_items.iter().enumerate() {
                        tx.send((base + off, f(base + off, item))).expect("result channel closed");
                    }
                    record_busy(metrics, busy);
                });
            }
            drop(tx);
        })
        .expect("worker thread panicked");
        into_ordered(rx.into_iter().collect(), n)
    }
}

/// Adds the elapsed time since `busy` (worker start) to the pool's
/// busy-time counter. Both options are `Some` exactly when the pool has
/// metrics attached.
#[inline]
fn record_busy(metrics: Option<&PoolMetrics>, busy: Option<Instant>) {
    if let (Some(m), Some(t)) = (metrics, busy) {
        m.busy_ns.add(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
}

/// Sorts `(index, value)` pairs into a dense `Vec<R>` of length `n`.
fn into_ordered<R>(mut indexed: Vec<(usize, R)>, n: usize) -> Vec<R> {
    assert_eq!(indexed.len(), n, "partition did not cover all items exactly once");
    indexed.sort_by_key(|(i, _)| *i);
    for (pos, (i, _)) in indexed.iter().enumerate() {
        assert_eq!(*i, pos, "partition contains duplicate or out-of-range index {i}");
    }
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::greedy_partition;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_partitioned_orders_results() {
        let weights = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let pool = ThreadPool::new(3);
        let partition = greedy_partition(&weights, 3);
        let results = pool.run_partitioned(&partition, |k| k * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_partitioned_single_thread_path() {
        let partition = vec![vec![1, 0, 2]];
        let pool = ThreadPool::new(1);
        let results = pool.run_partitioned(&partition, |k| k as f64 + 0.5);
        assert_eq!(results, vec![0.5, 1.5, 2.5]);
    }

    #[test]
    fn run_partitioned_executes_each_item_once() {
        let counter = AtomicUsize::new(0);
        let weights = vec![1usize; 100];
        let partition = greedy_partition(&weights, 4);
        ThreadPool::new(4).run_partitioned(&partition, |_k| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<i64> = (0..57).collect();
        let out = ThreadPool::new(4).map(&items, |i, &x| x * 2 + i as i64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as i64 * 3);
        }
    }

    #[test]
    fn map_empty_and_singleton() {
        let pool = ThreadPool::new(4);
        let empty: Vec<u8> = vec![];
        assert!(pool.map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.map(&[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // Determinism requirement: the parallel schedule must not affect
        // the results (only the wall clock).
        let items: Vec<f64> = (0..40).map(|i| i as f64 * 0.25).collect();
        let reference = ThreadPool::new(1).map(&items, |_, &x| (x.sin() * 1e6).round());
        for threads in [2, 3, 8] {
            let got = ThreadPool::new(threads).map(&items, |_, &x| (x.sin() * 1e6).round());
            assert_eq!(got, reference, "thread count {threads} changed results");
        }
    }

    #[test]
    fn for_each_chunk_mut_covers_all_chunks() {
        // 10 elements, chunk_len 3 -> chunks [0..3, 3..6, 6..9, 9..10].
        let mut data = vec![0usize; 10];
        ThreadPool::new(3).for_each_chunk_mut(&mut data, 3, |i, chunk| {
            for x in chunk.iter_mut() {
                *x = i + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4]);
    }

    #[test]
    fn for_each_chunk_mut_identical_across_thread_counts() {
        let reference: Vec<f64> = {
            let mut d = vec![1.0f64; 64];
            ThreadPool::new(1).for_each_chunk_mut(&mut d, 5, |i, chunk| {
                for (off, x) in chunk.iter_mut().enumerate() {
                    *x = ((i * 31 + off) as f64).sin();
                }
            });
            d
        };
        for threads in [2, 3, 8] {
            let mut d = vec![1.0f64; 64];
            ThreadPool::new(threads).for_each_chunk_mut(&mut d, 5, |i, chunk| {
                for (off, x) in chunk.iter_mut().enumerate() {
                    *x = ((i * 31 + off) as f64).sin();
                }
            });
            assert_eq!(d, reference, "thread count {threads} changed chunk results");
        }
    }

    #[test]
    fn for_each_chunk_mut_empty_is_noop() {
        let mut data: Vec<u8> = vec![];
        ThreadPool::new(4).for_each_chunk_mut(&mut data, 0, |_, _| panic!("must not run"));
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn for_each_chunk_mut_zero_chunk_len_panics() {
        let mut data = vec![1u8];
        ThreadPool::new(2).for_each_chunk_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        ThreadPool::new(0);
    }

    #[test]
    #[should_panic(expected = "duplicate or out-of-range")]
    fn bad_partition_detected() {
        // Index 1 appears twice, index 0 missing.
        let partition = vec![vec![1], vec![1]];
        ThreadPool::new(2).run_partitioned(&partition, |k| k);
    }

    #[test]
    fn metrics_count_tasks_and_busy_time() {
        let registry = MetricsRegistry::new();
        let metrics = PoolMetrics::register(&registry, "pool");
        for threads in [1usize, 3] {
            let pool = ThreadPool::new(threads).with_metrics(metrics.clone());
            let before = metrics.tasks.get();
            let items: Vec<u64> = (0..10).collect();
            let _ = pool.map(&items, |_, &x| x + 1);
            let mut data = vec![0u8; 9];
            pool.for_each_chunk_mut(&mut data, 4, |_, c| c.fill(1)); // 3 chunks
            let _ = pool.run_partitioned(&[vec![0, 1], vec![2]], |k| k);
            assert_eq!(metrics.tasks.get() - before, 10 + 3 + 3, "threads={threads}");
        }
        assert!(metrics.busy_ns.get() > 0, "busy time accumulated");
        // The same results come back instrumented or not.
        let plain = ThreadPool::new(3).map(&[1u64, 2, 3], |i, &x| x * i as u64);
        let metered =
            ThreadPool::new(3).with_metrics(metrics).map(&[1u64, 2, 3], |i, &x| x * i as u64);
        assert_eq!(plain, metered);
    }
}
