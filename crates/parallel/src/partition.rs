//! Greedy number partitioning — Algorithm 4 of the DPar2 paper.

/// Distributes items with the given `weights` over `buckets` sets using the
/// paper's greedy heuristic (Algorithm 4):
///
/// 1. sort item indices by weight in descending order (`L_val`, `L_ind`);
/// 2. for each item, add it to the bucket with the smallest current weight
///    sum (`t_min ← argmin S`), updating the sums.
///
/// Returns one `Vec<usize>` of item indices per bucket. Deterministic: ties
/// go to the lowest-numbered bucket, and equal weights keep their original
/// relative order (stable sort).
///
/// # Panics
/// Panics if `buckets == 0`.
pub fn greedy_partition(weights: &[usize], buckets: usize) -> Vec<Vec<usize>> {
    assert!(buckets > 0, "greedy_partition: need at least one bucket");
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); buckets];
    if weights.is_empty() {
        return sets;
    }
    // L_ind: indices sorted by weight descending (stable).
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]));
    // S: running weight sum per bucket.
    let mut sums = vec![0usize; buckets];
    for &item in &order {
        let t_min = argmin(&sums);
        sets[t_min].push(item);
        sums[t_min] += weights[item];
    }
    sets
}

/// Baseline assignment for the ablation bench: items dealt to buckets in
/// index order, ignoring weights (what "a naive approach" in §III-F does).
pub fn round_robin_partition(n_items: usize, buckets: usize) -> Vec<Vec<usize>> {
    assert!(buckets > 0, "round_robin_partition: need at least one bucket");
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); buckets];
    for item in 0..n_items {
        sets[item % buckets].push(item);
    }
    sets
}

/// Load imbalance of a partition: `max_bucket_sum / mean_bucket_sum`.
///
/// 1.0 is a perfect split; the makespan of the parallel phase is
/// proportional to this number. Returns 1.0 for empty input.
pub fn imbalance(weights: &[usize], partition: &[Vec<usize>]) -> f64 {
    let sums: Vec<usize> =
        partition.iter().map(|set| set.iter().map(|&i| weights[i]).sum()).collect();
    let total: usize = sums.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / partition.len() as f64;
    let max = *sums.iter().max().expect("non-empty partition") as f64;
    max / mean
}

fn argmin(xs: &[usize]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_valid_partition(n: usize, partition: &[Vec<usize>]) -> bool {
        let mut seen = vec![false; n];
        for set in partition {
            for &i in set {
                if i >= n || seen[i] {
                    return false;
                }
                seen[i] = true;
            }
        }
        seen.iter().all(|&s| s)
    }

    #[test]
    fn covers_all_items_exactly_once() {
        let weights = vec![5, 3, 8, 1, 9, 2, 7];
        let p = greedy_partition(&weights, 3);
        assert!(is_valid_partition(weights.len(), &p));
    }

    #[test]
    fn greedy_puts_largest_items_first() {
        // With 2 buckets and weights {10, 9, 2, 1}: greedy gives {10,1},{9,2}
        // (sums 11 vs 11) — perfectly balanced.
        let weights = vec![10, 9, 2, 1];
        let p = greedy_partition(&weights, 2);
        let sums: Vec<usize> = p.iter().map(|s| s.iter().map(|&i| weights[i]).sum()).collect();
        assert_eq!(sums[0], 11);
        assert_eq!(sums[1], 11);
    }

    #[test]
    fn greedy_beats_round_robin_on_skewed_weights() {
        // Power-law-ish weights like Fig. 8's stock listing lengths.
        let weights: Vec<usize> = (1..=64).map(|i| 5000 / i).collect();
        let greedy = greedy_partition(&weights, 6);
        let naive = round_robin_partition(weights.len(), 6);
        let gi = imbalance(&weights, &greedy);
        let ni = imbalance(&weights, &naive);
        assert!(gi < ni, "greedy {gi} not better than round-robin {ni}");
        // A single item heavier than the mean bucket load forces imbalance
        // ≥ max_weight/mean for *any* partition; greedy must be within 5%
        // of that unavoidable floor.
        let total: usize = weights.iter().sum();
        let mean = total as f64 / 6.0;
        let floor = (*weights.iter().max().unwrap() as f64 / mean).max(1.0);
        assert!(gi < floor * 1.05, "greedy imbalance too high: {gi} (floor {floor})");
    }

    #[test]
    fn single_bucket_gets_everything() {
        let weights = vec![1, 2, 3];
        let p = greedy_partition(&weights, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].len(), 3);
        assert!((imbalance(&weights, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_buckets_than_items() {
        let weights = vec![4, 2];
        let p = greedy_partition(&weights, 5);
        assert!(is_valid_partition(2, &p));
        let non_empty = p.iter().filter(|s| !s.is_empty()).count();
        assert_eq!(non_empty, 2);
    }

    #[test]
    fn empty_weights() {
        let p = greedy_partition(&[], 3);
        assert!(p.iter().all(|s| s.is_empty()));
        assert_eq!(imbalance(&[], &p), 1.0);
    }

    #[test]
    fn deterministic() {
        let weights = vec![3, 3, 3, 5, 5, 1];
        assert_eq!(greedy_partition(&weights, 2), greedy_partition(&weights, 2));
    }

    #[test]
    fn imbalance_of_worst_case() {
        // All weight in one bucket.
        let weights = vec![10, 10];
        let p = vec![vec![0, 1], vec![]];
        assert!((imbalance(&weights, &p) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        greedy_partition(&[1], 0);
    }

    #[test]
    fn greedy_bound_holds() {
        // Classic bound for greedy (LPT) scheduling: makespan ≤ (4/3 − 1/3m) · OPT.
        // We check the weaker but universally valid bound max ≤ mean + max_weight.
        let weights: Vec<usize> = (0..100).map(|i| (i * 37 + 11) % 500 + 1).collect();
        for buckets in [2, 3, 6, 10] {
            let p = greedy_partition(&weights, buckets);
            let sums: Vec<usize> = p.iter().map(|s| s.iter().map(|&i| weights[i]).sum()).collect();
            let total: usize = weights.iter().sum();
            let mean = total as f64 / buckets as f64;
            let max_w = *weights.iter().max().unwrap() as f64;
            let max_s = *sums.iter().max().unwrap() as f64;
            assert!(max_s <= mean + max_w + 1e-9, "greedy bound violated for {buckets} buckets");
        }
    }
}
