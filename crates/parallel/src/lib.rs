//! # dpar2-parallel
//!
//! Work distribution for DPar2 (§III-F of the paper).
//!
//! The expensive phase of DPar2 is the stage-1 randomized SVD of every
//! slice, whose cost is proportional to the slice's row count `I_k`. Because
//! irregular tensors have wildly varying `I_k` (Fig. 8 of the paper shows
//! power-law-like listing lengths for stock data), naive round-robin
//! assignment leaves threads idle. Algorithm 4 of the paper fixes this with
//! *greedy number partitioning*: sort slices by row count descending and
//! repeatedly give the next slice to the least-loaded thread.
//!
//! This crate provides:
//!
//! * [`greedy_partition`] — Algorithm 4 verbatim (plus a baseline
//!   [`round_robin_partition`] for the ablation benches).
//! * [`imbalance`] — the makespan ratio used to quantify partition quality.
//! * [`ThreadPool`] — a minimal scoped executor (crossbeam threads) that
//!   runs a closure over each item of a partition and returns results in
//!   item order.

pub mod partition;
pub mod pool;

pub use partition::{greedy_partition, imbalance, round_robin_partition};
pub use pool::{PoolMetrics, ThreadPool};
