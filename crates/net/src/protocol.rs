//! The length-prefixed binary wire protocol: pure, I/O-free encoders and
//! decoders shared by the server, the client, and the protocol fuzz suite.
//!
//! Every frame is a `u32` little-endian payload length followed by exactly
//! that many payload bytes. Request payloads start with an opcode byte;
//! response payloads start with a tag byte. All multi-byte integers are
//! little-endian, and similarities travel as raw `f64::to_bits` so an
//! answer crosses the wire **bit-identical** to the in-process
//! [`QueryEngine`](dpar2_serve::QueryEngine) ranking.
//!
//! Decoding never panics: every malformed input maps onto a typed
//! [`FrameError`], which the server echoes back as a
//! [`Response::Error`] without dropping the connection.
//!
//! | request  | payload |
//! |----------|---------|
//! | `TopK`   | `0x01`, name len `u16`, name UTF-8, target `u32`, k `u32`, mode `u8` (+ nprobe `u32` iff mode 3) |
//! | `Ping`   | `0x02` |
//! | `Metrics`| `0x03` |
//!
//! | response | payload |
//! |----------|---------|
//! | `Error`  | `0x00`, code `u8`, msg len `u16`, msg UTF-8 |
//! | `TopK`   | `0x01`, version `u64`, flags `u8` (bit0 indexed, bit1 cache hit), n `u32`, n × (entity `u32`, sim bits `u64`) |
//! | `Pong`   | `0x02` |
//! | `Metrics`| `0x03`, text len `u32`, Prometheus text UTF-8 |

use std::fmt;

/// Opcode byte of a [`Request::TopK`] payload.
pub const OP_TOPK: u8 = 0x01;
/// Opcode byte of a [`Request::Ping`] payload.
pub const OP_PING: u8 = 0x02;
/// Opcode byte of a [`Request::Metrics`] payload.
pub const OP_METRICS: u8 = 0x03;

/// Tag byte of a [`Response::Error`] payload.
pub const TAG_ERROR: u8 = 0x00;
/// Tag byte of a [`Response::TopK`] payload.
pub const TAG_TOPK: u8 = 0x01;
/// Tag byte of a [`Response::Pong`] payload.
pub const TAG_PONG: u8 = 0x02;
/// Tag byte of a [`Response::Metrics`] payload.
pub const TAG_METRICS: u8 = 0x03;

/// Default cap on a single frame's payload length; larger frames get a
/// typed [`ErrorCode::Oversized`] rejection
/// (see [`ServerConfig::max_frame_bytes`](crate::ServerConfig)).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024;

/// How a wire query wants its ranking computed, mirroring
/// [`QueryMode`](dpar2_serve::QueryMode) plus a "server decides" default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Use the engine's configured default mode.
    Default,
    /// Force the exact scan.
    Exact,
    /// Route through the index at its default probe depth.
    Indexed,
    /// Route through the index probing this many partitions.
    IndexedProbe(u32),
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Top-k similar-entity query against the current version of `model`.
    TopK {
        /// Registry name of the model.
        model: String,
        /// Target entity index.
        target: u32,
        /// Number of neighbors requested.
        k: u32,
        /// How to compute the ranking.
        mode: WireMode,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Request the Prometheus text exposition of the server's metrics
    /// registry (observed servers only).
    Metrics,
}

/// A top-k answer as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKAnswer {
    /// Model version the answer was computed against.
    pub version: u64,
    /// True if the pruned index produced the ranking.
    pub indexed: bool,
    /// True if the answer came from the engine's result cache.
    pub cache_hit: bool,
    /// `(entity, similarity)` pairs, descending. Similarities are encoded
    /// as `f64::to_bits`, so they decode bit-identical to the engine's.
    pub neighbors: Vec<(u32, f64)>,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A successful top-k answer.
    TopK(TopKAnswer),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Prometheus text exposition of the server's metrics registry.
    Metrics(String),
    /// A typed failure; the connection stays usable afterwards unless the
    /// code says otherwise ([`ErrorCode::Truncated`],
    /// [`ErrorCode::ShuttingDown`]).
    Error(WireError),
}

/// Typed error codes a server can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The pending queue was full; retry later.
    Overloaded = 1,
    /// The payload did not decode as any known request.
    Malformed = 2,
    /// The frame length exceeded the server's cap.
    Oversized = 3,
    /// The connection ended mid-frame; the server closes it after this.
    Truncated = 4,
    /// The payload's opcode byte is unknown.
    BadOpcode = 5,
    /// The named model is not in the registry.
    ModelNotFound = 6,
    /// The target entity index is outside the model.
    EntityOutOfRange = 7,
    /// The server is draining for shutdown.
    ShuttingDown = 8,
    /// Any other server-side failure.
    Internal = 9,
}

impl ErrorCode {
    /// Decodes a wire byte back into a code.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::Malformed,
            3 => ErrorCode::Oversized,
            4 => ErrorCode::Truncated,
            5 => ErrorCode::BadOpcode,
            6 => ErrorCode::ModelNotFound,
            7 => ErrorCode::EntityOutOfRange,
            8 => ErrorCode::ShuttingDown,
            9 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A typed error response: code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What went wrong.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error response.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError { code, message: message.into() }
    }

    /// Maps a serve-layer query error onto its wire code.
    pub fn from_serve(e: &dpar2_serve::ServeError) -> WireError {
        use dpar2_serve::ServeError;
        let code = match e {
            ServeError::ModelNotFound(_) => ErrorCode::ModelNotFound,
            ServeError::EntityOutOfRange { .. } => ErrorCode::EntityOutOfRange,
            _ => ErrorCode::Internal,
        };
        WireError::new(code, e.to_string())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// Why a payload failed to decode. The server answers each variant with a
/// [`Response::Error`] of the matching [`ErrorCode`] — a malformed frame is
/// a response, never a panic or a silently dropped connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame header declared a payload longer than the cap.
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The server's cap.
        max: usize,
    },
    /// The payload (or the 4-byte header itself) ended early.
    Truncated {
        /// Bytes the header (or field) promised.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload decoded to structurally invalid data.
    Malformed(&'static str),
    /// The request opcode byte is unknown.
    BadOpcode(u8),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max} byte limit")
            }
            FrameError::Truncated { expected, got } => {
                write!(f, "frame truncated: expected {expected} bytes, got {got}")
            }
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<&FrameError> for WireError {
    fn from(e: &FrameError) -> WireError {
        let code = match e {
            FrameError::Oversized { .. } => ErrorCode::Oversized,
            FrameError::Truncated { .. } => ErrorCode::Truncated,
            FrameError::Malformed(_) => ErrorCode::Malformed,
            FrameError::BadOpcode(_) => ErrorCode::BadOpcode,
        };
        WireError::new(code, e.to_string())
    }
}

/// Wraps a payload in a length-prefixed frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes a request as a complete frame (header included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut p = Vec::new();
    match req {
        Request::TopK { model, target, k, mode } => {
            p.push(OP_TOPK);
            p.extend_from_slice(&(model.len() as u16).to_le_bytes());
            p.extend_from_slice(model.as_bytes());
            p.extend_from_slice(&target.to_le_bytes());
            p.extend_from_slice(&k.to_le_bytes());
            match mode {
                WireMode::Default => p.push(0),
                WireMode::Exact => p.push(1),
                WireMode::Indexed => p.push(2),
                WireMode::IndexedProbe(nprobe) => {
                    p.push(3);
                    p.extend_from_slice(&nprobe.to_le_bytes());
                }
            }
        }
        Request::Ping => p.push(OP_PING),
        Request::Metrics => p.push(OP_METRICS),
    }
    encode_frame(&p)
}

/// Encodes a response as a complete frame (header included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut p = Vec::new();
    match resp {
        Response::TopK(a) => {
            p.push(TAG_TOPK);
            p.extend_from_slice(&a.version.to_le_bytes());
            let flags = u8::from(a.indexed) | (u8::from(a.cache_hit) << 1);
            p.push(flags);
            p.extend_from_slice(&(a.neighbors.len() as u32).to_le_bytes());
            for &(entity, sim) in &a.neighbors {
                p.extend_from_slice(&entity.to_le_bytes());
                p.extend_from_slice(&sim.to_bits().to_le_bytes());
            }
        }
        Response::Pong => p.push(TAG_PONG),
        Response::Metrics(text) => {
            p.push(TAG_METRICS);
            p.extend_from_slice(&(text.len() as u32).to_le_bytes());
            p.extend_from_slice(text.as_bytes());
        }
        Response::Error(e) => {
            p.push(TAG_ERROR);
            p.push(e.code as u8);
            let msg = e.message.as_bytes();
            let take = msg.len().min(u16::MAX as usize);
            p.extend_from_slice(&(take as u16).to_le_bytes());
            p.extend_from_slice(&msg[..take]);
        }
    }
    encode_frame(&p)
}

/// Little-endian cursor over a payload; every under-read is a typed
/// [`FrameError`], never a slice panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated { expected: end, got: self.buf.len() });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    /// Rejects trailing garbage — a valid prefix does not make a frame.
    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing bytes after request"))
        }
    }
}

/// Decodes a request payload (the bytes after the length header).
///
/// # Errors
/// A typed [`FrameError`] for every malformed input — empty payloads,
/// unknown opcodes or modes, bad UTF-8, short fields, trailing garbage.
pub fn decode_request(payload: &[u8]) -> Result<Request, FrameError> {
    let mut r = Reader::new(payload);
    let req = match r.u8().map_err(|_| FrameError::Malformed("empty payload"))? {
        OP_TOPK => {
            let name_len = r.u16()? as usize;
            let name = std::str::from_utf8(r.bytes(name_len)?)
                .map_err(|_| FrameError::Malformed("model name is not UTF-8"))?
                .to_string();
            let target = r.u32()?;
            let k = r.u32()?;
            let mode = match r.u8()? {
                0 => WireMode::Default,
                1 => WireMode::Exact,
                2 => WireMode::Indexed,
                3 => WireMode::IndexedProbe(r.u32()?),
                _ => return Err(FrameError::Malformed("unknown query mode")),
            };
            Request::TopK { model: name, target, k, mode }
        }
        OP_PING => Request::Ping,
        OP_METRICS => Request::Metrics,
        op => return Err(FrameError::BadOpcode(op)),
    };
    r.finish()?;
    Ok(req)
}

/// Decodes a response payload (the bytes after the length header).
///
/// # Errors
/// A typed [`FrameError`] for every malformed input.
pub fn decode_response(payload: &[u8]) -> Result<Response, FrameError> {
    let mut r = Reader::new(payload);
    let resp = match r.u8().map_err(|_| FrameError::Malformed("empty payload"))? {
        TAG_TOPK => {
            let version = r.u64()?;
            let flags = r.u8()?;
            if flags & !0b11 != 0 {
                return Err(FrameError::Malformed("unknown answer flags"));
            }
            let n = r.u32()? as usize;
            let mut neighbors = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let entity = r.u32()?;
                let sim = f64::from_bits(r.u64()?);
                neighbors.push((entity, sim));
            }
            Response::TopK(TopKAnswer {
                version,
                indexed: flags & 0b01 != 0,
                cache_hit: flags & 0b10 != 0,
                neighbors,
            })
        }
        TAG_PONG => Response::Pong,
        TAG_METRICS => {
            let len = r.u32()? as usize;
            let text = std::str::from_utf8(r.bytes(len)?)
                .map_err(|_| FrameError::Malformed("metrics text is not UTF-8"))?
                .to_string();
            Response::Metrics(text)
        }
        TAG_ERROR => {
            let code =
                ErrorCode::from_u8(r.u8()?).ok_or(FrameError::Malformed("unknown error code"))?;
            let len = r.u16()? as usize;
            let message = std::str::from_utf8(r.bytes(len)?)
                .map_err(|_| FrameError::Malformed("error message is not UTF-8"))?
                .to_string();
            Response::Error(WireError { code, message })
        }
        _ => return Err(FrameError::Malformed("unknown response tag")),
    };
    r.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let frame = encode_request(req);
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        assert_eq!(&decode_request(&frame[4..]).unwrap(), req);
    }

    fn round_trip_response(resp: &Response) {
        let frame = encode_response(resp);
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        assert_eq!(&decode_response(&frame[4..]).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(&Request::Ping);
        round_trip_request(&Request::Metrics);
        for mode in
            [WireMode::Default, WireMode::Exact, WireMode::Indexed, WireMode::IndexedProbe(7)]
        {
            round_trip_request(&Request::TopK {
                model: "stocks-α".to_string(),
                target: 42,
                k: 10,
                mode,
            });
        }
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(&Response::Pong);
        round_trip_response(&Response::Metrics("# TYPE x counter\nx 1\n".to_string()));
        round_trip_response(&Response::Error(WireError::new(ErrorCode::Overloaded, "queue full")));
        round_trip_response(&Response::TopK(TopKAnswer {
            version: 3,
            indexed: true,
            cache_hit: false,
            neighbors: vec![(1, 0.99), (7, f64::from_bits(0x3FEF_FFFF_FFFF_FFFF)), (0, 0.0)],
        }));
    }

    #[test]
    fn similarity_bits_survive_exactly() {
        // An awkward value whose decimal rendering loses bits.
        let sim = f64::from_bits(0x3FE5_5555_5555_5555);
        let resp = Response::TopK(TopKAnswer {
            version: 1,
            indexed: false,
            cache_hit: true,
            neighbors: vec![(9, sim)],
        });
        let frame = encode_response(&resp);
        let Response::TopK(a) = decode_response(&frame[4..]).unwrap() else { panic!("tag") };
        assert_eq!(a.neighbors[0].1.to_bits(), sim.to_bits());
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert_eq!(decode_request(&[]), Err(FrameError::Malformed("empty payload")));
        assert_eq!(decode_request(&[0xFF]), Err(FrameError::BadOpcode(0xFF)));
        // Ping with trailing garbage.
        assert!(matches!(decode_request(&[OP_PING, 0]), Err(FrameError::Malformed(_))));
        // TopK cut off inside the name.
        assert!(matches!(
            decode_request(&[OP_TOPK, 10, 0, b'a']),
            Err(FrameError::Truncated { .. })
        ));
        // Bad mode byte.
        let mut p = vec![OP_TOPK, 1, 0, b'm'];
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&2u32.to_le_bytes());
        p.push(9);
        assert_eq!(decode_request(&p), Err(FrameError::Malformed("unknown query mode")));
        // Non-UTF-8 model name.
        let mut p = vec![OP_TOPK, 2, 0, 0xFF, 0xFE];
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&2u32.to_le_bytes());
        p.push(0);
        assert_eq!(decode_request(&p), Err(FrameError::Malformed("model name is not UTF-8")));
    }

    #[test]
    fn error_codes_round_trip() {
        for b in 0..=u8::MAX {
            if let Some(code) = ErrorCode::from_u8(b) {
                assert_eq!(code as u8, b);
            }
        }
        assert!(ErrorCode::from_u8(0).is_none());
        assert!(ErrorCode::from_u8(10).is_none());
    }

    #[test]
    fn frame_error_maps_to_wire_code() {
        let pairs = [
            (FrameError::Oversized { len: 1, max: 0 }, ErrorCode::Oversized),
            (FrameError::Truncated { expected: 4, got: 1 }, ErrorCode::Truncated),
            (FrameError::Malformed("x"), ErrorCode::Malformed),
            (FrameError::BadOpcode(0x7F), ErrorCode::BadOpcode),
        ];
        for (fe, code) in pairs {
            assert_eq!(WireError::from(&fe).code, code);
        }
    }

    #[test]
    fn serve_errors_map_to_wire_codes() {
        use dpar2_serve::ServeError;
        assert_eq!(
            WireError::from_serve(&ServeError::ModelNotFound("m".into())).code,
            ErrorCode::ModelNotFound
        );
        assert_eq!(
            WireError::from_serve(&ServeError::EntityOutOfRange { entity: 9, count: 3 }).code,
            ErrorCode::EntityOutOfRange
        );
        assert_eq!(WireError::from_serve(&ServeError::BadMagic).code, ErrorCode::Internal);
    }
}
