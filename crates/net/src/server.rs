//! The TCP server: a blocking acceptor, a fixed pool of connection
//! workers, and a request batcher, glued together by two bounded
//! admission queues.
//!
//! ```text
//! acceptor ──► Bounded<TcpStream> ──► worker × N ──► Bounded<Job> ──► batcher ──► QueryEngine
//!                  (pending_connections)                (pending_requests)
//! ```
//!
//! Both queues refuse at capacity with a typed [`ErrorCode::Overloaded`]
//! response — under overload a client learns it was shed within a bounded
//! time instead of waiting in an invisible, ever-growing line. Shutdown is
//! graceful: the acceptor stops, queued connections get a typed
//! [`ErrorCode::ShuttingDown`], and requests already submitted to the
//! batcher are answered before the server returns.
//!
//! Workers sniff the first four bytes of each connection: a valid binary
//! frame of ≤ [`ServerConfig::max_frame_bytes`] always has a header byte
//! below `0x20`, so four printable-ASCII bytes (`"GET "`, `"HEAD"`, …)
//! reroute the connection to the HTTP text mode (the private `http`
//! module; routes are listed in the [crate docs](crate)).

use crate::batch::{Batcher, Job, SubmitError};
use crate::http::{self, Route};
use crate::metrics::NetMetrics;
use crate::protocol::{
    decode_request, encode_response, ErrorCode, Request, Response, TopKAnswer, WireError, WireMode,
    DEFAULT_MAX_FRAME_BYTES,
};
use crate::queue::{Bounded, PushError};
use dpar2_obs::{export, MetricsRegistry};
use dpar2_serve::{QueryEngine, QueryMode, QueryResult};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a worker blocks in `read` before re-checking the shutdown
/// flag, when the config leaves [`ServerConfig::poll_interval`] at its
/// default.
const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Write timeout on every served socket — a stalled reader cannot pin a
/// worker forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// How long the acceptor waits to sniff a rejected connection's first
/// bytes before falling back to a binary rejection frame.
const REJECT_PEEK_TIMEOUT: Duration = Duration::from_millis(100);
/// Oversized frames up to this declared length are drained so the
/// connection stays usable; beyond it the server answers and closes.
const DRAIN_CAP: usize = 1024 * 1024;

/// Tuning knobs for [`NetServer::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Connection-worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Capacity of the accepted-connection queue; a full queue rejects new
    /// connections with [`ErrorCode::Overloaded`].
    pub pending_connections: usize,
    /// Capacity of the pending-request queue feeding the batcher; a full
    /// queue answers [`ErrorCode::Overloaded`] on that request only.
    pub pending_requests: usize,
    /// Most queries coalesced into one engine fan-out.
    pub batch_max: usize,
    /// Largest accepted frame payload; longer frames get
    /// [`ErrorCode::Oversized`].
    pub max_frame_bytes: usize,
    /// How long a worker blocks in `read` before re-checking the shutdown
    /// flag. Lower = faster shutdown, more wakeups.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            pending_connections: 64,
            pending_requests: 256,
            batch_max: 32,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            poll_interval: DEFAULT_POLL_INTERVAL,
        }
    }
}

/// Everything a connection worker needs, shared via `Arc`.
#[derive(Debug)]
struct Ctx {
    queue: Arc<crate::batch::BatchQueue>,
    default_mode: QueryMode,
    obs: Option<Arc<MetricsRegistry>>,
    metrics: Option<NetMetrics>,
    shutdown: Arc<AtomicBool>,
    max_frame_bytes: usize,
    poll_interval: Duration,
}

/// A running wire-protocol front-end over a [`QueryEngine`]; see the
/// [crate docs](crate) for the protocol and an end-to-end example.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Bounded<TcpStream>>,
    batcher: Batcher,
}

impl NetServer {
    /// Binds `addr` and starts serving `engine` (no metrics registry: the
    /// `/metrics` routes answer 404 / `Internal`).
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(
        engine: Arc<QueryEngine>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<NetServer> {
        Self::launch(engine, addr, config, None)
    }

    /// [`start`](NetServer::start), plus server telemetry registered in
    /// `obs` under the `net_` prefix and exposed on the `/metrics` HTTP
    /// route and the binary `Metrics` request.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start_observed(
        engine: Arc<QueryEngine>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        obs: Arc<MetricsRegistry>,
    ) -> io::Result<NetServer> {
        Self::launch(engine, addr, config, Some(obs))
    }

    fn launch(
        engine: Arc<QueryEngine>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        obs: Option<Arc<MetricsRegistry>>,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = obs.as_ref().map(|reg| NetMetrics::register(reg, "net"));
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Bounded::new(config.pending_connections.max(1)));
        let default_mode = engine.query_mode();
        let batcher =
            Batcher::spawn(engine, config.pending_requests, config.batch_max, metrics.clone());
        let ctx = Arc::new(Ctx {
            queue: batcher.queue(),
            default_mode,
            obs,
            metrics,
            shutdown: Arc::clone(&shutdown),
            max_frame_bytes: config.max_frame_bytes,
            poll_interval: config.poll_interval,
        });

        let acceptor = {
            let ctx = Arc::clone(&ctx);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&listener, &conns, &ctx))
        };
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let ctx = Arc::clone(&ctx);
                let conns = Arc::clone(&conns);
                std::thread::spawn(move || worker_loop(&conns, &ctx))
            })
            .collect();

        Ok(NetServer { addr, shutdown, acceptor: Some(acceptor), workers, conns, batcher })
    }

    /// The bound address (useful after binding port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, answer queued connections with
    /// [`ErrorCode::ShuttingDown`], finish requests already admitted to
    /// the batcher, then return. Dropping the server does the same.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        let Some(acceptor) = self.acceptor.take() else { return };
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's `accept` with a throwaway connection; it
        // sees the flag before touching the socket.
        let _ = TcpStream::connect(self.addr);
        let _ = acceptor.join();
        // Workers drain already-accepted connections (each is answered
        // with ShuttingDown by serve_connection once the flag is up), then
        // see the closed queue and exit.
        self.conns.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Last: the batcher, so requests in flight when the flag went up
        // still got real answers.
        self.batcher.shutdown();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(listener: &TcpListener, conns: &Bounded<TcpStream>, ctx: &Ctx) {
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        match conns.push(stream) {
            Ok(()) => {
                if let Some(m) = &ctx.metrics {
                    m.connections_accepted.inc();
                    m.conn_queue_depth.add(1);
                }
            }
            Err(PushError::Full(stream)) => {
                if let Some(m) = &ctx.metrics {
                    m.connections_rejected.inc();
                }
                reject_connection(stream, ErrorCode::Overloaded);
            }
            Err(PushError::Closed(stream)) => {
                reject_connection(stream, ErrorCode::ShuttingDown);
                break;
            }
        }
    }
}

/// Answers a connection the server cannot serve, in whichever dialect the
/// client appears to speak, then closes it.
fn reject_connection(mut stream: TcpStream, code: ErrorCode) {
    let _ = stream.set_read_timeout(Some(REJECT_PEEK_TIMEOUT));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut head = [0u8; 4];
    let http = matches!(stream.peek(&mut head), Ok(4)) && looks_like_http(&head);
    if http {
        let body = match code {
            ErrorCode::ShuttingDown => "shutting down\n",
            _ => "overloaded\n",
        };
        let _ = stream.write_all(&http::render_response(503, "text/plain", body));
    } else {
        let message = match code {
            ErrorCode::ShuttingDown => "server is shutting down",
            _ => "connection queue is full; retry later",
        };
        let resp = Response::Error(WireError::new(code, message));
        let _ = stream.write_all(&encode_response(&resp));
    }
}

/// Four printable-ASCII bytes cannot be the header of an acceptable
/// binary frame (it would declare a ≥ 0.5 GiB payload), so they mark an
/// HTTP request line.
fn looks_like_http(head: &[u8; 4]) -> bool {
    head.iter().all(|&b| (0x20..0x7F).contains(&b))
}

fn worker_loop(conns: &Bounded<TcpStream>, ctx: &Ctx) {
    while let Some(mut stream) = conns.pop() {
        if let Some(m) = &ctx.metrics {
            m.conn_queue_depth.sub(1);
            m.active_connections.add(1);
        }
        serve_connection(&mut stream, ctx);
        if let Some(m) = &ctx.metrics {
            m.active_connections.sub(1);
        }
    }
}

/// What a blocking read of exactly `buf.len()` bytes amounted to.
enum ReadOutcome {
    /// The buffer is full.
    Done,
    /// EOF on a frame boundary — the client is done.
    CleanEof,
    /// EOF mid-frame.
    DirtyEof,
    /// The shutdown flag went up while waiting.
    Shutdown,
}

/// Reads exactly `buf.len()` bytes, re-checking `shutdown` whenever the
/// socket's read timeout elapses.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> io::Result<ReadOutcome> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Ok(if got == 0 { ReadOutcome::CleanEof } else { ReadOutcome::DirtyEof })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(ReadOutcome::Shutdown);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Done)
}

fn send(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    stream.write_all(&encode_response(resp))
}

fn serve_connection(stream: &mut TcpStream, ctx: &Ctx) {
    if stream.set_read_timeout(Some(ctx.poll_interval)).is_err()
        || stream.set_write_timeout(Some(WRITE_TIMEOUT)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut first = true;
    loop {
        let mut header = [0u8; 4];
        match read_full(stream, &mut header, &ctx.shutdown) {
            Ok(ReadOutcome::Done) => {}
            Ok(ReadOutcome::CleanEof) => return,
            Ok(ReadOutcome::DirtyEof) => {
                let e = WireError::new(ErrorCode::Truncated, "connection ended mid-header");
                let _ = send(stream, &Response::Error(e));
                return;
            }
            Ok(ReadOutcome::Shutdown) => {
                let e = WireError::new(ErrorCode::ShuttingDown, "server is shutting down");
                let _ = send(stream, &Response::Error(e));
                return;
            }
            Err(_) => return,
        }
        if first {
            first = false;
            if looks_like_http(&header) {
                serve_http(stream, &header, ctx);
                return;
            }
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > ctx.max_frame_bytes {
            if let Some(m) = &ctx.metrics {
                m.protocol_errors.inc();
            }
            let e = WireError::new(
                ErrorCode::Oversized,
                format!("frame of {len} bytes exceeds the {} byte limit", ctx.max_frame_bytes),
            );
            if send(stream, &Response::Error(e)).is_err() {
                return;
            }
            // Small overruns are drained so the connection stays usable;
            // huge ones would stall a worker for one client's mistake.
            if len > DRAIN_CAP || drain(stream, len, &ctx.shutdown).is_err() {
                return;
            }
            continue;
        }
        let mut payload = vec![0u8; len];
        match read_full(stream, &mut payload, &ctx.shutdown) {
            Ok(ReadOutcome::Done) => {}
            Ok(ReadOutcome::CleanEof | ReadOutcome::DirtyEof) => {
                if let Some(m) = &ctx.metrics {
                    m.protocol_errors.inc();
                }
                let e = WireError::new(ErrorCode::Truncated, "connection ended mid-payload");
                let _ = send(stream, &Response::Error(e));
                return;
            }
            Ok(ReadOutcome::Shutdown) => {
                let e = WireError::new(ErrorCode::ShuttingDown, "server is shutting down");
                let _ = send(stream, &Response::Error(e));
                return;
            }
            Err(_) => return,
        }
        let resp = handle_payload(&payload, ctx);
        if send(stream, &resp).is_err() {
            return;
        }
    }
}

/// Discards `len` payload bytes of an oversized frame.
fn drain(stream: &mut TcpStream, len: usize, shutdown: &AtomicBool) -> io::Result<()> {
    let mut scratch = [0u8; 4096];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(scratch.len());
        match read_full(stream, &mut scratch[..take], shutdown)? {
            ReadOutcome::Done => remaining -= take,
            _ => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "drain interrupted")),
        }
    }
    Ok(())
}

/// Decodes and answers one binary request payload.
fn handle_payload(payload: &[u8], ctx: &Ctx) -> Response {
    let started = Instant::now();
    let request = match decode_request(payload) {
        Ok(request) => request,
        Err(e) => {
            if let Some(m) = &ctx.metrics {
                m.protocol_errors.inc();
            }
            return Response::Error(WireError::from(&e));
        }
    };
    if let Some(m) = &ctx.metrics {
        m.requests_total.inc();
    }
    match request {
        Request::Ping => {
            if let Some(m) = &ctx.metrics {
                m.latency_ping_ns.record(elapsed_ns(started));
            }
            Response::Pong
        }
        Request::Metrics => {
            let resp = match &ctx.obs {
                Some(reg) => Response::Metrics(export::to_text(&reg.snapshot())),
                None => Response::Error(WireError::new(
                    ErrorCode::Internal,
                    "no metrics registry attached (server started without observation)",
                )),
            };
            if let Some(m) = &ctx.metrics {
                m.latency_metrics_ns.record(elapsed_ns(started));
            }
            resp
        }
        Request::TopK { model, target, k, mode } => {
            let resp = match submit_topk(ctx, model, target as usize, k as usize, mode) {
                Ok(result) => Response::TopK(to_wire_answer(&result)),
                Err(e) => Response::Error(e),
            };
            if let Some(m) = &ctx.metrics {
                m.latency_topk_ns.record(elapsed_ns(started));
            }
            resp
        }
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn resolve_mode(mode: WireMode, default: QueryMode) -> QueryMode {
    match mode {
        WireMode::Default => default,
        WireMode::Exact => QueryMode::Exact,
        WireMode::Indexed => QueryMode::Indexed { nprobe: None },
        WireMode::IndexedProbe(p) => QueryMode::Indexed { nprobe: Some(p as usize) },
    }
}

/// Submits one top-k query to the batcher and waits for its answer.
fn submit_topk(
    ctx: &Ctx,
    model: String,
    target: usize,
    k: usize,
    mode: WireMode,
) -> Result<QueryResult, WireError> {
    let (reply, rx) = mpsc::channel();
    let job = Job { model, target, k, mode: resolve_mode(mode, ctx.default_mode), reply };
    match ctx.queue.submit(job) {
        Ok(()) => {
            if let Some(m) = &ctx.metrics {
                m.request_queue_depth.add(1);
            }
        }
        Err(SubmitError::Overloaded) => {
            if let Some(m) = &ctx.metrics {
                m.requests_rejected.inc();
            }
            return Err(WireError::new(
                ErrorCode::Overloaded,
                "request queue is full; retry later",
            ));
        }
        Err(SubmitError::ShuttingDown) => {
            return Err(WireError::new(ErrorCode::ShuttingDown, "server is shutting down"));
        }
    }
    match rx.recv() {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(e)) => Err(WireError::from_serve(&e)),
        // The batcher never drops an admitted job's sender while alive;
        // this arm only fires if its thread died.
        Err(_) => Err(WireError::new(ErrorCode::Internal, "batcher dropped the reply")),
    }
}

fn to_wire_answer(result: &QueryResult) -> TopKAnswer {
    TopKAnswer {
        version: result.version,
        indexed: matches!(result.path, dpar2_serve::AnswerPath::Indexed),
        cache_hit: result.cache_hit,
        neighbors: result
            .neighbors
            .iter()
            .map(|&(entity, sim)| (u32::try_from(entity).unwrap_or(u32::MAX), sim))
            .collect(),
    }
}

/// Serves exactly one HTTP request on a sniffed connection, then closes.
fn serve_http(stream: &mut TcpStream, already_read: &[u8], ctx: &Ctx) {
    let head = match http::read_head(stream, already_read) {
        Ok(Some(head)) => head,
        Ok(None) | Err(_) => return,
    };
    let bytes = match http::parse_route(&head) {
        Route::Health => http::render_response(200, "text/plain", "ok\n"),
        Route::Metrics => match &ctx.obs {
            Some(reg) => {
                http::render_response(200, "text/plain", &export::to_text(&reg.snapshot()))
            }
            None => http::render_response(404, "text/plain", "no metrics registry attached\n"),
        },
        Route::TopK { model, target, k, mode } => {
            if let Some(m) = &ctx.metrics {
                m.requests_total.inc();
            }
            let started = Instant::now();
            let resp = match submit_topk(ctx, model, target, k, mode) {
                Ok(result) => {
                    http::render_response(200, "application/json", &http::render_topk_json(&result))
                }
                Err(e) => {
                    let status = match e.code {
                        ErrorCode::Overloaded | ErrorCode::ShuttingDown => 503,
                        ErrorCode::ModelNotFound => 404,
                        ErrorCode::EntityOutOfRange => 400,
                        _ => 500,
                    };
                    http::render_response(status, "text/plain", &format!("{e}\n"))
                }
            };
            if let Some(m) = &ctx.metrics {
                m.latency_topk_ns.record(elapsed_ns(started));
            }
            resp
        }
        Route::NotFound => http::render_response(404, "text/plain", "not found\n"),
        Route::BadRequest(why) => http::render_response(400, "text/plain", &format!("{why}\n")),
        Route::MethodNotAllowed => {
            http::render_response(405, "text/plain", "only GET is supported\n")
        }
    };
    let _ = stream.write_all(&bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::NetClient;
    use crate::testutil::engine;
    use std::time::Duration;

    fn small_config() -> ServerConfig {
        ServerConfig { poll_interval: Duration::from_millis(5), ..ServerConfig::default() }
    }

    #[test]
    fn ping_topk_and_typed_query_errors_over_the_wire() {
        let engine = engine(10);
        let server = NetServer::start(Arc::clone(&engine), "127.0.0.1:0", small_config()).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        assert!(client.ping().unwrap());

        let answer = client.top_k_with_mode("m", 3, 4, WireMode::Exact).unwrap().unwrap();
        let direct = engine.top_k_with_mode("m", 3, 4, QueryMode::Exact).unwrap();
        assert_eq!(answer.version, direct.version);
        let direct_wire: Vec<(u32, u64)> =
            direct.neighbors.iter().map(|&(e, s)| (e as u32, s.to_bits())).collect();
        let got_wire: Vec<(u32, u64)> =
            answer.neighbors.iter().map(|&(e, s)| (e, s.to_bits())).collect();
        assert_eq!(got_wire, direct_wire, "wire answer must be bit-identical");

        let err = client.top_k_with_mode("ghost", 0, 2, WireMode::Default).unwrap().unwrap_err();
        assert_eq!(err.code, ErrorCode::ModelNotFound);
        let err = client.top_k_with_mode("m", 999, 2, WireMode::Default).unwrap().unwrap_err();
        assert_eq!(err.code, ErrorCode::EntityOutOfRange);
        // The connection survived both errors.
        assert!(client.ping().unwrap());
        server.shutdown();
    }

    #[test]
    fn full_connection_queue_rejects_with_typed_overload() {
        let engine = engine(6);
        let config = ServerConfig { workers: 1, pending_connections: 1, ..small_config() };
        let server = NetServer::start(Arc::clone(&engine), "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();

        // c1 occupies the single worker; c2 fills the single queue slot.
        let mut c1 = NetClient::connect(addr).unwrap();
        assert!(c1.ping().unwrap());
        let _c2 = NetClient::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));

        // c3 must be shed with a typed Overloaded within bounded time.
        let mut c3 = NetClient::connect(addr).unwrap();
        c3.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let resp = c3.read_response().unwrap();
        let Response::Error(e) = resp else { panic!("expected rejection, got {resp:?}") };
        assert_eq!(e.code, ErrorCode::Overloaded);

        // The connection pinned on the worker still answers, bit-identical.
        let answer = c1.top_k_with_mode("m", 1, 3, WireMode::Exact).unwrap().unwrap();
        let direct = engine.top_k_with_mode("m", 1, 3, QueryMode::Exact).unwrap();
        for (&(ge, gs), &(de, ds)) in answer.neighbors.iter().zip(direct.neighbors.iter()) {
            assert_eq!((ge as usize, gs.to_bits()), (de, ds.to_bits()));
        }
        server.shutdown();
    }

    #[test]
    fn full_request_queue_rejects_topk_but_keeps_pings_working() {
        let engine = engine(6);
        let config = ServerConfig { pending_requests: 0, ..small_config() };
        let server = NetServer::start(engine, "127.0.0.1:0", config).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let err = client.top_k("m", 0, 3).unwrap().unwrap_err();
        assert_eq!(err.code, ErrorCode::Overloaded);
        assert!(client.ping().unwrap(), "pings bypass the request queue");
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_answers_idle_connections_with_typed_error() {
        let engine = engine(6);
        let server = NetServer::start(engine, "127.0.0.1:0", small_config()).unwrap();
        let mut idle = NetClient::connect(server.local_addr()).unwrap();
        assert!(idle.ping().unwrap());
        let handle = std::thread::spawn(move || {
            idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            idle.read_response()
        });
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
        let resp = handle.join().unwrap().unwrap();
        let Response::Error(e) = resp else { panic!("expected shutdown notice, got {resp:?}") };
        assert_eq!(e.code, ErrorCode::ShuttingDown);
    }

    #[test]
    fn oversized_frame_is_rejected_and_connection_stays_usable() {
        let engine = engine(6);
        let config = ServerConfig { max_frame_bytes: 64, ..small_config() };
        let server = NetServer::start(engine, "127.0.0.1:0", config).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let mut frame = (1000u32).to_le_bytes().to_vec();
        frame.extend(std::iter::repeat_n(0xAB, 1000));
        client.send_raw(&frame).unwrap();
        let Response::Error(e) = client.read_response().unwrap() else { panic!("expected error") };
        assert_eq!(e.code, ErrorCode::Oversized);
        assert!(client.ping().unwrap(), "connection must survive a drained oversize");
        server.shutdown();
    }

    #[test]
    fn http_routes_answer_over_the_same_listener() {
        let obs = Arc::new(MetricsRegistry::new());
        let engine = engine(8);
        let server =
            NetServer::start_observed(Arc::clone(&engine), "127.0.0.1:0", small_config(), obs)
                .unwrap();
        let addr = server.local_addr();

        let health = http_get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let metrics = http_get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(metrics.contains("net_connections_accepted_total"), "{metrics}");

        let topk = http_get(addr, "/topk/m/2?k=3&mode=exact");
        assert!(topk.starts_with("HTTP/1.1 200"), "{topk}");
        let direct = engine.top_k_with_mode("m", 2, 3, QueryMode::Exact).unwrap();
        for &(_, sim) in direct.neighbors.iter() {
            let bits = format!("0x{:016X}", sim.to_bits());
            assert!(topk.contains(&bits), "missing {bits} in {topk}");
        }

        let missing = http_get(addr, "/topk/ghost/0");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let bad = http_get(addr, "/topk/m/not-a-number");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        server.shutdown();
    }

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }
}
