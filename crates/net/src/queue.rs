//! A small bounded MPMC queue — the admission-control primitive behind
//! both the pending-connection queue and the pending-request queue.
//!
//! The vendored crossbeam subset only ships an *unbounded* channel, which
//! is exactly what an admission queue must not be: under overload an
//! unbounded queue converts rejections into silent, ever-growing latency.
//! `Bounded` is a `Mutex<VecDeque>` + `Condvar` with a hard capacity —
//! [`Bounded::push`] never blocks (full means a typed rejection *now*),
//! [`Bounded::pop`] blocks until an item or close, and
//! [`Bounded::close`] wakes every blocked consumer so shutdown never
//! hangs. Consumers drain items that were admitted before the close.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`Bounded::push`] was refused; the item comes back to the caller
/// so it can be rejected with a typed response instead of dropped.
#[derive(Debug)]
pub(crate) enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue was closed (server shutting down).
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC queue; see the module docs.
#[derive(Debug)]
pub(crate) struct Bounded<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (`0` refuses everything —
    /// the degenerate config that turns every push into a typed overload).
    pub(crate) fn new(capacity: usize) -> Self {
        Bounded {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Non-blocking admit: `Err(Full)` at capacity, `Err(Closed)` after
    /// [`close`](Bounded::close) — the caller gets the item back either way.
    pub(crate) fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means no more items will ever arrive.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking pop.
    pub(crate) fn try_pop(&self) -> Option<T> {
        self.lock().items.pop_front()
    }

    /// Refuses all future pushes and wakes every blocked consumer.
    /// Already-admitted items stay poppable (the drain half of graceful
    /// shutdown).
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn push_pop_fifo_and_full() {
        let q = Bounded::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let Err(PushError::Full(3)) = q.push(3) else { panic!("expected Full") };
        assert_eq!(q.try_pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn zero_capacity_refuses_everything() {
        let q = Bounded::new(0);
        assert!(matches!(q.push(7), Err(PushError::Full(7))));
    }

    #[test]
    fn close_wakes_blocked_consumers_and_drains() {
        let q = Arc::new(Bounded::new(4));
        q.push("queued").unwrap();
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || (q.pop(), q.pop()))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let (first, second) = waiter.join().unwrap();
        assert_eq!(first, Some("queued"), "admitted items drain after close");
        assert_eq!(second, None, "closed and drained queue ends the consumer");
        assert!(matches!(q.push("late"), Err(PushError::Closed("late"))));
    }

    #[test]
    fn concurrent_producers_never_exceed_capacity() {
        let q = Arc::new(Bounded::new(8));
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut admitted = 0;
                    for i in 0..100 {
                        if q.push(t * 1000 + i).is_ok() {
                            admitted += 1;
                        }
                    }
                    admitted
                })
            })
            .collect();
        let admitted: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
        let mut drained = 0;
        while q.try_pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained, admitted);
        assert!(drained <= 8, "at most capacity items can be pending at the end");
    }
}
