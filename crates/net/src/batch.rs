//! Request batching: concurrent in-flight queries from many connections
//! coalesce into single [`QueryEngine::top_k_batch_with_mode`] fan-outs.
//!
//! Connection workers never touch the engine directly. Each top-k request
//! becomes a [`Job`] pushed into a bounded queue ([`BatchQueue`]); one
//! drain thread pops whatever is pending (up to `batch_max`), groups it by
//! `(model, mode)` — a batch call answers one model under one mode against
//! one registry snapshot — and fans each group out over the engine's
//! thread pool. The submitting worker blocks on its private reply channel,
//! so per-connection request/response ordering is preserved while the
//! engine sees wide batches.
//!
//! Admission control lives at the queue boundary: a full queue is a typed
//! [`SubmitError::Overloaded`] *now*, never unbounded queueing.

use crate::metrics::NetMetrics;
use crate::queue::{Bounded, PushError};
use dpar2_serve::{QueryEngine, QueryMode, QueryResult, ServeError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// One pending top-k query plus the channel its answer goes back on.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) model: String,
    pub(crate) target: usize,
    pub(crate) k: usize,
    pub(crate) mode: QueryMode,
    pub(crate) reply: mpsc::Sender<Result<QueryResult, ServeError>>,
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubmitError {
    /// The pending-request queue is at capacity.
    Overloaded,
    /// The server is draining for shutdown.
    ShuttingDown,
}

/// The shared submit side of the batcher (workers hold an `Arc` of this).
#[derive(Debug)]
pub(crate) struct BatchQueue {
    jobs: Bounded<Job>,
}

impl BatchQueue {
    /// Admits a job or refuses with a typed error (the job, and with it the
    /// reply sender, is dropped on refusal — the caller answers the client
    /// directly).
    pub(crate) fn submit(&self, job: Job) -> Result<(), SubmitError> {
        match self.jobs.push(job) {
            Ok(()) => Ok(()),
            Err(PushError::Full(_)) => Err(SubmitError::Overloaded),
            Err(PushError::Closed(_)) => Err(SubmitError::ShuttingDown),
        }
    }
}

/// Owns the drain thread; dropping (or [`Batcher::shutdown`]) closes the
/// queue, drains every admitted job, and joins.
#[derive(Debug)]
pub(crate) struct Batcher {
    queue: Arc<BatchQueue>,
    handle: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Spawns the drain thread over `engine`.
    pub(crate) fn spawn(
        engine: Arc<QueryEngine>,
        capacity: usize,
        batch_max: usize,
        metrics: Option<NetMetrics>,
    ) -> Batcher {
        let queue = Arc::new(BatchQueue { jobs: Bounded::new(capacity) });
        let queue_in = Arc::clone(&queue);
        let batch_max = batch_max.max(1);
        let handle = std::thread::spawn(move || {
            while let Some(first) = queue_in.jobs.pop() {
                let mut batch = vec![first];
                while batch.len() < batch_max {
                    match queue_in.jobs.try_pop() {
                        Some(job) => batch.push(job),
                        None => break,
                    }
                }
                if let Some(m) = &metrics {
                    m.request_queue_depth.sub(batch.len() as i64);
                    m.batch_size.record(batch.len() as u64);
                }
                // Group by (model, mode), preserving arrival order within
                // each group; linear scan — batch_max is small.
                let mut groups: Vec<(QueryMode, Vec<Job>)> = Vec::new();
                for job in batch {
                    match groups
                        .iter_mut()
                        .find(|(mode, jobs)| *mode == job.mode && jobs[0].model == job.model)
                    {
                        Some((_, jobs)) => jobs.push(job),
                        None => groups.push((job.mode, vec![job])),
                    }
                }
                for (mode, jobs) in groups {
                    let queries: Vec<(usize, usize)> =
                        jobs.iter().map(|j| (j.target, j.k)).collect();
                    let answers = engine.top_k_batch_with_mode(&jobs[0].model, &queries, mode);
                    for (job, answer) in jobs.into_iter().zip(answers) {
                        // A receiver gone mid-flight (client hung up) is fine.
                        let _ = job.reply.send(answer);
                    }
                }
            }
        });
        Batcher { queue, handle: Some(handle) }
    }

    /// The submit handle connection workers share.
    pub(crate) fn queue(&self) -> Arc<BatchQueue> {
        Arc::clone(&self.queue)
    }

    /// Closes the queue (future submits get [`SubmitError::ShuttingDown`]),
    /// drains every admitted job, and joins the drain thread.
    pub(crate) fn shutdown(&mut self) {
        self.queue.jobs.close();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::engine;

    #[test]
    fn batched_answers_match_direct_engine_calls() {
        let engine = engine(12);
        let mut batcher = Batcher::spawn(Arc::clone(&engine), 64, 8, None);
        let queue = batcher.queue();
        let mut receivers = Vec::new();
        for target in 0..12usize {
            let (tx, rx) = mpsc::channel();
            queue
                .submit(Job { model: "m".into(), target, k: 4, mode: QueryMode::Exact, reply: tx })
                .unwrap();
            receivers.push((target, rx));
        }
        for (target, rx) in receivers {
            let got = rx.recv().unwrap().unwrap();
            let want = engine.top_k_with_mode("m", target, 4, QueryMode::Exact).unwrap();
            assert_eq!(got.neighbors, want.neighbors, "target {target}");
        }
        batcher.shutdown();
    }

    #[test]
    fn full_queue_is_typed_overload_and_close_is_shutdown() {
        let engine = engine(4);
        let mut batcher = Batcher::spawn(engine, 0, 8, None);
        let queue = batcher.queue();
        let (tx, _rx) = mpsc::channel();
        let job = |tx: &mpsc::Sender<_>| Job {
            model: "m".into(),
            target: 0,
            k: 1,
            mode: QueryMode::Exact,
            reply: tx.clone(),
        };
        assert_eq!(queue.submit(job(&tx)), Err(SubmitError::Overloaded));
        batcher.shutdown();
        assert_eq!(queue.submit(job(&tx)), Err(SubmitError::ShuttingDown));
    }

    #[test]
    fn per_query_errors_flow_back() {
        let engine = engine(4);
        let batcher = Batcher::spawn(engine, 16, 8, None);
        let queue = batcher.queue();
        let (tx, rx) = mpsc::channel();
        queue
            .submit(Job { model: "m".into(), target: 99, k: 2, mode: QueryMode::Exact, reply: tx })
            .unwrap();
        assert!(matches!(rx.recv().unwrap(), Err(ServeError::EntityOutOfRange { entity: 99, .. })));
        let (tx, rx) = mpsc::channel();
        queue
            .submit(Job {
                model: "ghost".into(),
                target: 0,
                k: 2,
                mode: QueryMode::Exact,
                reply: tx,
            })
            .unwrap();
        assert!(matches!(rx.recv().unwrap(), Err(ServeError::ModelNotFound(_))));
    }
}
