//! Minimal HTTP/1.1 text mode: enough of the protocol that `curl` works.
//!
//! The binary listener doubles as a plain-text endpoint — a first frame
//! whose 4 length bytes are all printable ASCII cannot be a sane binary
//! header (it would decode to a ≥ 0.5 GiB frame), so the server reroutes
//! such connections here. One request per connection, `Connection: close`;
//! this is a debugging/scraping convenience, not a general HTTP server.
//!
//! Routes:
//!
//! | route | response |
//! |---|---|
//! | `GET /healthz` | `200 text/plain` — `ok` |
//! | `GET /metrics` | `200 text/plain` — obs registry in Prometheus text format |
//! | `GET /topk/<model>/<target>?k=10&mode=exact\|indexed\|default&nprobe=4` | `200 application/json` |
//!
//! Top-k responses carry each similarity twice: as a decimal (`sim`, via
//! `{:?}`, which round-trips `f64`) and as raw IEEE-754 bits
//! (`sim_bits`), so text-mode consumers can still verify bit-identity
//! with the binary protocol.

use crate::protocol::WireMode;
use dpar2_serve::{AnswerPath, QueryResult};
use std::fmt::Write as _;
use std::io::{self, Read};
use std::net::TcpStream;

/// Hard cap on request-head bytes; anything longer is a 400.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Parsed request target.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Route {
    Health,
    Metrics,
    TopK { model: String, target: usize, k: usize, mode: WireMode },
    NotFound,
    BadRequest(&'static str),
    MethodNotAllowed,
}

/// Reads the rest of the request head (`prefix` holds bytes already
/// consumed by binary-header sniffing) up to the blank line. `None` means
/// the head never terminated within [`MAX_HEAD_BYTES`] or the peer hung up.
pub(crate) fn read_head(stream: &mut TcpStream, prefix: &[u8]) -> io::Result<Option<Vec<u8>>> {
    let mut head = prefix.to_vec();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Ok(None);
        }
        match stream.read(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(head))
}

/// Parses the request line of `head` into a [`Route`].
pub(crate) fn parse_route(head: &[u8]) -> Route {
    let Ok(text) = std::str::from_utf8(head) else {
        return Route::BadRequest("request head is not UTF-8");
    };
    let Some(line) = text.lines().next() else {
        return Route::BadRequest("empty request");
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(_version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Route::BadRequest("malformed request line");
    };
    if method != "GET" {
        return Route::MethodNotAllowed;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => Route::Health,
        "/metrics" => Route::Metrics,
        _ => parse_topk(path, query),
    }
}

fn parse_topk(path: &str, query: &str) -> Route {
    let Some(rest) = path.strip_prefix("/topk/") else {
        return Route::NotFound;
    };
    let Some((model, target)) = rest.split_once('/') else {
        return Route::BadRequest("expected /topk/<model>/<target>");
    };
    if model.is_empty() {
        return Route::BadRequest("empty model name");
    }
    let Ok(target) = target.parse::<usize>() else {
        return Route::BadRequest("target must be a non-negative integer");
    };
    let mut k = 10usize;
    let mut mode = WireMode::Default;
    let mut nprobe: Option<u32> = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "k" => match value.parse::<usize>() {
                Ok(v) => k = v,
                Err(_) => return Route::BadRequest("k must be a non-negative integer"),
            },
            "mode" => match value {
                "exact" => mode = WireMode::Exact,
                "indexed" => mode = WireMode::Indexed,
                "default" => mode = WireMode::Default,
                _ => return Route::BadRequest("mode must be exact, indexed, or default"),
            },
            "nprobe" => match value.parse::<u32>() {
                Ok(v) => nprobe = Some(v),
                Err(_) => return Route::BadRequest("nprobe must be a non-negative integer"),
            },
            _ => return Route::BadRequest("unknown query parameter"),
        }
    }
    if let Some(p) = nprobe {
        if matches!(mode, WireMode::Exact) {
            return Route::BadRequest("nprobe only applies to indexed mode");
        }
        mode = WireMode::IndexedProbe(p);
    }
    Route::TopK { model: model.to_string(), target, k, mode }
}

/// Renders one complete HTTP/1.1 response (the connection closes after).
pub(crate) fn render_response(status: u16, content_type: &str, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Renders a top-k answer as JSON; similarities appear both as decimals
/// (`{:?}` round-trips `f64`) and as raw bits for exact comparison.
pub(crate) fn render_topk_json(result: &QueryResult) -> String {
    let mut out = String::with_capacity(64 + result.neighbors.len() * 64);
    let path = match result.path {
        AnswerPath::Indexed => "indexed",
        AnswerPath::Exact => "exact",
    };
    let _ = write!(
        out,
        "{{\"version\":{},\"path\":\"{path}\",\"cache_hit\":{},\"neighbors\":[",
        result.version, result.cache_hit
    );
    for (i, &(entity, sim)) in result.neighbors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"entity\":{entity},\"sim\":{sim:?},\"sim_bits\":\"0x{:016X}\"}}",
            sim.to_bits()
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_parse() {
        assert_eq!(parse_route(b"GET /healthz HTTP/1.1\r\n\r\n"), Route::Health);
        assert_eq!(parse_route(b"GET /metrics HTTP/1.1\r\n\r\n"), Route::Metrics);
        assert_eq!(
            parse_route(b"GET /topk/demo/7?k=3&mode=exact HTTP/1.1\r\n\r\n"),
            Route::TopK { model: "demo".into(), target: 7, k: 3, mode: WireMode::Exact }
        );
        assert_eq!(
            parse_route(b"GET /topk/m/0?mode=indexed&nprobe=4 HTTP/1.1\r\n\r\n"),
            Route::TopK { model: "m".into(), target: 0, k: 10, mode: WireMode::IndexedProbe(4) }
        );
        assert_eq!(parse_route(b"GET /nope HTTP/1.1\r\n\r\n"), Route::NotFound);
        assert_eq!(parse_route(b"POST /healthz HTTP/1.1\r\n\r\n"), Route::MethodNotAllowed);
        assert!(matches!(parse_route(b"GET /topk/m/x HTTP/1.1\r\n\r\n"), Route::BadRequest(_)));
        assert!(matches!(
            parse_route(b"GET /topk/m/0?mode=exact&nprobe=2 HTTP/1.1\r\n\r\n"),
            Route::BadRequest(_)
        ));
        assert!(matches!(parse_route(b"garbage"), Route::BadRequest(_)));
    }

    #[test]
    fn response_has_content_length_and_close() {
        let bytes = render_response(200, "text/plain", "ok\n");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
