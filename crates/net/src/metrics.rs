//! Pre-registered `dpar2-obs` handles for the network front-end.

use dpar2_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// Server telemetry, registered under `{prefix}_…`:
///
/// * `{prefix}_connections_accepted_total` / `…_rejected_total` —
///   admission outcome per accepted socket (rejected = pending-connection
///   queue full, answered with a typed `Overloaded` before closing).
/// * `{prefix}_active_connections` — connections currently being served.
/// * `{prefix}_conn_queue_depth` / `{prefix}_request_queue_depth` —
///   accepted-but-unserved connections, and submitted-but-undrained
///   queries (the two bounded admission queues).
/// * `{prefix}_requests_total` / `…_rejected_total` — decoded requests,
///   and the subset refused with `Overloaded`.
/// * `{prefix}_protocol_errors_total` — frames answered with a typed
///   protocol error (malformed/oversized/truncated/bad opcode).
/// * `{prefix}_latency_topk_ns` / `…_ping_ns` / `…_metrics_ns` —
///   per-endpoint server-side latency from decode to encoded response.
/// * `{prefix}_batch_size` — queries coalesced per engine fan-out.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    /// Connections admitted to the pending queue.
    pub connections_accepted: Counter,
    /// Connections refused with a typed overload response.
    pub connections_rejected: Counter,
    /// Connections currently being served by a worker.
    pub active_connections: Gauge,
    /// Accepted connections not yet picked up by a worker.
    pub conn_queue_depth: Gauge,
    /// Submitted queries not yet drained into an engine batch.
    pub request_queue_depth: Gauge,
    /// Requests decoded and dispatched.
    pub requests_total: Counter,
    /// Requests refused with `Overloaded`.
    pub requests_rejected: Counter,
    /// Frames answered with a typed protocol error.
    pub protocol_errors: Counter,
    /// Server-side top-k latency (ns).
    pub latency_topk_ns: Histogram,
    /// Server-side ping latency (ns).
    pub latency_ping_ns: Histogram,
    /// Server-side metrics-endpoint latency (ns).
    pub latency_metrics_ns: Histogram,
    /// Queries per engine fan-out batch.
    pub batch_size: Histogram,
}

impl NetMetrics {
    /// Registers (or looks up) the bundle in `registry`.
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> NetMetrics {
        NetMetrics {
            connections_accepted: registry.counter(&format!("{prefix}_connections_accepted_total")),
            connections_rejected: registry.counter(&format!("{prefix}_connections_rejected_total")),
            active_connections: registry.gauge(&format!("{prefix}_active_connections")),
            conn_queue_depth: registry.gauge(&format!("{prefix}_conn_queue_depth")),
            request_queue_depth: registry.gauge(&format!("{prefix}_request_queue_depth")),
            requests_total: registry.counter(&format!("{prefix}_requests_total")),
            requests_rejected: registry.counter(&format!("{prefix}_requests_rejected_total")),
            protocol_errors: registry.counter(&format!("{prefix}_protocol_errors_total")),
            latency_topk_ns: registry.histogram(&format!("{prefix}_latency_topk_ns")),
            latency_ping_ns: registry.histogram(&format!("{prefix}_latency_ping_ns")),
            latency_metrics_ns: registry.histogram(&format!("{prefix}_latency_metrics_ns")),
            batch_size: registry.histogram(&format!("{prefix}_batch_size")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_per_registry() {
        let registry = MetricsRegistry::new();
        let a = NetMetrics::register(&registry, "net");
        let b = NetMetrics::register(&registry, "net");
        a.requests_total.inc();
        b.requests_total.inc();
        assert_eq!(a.requests_total.get(), 2, "same name must share one cell");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("net_requests_total"), Some(2));
        assert_eq!(snap.gauge("net_active_connections"), Some(0));
        assert_eq!(snap.histogram("net_latency_topk_ns").unwrap().count, 0);
    }
}
