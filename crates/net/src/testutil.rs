//! Shared fixtures for the in-crate tests: a small random served model
//! and an engine over it, mirroring the serve crate's test setup.

use dpar2_core::{Parafac2Fit, StopReason, TimingBreakdown};
use dpar2_linalg::random::gaussian_mat;
use dpar2_linalg::Mat;
use dpar2_serve::{ModelMeta, ModelRegistry, QueryEngine, ServedModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A served model over `n` random temporal factors of equal shape.
pub(crate) fn random_model(n: usize, seed: u64) -> ServedModel {
    let r = 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let u: Vec<Mat> = (0..n).map(|_| gaussian_mat(8, r, &mut rng)).collect();
    let fit = Parafac2Fit {
        s: vec![vec![1.0; r]; n],
        v: gaussian_mat(4, r, &mut rng),
        h: gaussian_mat(r, r, &mut rng),
        u,
        iterations: 0,
        criterion_trace: vec![],
        stop_reason: StopReason::Converged,
        timing: TimingBreakdown::default(),
    };
    ServedModel::from_parts(ModelMeta::new("m").with_gamma(0.05), fit)
}

/// An engine serving one `n`-entity model named `"m"`.
pub(crate) fn engine(n: usize) -> Arc<QueryEngine> {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("m", random_model(n, 5));
    Arc::new(QueryEngine::new(registry, 2))
}
