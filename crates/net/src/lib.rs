//! Wire-protocol serving front-end for the DPar2 query engine.
//!
//! [`NetServer`] puts a TCP listener in front of a
//! [`QueryEngine`](dpar2_serve::QueryEngine): a blocking acceptor feeds a
//! bounded connection queue, a fixed pool of worker threads speaks the
//! protocol, and concurrent in-flight queries coalesce into
//! `top_k_batch` fan-outs through a bounded request queue. Both queues
//! refuse at capacity with a typed `Overloaded` response — backpressure
//! is explicit and bounded, never an invisible line. Everything is
//! hand-rolled on `std::net`; the crate adds no dependencies beyond the
//! workspace.
//!
//! # Wire format
//!
//! Every frame is a `u32` little-endian payload length followed by that
//! many payload bytes; integers are little-endian throughout and
//! similarities travel as raw `f64::to_bits`, so a wire answer is
//! **bit-identical** to the in-process ranking. See [`protocol`] for the
//! full payload tables. Malformed, truncated, or oversized frames are
//! answered with typed [`protocol::ErrorCode`]s — never a panic, and
//! (except mid-frame EOF) never a dropped connection.
//!
//! The same listener doubles as a minimal HTTP/1.1 text endpoint: a first
//! frame whose length bytes are all printable ASCII is parsed as an HTTP
//! request line instead, so `curl http://host:port/healthz`,
//! `/metrics`, and `/topk/<model>/<target>?k=5` work with no extra port.
//!
//! # Example
//!
//! ```
//! use dpar2_net::{NetClient, NetServer, ServerConfig};
//! use dpar2_serve::{ModelMeta, ModelRegistry, QueryEngine, ServedModel};
//! use std::sync::Arc;
//!
//! // A tiny model straight from the solver.
//! let tensor = dpar2_data::planted_parafac2(&[6, 7, 8, 6, 7, 8], 10, 2, 0.1, 11);
//! let options = dpar2_core::FitOptions::new(2).with_seed(7).with_max_iterations(5);
//! let fit = dpar2_core::Dpar2.fit(&tensor, &options).unwrap();
//!
//! let registry = Arc::new(ModelRegistry::new());
//! registry.publish("demo", ServedModel::from_parts(ModelMeta::new("demo"), fit));
//! let engine = Arc::new(QueryEngine::new(registry, 2));
//!
//! let server = NetServer::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = NetClient::connect(server.local_addr()).unwrap();
//! assert!(client.ping().unwrap());
//! let answer = client.top_k("demo", 0, 3).unwrap().unwrap();
//! assert!(!answer.neighbors.is_empty());
//! server.shutdown();
//! ```

pub mod client;
mod http;
pub mod metrics;
pub mod protocol;
mod queue;
pub mod server;
#[cfg(test)]
mod testutil;

mod batch;

pub use client::NetClient;
pub use metrics::NetMetrics;
pub use protocol::{ErrorCode, Request, Response, TopKAnswer, WireError, WireMode};
pub use server::{NetServer, ServerConfig};
