//! A small blocking client for the binary protocol — used by the tests,
//! the load generator, and the demo example, and convenient for any Rust
//! caller that wants the wire answer without hand-rolling frames.

use crate::protocol::{
    decode_response, encode_request, Request, Response, TopKAnswer, WireError, WireMode,
    DEFAULT_MAX_FRAME_BYTES,
};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected binary-protocol client. One request in flight at a time;
/// responses arrive in request order.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects to a [`NetServer`](crate::NetServer).
    ///
    /// # Errors
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient { stream })
    }

    /// Bounds how long [`read_response`](NetClient::read_response) blocks.
    ///
    /// # Errors
    /// Propagates the socket error.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Writes raw bytes to the server — the protocol-fuzz suite uses this
    /// to send deliberately broken frames.
    ///
    /// # Errors
    /// Propagates the write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Half-closes the connection (no more writes), leaving the read side
    /// open — how the fuzz suite simulates a client dying mid-frame while
    /// still observing the server's typed reaction.
    ///
    /// # Errors
    /// Propagates the socket error.
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Sends `req` and waits for the server's response.
    ///
    /// # Errors
    /// Socket failures, or [`io::ErrorKind::InvalidData`] if the response
    /// frame does not decode.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.stream.write_all(&encode_request(req))?;
        self.read_response()
    }

    /// Reads one response frame (without sending anything first).
    ///
    /// # Errors
    /// Socket failures, [`io::ErrorKind::InvalidData`] for an undecodable
    /// or absurdly long frame, [`io::ErrorKind::UnexpectedEof`] if the
    /// server hung up.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let mut header = [0u8; 4];
        self.stream.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header) as usize;
        // A response never legitimately exceeds the metrics exposition, so
        // anything beyond a generous multiple of the frame cap is a
        // desynchronized stream, not a frame worth allocating for.
        if len > 64 * DEFAULT_MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("implausible response frame length {len}"),
            ));
        }
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Liveness probe; `Ok(true)` on a pong.
    ///
    /// # Errors
    /// As [`request`](NetClient::request).
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(matches!(self.request(&Request::Ping)?, Response::Pong))
    }

    /// Top-k query under the server's default mode. The outer result is
    /// transport failure; the inner one is the server's typed answer.
    ///
    /// # Errors
    /// As [`request`](NetClient::request).
    pub fn top_k(
        &mut self,
        model: &str,
        target: u32,
        k: u32,
    ) -> io::Result<Result<TopKAnswer, WireError>> {
        self.top_k_with_mode(model, target, k, WireMode::Default)
    }

    /// [`top_k`](NetClient::top_k) with an explicit mode.
    ///
    /// # Errors
    /// As [`request`](NetClient::request).
    pub fn top_k_with_mode(
        &mut self,
        model: &str,
        target: u32,
        k: u32,
        mode: WireMode,
    ) -> io::Result<Result<TopKAnswer, WireError>> {
        let req = Request::TopK { model: model.to_string(), target, k, mode };
        match self.request(&req)? {
            Response::TopK(answer) => Ok(Ok(answer)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to TopK: {other:?}"),
            )),
        }
    }

    /// Fetches the server's Prometheus text exposition.
    ///
    /// # Errors
    /// As [`request`](NetClient::request).
    pub fn metrics(&mut self) -> io::Result<Result<String, WireError>> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(text) => Ok(Ok(text)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to Metrics: {other:?}"),
            )),
        }
    }
}
