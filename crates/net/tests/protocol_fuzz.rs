//! Protocol robustness under fire: random garbage, truncated frames, and
//! oversized frames must always come back as *typed* protocol errors —
//! the decoders never panic, the server never silently drops a
//! connection that can still be answered, and a connection that received
//! an error (other than mid-frame truncation) keeps working.

use dpar2_core::{Parafac2Fit, StopReason, TimingBreakdown};
use dpar2_linalg::random::gaussian_mat;
use dpar2_linalg::Mat;
use dpar2_net::protocol::{decode_request, decode_response, encode_frame, encode_request};
use dpar2_net::{ErrorCode, NetClient, NetServer, Request, Response, ServerConfig, WireMode};
use dpar2_serve::{ModelMeta, ModelRegistry, QueryEngine, ServedModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Frame cap the fuzz server runs with — small, so oversize is reachable.
const FUZZ_MAX_FRAME: usize = 512;

/// One shared server for every fuzz case (kept alive for the whole test
/// process; the OS reclaims it at exit).
fn server_addr() -> SocketAddr {
    static SERVER: OnceLock<NetServer> = OnceLock::new();
    SERVER
        .get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(17);
            let r = 2;
            let u: Vec<Mat> = (0..8).map(|_| gaussian_mat(6, r, &mut rng)).collect();
            let fit = Parafac2Fit {
                s: vec![vec![1.0; r]; 8],
                v: gaussian_mat(4, r, &mut rng),
                h: gaussian_mat(r, r, &mut rng),
                u,
                iterations: 0,
                criterion_trace: vec![],
                stop_reason: StopReason::Converged,
                timing: TimingBreakdown::default(),
            };
            let registry = Arc::new(ModelRegistry::new());
            registry.publish("m", ServedModel::from_parts(ModelMeta::new("m"), fit));
            let engine = Arc::new(QueryEngine::new(registry, 2));
            let config = ServerConfig {
                max_frame_bytes: FUZZ_MAX_FRAME,
                poll_interval: Duration::from_millis(5),
                ..ServerConfig::default()
            };
            NetServer::start(engine, "127.0.0.1:0", config).expect("bind fuzz server")
        })
        .local_addr()
}

fn connect() -> NetClient {
    let mut client = NetClient::connect(server_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    client
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pure decoders accept arbitrary bytes without panicking: every
    /// input is either a decoded value or a typed `FrameError`.
    #[test]
    fn decoders_never_panic_on_garbage(payload in prop::collection::vec(0u64..256, 0..128)) {
        let bytes: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Arbitrary well-formed requests survive an encode/decode round trip.
    #[test]
    fn requests_round_trip(
        name in prop::collection::vec(0u64..128, 0..24),
        target in 0u64..u64::from(u32::MAX),
        k in 0u64..u64::from(u32::MAX),
        mode_sel in 0u64..5,
    ) {
        let model: String =
            name.iter().map(|&b| char::from(0x20 + (b as u8 % 0x5F))).collect();
        let mode = match mode_sel {
            0 => WireMode::Default,
            1 => WireMode::Exact,
            2 => WireMode::Indexed,
            _ => WireMode::IndexedProbe(mode_sel as u32),
        };
        let req = Request::TopK {
            model,
            target: target as u32,
            k: k as u32,
            mode,
        };
        let frame = encode_request(&req);
        prop_assert_eq!(decode_request(&frame[4..]).unwrap(), req);
    }

    /// A garbage payload in a well-formed frame gets *some* decodable
    /// response (typed error, or a real answer if the bytes happened to
    /// spell a valid request), and the connection stays usable.
    #[test]
    fn garbage_payloads_get_typed_responses_and_connection_survives(
        payload in prop::collection::vec(0u64..256, 0..64),
    ) {
        let bytes: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
        let mut client = connect();
        client.send_raw(&encode_frame(&bytes)).unwrap();
        let resp = client.read_response().expect("a typed response, not a hangup");
        if let Response::Error(e) = &resp {
            prop_assert!(
                !matches!(e.code, ErrorCode::Truncated | ErrorCode::ShuttingDown),
                "well-formed frame misdiagnosed as {:?}",
                e.code
            );
        }
        prop_assert!(client.ping().unwrap(), "connection must survive garbage payloads");
    }

    /// A frame cut off mid-payload is answered with `Truncated` before the
    /// server closes the connection.
    #[test]
    fn truncated_frames_get_typed_truncation(
        declared in 1u64..256,
        keep_fraction in 0u64..100,
    ) {
        let declared = declared as usize;
        let sent = declared * (keep_fraction as usize) / 100;
        let mut client = connect();
        let mut frame = (declared as u32).to_le_bytes().to_vec();
        frame.extend(std::iter::repeat_n(0x55u8, sent.min(declared.saturating_sub(1))));
        client.send_raw(&frame).unwrap();
        client.shutdown_write().unwrap();
        let resp = client.read_response().expect("typed truncation notice");
        let Response::Error(e) = resp else {
            return Err(format!("expected an error response, got {resp:?}"));
        };
        prop_assert_eq!(e.code, ErrorCode::Truncated);
    }

    /// A frame longer than the server's cap is answered with `Oversized`,
    /// and (for drainable sizes) the connection stays usable.
    #[test]
    fn oversized_frames_get_typed_rejection(extra in 1u64..4096) {
        let len = FUZZ_MAX_FRAME + extra as usize;
        let mut client = connect();
        let mut frame = (len as u32).to_le_bytes().to_vec();
        frame.extend(std::iter::repeat_n(0xAAu8, len));
        client.send_raw(&frame).unwrap();
        let Response::Error(e) = client.read_response().unwrap() else {
            return Err("expected an error response".to_string());
        };
        prop_assert_eq!(e.code, ErrorCode::Oversized);
        prop_assert!(client.ping().unwrap(), "connection must survive a drained oversize");
    }
}
