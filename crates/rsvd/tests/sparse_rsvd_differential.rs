//! Differential suite pinning the sparse randomized-SVD path to the
//! densified one.
//!
//! With a sketch width below the blocked-GEMM tile thresholds (every
//! product in the pipeline has one dimension equal to the sketch), the
//! dense pipeline stays on the naive loops and the sparse kernels'
//! densify-oracle contract makes the whole `rsvd_op` run **bitwise
//! identical** to `rsvd` on `to_dense()` — including the exact-SVD
//! fallback, empty slices, all-zero columns, and duplicate-COO inputs.
//! At the default config (oversample 8) the products may take the blocked
//! path on the dense side, so equivalence is only up to reordering; a
//! loose-envelope test covers that regime.

use dpar2_linalg::{CooBuilder, Mat, SparseSlice};
use dpar2_parallel::ThreadPool;
use dpar2_rsvd::{
    rsvd, rsvd_op, rsvd_op_pooled, svd_truncated_energy_op_pooled, svd_truncated_energy_pooled,
    RsvdConfig, SparseVStack,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sketch-5 configuration (`rank ≤ 3`): below both naive-dispatch tile
/// thresholds, the bit-identity regime.
fn small_sketch(rank: usize) -> RsvdConfig {
    assert!(rank <= 3);
    RsvdConfig { rank, oversample: 2, power_iterations: 1 }
}

/// Random CSR slice with duplicate COO pushes (coalesced by summing),
/// empty rows, and columns beyond `3/4 · cols` left structurally zero.
fn random_sparse(seed: u64, rows: usize, cols: usize, fill: f64) -> SparseSlice {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CooBuilder::new(rows, cols);
    let nnz = ((rows * cols) as f64 * fill) as usize;
    let jmax = (cols * 3 / 4).max(1);
    for _ in 0..nnz {
        let i = (rng.random::<u64>() % rows as u64) as usize;
        let j = (rng.random::<u64>() % jmax as u64) as usize;
        b.push(i, j, rng.random::<f64>() - 0.5);
    }
    // Deliberate duplicates, including a pair coalescing to exactly zero
    // (stored explicitly — `build` keeps explicit zeros).
    b.push(0, 0, 0.25);
    b.push(0, 0, -0.125);
    b.push(rows - 1, 0, 0.5);
    b.push(rows - 1, 0, -0.5);
    b.build()
}

fn assert_factors_bitwise(a: &dpar2_linalg::SvdFactors, b: &dpar2_linalg::SvdFactors, ctx: &str) {
    assert_eq!(a.u, b.u, "{ctx}: U diverged");
    assert_eq!(a.s, b.s, "{ctx}: Σ diverged");
    assert_eq!(a.v, b.v, "{ctx}: V diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole pin: `rsvd_op` on CSR is bit-identical to `rsvd` on
    /// the densified matrix at small sketch widths, across shapes that
    /// exercise the sketched path (`min_dim > 5`) and the exact fallback
    /// (`min_dim ≤ 5`), densities from empty to ~30%.
    #[test]
    fn sparse_rsvd_bitwise_matches_densified(
        seed in 0u64..1000,
        rows in 2usize..40,
        cols in 2usize..24,
        rank in 1usize..4,
        fill_pct in 0usize..30,
    ) {
        let s = random_sparse(seed, rows, cols, fill_pct as f64 / 100.0);
        let d = s.to_dense();
        let cfg = small_sketch(rank);
        let fs = rsvd_op(&s, &cfg, &mut StdRng::seed_from_u64(seed ^ 0xABCD));
        let fd = rsvd(&d, &cfg, &mut StdRng::seed_from_u64(seed ^ 0xABCD));
        prop_assert_eq!(&fs.u, &fd.u, "U diverged");
        prop_assert_eq!(&fs.s, &fd.s, "Σ diverged");
        prop_assert_eq!(&fs.v, &fd.v, "V diverged");
    }

    /// Same pin for the energy-truncation probe over a [`SparseVStack`]
    /// vs the densified stacked matrix (the adaptive-rank path of
    /// `Dpar2::fit_sparse`).
    #[test]
    fn sparse_vstack_energy_probe_bitwise_matches_dense_stack(
        seed in 0u64..500,
        k in 1usize..4,
        cols in 4usize..16,
        rank in 1usize..4,
    ) {
        let slices: Vec<SparseSlice> = (0..k)
            .map(|i| random_sparse(seed.wrapping_add(i as u64), 6 + 5 * i, cols, 0.2))
            .collect();
        let stack = SparseVStack::new(&slices);
        let total_rows: usize = slices.iter().map(SparseSlice::rows).sum();
        let mut dense = Mat::zeros(total_rows, cols);
        let mut off = 0;
        for s in &slices {
            for (i, j, v) in s.iter() {
                dense.set(off + i, j, dense.at(off + i, j) + v);
            }
            off += s.rows();
        }
        let cfg = small_sketch(rank);
        let pool = ThreadPool::new(1);
        let es = svd_truncated_energy_op_pooled(
            &stack, &cfg, 0.9, &mut StdRng::seed_from_u64(seed ^ 0x5ED), &pool,
        );
        let ed = svd_truncated_energy_pooled(
            &dense, &cfg, 0.9, &mut StdRng::seed_from_u64(seed ^ 0x5ED), &pool,
        );
        prop_assert_eq!(es.rank, ed.rank);
        prop_assert_eq!(es.total_energy, ed.total_energy, "exact ‖A‖²_F diverged");
        prop_assert_eq!(es.captured_energy, ed.captured_energy);
        prop_assert_eq!(&es.factors.u, &ed.factors.u);
        prop_assert_eq!(&es.factors.s, &ed.factors.s);
        prop_assert_eq!(&es.factors.v, &ed.factors.v);
    }
}

#[test]
fn pooled_sparse_rsvd_bitwise_matches_serial_for_every_pool_size() {
    // Big enough that both the row-chunked (rows > 64) and the
    // transposed (cols > 64) pooled kernels engage.
    let s = random_sparse(11, 200, 130, 0.04);
    let cfg = small_sketch(3);
    let serial = rsvd_op(&s, &cfg, &mut StdRng::seed_from_u64(42));
    for threads in [2usize, 3, 4, 8] {
        let pool = ThreadPool::new(threads);
        let pooled = rsvd_op_pooled(&s, &cfg, &mut StdRng::seed_from_u64(42), &pool);
        assert_factors_bitwise(&pooled, &serial, &format!("pool size {threads}"));
    }
}

#[test]
fn exact_fallback_is_bitwise_dense_on_tiny_matrices() {
    // min_dim ≤ rank + oversample → the pipeline returns the exact thin
    // SVD; the sparse side densifies, so both run the same code path.
    for (rows, cols) in [(4usize, 30usize), (30, 4), (5, 5), (1, 12)] {
        let s = random_sparse(rows as u64 * 31 + cols as u64, rows, cols, 0.4);
        let cfg = small_sketch(3);
        let fs = rsvd_op(&s, &cfg, &mut StdRng::seed_from_u64(9));
        let fd = rsvd(s.to_dense(), &cfg, &mut StdRng::seed_from_u64(9));
        assert_factors_bitwise(&fs, &fd, &format!("fallback {rows}×{cols}"));
    }
}

#[test]
fn empty_and_all_zero_slices_match_densified() {
    let cfg = small_sketch(2);
    // Structurally empty slice (zero nnz).
    let empty = SparseSlice::empty(20, 12);
    let fs = rsvd_op(&empty, &cfg, &mut StdRng::seed_from_u64(3));
    let fd = rsvd(empty.to_dense(), &cfg, &mut StdRng::seed_from_u64(3));
    assert_factors_bitwise(&fs, &fd, "structurally empty slice");

    // Explicit zeros only (duplicates coalescing to 0.0, kept stored).
    let mut b = CooBuilder::new(16, 10);
    for i in 0..16 {
        b.push(i, i % 10, 1.0);
        b.push(i, i % 10, -1.0);
    }
    let zeros = b.build();
    assert!(zeros.nnz() > 0, "explicit zeros must stay stored");
    let fs = rsvd_op(&zeros, &cfg, &mut StdRng::seed_from_u64(4));
    let fd = rsvd(zeros.to_dense(), &cfg, &mut StdRng::seed_from_u64(4));
    assert_factors_bitwise(&fs, &fd, "explicit-zero slice");

    // Zero-dimension operands degrade identically.
    let degenerate = SparseSlice::empty(0, 8);
    let f = rsvd_op(&degenerate, &cfg, &mut StdRng::seed_from_u64(5));
    assert_eq!(f.u.shape(), (0, 0));
    assert!(f.s.is_empty());
}

#[test]
fn sparse_vstack_shape_and_nnz_account_for_all_slices() {
    let a = random_sparse(21, 10, 8, 0.2);
    let b = random_sparse(22, 14, 8, 0.1);
    let stack = SparseVStack::new([&a, &b]);
    assert_eq!(stack.nnz(), a.nnz() + b.nnz());
    let f = rsvd_op(&stack, &small_sketch(2), &mut StdRng::seed_from_u64(6));
    assert_eq!(f.u.rows(), 24);
    assert_eq!(f.v.rows(), 8);
}

#[test]
fn default_config_sparse_rsvd_reconstructs_within_envelope() {
    // Default oversample (8) pushes the dense side onto the blocked GEMM
    // path, so bit-identity no longer holds — but the subspaces do: pin a
    // loose reconstruction envelope on a low-rank sparse matrix.
    let mut rng = StdRng::seed_from_u64(77);
    let u = dpar2_linalg::gaussian_mat(60, 2, &mut rng);
    let v = dpar2_linalg::gaussian_mat(40, 2, &mut rng);
    let mut b = CooBuilder::new(60, 40);
    // Rank-2 signal sampled on a sparse mask.
    for i in 0..60 {
        for _ in 0..6 {
            let j = (rng.random::<u64>() % 40) as usize;
            let x: f64 = (0..2).map(|r| u.at(i, r) * v.at(j, r)).sum();
            b.push(i, j, x);
        }
    }
    let s = b.build();
    let cfg = RsvdConfig::new(8);
    let f = rsvd_op(&s, &cfg, &mut StdRng::seed_from_u64(78));
    let dense = s.to_dense();
    let approx = f.u.matmul(Mat::diag(&f.s)).unwrap().matmul_nt(&f.v).unwrap();
    let rel = (&dense - &approx).fro_norm() / dense.fro_norm();
    // The sampled mask typically has rank well above 8; require the
    // leading subspace to capture most of the energy, not exactness.
    assert!(rel < 0.6, "default-config sparse rsvd rel err {rel}");

    // And the sparse run still matches its own densified run up to a
    // small ulp envelope (same arithmetic, different summation order).
    let fd = rsvd(&dense, &cfg, &mut StdRng::seed_from_u64(78));
    for (a, b) in f.s.iter().zip(&fd.s) {
        assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "σ drifted: {a} vs {b}");
    }
}
