//! The [`ProductOp`] operator abstraction the randomized SVD pipeline is
//! generic over.
//!
//! Every pass the rSVD makes over `A` is one of four primitives: the
//! sketch `A·Ω`, the power-iteration passes `Aᵀ·Q` / `A·Q_z`, the
//! projection `Qᵀ·A`, plus `‖A‖²_F` for energy truncation and an exact
//! thin-SVD escape hatch for matrices too small to sketch. Abstracting
//! those five behind a trait lets the same pipeline run on a dense
//! [`MatRef`] (the pooled blocked-GEMM path, exactly the pre-trait code)
//! and on a CSR [`SparseSlice`] (the `spmm` kernel family, O(nnz·s) per
//! pass) — which is what makes DPar2's whole compression stage O(nnz) on
//! sparse inputs.
//!
//! Both implementations keep the workspace-wide determinism guarantees:
//! results are bit-identical for every pool size, and the sparse
//! implementation inherits the densify-oracle contract of
//! [`dpar2_linalg::sparse`] (each kernel accumulates in the dense naive
//! loop order with structural zeros skipped), so a sparse rSVD agrees
//! *bitwise* with the densified run whenever every product stays on the
//! dense naive dispatch path (sketch width below the blocked-GEMM tile
//! thresholds).

use dpar2_linalg::sparse::{
    spmm_pooled_into, spmm_t_pooled_into, spmm_tn_pooled_into, SparseSlice,
};
use dpar2_linalg::{svd_thin, Mat, MatRef, SvdFactors};
use dpar2_parallel::ThreadPool;

/// A matrix seen only through the products the randomized SVD needs.
///
/// Implementations must be deterministic and bit-identical across pool
/// sizes (both provided ones are). All `*_into` methods resize their
/// output buffer, so callers can reuse buffers across calls of different
/// shapes.
pub trait ProductOp {
    /// Logical `(rows, cols)` of `A`.
    fn shape(&self) -> (usize, usize);

    /// `C = A·B`.
    fn mm_into(&self, b: &Mat, c: &mut Mat, pool: &ThreadPool);

    /// `C = Aᵀ·B`.
    fn mm_t_into(&self, b: &Mat, c: &mut Mat, pool: &ThreadPool);

    /// `C = Qᵀ·A` — the projection step `B = Qᵀ A`.
    fn proj_into(&self, q: &Mat, c: &mut Mat, pool: &ThreadPool);

    /// Squared Frobenius norm `‖A‖²_F`, for energy-truncation accounting.
    fn fro_norm_sq(&self) -> f64;

    /// Exact thin SVD — the fallback when the sketch would span the whole
    /// space (`rank + oversample ≥ min(I, J)`), where sketching buys
    /// nothing. Sparse implementations may densify here: the fallback only
    /// triggers for matrices with a tiny short dimension.
    fn svd_exact(&self) -> SvdFactors;
}

/// Dense operator: delegates to the pooled GEMM family — the exact call
/// sequence the pre-abstraction `rsvd_pooled` made, so the dense pipeline
/// is bit-for-bit the historical one.
impl ProductOp for MatRef<'_> {
    fn shape(&self) -> (usize, usize) {
        MatRef::shape(*self)
    }

    fn mm_into(&self, b: &Mat, c: &mut Mat, pool: &ThreadPool) {
        self.matmul_pooled_into(b, c, pool);
    }

    fn mm_t_into(&self, b: &Mat, c: &mut Mat, pool: &ThreadPool) {
        self.matmul_tn_pooled_into(b, c, pool);
    }

    fn proj_into(&self, q: &Mat, c: &mut Mat, pool: &ThreadPool) {
        q.matmul_tn_pooled_into(*self, c, pool);
    }

    fn fro_norm_sq(&self) -> f64 {
        MatRef::fro_norm_sq(*self)
    }

    fn svd_exact(&self) -> SvdFactors {
        svd_thin(*self)
    }
}

/// Sparse CSR operator: every pass touches nonzeros only, so a full rSVD
/// costs O(nnz·(r+s)) per pass over `A` instead of O(I·J·(r+s)).
impl ProductOp for SparseSlice {
    fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    fn mm_into(&self, b: &Mat, c: &mut Mat, pool: &ThreadPool) {
        spmm_pooled_into(self, b, c, pool);
    }

    fn mm_t_into(&self, b: &Mat, c: &mut Mat, pool: &ThreadPool) {
        spmm_t_pooled_into(self, b, c, pool);
    }

    fn proj_into(&self, q: &Mat, c: &mut Mat, pool: &ThreadPool) {
        spmm_tn_pooled_into(q, self, c, pool);
    }

    fn fro_norm_sq(&self) -> f64 {
        SparseSlice::fro_norm_sq(self)
    }

    fn svd_exact(&self) -> SvdFactors {
        // Only reached when min(I, J) ≤ rank + oversample — the densified
        // matrix is tiny and the exact path is bitwise the dense one.
        svd_thin(self.to_dense())
    }
}

/// Vertical concatenation `[X_1; X_2; …; X_K]` of CSR slices sharing a
/// column dimension, seen as one `(Σ_k I_k) × J` operator — the sparse
/// counterpart of probing `IrregularTensor::stacked()` for adaptive-rank
/// energy truncation, without materializing the stack.
#[derive(Debug, Clone)]
pub struct SparseVStack<'a> {
    slices: Vec<&'a SparseSlice>,
    rows: usize,
    cols: usize,
}

impl<'a> SparseVStack<'a> {
    /// Builds the stacked operator.
    ///
    /// # Panics
    /// Panics if `slices` is empty or column counts differ.
    pub fn new(slices: impl IntoIterator<Item = &'a SparseSlice>) -> Self {
        let slices: Vec<&SparseSlice> = slices.into_iter().collect();
        assert!(!slices.is_empty(), "SparseVStack: need at least one slice");
        let cols = slices[0].cols();
        let mut rows = 0;
        for (k, s) in slices.iter().enumerate() {
            assert_eq!(
                s.cols(),
                cols,
                "SparseVStack: slice {k} has {} columns, expected {cols}",
                s.cols()
            );
            rows += s.rows();
        }
        SparseVStack { slices, rows, cols }
    }

    /// Total stored nonzeros across the stack.
    pub fn nnz(&self) -> usize {
        self.slices.iter().map(|s| s.nnz()).sum()
    }
}

impl ProductOp for SparseVStack<'_> {
    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    // The loops below replicate the per-slice kernels of
    // `dpar2_linalg::sparse` with a running row offset, preserving the
    // stacked dense naive accumulation order (slices ascending, rows
    // ascending within each, nonzeros ascending within each row).

    fn mm_into(&self, b: &Mat, c: &mut Mat, pool: &ThreadPool) {
        let _ = pool; // row blocks are slice-grained; the probe is one-shot
        let n = b.cols();
        assert_eq!(b.rows(), self.cols, "SparseVStack mm: inner dimension mismatch");
        c.resize_zeroed(self.rows, n);
        let mut off = 0;
        for s in &self.slices {
            for i in 0..s.rows() {
                let (cols, vals) = s.row(i);
                let crow = c.row_mut(off + i);
                for (&j, &v) in cols.iter().zip(vals) {
                    for (cv, &bv) in crow.iter_mut().zip(b.row(j)) {
                        *cv += v * bv;
                    }
                }
            }
            off += s.rows();
        }
    }

    fn mm_t_into(&self, b: &Mat, c: &mut Mat, pool: &ThreadPool) {
        let _ = pool;
        let n = b.cols();
        assert_eq!(b.rows(), self.rows, "SparseVStack mm_t: row dimension mismatch");
        c.resize_zeroed(self.cols, n);
        let mut off = 0;
        for s in &self.slices {
            for i in 0..s.rows() {
                let (cols, vals) = s.row(i);
                let brow = b.row(off + i);
                for (&j, &v) in cols.iter().zip(vals) {
                    let crow = c.row_mut(j);
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += v * bv;
                    }
                }
            }
            off += s.rows();
        }
    }

    fn proj_into(&self, q: &Mat, c: &mut Mat, pool: &ThreadPool) {
        let _ = pool;
        let (qm, qr) = q.shape();
        assert_eq!(qm, self.rows, "SparseVStack proj: Q rows must match stacked rows");
        c.resize_zeroed(qr, self.cols);
        let mut off = 0;
        for s in &self.slices {
            for i in 0..s.rows() {
                let (cols, vals) = s.row(i);
                for (r, &qir) in q.row(off + i).iter().enumerate() {
                    let crow = c.row_mut(r);
                    for (&j, &x) in cols.iter().zip(vals) {
                        crow[j] += qir * x;
                    }
                }
            }
            off += s.rows();
        }
    }

    fn fro_norm_sq(&self) -> f64 {
        // Flat accumulation continuing one accumulator across slices —
        // the stacked dense flat `Σ x²` order with structural zeros
        // skipped (exact identities; squares are never `-0.0`).
        self.slices.iter().fold(0.0, |acc, s| s.values().iter().fold(acc, |a, &v| a + v * v))
    }

    fn svd_exact(&self) -> SvdFactors {
        let mut d = Mat::zeros(self.rows, self.cols);
        let mut off = 0;
        for s in &self.slices {
            for (i, j, v) in s.iter() {
                d.set(off + i, j, v);
            }
            off += s.rows();
        }
        svd_thin(&d)
    }
}
