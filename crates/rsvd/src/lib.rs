//! # dpar2-rsvd
//!
//! Randomized Singular Value Decomposition — Algorithm 1 of the DPar2 paper,
//! following Halko, Martinsson & Tropp, *"Finding Structure with
//! Randomness"*, SIAM Review 2011 (reference 20 of the paper).
//!
//! Given `A ∈ R^{I×J}` and a target rank `R`:
//!
//! 1. draw a Gaussian test matrix `Ω ∈ R^{J×(R+s)}`,
//! 2. form the sketch `Y = (A Aᵀ)^q A Ω`,
//! 3. orthonormalize `Q R ← Y` by QR,
//! 4. project `B = Qᵀ A ∈ R^{(R+s)×J}`,
//! 5. take the truncated exact SVD `Ũ Σ Vᵀ ← B` at rank `R`,
//! 6. return `U = Q Ũ`, `Σ`, `V`.
//!
//! The oversampling parameter `s` and the power-iteration exponent `q` trade
//! accuracy for time; the paper uses the rank of the randomized SVD equal to
//! the PARAFAC2 target rank (§IV-A "we set the rank of randomized SVD to
//! 10"), and our defaults (`s = 8`, `q = 1`) follow standard practice from
//! the Halko et al. recommendations.
//!
//! DPar2 calls this twice: once per slice (`X_k ≈ A_k B_k C_kᵀ`, stage 1)
//! and once on the concatenated `M = ∥_k C_k B_k` (stage 2).
//!
//! The pipeline is generic over a [`ProductOp`] operator (see [`ops`]):
//! dense [`dpar2_linalg::MatRef`] runs the pooled blocked-GEMM path
//! (exactly the historical dense code), while a CSR
//! [`dpar2_linalg::sparse::SparseSlice`] runs the `spmm` kernel family at
//! O(nnz·(r+s)) per pass — the lever that makes DPar2's compression O(nnz)
//! on sparse tensors.

pub mod ops;

pub use ops::{ProductOp, SparseVStack};

use dpar2_linalg::{
    gaussian_mat, qr_into, svd::truncate, svd_thin, AsMatRef, Mat, QrScratch, SvdFactors,
};
use dpar2_parallel::ThreadPool;
use rand::Rng;

/// Configuration for randomized SVD.
#[derive(Debug, Clone, Copy)]
pub struct RsvdConfig {
    /// Target rank `R` of the truncated factorization.
    pub rank: usize,
    /// Oversampling `s`: the sketch uses `R + s` random directions.
    pub oversample: usize,
    /// Power-iteration exponent `q` in `(A Aᵀ)^q A Ω`. Each unit sharpens
    /// the spectral decay of the sketch at the cost of two extra passes
    /// over `A`.
    pub power_iterations: usize,
}

impl RsvdConfig {
    /// Standard configuration used throughout the reproduction:
    /// oversampling 8, one power iteration.
    pub fn new(rank: usize) -> Self {
        RsvdConfig { rank, oversample: 8, power_iterations: 1 }
    }

    /// Configuration without power iterations (fastest, least accurate —
    /// the `q = 0` point of the ablation bench).
    pub fn without_power_iterations(rank: usize) -> Self {
        RsvdConfig { rank, oversample: 8, power_iterations: 0 }
    }
}

/// Randomized truncated SVD `A ≈ U Σ Vᵀ` at `config.rank`.
///
/// Returns factors with `U ∈ R^{I×r}`, `V ∈ R^{J×r}`, `r = min(rank, I, J)`.
/// The sketch width is additionally capped at `min(I, J)` so tiny matrices
/// degrade gracefully to an exact (thin) SVD.
pub fn rsvd(a: impl AsMatRef, config: &RsvdConfig, rng: &mut impl Rng) -> SvdFactors {
    rsvd_pooled(a, config, rng, &ThreadPool::new(1))
}

/// [`rsvd`] with every pass over `A` — the sketch `A·Ω`, the power
/// iterations `Aᵀ·Q` / `A·Qz`, the projection `Qᵀ·A`, and the final lift
/// `Q·Ũ` — running on the pooled GEMM path, which row-partitions each
/// product over `pool`. These chained tall-matrix products dominate the
/// rSVD cost, so this is where DPar2's compression stages spend their
/// threads when slices are too few (or too skewed) to saturate the
/// per-slice fan-out. Results are **bit-identical** for every pool size
/// (the pooled GEMM fixes its reduction order), so `rsvd(a, c, rng)` and
/// `rsvd_pooled(a, c, rng, pool)` agree exactly given equal RNG streams.
pub fn rsvd_pooled(
    a: impl AsMatRef,
    config: &RsvdConfig,
    rng: &mut impl Rng,
    pool: &ThreadPool,
) -> SvdFactors {
    rsvd_op_pooled(&a.as_mat_ref(), config, rng, pool)
}

/// Serial form of [`rsvd_op_pooled`] — [`rsvd`] for any [`ProductOp`]
/// (e.g. a CSR [`dpar2_linalg::sparse::SparseSlice`]).
pub fn rsvd_op(op: &impl ProductOp, config: &RsvdConfig, rng: &mut impl Rng) -> SvdFactors {
    rsvd_op_pooled(op, config, rng, &ThreadPool::new(1))
}

/// Randomized truncated SVD over an abstract [`ProductOp`] — the single
/// pipeline implementation behind both the dense and the sparse entry
/// points. Per pass the cost is one `mm`/`mm_t`/`proj` call on the
/// operator (O(nnz·(r+s)) for CSR) plus small dense QR/SVD work on the
/// sketch.
///
/// All QR factorizations share one [`QrScratch`] and one pair of `Q`/`R`
/// buffers, so the power-iteration re-orthonormalizations stop allocating
/// fresh scratch every pass (repeated compressions — streaming refits —
/// no longer churn the allocator).
pub fn rsvd_op_pooled(
    op: &impl ProductOp,
    config: &RsvdConfig,
    rng: &mut impl Rng,
    pool: &ThreadPool,
) -> SvdFactors {
    let (i, j) = op.shape();
    let min_dim = i.min(j);
    if min_dim == 0 {
        return SvdFactors { u: Mat::zeros(i, 0), s: vec![], v: Mat::zeros(j, 0) };
    }
    let rank = config.rank.min(min_dim);
    let sketch = (config.rank + config.oversample).min(min_dim);
    if sketch >= min_dim {
        // The sketch would span the whole space — the exact thin SVD is
        // both cheaper and more accurate here.
        return truncate(&op.svd_exact(), rank);
    }

    // 1. Gaussian test matrix Ω ∈ R^{J×sketch}.
    let omega = gaussian_mat(j, sketch, rng);
    // 2. Y = (A Aᵀ)^q A Ω, re-orthonormalized between powers for stability.
    let mut y = Mat::zeros(0, 0);
    op.mm_into(&omega, &mut y, pool);
    let mut ws = QrScratch::default();
    let mut q = Mat::zeros(0, 0);
    let mut r = Mat::zeros(0, 0);
    let mut z = Mat::zeros(0, 0);
    for _ in 0..config.power_iterations {
        qr_into(&y, &mut q, &mut r, &mut ws);
        op.mm_t_into(&q, &mut z, pool); // J × sketch
        qr_into(&z, &mut q, &mut r, &mut ws);
        op.mm_into(&q, &mut y, pool);
    }
    // 3. Orthonormal range basis (I × sketch).
    qr_into(&y, &mut q, &mut r, &mut ws);
    // 4. Project: B = Qᵀ A (sketch × J).
    let mut b = Mat::zeros(0, 0);
    op.proj_into(&q, &mut b, pool);
    // 5. Exact SVD of the small B, truncated to the target rank.
    let small = truncate(&svd_thin(&b), rank);
    // 6. Lift the left factor back: U = Q Ũ.
    let u = q.matmul_pooled(&small.u, pool).expect("rsvd: Q·Ũ");
    SvdFactors { u, s: small.s, v: small.v }
}

/// Convenience wrapper with the standard configuration.
pub fn rsvd_default(a: impl AsMatRef, rank: usize, rng: &mut impl Rng) -> SvdFactors {
    rsvd(a, &RsvdConfig::new(rank), rng)
}

/// Result of [`svd_truncated_energy`]: the energy-truncated factors plus
/// the bookkeeping needed to audit the cut.
#[derive(Debug, Clone)]
pub struct EnergyTruncation {
    /// `A ≈ U Σ Vᵀ` truncated at [`rank`](EnergyTruncation::rank).
    pub factors: SvdFactors,
    /// Smallest rank whose cumulative spectral energy `Σ_{i≤r} σ_i²`
    /// reaches `threshold · total_energy` (clamped to `1..=` the probed
    /// spectrum length).
    pub rank: usize,
    /// `Σ_{i≤rank} σ_i²` of the probed spectrum.
    pub captured_energy: f64,
    /// `‖A‖²_F`, computed exactly from the data — the correct denominator
    /// even when the probed spectrum misses tail energy (`max_rank` <
    /// numerical rank).
    pub total_energy: f64,
}

/// Energy-threshold truncated SVD (serial form of
/// [`svd_truncated_energy_pooled`]).
pub fn svd_truncated_energy(
    a: impl AsMatRef,
    config: &RsvdConfig,
    threshold: f64,
    rng: &mut impl Rng,
) -> EnergyTruncation {
    svd_truncated_energy_pooled(a, config, threshold, rng, &ThreadPool::new(1))
}

/// Adaptive-rank truncation: probes the spectrum with a rank-`config.rank`
/// randomized SVD and keeps the smallest leading block capturing at least
/// `threshold · ‖A‖²_F` of the spectral energy (the
/// truncation-by-relative-error rule of SVD-compression pipelines, e.g.
/// tensorly's `svd_compress_tensor_slices`).
///
/// `config.rank` acts as the **maximum** rank; the chosen rank is clamped
/// to `1..=` the probed spectrum length, so `threshold ≤ 0` keeps one
/// component and `threshold ≥ 1` keeps everything probed. The energy
/// denominator is the exact `‖A‖²_F` — if even the full probe can't reach
/// the threshold (the matrix has significant energy past `max_rank`), the
/// full probed rank is kept, which is the best this budget can do.
///
/// Deterministic for a fixed RNG stream and bit-identical across pool
/// sizes (inherits both properties from [`rsvd_pooled`]).
pub fn svd_truncated_energy_pooled(
    a: impl AsMatRef,
    config: &RsvdConfig,
    threshold: f64,
    rng: &mut impl Rng,
    pool: &ThreadPool,
) -> EnergyTruncation {
    svd_truncated_energy_op_pooled(&a.as_mat_ref(), config, threshold, rng, pool)
}

/// [`svd_truncated_energy_pooled`] over an abstract [`ProductOp`] — lets
/// the adaptive-rank probe run on sparse operators (a CSR slice, or a
/// [`SparseVStack`] standing in for the stacked tensor) at O(nnz) per
/// pass, with the exact `‖A‖²_F` denominator from the operator itself.
pub fn svd_truncated_energy_op_pooled(
    op: &impl ProductOp,
    config: &RsvdConfig,
    threshold: f64,
    rng: &mut impl Rng,
    pool: &ThreadPool,
) -> EnergyTruncation {
    let total_energy = op.fro_norm_sq();
    let probe = rsvd_op_pooled(op, config, rng, pool);
    if probe.s.is_empty() {
        return EnergyTruncation { factors: probe, rank: 0, captured_energy: 0.0, total_energy };
    }
    let target = threshold * total_energy;
    let mut rank = probe.s.len();
    let mut cumulative = 0.0;
    for (i, &sigma) in probe.s.iter().enumerate() {
        cumulative += sigma * sigma;
        if cumulative >= target {
            rank = i + 1;
            break;
        }
    }
    let captured_energy: f64 = probe.s[..rank].iter().map(|&s| s * s).sum();
    let factors = truncate(&probe, rank);
    EnergyTruncation { factors, rank, captured_energy, total_energy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_linalg::qr;
    use dpar2_linalg::random::gaussian_mat as gmat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Low-rank-plus-noise matrix: rank `r` signal with noise at `eps`.
    fn low_rank_noisy(i: usize, j: usize, r: usize, eps: f64, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = gmat(i, r, &mut rng);
        let v = gmat(j, r, &mut rng);
        let mut m = u.matmul_nt(&v).unwrap();
        let noise = gmat(i, j, &mut rng);
        m.axpy(eps, &noise);
        m
    }

    #[test]
    fn recovers_exact_low_rank() {
        let a = low_rank_noisy(60, 40, 5, 0.0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let f = rsvd_default(&a, 5, &mut rng);
        let err = (&a - &f.reconstruct()).fro_norm() / a.fro_norm();
        assert!(err < 1e-9, "exact low-rank not recovered: rel err {err}");
    }

    #[test]
    fn near_optimal_on_noisy_low_rank() {
        let a = low_rank_noisy(80, 50, 6, 0.01, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let f = rsvd_default(&a, 6, &mut rng);
        let exact = dpar2_linalg::svd::svd_truncated(&a, 6);
        let err_r = (&a - &f.reconstruct()).fro_norm();
        let err_e = (&a - &exact.reconstruct()).fro_norm();
        // Within 5% of the optimal rank-6 error.
        assert!(err_r <= err_e * 1.05, "rsvd err {err_r} vs optimal {err_e}");
    }

    #[test]
    fn factors_orthonormal() {
        let a = low_rank_noisy(50, 30, 4, 0.1, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let f = rsvd_default(&a, 4, &mut rng);
        assert!((&f.u.gram() - &Mat::eye(4)).fro_norm() < 1e-10);
        assert!((&f.v.gram() - &Mat::eye(4)).fro_norm() < 1e-10);
    }

    #[test]
    fn singular_values_sorted_and_close_to_exact() {
        let a = low_rank_noisy(70, 45, 8, 0.001, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let f = rsvd_default(&a, 8, &mut rng);
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        let exact = dpar2_linalg::svd::svd_truncated(&a, 8);
        for (approx, truth) in f.s.iter().zip(&exact.s) {
            assert!((approx - truth).abs() < 1e-3 * truth.max(1.0));
        }
    }

    #[test]
    fn power_iterations_improve_accuracy() {
        // Slowly decaying spectrum: q=1 must beat q=0 (on average; the seed
        // is fixed so this is deterministic).
        let mut rng = StdRng::seed_from_u64(9);
        let i = 100;
        let j = 80;
        let u = qr(gmat(i, j, &mut rng)).q;
        let v = qr(gmat(j, j, &mut rng)).q;
        let s: Vec<f64> = (0..j).map(|idx| 1.0 / (1.0 + idx as f64).sqrt()).collect();
        let mut us = u;
        for row in 0..i {
            let r = us.row_mut(row);
            for (c, &sv) in s.iter().enumerate() {
                r[c] *= sv;
            }
        }
        let a = us.matmul_nt(&v).unwrap();

        let mut rng0 = StdRng::seed_from_u64(10);
        let f0 = rsvd(&a, &RsvdConfig::without_power_iterations(10), &mut rng0);
        let mut rng1 = StdRng::seed_from_u64(10);
        let f1 = rsvd(&a, &RsvdConfig { rank: 10, oversample: 8, power_iterations: 2 }, &mut rng1);
        let e0 = (&a - &f0.reconstruct()).fro_norm();
        let e1 = (&a - &f1.reconstruct()).fro_norm();
        assert!(e1 <= e0 + 1e-12, "power iterations made things worse: {e1} > {e0}");
    }

    #[test]
    fn small_matrix_falls_back_to_exact() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut rng = StdRng::seed_from_u64(11);
        let f = rsvd_default(&a, 2, &mut rng);
        let err = (&a - &f.reconstruct()).fro_norm();
        assert!(err < 1e-10);
    }

    #[test]
    fn rank_capped_by_dimensions() {
        let a = gmat(5, 3, &mut StdRng::seed_from_u64(12));
        let mut rng = StdRng::seed_from_u64(13);
        let f = rsvd_default(&a, 10, &mut rng);
        assert_eq!(f.s.len(), 3);
    }

    #[test]
    fn pooled_bitwise_matches_serial_for_every_thread_count() {
        // Large enough that the blocked GEMM path engages inside rsvd.
        let a = low_rank_noisy(300, 120, 6, 0.05, 30);
        let serial = rsvd(&a, &RsvdConfig::new(6), &mut StdRng::seed_from_u64(31));
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let pooled =
                rsvd_pooled(&a, &RsvdConfig::new(6), &mut StdRng::seed_from_u64(31), &pool);
            assert_eq!(serial.s, pooled.s, "σ diverged at {threads} threads");
            assert_eq!(serial.u, pooled.u, "U diverged at {threads} threads");
            assert_eq!(serial.v, pooled.v, "V diverged at {threads} threads");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = low_rank_noisy(30, 20, 3, 0.05, 14);
        let f1 = rsvd_default(&a, 3, &mut StdRng::seed_from_u64(15));
        let f2 = rsvd_default(&a, 3, &mut StdRng::seed_from_u64(15));
        assert_eq!(f1.s, f2.s);
        assert!((&f1.u - &f2.u).fro_norm() < 1e-15);
    }

    #[test]
    fn wide_matrix() {
        let a = low_rank_noisy(20, 90, 4, 0.01, 16);
        let mut rng = StdRng::seed_from_u64(17);
        let f = rsvd_default(&a, 4, &mut rng);
        assert_eq!(f.u.shape(), (20, 4));
        assert_eq!(f.v.shape(), (90, 4));
        let exact = dpar2_linalg::svd::svd_truncated(&a, 4);
        let err_r = (&a - &f.reconstruct()).fro_norm();
        let err_e = (&a - &exact.reconstruct()).fro_norm();
        assert!(err_r <= err_e * 1.1);
    }

    #[test]
    fn empty_matrix() {
        let mut rng = StdRng::seed_from_u64(18);
        let f = rsvd_default(Mat::zeros(0, 5), 3, &mut rng);
        assert!(f.s.is_empty());
    }

    /// Matrix with a planted spectrum `σ = [10, 8, 6, 4, 2, 1]` (exactly
    /// rank 6): energy fractions are known in closed form.
    fn planted_spectrum(seed: u64) -> (Mat, Vec<f64>) {
        let sigmas = vec![10.0, 8.0, 6.0, 4.0, 2.0, 1.0];
        let mut rng = StdRng::seed_from_u64(seed);
        let u = qr(gmat(40, 6, &mut rng)).q;
        let v = qr(gmat(30, 6, &mut rng)).q;
        let mut us = u;
        for row in 0..40 {
            let r = us.row_mut(row);
            for (c, &sv) in sigmas.iter().enumerate() {
                r[c] *= sv;
            }
        }
        (us.matmul_nt(&v).unwrap(), sigmas)
    }

    #[test]
    fn energy_truncation_matches_exact_spectrum_accounting() {
        let (a, sigmas) = planted_spectrum(40);
        let total: f64 = sigmas.iter().map(|s| s * s).sum();
        // Cross-check the energy bookkeeping against the exact spectrum
        // (svd_thin of the same matrix) at several thresholds. Expected
        // cumulative fractions: 0.452, 0.742, 0.905, 0.977, 0.995, 1.0.
        let exact = svd_thin(&a);
        for (threshold, want_rank) in
            [(0.10, 1usize), (0.452, 1), (0.50, 2), (0.80, 3), (0.95, 4), (0.99, 5), (0.999, 6)]
        {
            let mut rng = StdRng::seed_from_u64(41);
            let e = svd_truncated_energy(&a, &RsvdConfig::new(6), threshold, &mut rng);
            assert_eq!(e.rank, want_rank, "threshold {threshold}");
            assert_eq!(e.factors.s.len(), want_rank);
            assert!((e.total_energy - total).abs() < 1e-6 * total, "‖A‖²_F mismatch");
            let exact_captured: f64 = exact.s[..want_rank].iter().map(|s| s * s).sum();
            assert!(
                (e.captured_energy - exact_captured).abs() < 1e-6 * total,
                "captured energy {} vs exact spectrum {exact_captured} at threshold {threshold}",
                e.captured_energy
            );
            assert!(e.captured_energy >= threshold * total * (1.0 - 1e-9));
        }
    }

    #[test]
    fn energy_truncation_threshold_extremes() {
        let (a, _) = planted_spectrum(42);
        let low =
            svd_truncated_energy(&a, &RsvdConfig::new(6), 0.0, &mut StdRng::seed_from_u64(43));
        assert_eq!(low.rank, 1, "threshold 0 keeps exactly one component");
        let neg =
            svd_truncated_energy(&a, &RsvdConfig::new(6), -3.0, &mut StdRng::seed_from_u64(43));
        assert_eq!(neg.rank, 1);
        // threshold > 1 can never be met: keep the whole probed spectrum.
        let all =
            svd_truncated_energy(&a, &RsvdConfig::new(6), 1.5, &mut StdRng::seed_from_u64(43));
        assert_eq!(all.rank, 6);
    }

    #[test]
    fn energy_truncation_max_rank_caps_the_probe() {
        // max_rank 3 < numerical rank 6: even threshold 1.0 keeps only 3,
        // and the exact-‖A‖²_F denominator keeps captured < total honest.
        let (a, sigmas) = planted_spectrum(44);
        let total: f64 = sigmas.iter().map(|s| s * s).sum();
        let e = svd_truncated_energy(&a, &RsvdConfig::new(3), 1.0, &mut StdRng::seed_from_u64(45));
        assert_eq!(e.rank, 3);
        assert!(e.captured_energy < e.total_energy);
        let expect: f64 = sigmas[..3].iter().map(|s| s * s).sum();
        assert!((e.captured_energy - expect).abs() < 1e-3 * total);
    }

    #[test]
    fn energy_truncation_pooled_bitwise_matches_serial() {
        let (a, _) = planted_spectrum(46);
        let serial =
            svd_truncated_energy(&a, &RsvdConfig::new(6), 0.9, &mut StdRng::seed_from_u64(47));
        for threads in [2, 4] {
            let pool = ThreadPool::new(threads);
            let pooled = svd_truncated_energy_pooled(
                &a,
                &RsvdConfig::new(6),
                0.9,
                &mut StdRng::seed_from_u64(47),
                &pool,
            );
            assert_eq!(serial.rank, pooled.rank);
            assert_eq!(serial.factors.s, pooled.factors.s, "{threads} threads");
            assert_eq!(serial.factors.u, pooled.factors.u, "{threads} threads");
        }
    }

    #[test]
    fn energy_truncation_empty_matrix() {
        let e = svd_truncated_energy(
            Mat::zeros(0, 4),
            &RsvdConfig::new(3),
            0.9,
            &mut StdRng::seed_from_u64(48),
        );
        assert_eq!(e.rank, 0);
        assert_eq!(e.total_energy, 0.0);
    }
}
