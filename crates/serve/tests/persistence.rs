//! Property-based and adversarial tests for the model persistence format:
//! arbitrary-shape round-trips are bit-exact, and *no* corruption of the
//! byte stream — truncation at any prefix, any single-byte flip — can make
//! the reader panic or silently accept bad data.

use dpar2_core::{Parafac2Fit, StopReason, TimingBreakdown};
use dpar2_linalg::Mat;
use dpar2_serve::{ModelMeta, SavedModel, ServeError};
use proptest::prelude::*;
use proptest::strategy::Just;

/// Builds a `SavedModel` with arbitrary ranks, slice counts, and slice
/// heights from flat generated buffers.
#[allow(clippy::type_complexity)]
fn assemble(
    (r, j, labeled): (usize, usize, bool),
    rows: &[usize],
    udata: &[f64],
    sdata: &[f64],
    vdata: Vec<f64>,
    hdata: Vec<f64>,
    trace: Vec<f64>,
) -> SavedModel {
    let k = rows.len();
    let mut u = Vec::with_capacity(k);
    let mut off = 0;
    for &rk in rows {
        u.push(Mat::from_vec(rk, r, udata[off..off + rk * r].to_vec()));
        off += rk * r;
    }
    let s = sdata.chunks(r).map(<[f64]>::to_vec).collect();
    let fit = Parafac2Fit {
        u,
        s,
        v: Mat::from_vec(j, r, vdata),
        h: Mat::from_vec(r, r, hdata),
        iterations: trace.len(),
        criterion_trace: trace.clone(),
        stop_reason: StopReason::Converged,
        timing: TimingBreakdown {
            preprocess_secs: trace.first().copied().unwrap_or(0.0).abs(),
            iterations_secs: trace.iter().sum::<f64>().abs(),
            per_iteration_secs: trace,
            total_secs: 0.25,
        },
    };
    let labels = if labeled { (0..k).map(|i| format!("entity-{i}")).collect() } else { vec![] };
    SavedModel::new(
        ModelMeta::new("prop-model")
            .with_dataset("proptest")
            .with_gamma(0.01)
            .with_entity_labels(labels),
        fit,
    )
}

fn saved_model_strategy() -> impl Strategy<Value = SavedModel> {
    (1usize..4, 1usize..7, 0usize..2)
        .prop_flat_map(|(r, j, lab)| {
            (Just((r, j, lab == 1)), proptest::collection::vec(1usize..9, 0usize..5))
        })
        .prop_flat_map(|((r, j, labeled), rows)| {
            let total: usize = rows.iter().sum();
            let k = rows.len();
            (
                Just(((r, j, labeled), rows)),
                proptest::collection::vec(-100.0f64..100.0, total * r),
                proptest::collection::vec(-100.0f64..100.0, k * r),
                proptest::collection::vec(-100.0f64..100.0, j * r),
                proptest::collection::vec(-100.0f64..100.0, r * r),
                proptest::collection::vec(-10.0f64..10.0, 0usize..6),
            )
        })
        .prop_map(|((dims, rows), udata, sdata, vdata, hdata, trace)| {
            assemble(dims, &rows, &udata, &sdata, vdata, hdata, trace)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// save → load reproduces the model exactly, for arbitrary ranks,
    /// slice counts, slice heights, and label presence.
    #[test]
    fn round_trip_is_identity(model in saved_model_strategy()) {
        let bytes = model.to_bytes().expect("encode");
        let back = SavedModel::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(&back, &model);
        // Encoding is deterministic: same model, same bytes.
        prop_assert_eq!(back.to_bytes().expect("re-encode"), bytes);
    }

    /// Truncating the byte stream anywhere yields `Err`, never a panic and
    /// never a silently-decoded model.
    #[test]
    fn any_truncation_errors(model in saved_model_strategy(), frac in 0.0f64..1.0) {
        let bytes = model.to_bytes().expect("encode");
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(SavedModel::from_bytes(&bytes[..cut]).is_err(), "cut at {}", cut);
    }
}

/// One fixed model for the exhaustive byte-level corruption sweeps.
fn fixture() -> SavedModel {
    assemble(
        (2, 3, true),
        &[4, 2, 5],
        &(0..22).map(|i| i as f64 * 0.5 - 3.0).collect::<Vec<f64>>(),
        &(0..6).map(|i| i as f64).collect::<Vec<f64>>(),
        (0..6).map(|i| -(i as f64)).collect(),
        vec![1.0, 0.5, 0.25, 2.0],
        vec![9.0, 3.0, 1.5],
    )
}

/// `assemble` expects `hdata` of length `r²` and a free-length trace; keep
/// the fixture arguments aligned with that signature.
#[test]
fn fixture_is_well_formed() {
    assert!(fixture().to_bytes().is_ok());
}

#[test]
fn every_single_byte_flip_is_rejected() {
    let clean = fixture().to_bytes().unwrap();
    for pos in 0..clean.len() {
        let mut corrupt = clean.clone();
        corrupt[pos] ^= 0x40;
        let result = SavedModel::from_bytes(&corrupt);
        assert!(result.is_err(), "flip at byte {pos} was accepted: {result:?}");
    }
}

#[test]
fn every_truncation_point_is_rejected() {
    let clean = fixture().to_bytes().unwrap();
    for cut in 0..clean.len() {
        assert!(SavedModel::from_bytes(&clean[..cut]).is_err(), "truncation at {cut} accepted");
    }
}

#[test]
fn corruption_errors_carry_the_right_variant() {
    let clean = fixture().to_bytes().unwrap();
    // Magic byte.
    let mut c = clean.clone();
    c[3] = b'!';
    assert!(matches!(SavedModel::from_bytes(&c), Err(ServeError::BadMagic)));
    // Version field.
    let mut c = clean.clone();
    c[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(SavedModel::from_bytes(&c), Err(ServeError::UnsupportedVersion(7))));
    // Checksum field.
    let mut c = clean.clone();
    c[20] ^= 0xff;
    assert!(matches!(SavedModel::from_bytes(&c), Err(ServeError::ChecksumMismatch { .. })));
    // Payload byte.
    let mut c = clean.clone();
    let last = c.len() - 1;
    c[last] ^= 0xff;
    assert!(matches!(SavedModel::from_bytes(&c), Err(ServeError::ChecksumMismatch { .. })));
    // Whole-payload truncation.
    assert!(matches!(
        SavedModel::from_bytes(&clean[..dpar2_serve::model::HEADER_LEN]),
        Err(ServeError::Truncated { actual: 0, .. })
    ));
}

#[test]
fn missing_file_is_io_error() {
    let err = SavedModel::load("/nonexistent/dpar2/model.bin").unwrap_err();
    assert!(matches!(err, ServeError::Io(_)));
}

#[test]
fn garbage_files_are_rejected() {
    assert!(matches!(SavedModel::from_bytes(&[]), Err(ServeError::Io(_))));
    assert!(matches!(SavedModel::from_bytes(&[0u8; 64]), Err(ServeError::BadMagic)));
    let mut zeros_with_magic = vec![0u8; 64];
    zeros_with_magic[..8].copy_from_slice(&dpar2_serve::MAGIC);
    zeros_with_magic[8..12].copy_from_slice(&1u32.to_le_bytes());
    // Declares a zero-length payload with checksum 0 — FNV-1a of "" is not
    // 0, so this is a checksum mismatch, not a crash.
    assert!(SavedModel::from_bytes(&zeros_with_magic).is_err());
}
