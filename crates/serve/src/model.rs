//! Binary persistence for fitted PARAFAC2 models.
//!
//! A fitted model ([`Parafac2Fit`]) plus its dataset metadata
//! ([`ModelMeta`]) round-trips through a versioned, checksummed,
//! little-endian binary format:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"DPAR2MDL"
//! 8       4     format version (u32 LE, currently 2)
//! 12      8     payload length in bytes (u64 LE)
//! 20      8     FNV-1a 64 checksum of the payload (u64 LE)
//! 28      …     payload
//! ```
//!
//! The payload serializes, in order: the metadata (`name`, `dataset`,
//! `gamma`, entity labels), the factor shapes (`R`, `J`, `K`), the shared
//! factors `H` and `V`, then per slice the row count, `U_k`, and
//! `diag(S_k)`, and finally the solver diagnostics (iterations, the typed
//! stop reason as one byte, criterion trace, timing). Strings are `u64`
//! length + UTF-8 bytes; `f64`s are raw IEEE-754 little-endian bits, so a
//! round-trip is bit-exact. (Format 2 added the stop-reason byte; format-1
//! files are rejected as [`ServeError::UnsupportedVersion`].)
//!
//! Everything is hand-rolled over [`std::io`] — this workspace builds
//! offline with no serde — and the reader is defensive: bad magic, an
//! unknown version, a truncated file, a corrupted payload, or structurally
//! impossible lengths all surface as [`ServeError`] values, never panics.

use crate::error::{Result, ServeError};
use dpar2_core::{Parafac2Fit, StopReason, TimingBreakdown};
use dpar2_linalg::Mat;
use std::io::{Read, Write};
use std::path::Path;

/// File magic: identifies a DPar2 model file.
pub const MAGIC: [u8; 8] = *b"DPAR2MDL";
/// Current format version written by [`SavedModel::write_to`].
pub const FORMAT_VERSION: u32 = 2;
/// Fixed header size (magic + version + payload length + checksum).
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Dataset metadata persisted alongside the factors.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMeta {
    /// Model name — the default registry key.
    pub name: String,
    /// Provenance tag for the dataset the model was fitted on.
    pub dataset: String,
    /// Similarity bandwidth `γ` of Eq. 10 used when serving this model.
    pub gamma: f64,
    /// Optional per-entity labels (tickers, song ids, …). Either empty or
    /// exactly one label per slice.
    pub entity_labels: Vec<String>,
}

impl ModelMeta {
    /// Metadata with the paper's default `γ = 0.01`, no labels.
    pub fn new(name: impl Into<String>) -> Self {
        ModelMeta { name: name.into(), dataset: String::new(), gamma: 0.01, entity_labels: vec![] }
    }

    /// Sets the dataset provenance tag.
    pub fn with_dataset(mut self, dataset: impl Into<String>) -> Self {
        self.dataset = dataset.into();
        self
    }

    /// Sets the Eq. 10 similarity bandwidth.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Sets per-entity labels.
    pub fn with_entity_labels(mut self, labels: Vec<String>) -> Self {
        self.entity_labels = labels;
        self
    }
}

/// A fitted model plus metadata, as persisted on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedModel {
    /// Dataset metadata.
    pub meta: ModelMeta,
    /// The fitted PARAFAC2 factors and solver diagnostics.
    pub fit: Parafac2Fit,
}

impl SavedModel {
    /// Bundles a fit with its metadata.
    pub fn new(meta: ModelMeta, fit: Parafac2Fit) -> Self {
        SavedModel { meta, fit }
    }

    /// Serializes into any writer (header + checksummed payload).
    ///
    /// # Errors
    /// [`ServeError::Malformed`] if the fit's factor shapes are mutually
    /// inconsistent; [`ServeError::Io`] on write failure.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        let payload = self.encode_payload()?;
        w.write_all(&MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&fnv1a64(&payload).to_le_bytes())?;
        w.write_all(&payload)?;
        Ok(())
    }

    /// Deserializes from any reader, verifying magic, version, length, and
    /// checksum before decoding.
    ///
    /// # Errors
    /// Every corruption mode maps to a [`ServeError`] variant — see the
    /// module docs; this function never panics on untrusted bytes.
    pub fn read_from<R: Read>(r: &mut R) -> Result<SavedModel> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(ServeError::BadMagic);
        }
        let mut v4 = [0u8; 4];
        r.read_exact(&mut v4)?;
        let version = u32::from_le_bytes(v4);
        if version != FORMAT_VERSION {
            return Err(ServeError::UnsupportedVersion(version));
        }
        let mut v8 = [0u8; 8];
        r.read_exact(&mut v8)?;
        let payload_len = u64::from_le_bytes(v8);
        r.read_exact(&mut v8)?;
        let expected_sum = u64::from_le_bytes(v8);

        // `take` bounds the allocation by the bytes actually present, so a
        // corrupted (huge) length cannot OOM the reader.
        let mut payload = Vec::new();
        r.take(payload_len).read_to_end(&mut payload)?;
        if (payload.len() as u64) < payload_len {
            return Err(ServeError::Truncated {
                expected: payload_len,
                actual: payload.len() as u64,
            });
        }
        let actual_sum = fnv1a64(&payload);
        if actual_sum != expected_sum {
            return Err(ServeError::ChecksumMismatch {
                expected: expected_sum,
                actual: actual_sum,
            });
        }
        Self::decode_payload(&payload)
    }

    /// Serializes to an in-memory buffer.
    ///
    /// # Errors
    /// [`ServeError::Malformed`] if the fit's shapes are inconsistent.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)?;
        Ok(buf)
    }

    /// Deserializes from an in-memory buffer (see [`SavedModel::read_from`]).
    ///
    /// # Errors
    /// See [`SavedModel::read_from`].
    pub fn from_bytes(mut bytes: &[u8]) -> Result<SavedModel> {
        Self::read_from(&mut bytes)
    }

    /// Saves to a file path.
    ///
    /// # Errors
    /// [`ServeError::Io`] on filesystem failure; [`ServeError::Malformed`]
    /// on inconsistent factor shapes.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)?;
        f.flush()?;
        Ok(())
    }

    /// Loads from a file path (see [`SavedModel::read_from`]).
    ///
    /// # Errors
    /// See [`SavedModel::read_from`].
    pub fn load(path: impl AsRef<Path>) -> Result<SavedModel> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }

    // ------------------------------------------------------------------
    // Payload encoding
    // ------------------------------------------------------------------

    fn encode_payload(&self) -> Result<Vec<u8>> {
        let fit = &self.fit;
        let r = fit.v.cols();
        let j = fit.v.rows();
        let k = fit.u.len();
        if fit.h.shape() != (r, r)
            || fit.s.len() != k
            || fit.u.iter().any(|u| u.cols() != r)
            || fit.s.iter().any(|s| s.len() != r)
        {
            return Err(ServeError::Malformed("inconsistent factor shapes in fit"));
        }
        if !self.meta.entity_labels.is_empty() && self.meta.entity_labels.len() != k {
            return Err(ServeError::Malformed("entity label count differs from slice count"));
        }

        let mut p = Vec::new();
        put_str(&mut p, &self.meta.name);
        put_str(&mut p, &self.meta.dataset);
        put_f64(&mut p, self.meta.gamma);
        put_u64(&mut p, self.meta.entity_labels.len() as u64);
        for label in &self.meta.entity_labels {
            put_str(&mut p, label);
        }

        put_u64(&mut p, r as u64);
        put_u64(&mut p, j as u64);
        put_u64(&mut p, k as u64);
        put_f64s(&mut p, fit.h.data());
        put_f64s(&mut p, fit.v.data());
        for (u_k, s_k) in fit.u.iter().zip(&fit.s) {
            put_u64(&mut p, u_k.rows() as u64);
            put_f64s(&mut p, u_k.data());
            put_f64s(&mut p, s_k);
        }
        put_u64(&mut p, fit.iterations as u64);
        p.push(stop_reason_code(fit.stop_reason));
        put_u64(&mut p, fit.criterion_trace.len() as u64);
        put_f64s(&mut p, &fit.criterion_trace);
        put_f64(&mut p, fit.timing.preprocess_secs);
        put_f64(&mut p, fit.timing.iterations_secs);
        put_u64(&mut p, fit.timing.per_iteration_secs.len() as u64);
        put_f64s(&mut p, &fit.timing.per_iteration_secs);
        put_f64(&mut p, fit.timing.total_secs);
        Ok(p)
    }

    fn decode_payload(payload: &[u8]) -> Result<SavedModel> {
        let mut c = Cursor { buf: payload, pos: 0 };
        let name = c.string()?;
        let dataset = c.string()?;
        let gamma = c.f64()?;
        let label_count = c.len()?;
        let mut entity_labels = Vec::with_capacity(label_count.min(1024));
        for _ in 0..label_count {
            entity_labels.push(c.string()?);
        }

        let r = c.len()?;
        let j = c.len()?;
        let k = c.len()?;
        if !entity_labels.is_empty() && entity_labels.len() != k {
            return Err(ServeError::Malformed("entity label count differs from slice count"));
        }
        let h = c.mat(r, r)?;
        let v = c.mat(j, r)?;
        let mut u = Vec::with_capacity(k.min(4096));
        let mut s = Vec::with_capacity(k.min(4096));
        for _ in 0..k {
            let rows = c.len()?;
            u.push(c.mat(rows, r)?);
            s.push(c.f64_vec(r)?);
        }
        let iterations = c.len()?;
        let stop_reason = stop_reason_from_code(c.u8()?)?;
        let trace_len = c.len()?;
        let criterion_trace = c.f64_vec(trace_len)?;
        let preprocess_secs = c.f64()?;
        let iterations_secs = c.f64()?;
        let per_iter_len = c.len()?;
        let per_iteration_secs = c.f64_vec(per_iter_len)?;
        let total_secs = c.f64()?;
        if !c.finished() {
            return Err(ServeError::Malformed("trailing bytes after payload"));
        }

        Ok(SavedModel {
            meta: ModelMeta { name, dataset, gamma, entity_labels },
            fit: Parafac2Fit {
                u,
                s,
                v,
                h,
                iterations,
                criterion_trace,
                stop_reason,
                timing: TimingBreakdown {
                    preprocess_secs,
                    iterations_secs,
                    per_iteration_secs,
                    total_secs,
                },
            },
        })
    }
}

/// One-byte wire code for [`StopReason`].
fn stop_reason_code(reason: StopReason) -> u8 {
    match reason {
        StopReason::Converged => 0,
        StopReason::MaxIterations => 1,
        StopReason::Cancelled => 2,
        StopReason::TimeBudget => 3,
    }
}

/// Decodes a [`StopReason`] wire code; unknown codes are corruption.
fn stop_reason_from_code(code: u8) -> Result<StopReason> {
    match code {
        0 => Ok(StopReason::Converged),
        1 => Ok(StopReason::MaxIterations),
        2 => Ok(StopReason::Cancelled),
        3 => Ok(StopReason::TimeBudget),
        _ => Err(ServeError::Malformed("unknown stop-reason code")),
    }
}

/// FNV-1a 64-bit hash — small, dependency-free, and plenty for detecting
/// accidental corruption (this is an integrity check, not authentication).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    buf.reserve(vs.len() * 8);
    for &v in vs {
        put_f64(buf, v);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over the in-memory payload. Every
/// length that drives an allocation is validated against the remaining
/// bytes first, so corrupted lengths fail cleanly instead of allocating.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ServeError::Malformed("length exceeds payload"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length/count field: `u64` narrowed to `usize` with overflow check.
    fn len(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| ServeError::Malformed("count exceeds usize"))
    }

    fn f64_vec(&mut self, n: usize) -> Result<Vec<f64>> {
        let bytes = n.checked_mul(8).ok_or(ServeError::Malformed("f64 count overflows"))?;
        let raw = self.take(bytes)?;
        Ok(raw.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8B"))).collect())
    }

    fn mat(&mut self, rows: usize, cols: usize) -> Result<Mat> {
        let n = rows.checked_mul(cols).ok_or(ServeError::Malformed("matrix shape overflows"))?;
        Ok(Mat::from_vec(rows, cols, self.f64_vec(n)?))
    }

    fn string(&mut self) -> Result<String> {
        let n = self.len()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| ServeError::Malformed("invalid UTF-8 string"))
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small hand-built fit with irregular slices.
    fn sample_fit() -> Parafac2Fit {
        let r = 2;
        Parafac2Fit {
            u: vec![
                Mat::from_fn(3, r, |i, j| (i * 10 + j) as f64 * 0.5),
                Mat::from_fn(5, r, |i, j| (i + j) as f64 - 1.25),
            ],
            s: vec![vec![1.5, 0.25], vec![2.0, -0.5]],
            v: Mat::from_fn(4, r, |i, j| (i as f64).sin() + j as f64),
            h: Mat::from_fn(r, r, |i, j| if i == j { 1.0 } else { 0.125 }),
            iterations: 7,
            criterion_trace: vec![3.0, 1.0, 0.5],
            stop_reason: StopReason::Converged,
            timing: TimingBreakdown {
                preprocess_secs: 0.01,
                iterations_secs: 0.05,
                per_iteration_secs: vec![0.02, 0.02, 0.01],
                total_secs: 0.06,
            },
        }
    }

    fn sample() -> SavedModel {
        SavedModel::new(
            ModelMeta::new("stocks-us")
                .with_dataset("us-stock simulated")
                .with_gamma(0.01)
                .with_entity_labels(vec!["MSFT".into(), "AAPL".into()]),
            sample_fit(),
        )
    }

    #[test]
    fn round_trip_in_memory_is_bit_exact() {
        let m = sample();
        let bytes = m.to_bytes().unwrap();
        let back = SavedModel::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn every_stop_reason_round_trips() {
        for reason in [
            StopReason::Converged,
            StopReason::MaxIterations,
            StopReason::Cancelled,
            StopReason::TimeBudget,
        ] {
            let mut m = sample();
            m.fit.stop_reason = reason;
            let back = SavedModel::from_bytes(&m.to_bytes().unwrap()).unwrap();
            assert_eq!(back.fit.stop_reason, reason);
        }
    }

    #[test]
    fn unknown_stop_reason_code_is_malformed() {
        // Round-trip through the codec directly: codes 0..=3 are the only
        // valid wire values.
        for code in 0u8..=3 {
            assert!(stop_reason_from_code(code).is_ok());
        }
        assert!(matches!(stop_reason_from_code(9), Err(ServeError::Malformed(_))));
    }

    #[test]
    fn round_trip_through_file() {
        let m = sample();
        let path = std::env::temp_dir().join("dpar2_serve_model_roundtrip_test.dpar2");
        m.save(&path).unwrap();
        let back = SavedModel::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, m);
    }

    #[test]
    fn bad_magic_is_error() {
        let mut bytes = sample().to_bytes().unwrap();
        bytes[0] = b'X';
        assert!(matches!(SavedModel::from_bytes(&bytes), Err(ServeError::BadMagic)));
    }

    #[test]
    fn unknown_version_is_error() {
        let mut bytes = sample().to_bytes().unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(SavedModel::from_bytes(&bytes), Err(ServeError::UnsupportedVersion(99))));
    }

    #[test]
    fn truncation_is_error() {
        let bytes = sample().to_bytes().unwrap();
        for cut in [bytes.len() - 1, bytes.len() / 2, HEADER_LEN + 3] {
            let err = SavedModel::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ServeError::Truncated { .. }),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn header_truncation_is_io_error_not_panic() {
        let bytes = sample().to_bytes().unwrap();
        for cut in 0..HEADER_LEN {
            assert!(SavedModel::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn payload_corruption_is_checksum_error() {
        let mut bytes = sample().to_bytes().unwrap();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(SavedModel::from_bytes(&bytes), Err(ServeError::ChecksumMismatch { .. })));
    }

    #[test]
    fn inconsistent_fit_refused_at_write_time() {
        let mut m = sample();
        m.fit.s[0].pop(); // S_0 now shorter than the rank
        assert!(matches!(m.to_bytes(), Err(ServeError::Malformed(_))));
        let mut m2 = sample();
        m2.meta.entity_labels.push("GHOST".into()); // 3 labels, 2 slices
        assert!(matches!(m2.to_bytes(), Err(ServeError::Malformed(_))));
    }

    #[test]
    fn special_float_values_round_trip() {
        let mut m = sample();
        m.fit.v.set(0, 0, f64::INFINITY);
        m.fit.v.set(1, 0, f64::NEG_INFINITY);
        m.fit.v.set(2, 0, -0.0);
        m.fit.v.set(3, 0, f64::MIN_POSITIVE / 2.0); // subnormal
        let back = SavedModel::from_bytes(&m.to_bytes().unwrap()).unwrap();
        // Compare raw bits: -0.0 == 0.0 under PartialEq, bits distinguish.
        for (a, b) in m.fit.v.data().iter().zip(back.fit.v.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_model_round_trips() {
        let m = SavedModel::new(
            ModelMeta::new(""),
            Parafac2Fit {
                u: vec![],
                s: vec![],
                v: Mat::zeros(0, 0),
                h: Mat::zeros(0, 0),
                iterations: 0,
                criterion_trace: vec![],
                stop_reason: StopReason::MaxIterations,
                timing: TimingBreakdown::default(),
            },
        );
        let back = SavedModel::from_bytes(&m.to_bytes().unwrap()).unwrap();
        assert_eq!(back, m);
    }
}
