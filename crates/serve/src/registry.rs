//! Versioned, named model store with atomic version swap.
//!
//! The registry is the coupling point between the offline half of the
//! system (fit / load) and the online half (queries / streaming ingest):
//! writers [`publish`](ModelRegistry::publish) whole immutable model
//! versions, readers [`get`](ModelRegistry::get) an `Arc` snapshot and then
//! work entirely lock-free on it. The `RwLock` is held only for the map
//! lookup / pointer swap — never across a query or a refit — so readers
//! never block on a publish, and a reader mid-query keeps its version alive
//! through the `Arc` even after a newer version replaces it. Torn states
//! are impossible by construction: a snapshot is either the old version or
//! the new one, never a mixture.

use crate::engine::ServedModel;
use crate::index::ModelIndexSet;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// One published, immutable model version.
#[derive(Debug)]
pub struct ModelVersion {
    /// Registry key.
    pub name: String,
    /// Monotonically increasing per-name version, starting at 1.
    pub version: u64,
    /// When this version entered the registry — the zero point of the
    /// publish→index-ready staleness window the
    /// [`IndexBuilder`](crate::index::IndexBuilder) reports.
    pub published_at: Instant,
    /// The query-ready model (factors + serving caches).
    pub model: ServedModel,
    /// Pruned top-k index over this version's factors, installed at most
    /// once — typically off-thread by an
    /// [`IndexBuilder`](crate::index::IndexBuilder) after the publish.
    /// Queries that find it unset simply use the exact scan, so a version
    /// is fully servable from the instant it is published and never
    /// exposes a partial index (`OnceLock`: readers see nothing or the
    /// completed structure, atomically).
    index: OnceLock<ModelIndexSet>,
}

impl ModelVersion {
    /// The installed top-k index, if the builder has finished it.
    pub fn index(&self) -> Option<&ModelIndexSet> {
        self.index.get()
    }

    /// Installs the index for this version. Returns `false` (dropping
    /// `set`) if an index was already installed — versions are immutable,
    /// so the first complete build wins.
    pub fn install_index(&self, set: ModelIndexSet) -> bool {
        self.index.set(set).is_ok()
    }
}

/// Thread-safe named store of [`ServedModel`] versions.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    models: HashMap<String, Arc<ModelVersion>>,
    /// Highest version ever assigned per name — survives [`remove`]
    /// (tombstone), so a re-published name can never reuse a version
    /// number. Version-keyed caches (the query engine's result cache)
    /// rely on `(name, version)` never meaning two different models.
    ///
    /// [`remove`]: ModelRegistry::remove
    last_version: HashMap<String, u64>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes `model` under `name`, atomically replacing any previous
    /// version. Returns the new version number (highest ever assigned to
    /// this name + 1, starting at 1 — versions never restart, even across
    /// [`remove`](ModelRegistry::remove)). In-flight readers holding the
    /// previous `Arc` are unaffected.
    pub fn publish(&self, name: &str, model: ServedModel) -> u64 {
        self.publish_arc(name, model).version
    }

    /// [`publish`](ModelRegistry::publish) returning the published
    /// [`ModelVersion`] snapshot itself — the handle an
    /// [`IndexBuilder`](crate::index::IndexBuilder) needs to install the
    /// version's index once built.
    pub fn publish_arc(&self, name: &str, model: ServedModel) -> Arc<ModelVersion> {
        let mut inner = self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let version = inner.last_version.get(name).map_or(1, |prev| prev + 1);
        inner.last_version.insert(name.to_string(), version);
        let published = Arc::new(ModelVersion {
            name: name.to_string(),
            version,
            published_at: Instant::now(),
            model,
            index: OnceLock::new(),
        });
        inner.models.insert(name.to_string(), Arc::clone(&published));
        published
    }

    /// Snapshot of the current version of `name` (brief read-lock; the
    /// returned `Arc` outlives any subsequent publish).
    pub fn get(&self, name: &str) -> Option<Arc<ModelVersion>> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .models
            .get(name)
            .cloned()
    }

    /// Current version number of `name`, if present.
    pub fn version(&self, name: &str) -> Option<u64> {
        self.get(name).map(|m| m.version)
    }

    /// Registered model names (unordered).
    pub fn names(&self) -> Vec<String> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .models
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner).models.len()
    }

    /// True if no model is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes `name`, returning its last version if it existed. In-flight
    /// readers keep their snapshots, and the name's version counter is
    /// *not* reset — a later publish under the same name continues from
    /// where it left off (stale cache entries keyed by older versions stay
    /// dead forever).
    pub fn remove(&self, name: &str) -> Option<Arc<ModelVersion>> {
        self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner).models.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelMeta;
    use dpar2_core::{Parafac2Fit, StopReason, TimingBreakdown};
    use dpar2_linalg::Mat;

    fn tiny_model(scale: f64) -> ServedModel {
        let fit = Parafac2Fit {
            u: vec![Mat::from_fn(4, 2, |i, j| scale * (i + j) as f64); 3],
            s: vec![vec![1.0, 1.0]; 3],
            v: Mat::from_fn(5, 2, |i, _| i as f64),
            h: Mat::eye(2),
            iterations: 1,
            criterion_trace: vec![],
            stop_reason: StopReason::Converged,
            timing: TimingBreakdown::default(),
        };
        ServedModel::from_parts(ModelMeta::new("m"), fit)
    }

    #[test]
    fn publish_assigns_increasing_versions() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.publish("a", tiny_model(1.0)), 1);
        assert_eq!(reg.publish("a", tiny_model(2.0)), 2);
        assert_eq!(reg.publish("b", tiny_model(1.0)), 1);
        assert_eq!(reg.version("a"), Some(2));
        assert_eq!(reg.version("b"), Some(1));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn get_missing_is_none() {
        let reg = ModelRegistry::new();
        assert!(reg.get("ghost").is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn old_snapshot_survives_republish() {
        let reg = ModelRegistry::new();
        reg.publish("a", tiny_model(1.0));
        let v1 = reg.get("a").unwrap();
        reg.publish("a", tiny_model(2.0));
        // The held snapshot still reads as version 1 with its own data.
        assert_eq!(v1.version, 1);
        assert_eq!(v1.model.fit().u[0].at(1, 1), 2.0);
        assert_eq!(reg.get("a").unwrap().version, 2);
    }

    #[test]
    fn remove_drops_the_name() {
        let reg = ModelRegistry::new();
        reg.publish("a", tiny_model(1.0));
        let removed = reg.remove("a").unwrap();
        assert_eq!(removed.version, 1);
        assert!(reg.get("a").is_none());
        assert!(reg.remove("a").is_none());
    }

    #[test]
    fn versions_never_restart_after_remove() {
        // A reused (name, version) pair would let version-keyed caches
        // serve a removed model's results for its replacement.
        let reg = ModelRegistry::new();
        assert_eq!(reg.publish("a", tiny_model(1.0)), 1);
        assert_eq!(reg.publish("a", tiny_model(2.0)), 2);
        reg.remove("a");
        assert_eq!(reg.publish("a", tiny_model(3.0)), 3, "version counter must survive remove");
    }

    #[test]
    fn names_lists_all() {
        let reg = ModelRegistry::new();
        reg.publish("x", tiny_model(1.0));
        reg.publish("y", tiny_model(1.0));
        let mut names = reg.names();
        names.sort();
        assert_eq!(names, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn concurrent_readers_and_publisher() {
        let reg = std::sync::Arc::new(ModelRegistry::new());
        reg.publish("m", tiny_model(1.0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = reg.clone();
                scope.spawn(move || {
                    for _ in 0..200 {
                        let snap = reg.get("m").expect("model present");
                        // A snapshot is internally consistent: version i
                        // carries factors scaled by i.
                        let expect = snap.version as f64;
                        assert_eq!(snap.model.fit().u[0].at(1, 1), 2.0 * expect);
                    }
                });
            }
            for ver in 2..20u64 {
                reg.publish("m", tiny_model(ver as f64));
            }
        });
        assert_eq!(reg.version("m"), Some(19));
    }
}
