//! Pre-registered `dpar2-obs` handle bundles for the serve stack.
//!
//! One [`ServeMetrics`] covers the whole online half: the query engine's
//! per-path latency histograms and cache/pruning counters
//! ([`QueryMetrics`]), the ingest worker's append/refit/staleness
//! instrumentation ([`IngestMetrics`]), and the engine thread pool's
//! [`dpar2_parallel::PoolMetrics`]. Registration happens once (it
//! allocates metric names); every record on the query path afterwards is a
//! handful of relaxed atomic ops — the steady-state query stays
//! allocation-free with metrics attached (pinned by the root
//! `alloc_regression` suite).

use dpar2_analysis::SearchStats;
use dpar2_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use dpar2_parallel::PoolMetrics;

/// Query-engine handles, registered under `{prefix}_…`:
///
/// * `{prefix}_queries_total` — answered queries (errors not counted).
/// * `{prefix}_cache_hits_total` / `{prefix}_cache_misses_total` — result
///   cache outcome per answered query.
/// * `{prefix}_latency_cache_hit_ns` / `…_indexed_ns` / `…_exact_ns` —
///   end-to-end latency split by how the answer was produced (a cache hit
///   is its own class regardless of the path that originally computed it).
/// * `{prefix}_partitions_probed_total` / `{prefix}_partitions_total` and
///   `{prefix}_candidates_scanned_total` / `{prefix}_candidates_total` —
///   pruning efficiency of indexed answers: each indexed query adds its
///   probe work to `…_probed`/`…_scanned` and the full-scan equivalent to
///   the `…_total` pair, so `1 − scanned/total` is the fraction of work
///   the index pruned away.
#[derive(Debug, Clone)]
pub struct QueryMetrics {
    /// Answered queries.
    pub queries_total: Counter,
    /// Queries answered from the result cache.
    pub cache_hits: Counter,
    /// Queries that had to compute.
    pub cache_misses: Counter,
    /// Latency of cache-hit answers (ns).
    pub latency_cache_hit_ns: Histogram,
    /// Latency of computed indexed answers (ns).
    pub latency_indexed_ns: Histogram,
    /// Latency of computed exact-scan answers (ns), including indexed
    /// requests that fell back while the build was in flight.
    pub latency_exact_ns: Histogram,
    /// Partitions scanned by indexed answers.
    pub partitions_probed: Counter,
    /// Partitions those answers would scan unpruned.
    pub partitions_total: Counter,
    /// Candidate rows scored by indexed answers.
    pub candidates_scanned: Counter,
    /// Candidate rows the exact scan would score.
    pub candidates_total: Counter,
}

impl QueryMetrics {
    /// Registers (or looks up) the bundle in `registry`.
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> QueryMetrics {
        QueryMetrics {
            queries_total: registry.counter(&format!("{prefix}_queries_total")),
            cache_hits: registry.counter(&format!("{prefix}_cache_hits_total")),
            cache_misses: registry.counter(&format!("{prefix}_cache_misses_total")),
            latency_cache_hit_ns: registry.histogram(&format!("{prefix}_latency_cache_hit_ns")),
            latency_indexed_ns: registry.histogram(&format!("{prefix}_latency_indexed_ns")),
            latency_exact_ns: registry.histogram(&format!("{prefix}_latency_exact_ns")),
            partitions_probed: registry.counter(&format!("{prefix}_partitions_probed_total")),
            partitions_total: registry.counter(&format!("{prefix}_partitions_total")),
            candidates_scanned: registry.counter(&format!("{prefix}_candidates_scanned_total")),
            candidates_total: registry.counter(&format!("{prefix}_candidates_total")),
        }
    }

    /// Folds one indexed answer's [`SearchStats`] into the pruning
    /// counters.
    pub fn record_search(&self, stats: &SearchStats) {
        self.partitions_probed.add(stats.partitions_probed as u64);
        self.partitions_total.add(stats.partitions_total as u64);
        self.candidates_scanned.add(stats.candidates_scanned as u64);
        self.candidates_total.add(stats.candidates_total as u64);
    }
}

/// Ingest-worker handles, registered under `{prefix}_…`:
///
/// * `{prefix}_appends_total` — batches processed (including failed ones).
/// * `{prefix}_append_ns` — drain-to-publish latency per non-empty batch.
/// * `{prefix}_refit_ns` — the refit (decompose) portion alone.
/// * `{prefix}_queue_depth` — batches enqueued but not yet drained.
/// * `{prefix}_errors_total` — batches whose append failed; the refit
///   error is no longer only visible through
///   [`IngestWorker::errors`](crate::IngestWorker::errors).
/// * `{prefix}_last_error_batch` — 1-based ordinal of the most recent
///   failed batch (0 = no failure yet), so a dashboard can tell *when* in
///   the stream the last failure happened.
/// * `{prefix}_staleness_ns` — publish→index-ready window per indexed
///   version (recorded by the
///   [`IndexBuilder`](crate::index::IndexBuilder) at install time).
#[derive(Debug, Clone)]
pub struct IngestMetrics {
    /// Batches processed.
    pub appends_total: Counter,
    /// Drain-to-publish latency per non-empty batch (ns).
    pub append_ns: Histogram,
    /// Refit (decompose) duration per published batch (ns).
    pub refit_ns: Histogram,
    /// Batches enqueued but not yet drained.
    pub queue_depth: Gauge,
    /// Batches whose append failed.
    pub errors: Counter,
    /// 1-based ordinal of the most recent failed batch (0 = none).
    pub last_error_batch: Gauge,
    /// Publish→index-ready staleness per indexed version (ns).
    pub staleness_ns: Histogram,
}

impl IngestMetrics {
    /// Registers (or looks up) the bundle in `registry`.
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> IngestMetrics {
        IngestMetrics {
            appends_total: registry.counter(&format!("{prefix}_appends_total")),
            append_ns: registry.histogram(&format!("{prefix}_append_ns")),
            refit_ns: registry.histogram(&format!("{prefix}_refit_ns")),
            queue_depth: registry.gauge(&format!("{prefix}_queue_depth")),
            errors: registry.counter(&format!("{prefix}_errors_total")),
            last_error_batch: registry.gauge(&format!("{prefix}_last_error_batch")),
            staleness_ns: registry.histogram(&format!("{prefix}_staleness_ns")),
        }
    }
}

/// The whole serve stack's bundle: query engine + ingest worker + engine
/// thread pool, registered under the `serve_query_…` / `serve_ingest_…` /
/// `serve_pool_…` prefixes.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Query-engine handles (`serve_query_…`).
    pub query: QueryMetrics,
    /// Ingest-worker handles (`serve_ingest_…`).
    pub ingest: IngestMetrics,
    /// Engine thread-pool handles (`serve_pool_…`).
    pub pool: PoolMetrics,
}

impl ServeMetrics {
    /// Registers (or looks up) all serve-stack metrics in `registry`.
    pub fn register(registry: &MetricsRegistry) -> ServeMetrics {
        ServeMetrics {
            query: QueryMetrics::register(registry, "serve_query"),
            ingest: IngestMetrics::register(registry, "serve_ingest"),
            pool: PoolMetrics::register(registry, "serve_pool"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_per_registry() {
        let registry = MetricsRegistry::new();
        let a = ServeMetrics::register(&registry);
        let b = ServeMetrics::register(&registry);
        a.query.queries_total.inc();
        b.query.queries_total.inc();
        assert_eq!(a.query.queries_total.get(), 2, "same name must share one cell");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve_query_queries_total"), Some(2));
        assert_eq!(snap.gauge("serve_ingest_queue_depth"), Some(0));
        assert_eq!(snap.counter("serve_pool_tasks_total"), Some(0));
    }

    #[test]
    fn record_search_folds_all_four_counters() {
        let registry = MetricsRegistry::new();
        let m = QueryMetrics::register(&registry, "q");
        m.record_search(&SearchStats {
            partitions_total: 10,
            partitions_probed: 3,
            candidates_scanned: 40,
            candidates_total: 200,
        });
        m.record_search(&SearchStats {
            partitions_total: 10,
            partitions_probed: 2,
            candidates_scanned: 25,
            candidates_total: 200,
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter("q_partitions_probed_total"), Some(5));
        assert_eq!(snap.counter("q_partitions_total"), Some(20));
        assert_eq!(snap.counter("q_candidates_scanned_total"), Some(65));
        assert_eq!(snap.counter("q_candidates_total"), Some(400));
    }
}
