//! # dpar2-serve
//!
//! The online half of the DPar2 reproduction: persistence, registry, and a
//! concurrent query engine over fitted PARAFAC2 models.
//!
//! The paper's application (§IV-E, Table III) is a query workload — find
//! the stocks most similar to a target from the temporal factors of a fit.
//! This crate turns that one-shot analysis into a long-lived service:
//!
//! * [`model`] — a versioned, checksummed little-endian binary format for
//!   [`dpar2_core::Parafac2Fit`] + dataset metadata; round-trips bit-exact
//!   and rejects corrupted or truncated files with [`ServeError`]s, never
//!   panics.
//! * [`registry`] — a named, `RwLock`-based model store with atomic
//!   version swap: readers grab an `Arc` snapshot and never block on (or
//!   observe a torn state from) a concurrent publish.
//! * [`engine`] — top-k similar-entity queries (Eq. 10/11 path from
//!   `dpar2_analysis`) with fused pairwise distances, batched execution
//!   over the [`dpar2_parallel::ThreadPool`], and a sharded LRU result
//!   cache keyed by model version and answer path.
//! * [`index`] — serving wrapper of `dpar2_analysis`'s pruned
//!   factor-embedding index: one per-shape-group index per published
//!   version, built off-thread by an [`IndexBuilder`] so publishes never
//!   block. Queries route through it by default ([`QueryMode`]) and fall
//!   back to the exact scan until the build lands; `nprobe` trades recall
//!   for speed, with `nprobe = num_partitions` bitwise-exact.
//! * [`ingest`] — a background worker thread that drains appended slice
//!   batches through [`dpar2_core::StreamingDpar2`] and publishes each
//!   refreshed fit as a new registry version while queries keep flowing
//!   ([`IngestWorker::spawn_indexed`] also keeps each version indexed).
//!
//! ## Quickstart
//!
//! ```
//! use dpar2_core::{Dpar2, FitOptions};
//! use dpar2_serve::{ModelMeta, ModelRegistry, QueryEngine, SavedModel, ServedModel};
//!
//! // Offline: fit and save. Equal slice heights keep every entity
//! // pairwise comparable (§IV-E2).
//! let tensor = dpar2_data::planted_parafac2(&[12; 6], 8, 3, 0.1, 7);
//! let fit = Dpar2.fit(&tensor, &FitOptions::new(3)).unwrap();
//! let saved = SavedModel::new(ModelMeta::new("demo").with_gamma(0.05), fit);
//! let bytes = saved.to_bytes().unwrap();
//!
//! // Online: load, publish, query.
//! let loaded = SavedModel::from_bytes(&bytes).unwrap();
//! assert_eq!(loaded, saved); // bit-exact round-trip
//! let registry = std::sync::Arc::new(ModelRegistry::new());
//! registry.publish("demo", ServedModel::from_saved(loaded));
//! let engine = QueryEngine::new(registry, 2);
//! let answer = engine.top_k("demo", 0, 3).unwrap();
//! assert_eq!(answer.version, 1);
//! assert_eq!(answer.neighbors.len(), 3);
//! ```
//!
//! The `serve_demo` example walks the full lifecycle (fit → save → load →
//! concurrent queries → live append), and
//! `cargo run -p dpar2-bench --bin serve_throughput` measures queries/sec
//! against thread count and cache temperature.

pub mod engine;
pub mod error;
pub mod index;
pub mod ingest;
pub mod metrics;
pub mod model;
pub mod registry;

pub use dpar2_analysis::{IndexOptions, SearchStats};
pub use engine::{AnswerPath, CacheStats, QueryEngine, QueryMode, QueryResult, ServedModel};
pub use error::{Result, ServeError};
pub use index::{build_and_install, IndexBuilder, ModelIndexSet};
pub use ingest::{IngestEvent, IngestWorker};
pub use metrics::{IngestMetrics, QueryMetrics, ServeMetrics};
pub use model::{ModelMeta, SavedModel, FORMAT_VERSION, MAGIC};
pub use registry::{ModelRegistry, ModelVersion};
