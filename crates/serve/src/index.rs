//! Serving-side wrapper of the pruned top-k index, plus the off-thread
//! builder that keeps published versions indexed.
//!
//! A [`ServedModel`] can hold entities of several factor shapes, and Eq. 10
//! only compares equal shapes (§IV-E2) — so one
//! [`dpar2_analysis::EmbeddingIndex`] per shape group, bundled as a
//! [`ModelIndexSet`]. Group-local row ids are assigned in ascending entity
//! order, which makes the local→entity mapping strictly monotone: the
//! index's `(similarity desc, local id asc)` ranking maps verbatim onto the
//! exact engine's `(similarity desc, entity id asc)` ranking, preserving
//! the bitwise-exactness contract end to end.
//!
//! [`IndexBuilder`] is the incremental half: a dedicated thread that
//! receives freshly published [`ModelVersion`]s, builds their index sets,
//! and installs them via [`ModelVersion::install_index`]. Publishes never
//! wait on a build, and queries against a version whose build is still in
//! flight silently use the exact scan — correct answers always, faster
//! answers as soon as the index lands. When several versions of one model
//! queue up faster than they can be indexed (a busy ingest stream), the
//! builder coalesces: only the newest queued version of each name is
//! built, because the older ones can no longer be served from the registry
//! anyway.

use crate::engine::ServedModel;
use crate::error::{Result, ServeError};
use crate::registry::ModelVersion;
use crossbeam::channel::{self, Sender};
use dpar2_analysis::{EmbeddingIndex, IndexOptions, SearchStats};
use dpar2_linalg::MatRef;
use dpar2_obs::Histogram;
use dpar2_parallel::ThreadPool;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-shape-group pruned index over a [`ServedModel`]'s factor
/// embeddings.
#[derive(Debug, Clone)]
pub struct ModelIndexSet {
    groups: Vec<IndexedGroup>,
    /// `entity → (group, local row within the group)`.
    membership: Vec<(u32, u32)>,
}

#[derive(Debug, Clone)]
struct IndexedGroup {
    /// Group-local row id → entity id, strictly ascending.
    entities: Vec<u32>,
    index: EmbeddingIndex,
}

impl ModelIndexSet {
    /// Builds the index set for `model`. Deterministic for every thread
    /// count of `pool` (inherits the partitioner's guarantee).
    ///
    /// # Panics
    /// Panics if the model has more than `u32::MAX` entities.
    pub fn build(model: &ServedModel, options: &IndexOptions, pool: &ThreadPool) -> Self {
        let fit = model.fit();
        let n = fit.u.len();
        assert!(u32::try_from(n).is_ok(), "ModelIndexSet: too many entities for u32 ids");
        // BTreeMap: deterministic group order; entity ids within a group
        // arrive ascending because the scan below is ascending.
        let mut by_shape: BTreeMap<(usize, usize), Vec<u32>> = BTreeMap::new();
        for (i, u) in fit.u.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)] // n ≤ u32::MAX asserted above
            by_shape.entry(u.shape()).or_default().push(i as u32);
        }
        let mut membership = vec![(0u32, 0u32); n];
        let mut groups = Vec::with_capacity(by_shape.len());
        for (g, ((rows, cols), entities)) in by_shape.into_iter().enumerate() {
            let dim = rows * cols;
            let mut data = Vec::with_capacity(entities.len() * dim);
            for (local, &e) in entities.iter().enumerate() {
                #[allow(clippy::cast_possible_truncation)] // bounded by n and by_shape sizes
                {
                    membership[e as usize] = (g as u32, local as u32);
                }
                // Verbatim copy of the factor buffer: the index scores the
                // same bytes in the same order as the exact path.
                data.extend_from_slice(fit.u[e as usize].data());
            }
            let points = MatRef::from_slice(entities.len(), dim, &data);
            groups.push(IndexedGroup {
                entities,
                index: EmbeddingIndex::build(points, options, pool),
            });
        }
        ModelIndexSet { groups, membership }
    }

    /// Number of entities covered (must equal the model's entity count —
    /// the set is stored on the version it was built from).
    pub fn entities(&self) -> usize {
        self.membership.len()
    }

    /// Number of shape groups (= underlying indexes).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Partition count of `target`'s shape group — probing this many is
    /// bitwise-exact for queries about `target`.
    pub fn num_partitions_for(&self, target: usize) -> Option<usize> {
        let &(g, _) = self.membership.get(target)?;
        Some(self.groups[g as usize].index.num_partitions())
    }

    /// The `k` entities most similar to `target`, probing `nprobe`
    /// partitions of its shape group (`None` ⇒ the group's default).
    /// Matches [`ServedModel::top_k`] semantics: candidates share the
    /// target's shape, the ranking is `(similarity desc, entity asc)`, and
    /// `nprobe ≥` the group's partition count reproduces the exact answer
    /// bitwise.
    ///
    /// # Errors
    /// [`ServeError::EntityOutOfRange`] exactly when the exact path errors.
    pub fn top_k(
        &self,
        model: &ServedModel,
        target: usize,
        k: usize,
        nprobe: Option<usize>,
    ) -> Result<Vec<(usize, f64)>> {
        Ok(self.top_k_with_stats(model, target, k, nprobe)?.0)
    }

    /// [`top_k`](ModelIndexSet::top_k) additionally returning the probe's
    /// work counters ([`SearchStats`], scoped to the target's shape group)
    /// — what the query engine folds into its pruning-efficiency metrics.
    ///
    /// # Errors
    /// As [`top_k`](ModelIndexSet::top_k).
    pub fn top_k_with_stats(
        &self,
        model: &ServedModel,
        target: usize,
        k: usize,
        nprobe: Option<usize>,
    ) -> Result<(Vec<(usize, f64)>, SearchStats)> {
        let n = model.entities();
        debug_assert_eq!(n, self.entities(), "index set used with a different model");
        if target >= n {
            return Err(ServeError::EntityOutOfRange { entity: target, count: n });
        }
        let (g, local) = self.membership[target];
        let group = &self.groups[g as usize];
        let nprobe = nprobe.unwrap_or_else(|| group.index.default_nprobe());
        let query = model.fit().u[target].data();
        let (hits, stats) = group.index.top_k_similar_with_stats(
            query,
            model.meta().gamma,
            k,
            nprobe,
            Some(local as usize),
        );
        // Monotone local→entity mapping keeps the ranking's tie-break
        // order intact.
        Ok((
            hits.into_iter().map(|(local, sim)| (group.entities[local] as usize, sim)).collect(),
            stats,
        ))
    }
}

/// Builds `version`'s index synchronously and installs it. Returns `false`
/// if the version already had one. The blocking counterpart of
/// [`IndexBuilder`] for offline callers and tests.
pub fn build_and_install(
    version: &ModelVersion,
    options: &IndexOptions,
    pool: &ThreadPool,
) -> bool {
    if version.index().is_some() {
        return false;
    }
    version.install_index(ModelIndexSet::build(&version.model, options, pool))
}

enum Job {
    Build(Arc<ModelVersion>),
    /// Barrier: acknowledged once every earlier job is processed.
    Flush(Sender<()>),
    Shutdown,
}

/// Dedicated index-build thread (see the module docs).
///
/// Dropping the handle finishes the queued builds, then joins the thread.
#[derive(Debug)]
pub struct IndexBuilder {
    tx: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

impl IndexBuilder {
    /// Spawns the builder thread with its own `threads`-wide GEMM pool.
    pub fn spawn(options: IndexOptions, threads: usize) -> Self {
        Self::spawn_inner(options, threads, None)
    }

    /// [`spawn`](IndexBuilder::spawn) that additionally records the
    /// publish→index-ready staleness window of every version it installs
    /// into `staleness_ns` (measured from
    /// [`ModelVersion::published_at`] to the moment the index becomes
    /// visible to queries).
    pub fn spawn_observed(options: IndexOptions, threads: usize, staleness_ns: Histogram) -> Self {
        Self::spawn_inner(options, threads, Some(staleness_ns))
    }

    fn spawn_inner(options: IndexOptions, threads: usize, staleness_ns: Option<Histogram>) -> Self {
        let (tx, rx) = channel::unbounded::<Job>();
        let handle = std::thread::spawn(move || {
            let pool = ThreadPool::new(threads.max(1));
            while let Ok(first) = rx.recv() {
                // Coalesce the backlog: drain whatever queued up during
                // the last build, then build only the newest version per
                // model name (older ones were already replaced in the
                // registry — their index could never be queried).
                let mut batch = vec![first];
                while let Ok(more) = rx.try_recv() {
                    batch.push(more);
                }
                let mut newest: HashMap<String, usize> = HashMap::new();
                for (i, job) in batch.iter().enumerate() {
                    if let Job::Build(version) = job {
                        newest.insert(version.name.clone(), i);
                    }
                }
                for (i, job) in batch.into_iter().enumerate() {
                    match job {
                        Job::Build(version) => {
                            if newest.get(&version.name) == Some(&i) {
                                let installed = build_and_install(&version, &options, &pool);
                                if installed {
                                    if let Some(hist) = &staleness_ns {
                                        hist.record_duration(version.published_at.elapsed());
                                    }
                                }
                            }
                        }
                        // A flush drained behind builds acks only after
                        // they completed — the barrier callers expect.
                        Job::Flush(ack) => {
                            let _ = ack.send(());
                        }
                        Job::Shutdown => return,
                    }
                }
            }
        });
        IndexBuilder { tx, handle: Some(handle) }
    }

    /// Enqueues a freshly published version for indexing and returns
    /// immediately. Returns `false` if the builder thread is gone (only
    /// after a panic — normal shutdown goes through
    /// [`IndexBuilder::shutdown`]/`Drop`).
    pub fn enqueue(&self, version: Arc<ModelVersion>) -> bool {
        self.tx.send(Job::Build(version)).is_ok()
    }

    /// Blocks until every build enqueued before this call has completed
    /// (or been coalesced away by a newer version of the same model).
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = channel::unbounded::<()>();
        if self.tx.send(Job::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Finishes queued builds, then stops and joins the builder thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = self.tx.send(Job::Shutdown);
            let _ = handle.join();
        }
    }
}

impl Drop for IndexBuilder {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelMeta;
    use crate::registry::ModelRegistry;
    use dpar2_core::{Parafac2Fit, StopReason, TimingBreakdown};
    use dpar2_linalg::random::gaussian_mat;
    use dpar2_linalg::Mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model_with_shapes(shapes: &[(usize, usize)], seed: u64, gamma: f64) -> ServedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let u: Vec<Mat> = shapes.iter().map(|&(r, c)| gaussian_mat(r, c, &mut rng)).collect();
        let r = shapes.first().map_or(1, |&(_, c)| c);
        let fit = Parafac2Fit {
            s: vec![vec![1.0; r]; shapes.len()],
            v: gaussian_mat(5, r, &mut rng),
            h: gaussian_mat(r, r, &mut rng),
            u,
            iterations: 0,
            criterion_trace: vec![],
            stop_reason: StopReason::Converged,
            timing: TimingBreakdown::default(),
        };
        ServedModel::from_parts(ModelMeta::new("idx").with_gamma(gamma), fit)
    }

    #[test]
    fn full_probe_matches_exact_engine_bitwise() {
        let shapes: Vec<(usize, usize)> = (0..60).map(|_| (9, 3)).collect();
        let model = model_with_shapes(&shapes, 61, 0.05);
        let pool = ThreadPool::new(2);
        let set = ModelIndexSet::build(&model, &IndexOptions::default(), &pool);
        for target in [0usize, 17, 59] {
            let exact = model.top_k(target, 8).unwrap();
            let nprobe = set.num_partitions_for(target);
            let indexed = set.top_k(&model, target, 8, nprobe).unwrap();
            assert_eq!(indexed, exact, "target {target}");
        }
    }

    #[test]
    fn mixed_shapes_keep_group_discipline() {
        // Entities 0,2,4 share one shape; 1,3 another — interleaved so the
        // local→entity mapping is exercised.
        let shapes = [(8, 2), (5, 2), (8, 2), (5, 2), (8, 2)];
        let model = model_with_shapes(&shapes, 62, 0.02);
        let pool = ThreadPool::new(1);
        let set = ModelIndexSet::build(&model, &IndexOptions::default(), &pool);
        assert_eq!(set.num_groups(), 2);
        assert_eq!(set.entities(), 5);
        for target in 0..5 {
            let exact = model.top_k(target, 10).unwrap();
            let indexed = set.top_k(&model, target, 10, set.num_partitions_for(target)).unwrap();
            assert_eq!(indexed, exact, "target {target}");
        }
    }

    #[test]
    fn out_of_range_matches_exact_error() {
        let model = model_with_shapes(&[(6, 2); 4], 63, 0.01);
        let pool = ThreadPool::new(1);
        let set = ModelIndexSet::build(&model, &IndexOptions::default(), &pool);
        assert!(matches!(
            set.top_k(&model, 4, 2, None),
            Err(ServeError::EntityOutOfRange { entity: 4, count: 4 })
        ));
        assert!(set.num_partitions_for(4).is_none());
    }

    #[test]
    fn builder_installs_index_and_flush_barriers() {
        let registry = Arc::new(ModelRegistry::new());
        let version = registry.publish_arc("m", model_with_shapes(&[(7, 2); 30], 64, 0.03));
        assert!(version.index().is_none(), "publish must not block on indexing");
        let builder = IndexBuilder::spawn(IndexOptions::default(), 1);
        assert!(builder.enqueue(Arc::clone(&version)));
        builder.flush();
        let set = version.index().expect("index installed after flush");
        assert_eq!(set.entities(), 30);
        builder.shutdown();
    }

    #[test]
    fn builder_coalesces_but_newest_version_always_indexed() {
        let registry = Arc::new(ModelRegistry::new());
        let builder = IndexBuilder::spawn(IndexOptions::default(), 1);
        let mut versions = Vec::new();
        for seed in 0..6 {
            let v = registry.publish_arc("hot", model_with_shapes(&[(6, 2); 20], seed, 0.02));
            builder.enqueue(Arc::clone(&v));
            versions.push(v);
        }
        builder.flush();
        assert!(
            versions.last().unwrap().index().is_some(),
            "the registry's current version must end up indexed"
        );
        builder.shutdown();
    }

    #[test]
    fn double_install_keeps_the_first() {
        let registry = Arc::new(ModelRegistry::new());
        let version = registry.publish_arc("m", model_with_shapes(&[(6, 2); 10], 65, 0.02));
        let pool = ThreadPool::new(1);
        assert!(build_and_install(&version, &IndexOptions::default(), &pool));
        assert!(!build_and_install(&version, &IndexOptions::default(), &pool));
    }

    #[test]
    fn drop_finishes_queued_builds() {
        let registry = Arc::new(ModelRegistry::new());
        let version = registry.publish_arc("m", model_with_shapes(&[(6, 2); 25], 66, 0.02));
        {
            let builder = IndexBuilder::spawn(IndexOptions::default(), 1);
            builder.enqueue(Arc::clone(&version));
            // No flush: Drop must drain and join without deadlock.
        }
        assert!(version.index().is_some());
    }
}
