//! Error type for the serving layer.

use std::fmt;

/// Errors produced by the `dpar2-serve` persistence and query paths.
///
/// Every failure mode of a corrupted or truncated model file maps onto a
/// variant here — the serving path returns `Err`, it never panics on bad
/// bytes.
#[derive(Debug)]
pub enum ServeError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The file does not start with the `DPAR2MDL` magic bytes.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The payload checksum recorded in the header does not match the bytes
    /// actually read — the file was corrupted after writing.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
    /// The file ended before the full payload declared in the header.
    Truncated {
        /// Payload length the header promised.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The payload decoded to structurally inconsistent data (bad lengths,
    /// invalid UTF-8, shape mismatches).
    Malformed(&'static str),
    /// A query referenced a model name absent from the registry.
    ModelNotFound(String),
    /// A query referenced an entity index outside the model.
    EntityOutOfRange {
        /// Requested entity index.
        entity: usize,
        /// Number of entities in the model.
        count: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o failure: {e}"),
            ServeError::BadMagic => write!(f, "not a DPar2 model file (bad magic)"),
            ServeError::UnsupportedVersion(v) => {
                write!(f, "unsupported model format version {v}")
            }
            ServeError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "model payload checksum mismatch: header {expected:#018x}, read {actual:#018x}"
                )
            }
            ServeError::Truncated { expected, actual } => {
                write!(f, "model file truncated: header promises {expected} payload bytes, found {actual}")
            }
            ServeError::Malformed(what) => write!(f, "malformed model payload: {what}"),
            ServeError::ModelNotFound(name) => write!(f, "no model named {name:?} in the registry"),
            ServeError::EntityOutOfRange { entity, count } => {
                write!(f, "entity {entity} out of range (model has {count} entities)")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ServeError::BadMagic.to_string().contains("bad magic"));
        assert!(ServeError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(ServeError::Truncated { expected: 100, actual: 3 }.to_string().contains("100"));
        assert!(ServeError::Malformed("rank of zero").to_string().contains("rank of zero"));
        assert!(ServeError::ModelNotFound("m".into()).to_string().contains("\"m\""));
        let e = ServeError::EntityOutOfRange { entity: 7, count: 4 };
        assert!(e.to_string().contains('7') && e.to_string().contains('4'));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e: ServeError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
        assert!(ServeError::BadMagic.source().is_none());
    }
}
