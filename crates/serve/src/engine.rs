//! The concurrent query engine: top-k similar-entity search over a fitted
//! model's temporal factors.
//!
//! This is the paper's own application (§IV-E, Table III) turned into an
//! online service. A query asks: *given entity `t` of model `m`, which `k`
//! entities are most similar?* Similarity is Eq. 10,
//! `sim(s_i, s_j) = exp(−γ ‖U_i − U_j‖²_F)`, over the temporal factors
//! `U_k` of the fit — the same path `dpar2_analysis` drives offline.
//!
//! Serving-oriented machinery on top of that formula:
//!
//! * **Fused pairwise distance** ([`ServedModel`]): a pair's squared
//!   distance is [`dpar2_analysis::squared_distance`] — one fused pass
//!   over the two factor buffers, never materializing `U_i − U_j` and
//!   never negative. (An earlier revision used the Gram expansion
//!   `‖U_i‖² + ‖U_j‖² − 2·tr(U_iᵀU_j)` with a `.max(0.0)` clamp; for
//!   large-norm factors the expansion cancels catastrophically, so
//!   near-identical entities could round to distance 0 — similarity
//!   exactly 1 — and become indistinguishable from true duplicates.)
//! * **Indexed top-k** ([`QueryMode`]): by default queries route through
//!   the version's pruned factor-embedding index
//!   ([`crate::index::ModelIndexSet`]) when one is installed, falling
//!   back to the exact scan until the background build lands.
//!   [`QueryMode::Exact`] forces the scan; `nprobe ≥` the partition count
//!   makes the indexed path bitwise-identical to it.
//! * **Partial selection**: ranking uses [`dpar2_analysis::select_top_k`]
//!   — `O(n + k log k)` with a NaN-safe total order, since `k ≪ n` in
//!   serving workloads.
//! * **Batched execution** ([`QueryEngine::top_k_batch`]): a batch of
//!   queries is fanned out over the [`dpar2_parallel::ThreadPool`] against
//!   one registry snapshot, so every answer in the batch comes from the
//!   same model version.
//! * **Sharded LRU result cache**: completed rankings are cached keyed by
//!   `(model, version, target, k, answer path)`. The version in the key
//!   makes invalidation automatic — a publish simply starts missing into
//!   the new version while stale entries age out — and the path tag keeps
//!   exact and approximate answers from ever aliasing. Shards (each a
//!   small `Mutex<HashMap>`) keep concurrent query threads from
//!   serializing on one lock.
//!
//! As in §IV-E2 of the paper, `U_i − U_j` is only defined for entities
//! with the same temporal range, so a query ranks exactly the candidates
//! whose factor shape matches the target's.

use crate::error::{Result, ServeError};
use crate::metrics::{QueryMetrics, ServeMetrics};
use crate::model::{ModelMeta, SavedModel};
use crate::registry::{ModelRegistry, ModelVersion};
use dpar2_analysis::{select_top_k, squared_distance};
use dpar2_core::Parafac2Fit;
use dpar2_linalg::MatRef;
use dpar2_parallel::ThreadPool;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A fitted model prepared for serving.
#[derive(Debug, Clone)]
pub struct ServedModel {
    meta: ModelMeta,
    fit: Parafac2Fit,
}

impl ServedModel {
    /// Prepares a fit for serving.
    pub fn from_parts(meta: ModelMeta, fit: Parafac2Fit) -> Self {
        ServedModel { meta, fit }
    }

    /// Prepares a loaded [`SavedModel`] for serving.
    pub fn from_saved(saved: SavedModel) -> Self {
        Self::from_parts(saved.meta, saved.fit)
    }

    /// The underlying fit.
    pub fn fit(&self) -> &Parafac2Fit {
        &self.fit
    }

    /// The model's metadata.
    pub fn meta(&self) -> &ModelMeta {
        &self.meta
    }

    /// Number of entities (slices) in the model.
    pub fn entities(&self) -> usize {
        self.fit.u.len()
    }

    /// Label of entity `i`, if the metadata carries labels.
    pub fn label(&self, i: usize) -> Option<&str> {
        self.meta.entity_labels.get(i).map(String::as_str)
    }

    /// Eq. 10 similarity between entities `i` and `j`. `None` if either
    /// index is out of range or the two factor shapes differ (not
    /// comparable, §IV-E2). Bit-identical factors give exactly `1.0`, and
    /// any differing pair gives strictly less — the fused distance cannot
    /// collapse distinct factors the way the clamped Gram expansion could.
    pub fn similarity(&self, i: usize, j: usize) -> Option<f64> {
        let (u_i, u_j) = (self.fit.u.get(i)?, self.fit.u.get(j)?);
        if u_i.shape() != u_j.shape() {
            return None;
        }
        Some(self.pair_similarity(i, j))
    }

    /// Zero-copy view of entity `i`'s temporal factor `U_i`.
    pub fn factor_view(&self, i: usize) -> MatRef<'_> {
        self.fit.u[i].view()
    }

    /// Similarity for comparable in-range entities (callers check both).
    /// Runs on borrowed factor views of the snapshot — no factor is copied
    /// anywhere on the query path. Uses the fused
    /// [`squared_distance`] — the same arithmetic, in the same element
    /// order, as the pruned index, which is what lets the indexed path
    /// reproduce this one bitwise at full probe depth.
    fn pair_similarity(&self, i: usize, j: usize) -> f64 {
        let d_sq = squared_distance(self.fit.u[i].data(), self.fit.u[j].data());
        (-self.meta.gamma * d_sq).exp()
    }

    /// The `k` entities most similar to `target` (excluding itself),
    /// descending, deterministic tie-break by lower index. Candidates are
    /// the entities sharing `target`'s factor shape.
    ///
    /// # Errors
    /// [`ServeError::EntityOutOfRange`] if `target` is not in the model.
    pub fn top_k(&self, target: usize, k: usize) -> Result<Vec<(usize, f64)>> {
        Ok(self.top_k_scanned(target, k)?.0)
    }

    /// [`top_k`](ServedModel::top_k) additionally returning how many
    /// candidate entities the scan scored (the comparable-shape entities,
    /// target excluded) — the exact path's work counter.
    ///
    /// # Errors
    /// As [`top_k`](ServedModel::top_k).
    pub fn top_k_scanned(&self, target: usize, k: usize) -> Result<(Vec<(usize, f64)>, usize)> {
        let n = self.entities();
        if target >= n {
            return Err(ServeError::EntityOutOfRange { entity: target, count: n });
        }
        let shape = self.fit.u[target].shape();
        let pairs: Vec<(usize, f64)> = (0..n)
            .filter(|&i| i != target && self.fit.u[i].shape() == shape)
            .map(|i| (i, self.pair_similarity(target, i)))
            .collect();
        let scanned = pairs.len();
        Ok((select_top_k(pairs, k), scanned))
    }
}

/// How a query computes its ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryMode {
    /// Full scan over every comparable entity — the reference answer.
    Exact,
    /// Route through the version's pruned index
    /// ([`crate::index::ModelIndexSet`]) when installed, probing `nprobe`
    /// partitions of the target's shape group (`None` ⇒ the index's
    /// default). Falls back to [`QueryMode::Exact`] — silently, never an
    /// error or a partial answer — while the background build is still in
    /// flight. `nprobe ≥` the group's partition count degenerates to the
    /// exact answer bitwise.
    Indexed {
        /// Partitions to probe; `None` uses the index default.
        nprobe: Option<usize>,
    },
}

impl Default for QueryMode {
    /// Indexed at the default probe depth — the serving default.
    fn default() -> Self {
        QueryMode::Indexed { nprobe: None }
    }
}

/// Which computation produced a ranking — the typed successor of the old
/// `indexed: bool` flag on [`QueryResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnswerPath {
    /// The pruned factor-embedding index answered
    /// ([`crate::index::ModelIndexSet`]).
    Indexed,
    /// The exact scan answered — requested via [`QueryMode::Exact`], or
    /// the silent fallback while the version's index build is in flight.
    Exact,
}

/// One answered query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Model version the answer was computed against.
    pub version: u64,
    /// `(entity, similarity)` pairs, descending. Shared with the result
    /// cache via `Arc`, so a cache hit hands out the ranking without
    /// copying it (the clone-free snapshot path).
    pub neighbors: Arc<Vec<(usize, f64)>>,
    /// True if the answer came from the result cache.
    pub cache_hit: bool,
    /// How the ranking was computed. For cache hits this is the path of
    /// the *original* computation the entry stored.
    pub path: AnswerPath,
    /// End-to-end wall-clock of this query inside the engine (cache
    /// lookup included).
    pub elapsed: Duration,
    /// Candidate entities scored to produce this answer: the probe work
    /// for indexed answers, the comparable-shape candidate count for exact
    /// answers, and `0` for cache hits (nothing was rescanned).
    pub candidates_scanned: usize,
}

impl QueryResult {
    /// True if the ranking came through the pruned index.
    pub fn indexed(&self) -> bool {
        self.path == AnswerPath::Indexed
    }
}

/// Cache hit/miss counters (see [`QueryEngine::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the result cache.
    pub hits: u64,
    /// Queries that had to compute.
    pub misses: u64,
}

/// Concurrent top-k query engine over a [`ModelRegistry`].
///
/// `QueryEngine` is `Sync`: any number of threads may call
/// [`top_k`](QueryEngine::top_k) concurrently while other threads publish
/// new model versions into the shared registry.
#[derive(Debug)]
pub struct QueryEngine {
    registry: Arc<ModelRegistry>,
    pool: ThreadPool,
    cache: ShardedLru,
    mode: QueryMode,
    metrics: Option<QueryMetrics>,
}

impl QueryEngine {
    /// Default result-cache capacity per shard ([`SHARD_COUNT`] shards).
    pub const DEFAULT_SHARD_CAPACITY: usize = 128;

    /// An engine over `registry` with a `threads`-wide pool for batched
    /// queries and the default cache capacity.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(registry: Arc<ModelRegistry>, threads: usize) -> Self {
        Self::with_cache_capacity(registry, threads, Self::DEFAULT_SHARD_CAPACITY)
    }

    /// An engine with an explicit per-shard result-cache capacity
    /// (`0` disables caching).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_cache_capacity(
        registry: Arc<ModelRegistry>,
        threads: usize,
        shard_capacity: usize,
    ) -> Self {
        QueryEngine {
            registry,
            pool: ThreadPool::new(threads),
            cache: ShardedLru::new(shard_capacity),
            mode: QueryMode::default(),
            metrics: None,
        }
    }

    /// Sets the engine's default [`QueryMode`] (used by
    /// [`top_k`](QueryEngine::top_k) /
    /// [`top_k_batch`](QueryEngine::top_k_batch)).
    pub fn with_query_mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attaches a [`ServeMetrics`] bundle: every answered query records
    /// its latency into the per-path histograms and its cache/pruning
    /// counters, and the engine's thread pool reports task counts and busy
    /// time through `metrics.pool`. The record path is lock-free and
    /// allocation-free, so instrumented engines serve at the same
    /// steady-state cost as plain ones.
    pub fn with_metrics(mut self, metrics: &ServeMetrics) -> Self {
        self.pool = self.pool.with_metrics(metrics.pool.clone());
        self.metrics = Some(metrics.query.clone());
        self
    }

    /// The engine's default [`QueryMode`].
    pub fn query_mode(&self) -> QueryMode {
        self.mode
    }

    /// The shared registry this engine serves from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Answers one top-k query against the current version of `model`,
    /// using the engine's default [`QueryMode`].
    ///
    /// # Errors
    /// [`ServeError::ModelNotFound`] for an unknown name;
    /// [`ServeError::EntityOutOfRange`] for a bad target index.
    pub fn top_k(&self, model: &str, target: usize, k: usize) -> Result<QueryResult> {
        self.top_k_with_mode(model, target, k, self.mode)
    }

    /// [`top_k`](QueryEngine::top_k) with an explicit [`QueryMode`] for
    /// this one query.
    ///
    /// # Errors
    /// As [`top_k`](QueryEngine::top_k).
    pub fn top_k_with_mode(
        &self,
        model: &str,
        target: usize,
        k: usize,
        mode: QueryMode,
    ) -> Result<QueryResult> {
        let snapshot = self.snapshot(model)?;
        self.query_snapshot(&snapshot, target, k, mode)
    }

    /// Answers a batch of `(target, k)` queries, fanned out across the
    /// thread pool using the engine's default [`QueryMode`]. The whole
    /// batch runs against **one** registry snapshot, so every answer
    /// carries the same version even if a publish lands mid-batch.
    ///
    /// Per-query failures (bad target index) are reported per element.
    pub fn top_k_batch(&self, model: &str, queries: &[(usize, usize)]) -> Vec<Result<QueryResult>> {
        self.top_k_batch_with_mode(model, queries, self.mode)
    }

    /// [`top_k_batch`](QueryEngine::top_k_batch) with an explicit
    /// [`QueryMode`] for the whole batch.
    pub fn top_k_batch_with_mode(
        &self,
        model: &str,
        queries: &[(usize, usize)],
        mode: QueryMode,
    ) -> Vec<Result<QueryResult>> {
        let snapshot = match self.snapshot(model) {
            Ok(s) => s,
            Err(_) => {
                return queries
                    .iter()
                    .map(|_| Err(ServeError::ModelNotFound(model.to_string())))
                    .collect()
            }
        };
        self.pool.map(queries, |_, &(target, k)| self.query_snapshot(&snapshot, target, k, mode))
    }

    /// Result-cache hit/miss counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached result (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    fn snapshot(&self, model: &str) -> Result<Arc<ModelVersion>> {
        self.registry.get(model).ok_or_else(|| ServeError::ModelNotFound(model.to_string()))
    }

    fn query_snapshot(
        &self,
        snapshot: &ModelVersion,
        target: usize,
        k: usize,
        mode: QueryMode,
    ) -> Result<QueryResult> {
        let t_start = Instant::now();
        // Resolve the answer path *before* the cache lookup: an Indexed
        // request on a version whose index hasn't been installed yet is
        // answered by — and cached as — the exact scan, so approximate and
        // exact rankings can never alias under one key.
        let route = match mode {
            QueryMode::Exact => None,
            QueryMode::Indexed { nprobe } => snapshot.index().map(|set| (set, nprobe)),
        };
        let cache_path = match route {
            Some((_, nprobe)) => CachePath::Indexed(nprobe),
            None => CachePath::Exact,
        };
        let key = CacheKey {
            name: snapshot.name.clone(),
            version: snapshot.version,
            target,
            k,
            path: cache_path,
        };
        if let Some((neighbors, path)) = self.cache.get(&key) {
            let elapsed = t_start.elapsed();
            if let Some(m) = &self.metrics {
                m.queries_total.inc();
                m.cache_hits.inc();
                m.latency_cache_hit_ns.record_duration(elapsed);
            }
            return Ok(QueryResult {
                version: snapshot.version,
                neighbors,
                cache_hit: true,
                path,
                elapsed,
                candidates_scanned: 0,
            });
        }
        let (neighbors, path, scanned) = match route {
            Some((set, nprobe)) => {
                let (hits, stats) = set.top_k_with_stats(&snapshot.model, target, k, nprobe)?;
                if let Some(m) = &self.metrics {
                    m.record_search(&stats);
                }
                (Arc::new(hits), AnswerPath::Indexed, stats.candidates_scanned)
            }
            None => {
                let (hits, scanned) = snapshot.model.top_k_scanned(target, k)?;
                (Arc::new(hits), AnswerPath::Exact, scanned)
            }
        };
        self.cache.insert(key, (Arc::clone(&neighbors), path));
        let elapsed = t_start.elapsed();
        if let Some(m) = &self.metrics {
            m.queries_total.inc();
            m.cache_misses.inc();
            match path {
                AnswerPath::Indexed => m.latency_indexed_ns.record_duration(elapsed),
                AnswerPath::Exact => m.latency_exact_ns.record_duration(elapsed),
            }
        }
        Ok(QueryResult {
            version: snapshot.version,
            neighbors,
            cache_hit: false,
            path,
            elapsed,
            candidates_scanned: scanned,
        })
    }
}

/// Number of independent cache shards.
pub const SHARD_COUNT: usize = 8;

/// The *resolved* answer path a cached ranking was computed through —
/// exact scan, or the index at a requested probe depth. Indexed requests
/// that fell back (no index installed yet) resolve to `Exact`: the cached
/// answer *is* the exact one, and may keep serving after the index lands
/// until the entry ages out — quality never degrades, only improves late.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CachePath {
    Exact,
    Indexed(Option<usize>),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    name: String,
    version: u64,
    target: usize,
    k: usize,
    path: CachePath,
}

/// A cached ranking plus the [`AnswerPath`] that computed it — the pair a
/// hit hands back and an insert stores.
type CachedAnswer = (Arc<Vec<(usize, f64)>>, AnswerPath);

#[derive(Debug)]
struct CacheEntry {
    /// Shared with every answer served from this entry (`Arc`: a hit is a
    /// reference-count bump, never a ranking copy).
    neighbors: Arc<Vec<(usize, f64)>>,
    /// The path that computed the ranking (reported back on hits).
    path: AnswerPath,
    /// Last-touch tick for LRU eviction.
    stamp: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, CacheEntry>,
    tick: u64,
}

/// Small sharded LRU: shard = `hash(key) % SHARD_COUNT`, each shard an
/// independently locked `HashMap` with last-touch stamps. Eviction scans
/// the full shard for the oldest stamp — shards are small (default 128
/// entries) so the scan is cheaper than maintaining an intrusive list, and
/// it only runs on insert-at-capacity.
#[derive(Debug)]
struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedLru {
    fn new(shard_capacity: usize) -> Self {
        ShardedLru {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_index(key: &CacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[Self::shard_index(key)]
    }

    fn get(&self, key: &CacheKey) -> Option<CachedAnswer> {
        if self.shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard(key).lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((Arc::clone(&entry.neighbors), entry.path))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: CacheKey, (neighbors, path): CachedAnswer) {
        if self.shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard(&key).lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.shard_capacity && !shard.map.contains_key(&key) {
            if let Some(oldest) =
                shard.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
            }
        }
        shard.map.insert(key, CacheEntry { neighbors, path, stamp: tick });
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner).map.clear();
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_analysis::{similarity_graph, top_k_neighbors};
    use dpar2_core::{StopReason, TimingBreakdown};
    use dpar2_linalg::random::gaussian_mat;
    use dpar2_linalg::Mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A served model over `n` random temporal factors of equal shape.
    fn random_model(n: usize, rows: usize, r: usize, seed: u64, gamma: f64) -> ServedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let u: Vec<Mat> = (0..n).map(|_| gaussian_mat(rows, r, &mut rng)).collect();
        let fit = Parafac2Fit {
            s: vec![vec![1.0; r]; n],
            v: gaussian_mat(6, r, &mut rng),
            h: gaussian_mat(r, r, &mut rng),
            u,
            iterations: 0,
            criterion_trace: vec![],
            stop_reason: StopReason::Converged,
            timing: TimingBreakdown::default(),
        };
        ServedModel::from_parts(ModelMeta::new("test").with_gamma(gamma), fit)
    }

    #[test]
    fn top_k_matches_offline_analysis_path() {
        let m = random_model(14, 9, 3, 21, 0.05);
        let refs: Vec<&Mat> = m.fit().u.iter().collect();
        let (sim, _) = similarity_graph(&refs, 0.05);
        for target in [0, 5, 13] {
            let offline = top_k_neighbors(&sim, target, 5);
            let online = m.top_k(target, 5).unwrap();
            let off_ids: Vec<usize> = offline.iter().map(|&(i, _)| i).collect();
            let on_ids: Vec<usize> = online.iter().map(|&(i, _)| i).collect();
            assert_eq!(on_ids, off_ids, "target {target}: ranking diverged");
            for (a, b) in offline.iter().zip(&online) {
                assert!((a.1 - b.1).abs() < 1e-12, "similarity {} vs {}", a.1, b.1);
            }
        }
    }

    #[test]
    fn top_k_restricts_to_comparable_shapes() {
        // Two shape groups: 3 entities of 8 rows, 2 entities of 5 rows.
        let mut rng = StdRng::seed_from_u64(33);
        let u: Vec<Mat> =
            [8usize, 8, 8, 5, 5].iter().map(|&rows| gaussian_mat(rows, 2, &mut rng)).collect();
        let n = u.len();
        let fit = Parafac2Fit {
            s: vec![vec![1.0; 2]; n],
            v: gaussian_mat(4, 2, &mut rng),
            h: gaussian_mat(2, 2, &mut rng),
            u,
            iterations: 0,
            criterion_trace: vec![],
            stop_reason: StopReason::Converged,
            timing: TimingBreakdown::default(),
        };
        let m = ServedModel::from_parts(ModelMeta::new("mix"), fit);
        let from_tall = m.top_k(0, 10).unwrap();
        assert_eq!(from_tall.len(), 2, "only the other 8-row entities are comparable");
        assert!(from_tall.iter().all(|&(i, _)| i == 1 || i == 2));
        let from_short = m.top_k(4, 10).unwrap();
        assert_eq!(from_short.len(), 1);
        assert_eq!(from_short[0].0, 3);
        // Cross-shape pair similarity is undefined.
        assert!(m.similarity(0, 4).is_none());
        assert!(m.similarity(0, 1).is_some());
    }

    #[test]
    fn out_of_range_target_is_error() {
        let m = random_model(4, 6, 2, 5, 0.01);
        assert!(matches!(m.top_k(4, 2), Err(ServeError::EntityOutOfRange { entity: 4, count: 4 })));
        assert!(m.similarity(0, 9).is_none());
    }

    #[test]
    fn engine_serves_and_caches() {
        let reg = Arc::new(ModelRegistry::new());
        reg.publish("m", random_model(10, 7, 2, 9, 0.02));
        let engine = QueryEngine::new(reg, 2);
        let first = engine.top_k("m", 3, 4).unwrap();
        assert!(!first.cache_hit);
        assert_eq!(first.version, 1);
        let second = engine.top_k("m", 3, 4).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.neighbors, first.neighbors);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        engine.clear_cache();
        assert!(!engine.top_k("m", 3, 4).unwrap().cache_hit);
    }

    #[test]
    fn cache_misses_across_versions() {
        let reg = Arc::new(ModelRegistry::new());
        reg.publish("m", random_model(8, 6, 2, 1, 0.02));
        let engine = QueryEngine::new(reg.clone(), 1);
        let v1 = engine.top_k("m", 0, 3).unwrap();
        reg.publish("m", random_model(8, 6, 2, 2, 0.02));
        let v2 = engine.top_k("m", 0, 3).unwrap();
        assert_eq!(v1.version, 1);
        assert_eq!(v2.version, 2);
        assert!(!v2.cache_hit, "a new version must not serve stale results");
    }

    #[test]
    fn unknown_model_is_error() {
        let engine = QueryEngine::new(Arc::new(ModelRegistry::new()), 1);
        assert!(matches!(engine.top_k("ghost", 0, 1), Err(ServeError::ModelNotFound(_))));
        let batch = engine.top_k_batch("ghost", &[(0, 1), (1, 1)]);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|r| matches!(r, Err(ServeError::ModelNotFound(_)))));
    }

    #[test]
    fn batch_matches_singles_at_any_thread_count() {
        let reg = Arc::new(ModelRegistry::new());
        reg.publish("m", random_model(12, 8, 3, 77, 0.03));
        let queries: Vec<(usize, usize)> = (0..12).map(|t| (t, 4)).collect();
        let reference = QueryEngine::new(reg.clone(), 1);
        let expected: Vec<Arc<Vec<(usize, f64)>>> =
            queries.iter().map(|&(t, k)| reference.top_k("m", t, k).unwrap().neighbors).collect();
        for threads in [1, 2, 4] {
            let engine = QueryEngine::new(reg.clone(), threads);
            let got = engine.top_k_batch("m", &queries);
            for (res, exp) in got.iter().zip(&expected) {
                assert_eq!(&res.as_ref().unwrap().neighbors, exp, "{threads} threads");
            }
        }
    }

    #[test]
    fn batch_reports_per_query_errors() {
        let reg = Arc::new(ModelRegistry::new());
        reg.publish("m", random_model(5, 6, 2, 3, 0.02));
        let engine = QueryEngine::new(reg, 2);
        let out = engine.top_k_batch("m", &[(0, 2), (99, 2), (4, 2)]);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(ServeError::EntityOutOfRange { entity: 99, .. })));
        assert!(out[2].is_ok());
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        let cache = ShardedLru::new(2);
        let key = |t: usize| CacheKey {
            name: "m".into(),
            version: 1,
            target: t,
            k: 1,
            path: CachePath::Exact,
        };
        // Find three keys landing in the same shard.
        let shard0 = ShardedLru::shard_index(&key(0));
        let same_shard: Vec<usize> =
            (0..200).filter(|&t| ShardedLru::shard_index(&key(t)) == shard0).take(3).collect();
        let &[a, b, c] = same_shard.as_slice() else { panic!("hash spread too perfect") };
        cache.insert(key(a), (Arc::new(vec![(a, 1.0)]), AnswerPath::Exact));
        cache.insert(key(b), (Arc::new(vec![(b, 1.0)]), AnswerPath::Exact));
        assert!(cache.get(&key(a)).is_some()); // refresh a: b is now oldest
        cache.insert(key(c), (Arc::new(vec![(c, 1.0)]), AnswerPath::Exact));
        assert!(cache.get(&key(b)).is_none(), "b should have been evicted");
        assert!(cache.get(&key(a)).is_some());
        assert!(cache.get(&key(c)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let reg = Arc::new(ModelRegistry::new());
        reg.publish("m", random_model(6, 5, 2, 4, 0.02));
        let engine = QueryEngine::with_cache_capacity(reg, 1, 0);
        assert!(!engine.top_k("m", 0, 2).unwrap().cache_hit);
        assert!(!engine.top_k("m", 0, 2).unwrap().cache_hit);
    }

    /// Regression for the clamped Gram-expansion distance: with
    /// large-norm factors (entries ≈ 1e8, so `‖U‖² ≈ 5e17` and one ulp of
    /// the norm is ≈ 64) the expansion's cancellation error dwarfed any
    /// real sub-unit distance, and the `.max(0.0)` clamp then rounded
    /// near-duplicates to distance 0 — similarity exactly 1, identical to
    /// a true duplicate. The fused path keeps both properties exact.
    #[test]
    fn bit_identical_entities_have_similarity_exactly_one() {
        let base = Mat::from_fn(16, 3, |i, j| 1e8 + (i * 3 + j) as f64 * 1e-8);
        let mut near = base.clone();
        near.data_mut()[0] += 1e-4;
        let fit = Parafac2Fit {
            s: vec![vec![1.0; 3]; 3],
            v: Mat::eye(3),
            h: Mat::eye(3),
            u: vec![base.clone(), base, near],
            iterations: 0,
            criterion_trace: vec![],
            stop_reason: StopReason::Converged,
            timing: TimingBreakdown::default(),
        };
        let m = ServedModel::from_parts(ModelMeta::new("huge").with_gamma(0.01), fit);
        // Bit-identical pair: every elementwise difference is exactly 0.0,
        // so the fused sum is exactly 0.0 and exp(-0) is exactly 1.0.
        assert_eq!(m.similarity(0, 1), Some(1.0));
        // Near-duplicate: true d² = 1e-8, far below the Gram expansion's
        // noise floor, but the fused distance resolves it — strictly < 1.
        let near_sim = m.similarity(0, 2).unwrap();
        assert!(near_sim < 1.0, "near-duplicate must be distinguishable, got {near_sim}");
        assert!(near_sim > 0.0);
    }

    #[test]
    fn indexed_mode_matches_exact_bitwise_at_full_probe() {
        let reg = Arc::new(ModelRegistry::new());
        let version = reg.publish_arc("m", random_model(80, 7, 3, 41, 0.05));
        let pool = ThreadPool::new(2);
        assert!(crate::index::build_and_install(
            &version,
            &dpar2_analysis::IndexOptions::default(),
            &pool
        ));
        let engine = QueryEngine::with_cache_capacity(reg, 1, 0);
        let full = version.index().unwrap().num_partitions_for(0);
        for target in [0usize, 13, 79] {
            let exact = engine.top_k_with_mode("m", target, 9, QueryMode::Exact).unwrap();
            assert!(!exact.indexed());
            let indexed = engine
                .top_k_with_mode("m", target, 9, QueryMode::Indexed { nprobe: full })
                .unwrap();
            assert!(indexed.indexed());
            assert_eq!(indexed.neighbors, exact.neighbors, "target {target}");
        }
    }

    #[test]
    fn indexed_mode_falls_back_to_exact_until_index_installed() {
        let reg = Arc::new(ModelRegistry::new());
        let version = reg.publish_arc("m", random_model(40, 6, 2, 42, 0.04));
        let engine = QueryEngine::with_cache_capacity(Arc::clone(&reg), 1, 0);
        assert_eq!(engine.query_mode(), QueryMode::default());
        // No index yet: the default (Indexed) mode silently answers exact.
        let before = engine.top_k("m", 5, 6).unwrap();
        assert!(!before.indexed());
        let reference = engine.top_k_with_mode("m", 5, 6, QueryMode::Exact).unwrap();
        assert_eq!(before.neighbors, reference.neighbors);
        // Install, then the same call routes through the index.
        let pool = ThreadPool::new(1);
        crate::index::build_and_install(&version, &dpar2_analysis::IndexOptions::default(), &pool);
        let after = engine.top_k("m", 5, 6).unwrap();
        assert!(after.indexed());
    }

    #[test]
    fn cache_separates_exact_and_indexed_paths() {
        let reg = Arc::new(ModelRegistry::new());
        let version = reg.publish_arc("m", random_model(50, 6, 2, 43, 0.03));
        let pool = ThreadPool::new(1);
        crate::index::build_and_install(&version, &dpar2_analysis::IndexOptions::default(), &pool);
        let engine = QueryEngine::new(reg, 1);
        let exact = engine.top_k_with_mode("m", 2, 5, QueryMode::Exact).unwrap();
        assert!(!exact.cache_hit && !exact.indexed());
        // Different path, same (target, k): must miss, not alias.
        let indexed =
            engine.top_k_with_mode("m", 2, 5, QueryMode::Indexed { nprobe: None }).unwrap();
        assert!(!indexed.cache_hit && indexed.indexed());
        // Re-asking each path hits its own entry with the right flag.
        let exact2 = engine.top_k_with_mode("m", 2, 5, QueryMode::Exact).unwrap();
        assert!(exact2.cache_hit && !exact2.indexed());
        let indexed2 =
            engine.top_k_with_mode("m", 2, 5, QueryMode::Indexed { nprobe: None }).unwrap();
        assert!(indexed2.cache_hit && indexed2.indexed());
    }

    #[test]
    fn metrics_reconcile_with_query_results() {
        use dpar2_obs::MetricsRegistry;

        let reg = Arc::new(ModelRegistry::new());
        let version = reg.publish_arc("m", random_model(60, 6, 2, 45, 0.03));
        let pool = ThreadPool::new(1);
        crate::index::build_and_install(&version, &dpar2_analysis::IndexOptions::default(), &pool);
        let obs = MetricsRegistry::new();
        let metrics = ServeMetrics::register(&obs);
        let engine = QueryEngine::new(reg, 1).with_metrics(&metrics);

        // Miss (exact), miss (indexed), hit (indexed repeat).
        let exact = engine.top_k_with_mode("m", 3, 5, QueryMode::Exact).unwrap();
        let indexed =
            engine.top_k_with_mode("m", 3, 5, QueryMode::Indexed { nprobe: None }).unwrap();
        let hit = engine.top_k_with_mode("m", 3, 5, QueryMode::Indexed { nprobe: None }).unwrap();
        assert!(!exact.cache_hit && exact.path == AnswerPath::Exact);
        assert!(!indexed.cache_hit && indexed.path == AnswerPath::Indexed);
        assert!(hit.cache_hit && hit.path == AnswerPath::Indexed);
        assert_eq!(exact.candidates_scanned, 59, "exact scan scores every other entity");
        assert!(indexed.candidates_scanned <= 59);
        assert_eq!(hit.candidates_scanned, 0, "a cache hit rescans nothing");
        assert!(exact.elapsed > Duration::ZERO);

        let snap = obs.snapshot();
        assert_eq!(snap.counter("serve_query_queries_total"), Some(3));
        assert_eq!(snap.counter("serve_query_cache_hits_total"), Some(1));
        assert_eq!(snap.counter("serve_query_cache_misses_total"), Some(2));
        assert_eq!(snap.histogram("serve_query_latency_exact_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("serve_query_latency_indexed_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("serve_query_latency_cache_hit_ns").unwrap().count, 1);
        // Pruning counters carry exactly the indexed miss's work.
        assert_eq!(
            snap.counter("serve_query_candidates_scanned_total"),
            Some(indexed.candidates_scanned as u64)
        );
        assert_eq!(snap.counter("serve_query_candidates_total"), Some(60));
        // Engine-internal CacheStats agree with the registry counters.
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn instrumented_engine_answers_match_plain_engine_bitwise() {
        use dpar2_obs::MetricsRegistry;

        let reg = Arc::new(ModelRegistry::new());
        let version = reg.publish_arc("m", random_model(40, 5, 2, 46, 0.04));
        let pool = ThreadPool::new(1);
        crate::index::build_and_install(&version, &dpar2_analysis::IndexOptions::default(), &pool);
        let plain = QueryEngine::new(Arc::clone(&reg), 2);
        let obs = MetricsRegistry::new();
        let metrics = ServeMetrics::register(&obs);
        let metered = QueryEngine::new(reg, 2).with_metrics(&metrics);
        let queries: Vec<(usize, usize)> = (0..40).map(|t| (t, 6)).collect();
        for (a, b) in
            plain.top_k_batch("m", &queries).iter().zip(metered.top_k_batch("m", &queries))
        {
            assert_eq!(a.as_ref().unwrap().neighbors, b.unwrap().neighbors);
        }
        // The engine pool reported the batch fan-out.
        assert_eq!(obs.snapshot().counter("serve_pool_tasks_total"), Some(40));
    }

    #[test]
    fn batch_respects_mode_and_engine_default_is_overridable() {
        let reg = Arc::new(ModelRegistry::new());
        let version = reg.publish_arc("m", random_model(30, 6, 2, 44, 0.03));
        let pool = ThreadPool::new(1);
        crate::index::build_and_install(&version, &dpar2_analysis::IndexOptions::default(), &pool);
        let engine = QueryEngine::with_cache_capacity(reg, 2, 0).with_query_mode(QueryMode::Exact);
        assert_eq!(engine.query_mode(), QueryMode::Exact);
        assert!(!engine.top_k("m", 0, 4).unwrap().indexed());
        let queries: Vec<(usize, usize)> = (0..6).map(|t| (t, 4)).collect();
        for r in engine.top_k_batch("m", &queries) {
            assert!(!r.unwrap().indexed());
        }
        let full = version.index().unwrap().num_partitions_for(0);
        for (r, t) in engine
            .top_k_batch_with_mode("m", &queries, QueryMode::Indexed { nprobe: full })
            .into_iter()
            .zip(0..)
        {
            let r = r.unwrap();
            assert!(r.indexed());
            let exact = engine.top_k_with_mode("m", t, 4, QueryMode::Exact).unwrap();
            assert_eq!(r.neighbors, exact.neighbors, "target {t}");
        }
    }
}
