//! Background ingest: streaming appends that publish new model versions.
//!
//! The dual-way streaming PARAFAC2 follow-up (Jang et al., 2023) frames the
//! serving problem this layer closes: models are *appended to* over time
//! while queries keep flowing. `dpar2_core::streaming` implements the
//! append half — incremental two-stage compression plus warm-started
//! refits — and [`IngestWorker`] consumes it as a service:
//!
//! * a dedicated worker thread owns the [`StreamingDpar2`] state;
//! * producers hand it slice batches over a crossbeam channel and return
//!   immediately ([`IngestWorker::append`]);
//! * for each batch the worker runs `append` + `decompose` and publishes
//!   the refreshed model into the shared [`ModelRegistry`] as a brand-new
//!   version — queries never see a half-updated model, they observe either
//!   the old version or the new one (the registry's atomic swap);
//! * [`IngestWorker::flush`] barriers on everything enqueued so far, and
//!   append errors (inconsistent column counts, undersized slices) are
//!   collected per batch rather than killing the worker;
//! * refits are bounded: the stream options' `time_budget` caps each
//!   refit's wall-clock (the published fit records
//!   [`StopReason::TimeBudget`](dpar2_core::StopReason)), and a shared
//!   [`dpar2_core::CancelToken`] observes every refit so a
//!   shutdown never waits on a full ALS run — in-flight and drained refits
//!   break at the next iteration boundary and publish whatever they have
//!   ([`StopReason::Cancelled`](dpar2_core::StopReason)).

use crate::engine::ServedModel;
use crate::index::IndexBuilder;
use crate::metrics::IngestMetrics;
use crate::model::ModelMeta;
use crate::registry::ModelRegistry;
use crossbeam::channel::{self, Sender};
use dpar2_analysis::IndexOptions;
use dpar2_core::{CancelToken, StreamingDpar2};
use dpar2_linalg::Mat;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

enum Msg {
    Append(Vec<Mat>),
    /// Barrier: acknowledged once every earlier message is processed.
    Flush(Sender<()>),
    Shutdown,
}

/// Typed record of one ingest outcome, in arrival order — the test- and
/// dashboard-visible trail that used to be only a `Vec<String>` of append
/// errors (successful publishes and a dead worker left no trace at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestEvent {
    /// A non-empty batch was appended, refit, and published.
    Published {
        /// 1-based ordinal of the non-empty batch that produced this.
        batch: u64,
        /// The registry version the refit published as.
        version: u64,
        /// Entity count of the published model.
        entities: usize,
    },
    /// A batch whose append failed; the worker keeps running.
    AppendFailed {
        /// 1-based ordinal of the failing non-empty batch.
        batch: u64,
        /// The append error's message.
        error: String,
    },
    /// [`IngestWorker::append`] found the worker thread gone (it panicked
    /// — normal shutdown goes through `shutdown`/`Drop`), so the batch was
    /// dropped without processing.
    WorkerUnavailable,
}

/// Appends one event to the shared ingest log.
fn record_event(events: &Mutex<Vec<IngestEvent>>, event: IngestEvent) {
    events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(event);
}

/// Keeps the labels-per-slice invariant (`entity_labels` empty or exactly
/// one per entity) as the entity count grows across appends: newcomers get
/// placeholder `entity-<i>` labels, surplus labels are dropped.
fn reconcile_labels(meta: &mut ModelMeta, entities: usize) {
    if meta.entity_labels.is_empty() {
        return;
    }
    while meta.entity_labels.len() < entities {
        meta.entity_labels.push(format!("entity-{}", meta.entity_labels.len()));
    }
    meta.entity_labels.truncate(entities);
}

/// Handle to the background ingest thread.
///
/// Dropping the handle shuts the worker down cleanly (pending batches are
/// still drained and published first).
#[derive(Debug)]
pub struct IngestWorker {
    tx: Sender<Msg>,
    handle: Option<JoinHandle<()>>,
    events: Arc<Mutex<Vec<IngestEvent>>>,
    metrics: Option<IngestMetrics>,
    cancel: CancelToken,
    /// Present for [`IngestWorker::spawn_indexed`] workers. `Drop` joins
    /// the ingest thread first (releasing its clone of this `Arc`), so the
    /// builder's own drain-and-join runs last, after every publish had its
    /// chance to enqueue.
    indexer: Option<Arc<IndexBuilder>>,
}

impl IngestWorker {
    /// Spawns the worker.
    ///
    /// `stream` may already hold slices (e.g. the batches a loaded model
    /// was fitted on, re-appended by the caller) — the worker continues
    /// from that state. Each processed non-empty batch publishes a new
    /// version of `meta.name` into `registry`; empty batches are no-ops.
    /// If `meta` carries entity labels, newly appended entities get
    /// `entity-<i>` placeholder labels so the labels-per-slice invariant
    /// holds on every published version.
    pub fn spawn(stream: StreamingDpar2, meta: ModelMeta, registry: Arc<ModelRegistry>) -> Self {
        Self::spawn_inner(stream, meta, registry, None, None)
    }

    /// [`spawn`](IngestWorker::spawn) recording telemetry into `metrics`:
    /// per-batch drain-to-publish latency, refit duration, queue depth,
    /// and — closing the old silent-drop gap — an error counter plus
    /// last-error-batch gauge for failed appends.
    pub fn spawn_observed(
        stream: StreamingDpar2,
        meta: ModelMeta,
        registry: Arc<ModelRegistry>,
        metrics: IngestMetrics,
    ) -> Self {
        Self::spawn_inner(stream, meta, registry, None, Some(metrics))
    }

    /// [`spawn`](IngestWorker::spawn) plus background indexing: every
    /// published version is handed to a dedicated [`IndexBuilder`] thread
    /// (with its own `index_threads`-wide pool) that builds and installs
    /// its pruned top-k index. Publishes never wait on a build — queries
    /// against a version whose index is still in flight silently use the
    /// exact scan — and when appends outrun builds, the builder coalesces
    /// to the newest queued version per model name.
    pub fn spawn_indexed(
        stream: StreamingDpar2,
        meta: ModelMeta,
        registry: Arc<ModelRegistry>,
        index_options: IndexOptions,
        index_threads: usize,
    ) -> Self {
        let builder = Arc::new(IndexBuilder::spawn(index_options, index_threads));
        Self::spawn_inner(stream, meta, registry, Some(builder), None)
    }

    /// [`spawn_indexed`](IngestWorker::spawn_indexed) with telemetry: the
    /// ingest instrumentation of
    /// [`spawn_observed`](IngestWorker::spawn_observed), and the builder
    /// additionally records each version's publish→index-ready staleness
    /// window into `metrics.staleness_ns`.
    pub fn spawn_indexed_observed(
        stream: StreamingDpar2,
        meta: ModelMeta,
        registry: Arc<ModelRegistry>,
        index_options: IndexOptions,
        index_threads: usize,
        metrics: IngestMetrics,
    ) -> Self {
        let builder = Arc::new(IndexBuilder::spawn_observed(
            index_options,
            index_threads,
            metrics.staleness_ns.clone(),
        ));
        Self::spawn_inner(stream, meta, registry, Some(builder), Some(metrics))
    }

    fn spawn_inner(
        mut stream: StreamingDpar2,
        meta: ModelMeta,
        registry: Arc<ModelRegistry>,
        indexer: Option<Arc<IndexBuilder>>,
        metrics: Option<IngestMetrics>,
    ) -> Self {
        let (tx, rx) = channel::unbounded::<Msg>();
        let events = Arc::new(Mutex::new(Vec::new()));
        let events_in_worker = events.clone();
        let metrics_in_worker = metrics.clone();
        let cancel = CancelToken::new();
        let mut cancel_in_worker = cancel.clone();
        let indexer_in_worker = indexer.clone();
        let handle = std::thread::spawn(move || {
            // 1-based ordinal of non-empty batches — the `batch` field of
            // every event and the value of the last-error gauge.
            let mut batch: u64 = 0;
            for msg in rx {
                match msg {
                    Msg::Append(slices) => {
                        if let Some(m) = &metrics_in_worker {
                            m.queue_depth.sub(1);
                        }
                        // An empty batch changes nothing: skip the refit
                        // and the version bump (a spurious publish would
                        // cold-start every cached result for the model).
                        if slices.is_empty() {
                            continue;
                        }
                        batch += 1;
                        let t_batch = Instant::now();
                        if let Some(m) = &metrics_in_worker {
                            m.appends_total.inc();
                        }
                        match stream.append(slices) {
                            Ok(()) => {
                                // The cancel token observes the refit: a
                                // shutdown breaks it at the next iteration
                                // boundary (the partial fit still
                                // publishes), and the stream options'
                                // time_budget bounds it regardless.
                                let t_refit = Instant::now();
                                let fit = match stream.decompose_observed(&mut cancel_in_worker) {
                                    Ok(fit) => fit,
                                    Err(e) => {
                                        // Unreachable after a successful
                                        // non-empty append, but a refit
                                        // error must never kill the worker:
                                        // record it like a failed batch and
                                        // keep serving.
                                        if let Some(m) = &metrics_in_worker {
                                            m.errors.inc();
                                            #[allow(clippy::cast_possible_wrap)]
                                            // batch ≪ i64::MAX
                                            m.last_error_batch.set(batch as i64);
                                        }
                                        record_event(
                                            &events_in_worker,
                                            IngestEvent::AppendFailed {
                                                batch,
                                                error: e.to_string(),
                                            },
                                        );
                                        continue;
                                    }
                                };
                                if let Some(m) = &metrics_in_worker {
                                    m.refit_ns.record_duration(t_refit.elapsed());
                                }
                                let entities = fit.u.len();
                                let mut now = meta.clone();
                                reconcile_labels(&mut now, entities);
                                let version = registry
                                    .publish_arc(&meta.name, ServedModel::from_parts(now, fit));
                                if let Some(m) = &metrics_in_worker {
                                    m.append_ns.record_duration(t_batch.elapsed());
                                }
                                record_event(
                                    &events_in_worker,
                                    IngestEvent::Published {
                                        batch,
                                        version: version.version,
                                        entities,
                                    },
                                );
                                // Indexing happens off this thread too: the
                                // publish above already made the version
                                // servable (exact scan), the enqueue just
                                // upgrades it to indexed when the build
                                // lands.
                                if let Some(builder) = &indexer_in_worker {
                                    builder.enqueue(version);
                                }
                            }
                            Err(e) => {
                                if let Some(m) = &metrics_in_worker {
                                    m.errors.inc();
                                    #[allow(clippy::cast_possible_wrap)] // batch ≪ i64::MAX
                                    m.last_error_batch.set(batch as i64);
                                }
                                record_event(
                                    &events_in_worker,
                                    IngestEvent::AppendFailed { batch, error: e.to_string() },
                                );
                            }
                        }
                    }
                    Msg::Flush(ack) => {
                        // Receiving the barrier means everything before it
                        // was processed; the ack may race a dropped flusher.
                        let _ = ack.send(());
                    }
                    Msg::Shutdown => break,
                }
            }
        });
        IngestWorker { tx, handle: Some(handle), events, metrics, cancel, indexer }
    }

    /// Requests cooperative cancellation of the current and all subsequent
    /// refits: each breaks at its next iteration boundary with
    /// [`StopReason::Cancelled`](dpar2_core::StopReason) and still
    /// publishes. Appends keep flowing; use this to bound refit latency
    /// ahead of a shutdown or failover. Irreversible for this worker.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Enqueues a batch of new slices and returns immediately. The worker
    /// will append, re-decompose, and publish a new model version.
    ///
    /// Returns `false` if the worker thread is gone (only after a panic —
    /// normal shutdown goes through [`IngestWorker::shutdown`]/`Drop`);
    /// the dropped batch is recorded as
    /// [`IngestEvent::WorkerUnavailable`], so even this failure leaves a
    /// trace in [`events`](IngestWorker::events).
    pub fn append(&self, slices: Vec<Mat>) -> bool {
        if let Some(m) = &self.metrics {
            m.queue_depth.add(1);
        }
        if self.tx.send(Msg::Append(slices)).is_ok() {
            return true;
        }
        if let Some(m) = &self.metrics {
            m.queue_depth.sub(1);
        }
        record_event(&self.events, IngestEvent::WorkerUnavailable);
        false
    }

    /// Blocks until every batch enqueued before this call has been
    /// processed (published or recorded as an error). Index builds keep
    /// running in the background — use
    /// [`flush_indexes`](IngestWorker::flush_indexes) to barrier on those
    /// too.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = channel::unbounded::<()>();
        if self.tx.send(Msg::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// [`flush`](IngestWorker::flush), then additionally blocks until the
    /// index of every version published so far is installed (no-op beyond
    /// the plain flush for workers spawned without indexing). Tests and
    /// drain-before-snapshot callers use this; serving paths never need
    /// it — queries fall back to the exact scan until a build lands.
    pub fn flush_indexes(&self) {
        self.flush();
        if let Some(builder) = &self.indexer {
            builder.flush();
        }
    }

    /// Every [`IngestEvent`] so far, in arrival order — publishes, append
    /// failures, and batches dropped because the worker was gone.
    pub fn events(&self) -> Vec<IngestEvent> {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Messages of batches that failed to append, in arrival order — the
    /// [`IngestEvent::AppendFailed`] subset of
    /// [`events`](IngestWorker::events). Successful batches leave no trace
    /// here.
    pub fn errors(&self) -> Vec<String> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .filter_map(|e| match e {
                IngestEvent::AppendFailed { error, .. } => Some(error.clone()),
                _ => None,
            })
            .collect()
    }

    /// Drains pending work, then stops and joins the worker thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            // Cancel first so an in-flight refit (and any queued batches
            // drained before the Shutdown message) cannot block the join
            // for a full ALS run — a publish never blocks a shutdown.
            self.cancel.cancel();
            let _ = self.tx.send(Msg::Shutdown);
            let _ = handle.join();
        }
    }
}

impl Drop for IngestWorker {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_core::{FitOptions, StopReason};
    use dpar2_data::planted_parafac2;
    use std::time::Duration;

    fn config() -> FitOptions<'static> {
        FitOptions::new(2).with_seed(11).with_max_iterations(8)
    }

    #[test]
    fn appends_publish_new_versions() {
        let registry = Arc::new(ModelRegistry::new());
        let worker = IngestWorker::spawn(
            StreamingDpar2::new(config()),
            ModelMeta::new("live").with_dataset("planted"),
            registry.clone(),
        );
        let t = planted_parafac2(&[20, 20, 20, 20], 10, 2, 0.05, 3);
        assert!(worker.append(t.to_slices()[..2].to_vec()));
        worker.flush();
        assert_eq!(registry.version("live"), Some(1));
        assert_eq!(registry.get("live").unwrap().model.entities(), 2);

        assert!(worker.append(t.to_slices()[2..].to_vec()));
        worker.flush();
        assert_eq!(registry.version("live"), Some(2));
        assert_eq!(registry.get("live").unwrap().model.entities(), 4);
        assert!(worker.errors().is_empty());
        worker.shutdown();
    }

    #[test]
    fn refits_honor_a_time_budget_with_typed_stop_reason() {
        // A zero budget stops every refit after its first iteration — the
        // deadline-bounded publish path: the model still publishes, and the
        // typed reason is visible on the served fit.
        let registry = Arc::new(ModelRegistry::new());
        let opts = config().with_tolerance(0.0).with_time_budget(Duration::ZERO);
        let worker = IngestWorker::spawn(
            StreamingDpar2::new(opts),
            ModelMeta::new("budgeted"),
            registry.clone(),
        );
        let t = planted_parafac2(&[20, 20, 20], 10, 2, 0.3, 41);
        assert!(worker.append(t.to_slices()));
        worker.flush();
        let served = registry.get("budgeted").unwrap();
        let fit = served.model.fit();
        assert_eq!(fit.stop_reason, StopReason::TimeBudget);
        assert_eq!(fit.iterations, 1);
        worker.shutdown();
    }

    #[test]
    fn cancellation_bounds_refits_but_still_publishes() {
        let registry = Arc::new(ModelRegistry::new());
        let opts = config().with_tolerance(0.0).with_max_iterations(32);
        let worker = IngestWorker::spawn(
            StreamingDpar2::new(opts),
            ModelMeta::new("cancelled"),
            registry.clone(),
        );
        let t = planted_parafac2(&[20, 20, 20, 20], 10, 2, 0.3, 42);
        // Cancel before the batch: the refit breaks at its first iteration
        // boundary with a typed reason, and the publish still happens.
        worker.cancel();
        assert!(worker.append(t.to_slices()));
        worker.flush();
        let served = registry.get("cancelled").unwrap();
        let fit = served.model.fit();
        assert_eq!(fit.stop_reason, StopReason::Cancelled);
        assert_eq!(fit.iterations, 1);
        assert_eq!(registry.version("cancelled"), Some(1));
        worker.shutdown();
    }

    #[test]
    fn bad_batch_is_recorded_not_fatal() {
        let registry = Arc::new(ModelRegistry::new());
        let worker = IngestWorker::spawn(
            StreamingDpar2::new(config()),
            ModelMeta::new("live"),
            registry.clone(),
        );
        let t = planted_parafac2(&[16, 16], 10, 2, 0.0, 4);
        worker.append(t.to_slices());
        // Wrong column count: append fails, worker keeps running.
        worker.append(vec![Mat::zeros(12, 7)]);
        worker.flush();
        assert_eq!(registry.version("live"), Some(1), "bad batch must not publish");
        let errors = worker.errors();
        assert_eq!(errors.len(), 1);
        // The worker is still alive and can publish after the failure.
        let more = planted_parafac2(&[14, 18, 16], 10, 2, 0.0, 4);
        worker.append(vec![more.slice(2).to_mat()]);
        worker.flush();
        assert_eq!(registry.version("live"), Some(2));
        worker.shutdown();
    }

    #[test]
    fn degenerate_batches_never_kill_the_worker() {
        let registry = Arc::new(ModelRegistry::new());
        let worker = IngestWorker::spawn(
            StreamingDpar2::new(config()),
            ModelMeta::new("live"),
            registry.clone(),
        );
        // Empty batch on a fresh stream: nothing to decompose or publish.
        worker.append(vec![]);
        worker.flush();
        assert_eq!(registry.version("live"), None);
        // Mixed column counts *within* one batch: rejected as an error.
        worker.append(vec![Mat::zeros(8, 5), Mat::zeros(8, 6)]);
        worker.flush();
        assert_eq!(worker.errors().len(), 1);
        // The worker is still alive and serves the next good batch.
        let t = planted_parafac2(&[16, 16], 10, 2, 0.0, 6);
        assert!(worker.append(t.to_slices()));
        worker.flush();
        assert_eq!(registry.version("live"), Some(1));
        // An empty batch *after* data: still a no-op — no refit, no
        // version bump (a spurious publish would cold-start the caches).
        worker.append(vec![]);
        worker.flush();
        assert_eq!(registry.version("live"), Some(1));
        worker.shutdown();
    }

    #[test]
    fn labels_extend_with_the_entity_count() {
        let registry = Arc::new(ModelRegistry::new());
        let t = planted_parafac2(&[14, 14, 14], 10, 2, 0.0, 7);
        let mut stream = StreamingDpar2::new(config());
        stream.append(t.to_slices()[..2].to_vec()).unwrap();
        let meta = ModelMeta::new("labeled").with_entity_labels(vec!["A".into(), "B".into()]);
        let worker = IngestWorker::spawn(stream, meta, registry.clone());
        worker.append(vec![t.slice(2).to_mat()]);
        worker.flush();
        let published = registry.get("labeled").unwrap();
        assert_eq!(published.model.entities(), 3);
        assert_eq!(published.model.label(0), Some("A"));
        assert_eq!(published.model.label(2), Some("entity-2"));
        // The invariant holds, so the published model is persistable.
        let saved = crate::model::SavedModel::new(
            published.model.meta().clone(),
            published.model.fit().clone(),
        );
        assert!(saved.to_bytes().is_ok());
        worker.shutdown();
    }

    #[test]
    fn spawn_indexed_installs_an_index_per_publish() {
        let registry = Arc::new(ModelRegistry::new());
        let worker = IngestWorker::spawn_indexed(
            StreamingDpar2::new(config()),
            ModelMeta::new("indexed"),
            registry.clone(),
            IndexOptions::default(),
            1,
        );
        let t = planted_parafac2(&[16, 16, 16, 16], 10, 2, 0.05, 8);
        worker.append(t.to_slices()[..2].to_vec());
        worker.append(t.to_slices()[2..].to_vec());
        worker.flush_indexes();
        let served = registry.get("indexed").unwrap();
        assert_eq!(served.version, 2);
        let set = served.index().expect("current version indexed after flush_indexes");
        assert_eq!(set.entities(), 4);
        // Indexed answers agree with the exact scan at full probe depth.
        let exact = served.model.top_k(0, 3).unwrap();
        let indexed = set.top_k(&served.model, 0, 3, set.num_partitions_for(0)).unwrap();
        assert_eq!(indexed, exact);
        assert!(worker.errors().is_empty());
        worker.shutdown();
    }

    #[test]
    fn plain_spawn_never_indexes_and_flush_indexes_is_safe() {
        let registry = Arc::new(ModelRegistry::new());
        let worker = IngestWorker::spawn(
            StreamingDpar2::new(config()),
            ModelMeta::new("plain"),
            registry.clone(),
        );
        let t = planted_parafac2(&[16, 16], 10, 2, 0.0, 9);
        worker.append(t.to_slices());
        worker.flush_indexes();
        assert!(registry.get("plain").unwrap().index().is_none());
        worker.shutdown();
    }

    #[test]
    fn events_trace_publishes_and_failures_in_order() {
        let registry = Arc::new(ModelRegistry::new());
        let worker =
            IngestWorker::spawn(StreamingDpar2::new(config()), ModelMeta::new("traced"), registry);
        let t = planted_parafac2(&[16, 16], 10, 2, 0.0, 12);
        worker.append(t.to_slices());
        worker.append(vec![Mat::zeros(12, 7)]); // wrong column count
        worker.append(vec![]); // no-op: no event, no batch ordinal
        let more = planted_parafac2(&[14, 18], 10, 2, 0.0, 12);
        worker.append(vec![more.slice(1).to_mat()]);
        worker.flush();
        let events = worker.events();
        assert_eq!(events.len(), 3);
        assert!(
            matches!(events[0], IngestEvent::Published { batch: 1, version: 1, entities: 2 }),
            "got {:?}",
            events[0]
        );
        assert!(
            matches!(&events[1], IngestEvent::AppendFailed { batch: 2, .. }),
            "got {:?}",
            events[1]
        );
        assert!(
            matches!(events[2], IngestEvent::Published { batch: 3, version: 2, entities: 3 }),
            "got {:?}",
            events[2]
        );
        // errors() is exactly the AppendFailed projection.
        assert_eq!(worker.errors().len(), 1);
        worker.shutdown();
    }

    #[test]
    fn observed_worker_records_ingest_metrics() {
        use dpar2_obs::MetricsRegistry;

        let obs = MetricsRegistry::new();
        let metrics = crate::metrics::IngestMetrics::register(&obs, "ing");
        let registry = Arc::new(ModelRegistry::new());
        let worker = IngestWorker::spawn_observed(
            StreamingDpar2::new(config()),
            ModelMeta::new("metered"),
            registry,
            metrics,
        );
        let t = planted_parafac2(&[16, 16], 10, 2, 0.0, 13);
        worker.append(t.to_slices());
        worker.append(vec![Mat::zeros(12, 7)]); // fails: wrong column count
        worker.flush();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("ing_appends_total"), Some(2));
        assert_eq!(snap.counter("ing_errors_total"), Some(1));
        assert_eq!(snap.gauge("ing_last_error_batch"), Some(2));
        assert_eq!(snap.gauge("ing_queue_depth"), Some(0), "drained queue reads zero");
        let append = snap.histogram("ing_append_ns").unwrap();
        assert_eq!(append.count, 1, "only the published batch records latency");
        let refit = snap.histogram("ing_refit_ns").unwrap();
        assert_eq!(refit.count, 1);
        assert!(refit.max <= append.max, "refit is a sub-span of the batch");
        worker.shutdown();
    }

    #[test]
    fn observed_indexed_worker_records_staleness() {
        use dpar2_obs::MetricsRegistry;

        let obs = MetricsRegistry::new();
        let metrics = crate::metrics::IngestMetrics::register(&obs, "ing");
        let registry = Arc::new(ModelRegistry::new());
        let worker = IngestWorker::spawn_indexed_observed(
            StreamingDpar2::new(config()),
            ModelMeta::new("stale"),
            registry.clone(),
            IndexOptions::default(),
            1,
            metrics,
        );
        let t = planted_parafac2(&[16, 16, 16, 16], 10, 2, 0.05, 14);
        worker.append(t.to_slices()[..2].to_vec());
        worker.append(t.to_slices()[2..].to_vec());
        worker.flush_indexes();
        assert!(registry.get("stale").unwrap().index().is_some());
        let staleness = obs.snapshot().histogram("ing_staleness_ns").unwrap().clone();
        // Both publishes were indexed (no coalescing pressure at this
        // pace is not guaranteed, so at least the surviving newest one).
        assert!(staleness.count >= 1, "publish→index-ready window must be recorded");
        assert!(staleness.min > 0, "the window is a real elapsed duration");
        worker.shutdown();
    }

    #[test]
    fn drop_joins_cleanly_with_pending_work() {
        let registry = Arc::new(ModelRegistry::new());
        let t = planted_parafac2(&[18, 18], 9, 2, 0.0, 5);
        {
            let worker = IngestWorker::spawn(
                StreamingDpar2::new(config()),
                ModelMeta::new("drop-test"),
                registry.clone(),
            );
            worker.append(t.to_slices());
            // No flush: Drop must still drain and join without deadlock.
        }
        assert_eq!(registry.version("drop-test"), Some(1));
    }
}
