//! RD-ALS — Cheng & Haardt, *"Efficient computation of the PARAFAC2
//! decomposition"*, Asilomar 2019 (reference 18 of the paper).
//!
//! RD-ALS ("Rank-reduction + Direct-fitting ALS") preprocesses the tensor
//! once: a rank-`R` truncated SVD of the column-wise concatenation
//!
//! ```text
//! [X_1ᵀ ∥ X_2ᵀ ∥ … ∥ X_Kᵀ] ∈ R^{J×(Σ_k I_k)} ≈ V_c Σ W ᵀ
//! ```
//!
//! yields a shared column basis `V_c ∈ R^{J×R}`; each slice is projected to
//! `X̃_k = X_k V_c ∈ R^{I_k×R}` and PARAFAC2-ALS runs on the *reduced*
//! slices (`J → R` columns). The full `V` is recovered as `V_c Ṽ`.
//!
//! Two properties the DPar2 paper calls out — and that this implementation
//! reproduces — limit RD-ALS:
//!
//! 1. the preprocessing SVD touches a `J × Σ I_k` matrix, costing
//!    `O(Σ_k I_k J²)`-ish work versus DPar2's `O(Σ_k I_k J R)`
//!    (Fig. 9(a): up to 10× slower preprocessing);
//! 2. convergence is checked on the **true** reconstruction error
//!    `Σ_k ‖X_k − Q_k H S_k Vᵀ‖²_F` against the raw slices every iteration
//!    (Fig. 9(b): up to 10.3× slower iterations than DPar2's compressed
//!    criterion).

use crate::common::{
    identity_qs, init_factors, scale_columns, true_error_sq_ws, update_q_into, validate_rank,
};
use dpar2_core::{
    FitObserver, FitOptions, FitPhase, FitSession, NoopObserver, Parafac2Fit, Parafac2Solver,
    Result, TimingBreakdown,
};
use dpar2_linalg::{pinv_into, svd::svd_truncated, Mat};
use dpar2_parallel::{greedy_partition, ThreadPool};
use dpar2_tensor::{mttkrp_into, normalize_columns_mut, Dense3, IrregularTensor};
use std::time::Instant;

/// The RD-ALS solver — a stateless [`Parafac2Solver`] handle; all per-fit
/// settings travel in [`FitOptions`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RdAls;

impl RdAls {
    /// Preprocesses the tensor: truncated SVD of the slice concatenation,
    /// returning `(V_c, {X̃_k})`. Exposed for the Fig. 9(a)/Fig. 10
    /// harness, which times and sizes preprocessing separately.
    pub fn preprocess(&self, tensor: &IrregularTensor, rank: usize) -> (Mat, Vec<Mat>) {
        // [X_1ᵀ ∥ … ∥ X_Kᵀ] = (vstack_k X_k)ᵀ; the tensor's contiguous
        // backing buffer *is* that vertical stack, so `stacked()` feeds the
        // SVD a zero-copy view (it transposes internally) and V_c is read
        // off the right factor of the stacked form.
        let f = svd_truncated(tensor.stacked(), rank);
        let v_c = f.v; // J×R
        let reduced: Vec<Mat> =
            tensor.slice_views().map(|x| x.matmul(&v_c).expect("X_k·V_c")).collect();
        (v_c, reduced)
    }

    /// Size in `f64`s of RD-ALS's preprocessed data (`V_c` + reduced
    /// slices) — the Fig. 10 metric.
    pub fn preprocessed_size_floats(tensor: &IrregularTensor, rank: usize) -> usize {
        tensor.j() * rank + tensor.total_rows() * rank
    }

    /// Fits the PARAFAC2 model: rank-reduction preprocessing + ALS on the
    /// reduced slices with true-error convergence checks.
    ///
    /// # Errors
    /// [`dpar2_core::Dpar2Error::RankTooLarge`] / `ZeroRank` on invalid
    /// rank; `WarmStart` on mismatched warm-start factors.
    pub fn fit(&self, tensor: &IrregularTensor, options: &FitOptions<'_>) -> Result<Parafac2Fit> {
        self.fit_observed(tensor, options, &mut NoopObserver)
    }

    /// [`RdAls::fit`] with a [`FitObserver`] session.
    ///
    /// # Errors
    /// See [`RdAls::fit`].
    pub fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        let t0 = Instant::now();
        let r = options.rank;
        validate_rank(tensor, r)?;
        let k_dim = tensor.k();
        // Pool for the per-iteration true-error convergence check against
        // the raw slices — RD-ALS's per-iteration bottleneck (Fig. 9(b)).
        // Shared with the other baselines so method-comparison timings stay
        // about algorithmic cost; bit-identical for every pool size.
        let pool = ThreadPool::new(options.threads.max(1));

        // ---- Preprocessing ----
        let (v_c, reduced) = self.preprocess(tensor, r);
        let reduced_tensor = IrregularTensor::new(reduced);
        let preprocess_secs = t0.elapsed().as_secs_f64();

        // ---- ALS on reduced slices ----
        // Kiers init in the reduced space, or the caller's warm start
        // projected onto the reduced column basis (`Ṽ = V_cᵀ V`, exact when
        // the warm `V` lies in span(V_c) — V_c is orthonormal).
        let (mut h, mut v_t, mut w) = match options.warm_start {
            None => init_factors(&reduced_tensor, options)?,
            Some(_) => {
                // Validation lives in init_factors (against the FULL
                // tensor's J); only the V_c-projection is RD-ALS-specific:
                // Ṽ = V_cᵀ V, exact when V lies in span(V_c) (V_c is
                // orthonormal).
                let (h, v_full, w) = init_factors(tensor, options)?;
                (h, v_c.matmul_tn(&v_full).expect("V_cᵀ·V"), w)
            }
        };
        // Q_k buffers, updated in place every iteration (no per-iteration
        // Vec churn); `Y` is a persistent R×R×K tensor whose slices are
        // overwritten in place.
        let mut qs: Vec<Mat> = (0..k_dim).map(|_| Mat::default()).collect();
        let mut y = Dense3::zeros(r, r, k_dim);

        // Data norm for the absolute branch of the shared stopping rule,
        // and the loop-invariant slice partition for the pooled error check.
        let x_norm_sq = tensor.fro_norm_sq();
        let partition = greedy_partition(&tensor.row_dims(), pool.threads());

        // Persistent staging buffers (grown once, reused every iteration).
        let mut vs_buf = Mat::default();
        let mut vsh = Mat::default();
        let mut target = Mat::default();
        let mut g_out = Mat::default();
        let mut gram_a = Mat::default();
        let mut gram_b = Mat::default();
        let mut pinv_buf = Mat::default();
        // One staging buffer per factor (capacities differ, and the swap
        // idiom would otherwise re-grow a shared buffer every iteration).
        let mut next_h = Mat::default();
        let mut next_v = Mat::default();
        let mut next_w = Mat::default();
        let mut v_full = Mat::default();

        let mut session = FitSession::new(options, observer);
        session.phase(FitPhase::Compress, preprocess_secs);
        for _iter in 0..options.max_iterations {
            session.start_iteration();
            let ws = session.workspace();

            for k in 0..k_dim {
                vs_buf.copy_from(&v_t);
                scale_columns(&mut vs_buf, w.row(k));
                vs_buf.matmul_nt_into(&h, &mut vsh); // Ṽ S_k Hᵀ
                reduced_tensor.slice(k).matmul_into(&vsh, &mut target); // X̃_k·ṼSHᵀ
                update_q_into(
                    &target,
                    r,
                    &mut qs[k],
                    &mut ws.svd_out,
                    &mut ws.svd_tmp,
                    &mut ws.svd,
                );
            }

            for k in 0..k_dim {
                qs[k].matmul_tn_into(reduced_tensor.slice(k), y.slice_mut(k)); // Q_kᵀX̃_k
            }

            mttkrp_into(&y, &h, &v_t, &w, 1, &mut g_out, &mut ws.mttkrp);
            w.gram_into(&mut gram_a);
            v_t.gram_into(&mut gram_b);
            gram_a.hadamard_assign(&gram_b); // WᵀW∗ṼᵀṼ
            pinv_into(&gram_a, &mut pinv_buf, &mut ws.svd_tmp, &mut ws.svd);
            g_out.matmul_into(&pinv_buf, &mut next_h); // H update
            std::mem::swap(&mut h, &mut next_h);
            normalize_columns_mut(&mut h, &mut ws.norms);

            mttkrp_into(&y, &h, &v_t, &w, 2, &mut g_out, &mut ws.mttkrp);
            w.gram_into(&mut gram_a);
            h.gram_into(&mut gram_b);
            gram_a.hadamard_assign(&gram_b); // WᵀW∗HᵀH
            pinv_into(&gram_a, &mut pinv_buf, &mut ws.svd_tmp, &mut ws.svd);
            g_out.matmul_into(&pinv_buf, &mut next_v); // Ṽ update
            std::mem::swap(&mut v_t, &mut next_v);
            normalize_columns_mut(&mut v_t, &mut ws.norms);

            mttkrp_into(&y, &h, &v_t, &w, 3, &mut g_out, &mut ws.mttkrp);
            v_t.gram_into(&mut gram_a);
            h.gram_into(&mut gram_b);
            gram_a.hadamard_assign(&gram_b); // ṼᵀṼ∗HᵀH
            pinv_into(&gram_a, &mut pinv_buf, &mut ws.svd_tmp, &mut ws.svd);
            g_out.matmul_into(&pinv_buf, &mut next_w); // W update
            std::mem::swap(&mut w, &mut next_w);

            // The expensive part the paper highlights: the *true*
            // reconstruction error against the ORIGINAL slices.
            v_c.matmul_into(&v_t, &mut v_full);
            let err = true_error_sq_ws(tensor, &qs, &h, &w, &v_full, &pool, &partition, ws);
            if session.finish_iteration(err, x_norm_sq) {
                break;
            }
        }
        let outcome = session.finish();
        if outcome.iterations() == 0 {
            // Zero-iteration budget: identity-embedded Q_k keep the model
            // well-formed (see `common::identity_qs`).
            qs = identity_qs(tensor, r);
        }

        let v = v_c.matmul(&v_t).expect("V_c·Ṽ");
        let u: Vec<Mat> = qs.iter().map(|q| q.matmul(&h).expect("Q_k·H")).collect();
        let s: Vec<Vec<f64>> = (0..k_dim).map(|k| w.row(k).to_vec()).collect();

        Ok(Parafac2Fit {
            u,
            s,
            v,
            h,
            iterations: outcome.iterations(),
            stop_reason: outcome.stop_reason,
            timing: TimingBreakdown {
                preprocess_secs,
                iterations_secs: outcome.iterations_secs(),
                per_iteration_secs: outcome.per_iteration_secs,
                total_secs: t0.elapsed().as_secs_f64(),
            },
            criterion_trace: outcome.criterion_trace,
        })
    }
}

impl Parafac2Solver for RdAls {
    fn name(&self) -> &'static str {
        "RD-ALS"
    }

    fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        RdAls::fit_observed(self, tensor, options, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parafac2_als::tests::planted;
    use crate::parafac2_als::Parafac2Als;

    #[test]
    fn fits_planted_data() {
        let t = planted(&[20, 30, 25], 12, 3, 0.0, 801);
        let fit = RdAls.fit(&t, &FitOptions::new(3)).unwrap();
        let f = fit.fitness(&t);
        assert!(f > 0.98, "RD-ALS fitness {f}");
    }

    #[test]
    fn projection_basis_is_orthonormal() {
        let t = planted(&[15, 22], 10, 2, 0.1, 802);
        let (v_c, reduced) = RdAls.preprocess(&t, 2);
        assert_eq!(v_c.shape(), (10, 2));
        assert!((&v_c.gram() - &Mat::eye(2)).fro_norm() < 1e-9);
        assert_eq!(reduced.len(), 2);
        assert_eq!(reduced[0].shape(), (15, 2));
    }

    #[test]
    fn preprocessing_captures_dominant_subspace() {
        // On noiseless planted data the projection loses nothing: fitness
        // of RD-ALS must match plain PARAFAC2-ALS closely.
        let t = planted(&[25, 35, 20], 14, 3, 0.0, 803);
        let cfg = FitOptions::new(3).with_max_iterations(20);
        let rd = RdAls.fit(&t, &cfg).unwrap();
        let als = Parafac2Als.fit(&t, &cfg).unwrap();
        let (fr, fa) = (rd.fitness(&t), als.fitness(&t));
        assert!((fr - fa).abs() < 0.02, "RD-ALS {fr} vs ALS {fa}");
    }

    #[test]
    fn error_trace_nonincreasing() {
        let t = planted(&[25, 18, 30], 10, 2, 0.2, 804);
        let fit =
            RdAls.fit(&t, &FitOptions::new(2).with_tolerance(0.0).with_max_iterations(12)).unwrap();
        for pair in fit.criterion_trace.windows(2) {
            // The reduced-space ALS minimizes a projected objective, so the
            // true error can wobble at rounding scale but not diverge.
            assert!(pair[1] <= pair[0] * 1.01, "RD-ALS error diverged: {:?}", fit.criterion_trace);
        }
    }

    #[test]
    fn timing_separates_preprocessing() {
        let t = planted(&[30, 30], 12, 2, 0.1, 805);
        let fit = RdAls.fit(&t, &FitOptions::new(2)).unwrap();
        assert!(fit.timing.preprocess_secs > 0.0);
        assert!(fit.timing.iterations_secs > 0.0);
    }

    #[test]
    fn preprocessed_size_formula() {
        let t = planted(&[10, 20], 8, 2, 0.0, 806);
        // V_c: 8×2 + reduced slices: (10+20)×2 = 16 + 60.
        assert_eq!(RdAls::preprocessed_size_floats(&t, 2), 76);
    }

    #[test]
    fn rejects_invalid_rank() {
        let t = planted(&[6, 30], 14, 2, 0.0, 807);
        assert!(RdAls.fit(&t, &FitOptions::new(7)).is_err());
    }
}
