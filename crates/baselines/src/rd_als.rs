//! RD-ALS — Cheng & Haardt, *"Efficient computation of the PARAFAC2
//! decomposition"*, Asilomar 2019 (reference 18 of the paper).
//!
//! RD-ALS ("Rank-reduction + Direct-fitting ALS") preprocesses the tensor
//! once: a rank-`R` truncated SVD of the column-wise concatenation
//!
//! ```text
//! [X_1ᵀ ∥ X_2ᵀ ∥ … ∥ X_Kᵀ] ∈ R^{J×(Σ_k I_k)} ≈ V_c Σ W ᵀ
//! ```
//!
//! yields a shared column basis `V_c ∈ R^{J×R}`; each slice is projected to
//! `X̃_k = X_k V_c ∈ R^{I_k×R}` and PARAFAC2-ALS runs on the *reduced*
//! slices (`J → R` columns). The full `V` is recovered as `V_c Ṽ`.
//!
//! Two properties the DPar2 paper calls out — and that this implementation
//! reproduces — limit RD-ALS:
//!
//! 1. the preprocessing SVD touches a `J × Σ I_k` matrix, costing
//!    `O(Σ_k I_k J²)`-ish work versus DPar2's `O(Σ_k I_k J R)`
//!    (Fig. 9(a): up to 10× slower preprocessing);
//! 2. convergence is checked on the **true** reconstruction error
//!    `Σ_k ‖X_k − Q_k H S_k Vᵀ‖²_F` against the raw slices every iteration
//!    (Fig. 9(b): up to 10.3× slower iterations than DPar2's compressed
//!    criterion).

use crate::common::{
    converged, init_v, scale_columns, true_error_sq_pooled, update_q, validate_rank, AlsConfig,
};
use dpar2_core::{Parafac2Fit, Result, TimingBreakdown};
use dpar2_linalg::{pinv, svd::svd_truncated, Mat};
use dpar2_parallel::ThreadPool;
use dpar2_tensor::{mttkrp, normalize_columns, Dense3, IrregularTensor};
use std::time::Instant;

/// The RD-ALS solver.
#[derive(Debug, Clone)]
pub struct RdAls {
    config: AlsConfig,
    /// Pool for the per-iteration true-error convergence check against the
    /// raw slices — RD-ALS's per-iteration bottleneck (Fig. 9(b)). Shared
    /// with the other baselines so method-comparison timings stay about
    /// algorithmic cost; bit-identical for every pool size.
    pool: ThreadPool,
}

impl RdAls {
    /// Creates a solver with the given configuration.
    pub fn new(config: AlsConfig) -> Self {
        let pool = ThreadPool::new(config.threads.max(1));
        RdAls { config, pool }
    }

    /// Preprocesses the tensor: truncated SVD of the slice concatenation,
    /// returning `(V_c, {X̃_k})`. Exposed for the Fig. 9(a)/Fig. 10
    /// harness, which times and sizes preprocessing separately.
    pub fn preprocess(&self, tensor: &IrregularTensor) -> (Mat, Vec<Mat>) {
        // [X_1ᵀ ∥ … ∥ X_Kᵀ] = (vstack_k X_k)ᵀ; we feed the tall stack to the
        // SVD directly (it transposes internally) and read V_c off the
        // right factor of the stacked form.
        let stacked = Mat::vstack_all(&tensor.slices().iter().collect::<Vec<_>>());
        let f = svd_truncated(&stacked, self.config.rank);
        let v_c = f.v; // J×R
        let reduced: Vec<Mat> =
            tensor.slices().iter().map(|x| x.matmul(&v_c).expect("X_k·V_c")).collect();
        (v_c, reduced)
    }

    /// Size in `f64`s of RD-ALS's preprocessed data (`V_c` + reduced
    /// slices) — the Fig. 10 metric.
    pub fn preprocessed_size_floats(tensor: &IrregularTensor, rank: usize) -> usize {
        tensor.j() * rank + tensor.total_rows() * rank
    }

    /// Fits the PARAFAC2 model: rank-reduction preprocessing + ALS on the
    /// reduced slices with true-error convergence checks.
    ///
    /// # Errors
    /// [`dpar2_core::Dpar2Error::RankTooLarge`] / `ZeroRank` on invalid rank.
    pub fn fit(&self, tensor: &IrregularTensor) -> Result<Parafac2Fit> {
        let t0 = Instant::now();
        let r = self.config.rank;
        validate_rank(tensor, r)?;
        let k_dim = tensor.k();

        // ---- Preprocessing ----
        let (v_c, reduced) = self.preprocess(tensor);
        let reduced_tensor = IrregularTensor::new(reduced);
        let preprocess_secs = t0.elapsed().as_secs_f64();

        // ---- ALS on reduced slices ----
        let mut h = Mat::eye(r);
        // Init Ṽ from the reduced tensor (Kiers init in the reduced space).
        let mut v_t = init_v(&reduced_tensor, r);
        let mut w = Mat::ones(k_dim, r);
        let mut qs: Vec<Mat> = Vec::with_capacity(k_dim);

        let mut criterion_trace = Vec::new();
        let mut per_iteration_secs = Vec::new();
        let mut iterations = 0;

        // Data norm for the absolute branch of the shared stopping rule.
        let x_norm_sq = tensor.fro_norm_sq();

        for _iter in 0..self.config.max_iterations {
            let it0 = Instant::now();

            qs.clear();
            for k in 0..k_dim {
                let mut vs = v_t.clone();
                scale_columns(&mut vs, w.row(k));
                let vsh = vs.matmul_nt(&h).expect("Ṽ S_k Hᵀ");
                let target = reduced_tensor.slice(k).matmul(&vsh).expect("X̃_k·ṼSHᵀ");
                qs.push(update_q(&target, r));
            }

            let yks: Vec<Mat> = (0..k_dim)
                .map(|k| qs[k].matmul_tn(reduced_tensor.slice(k)).expect("Q_kᵀX̃_k"))
                .collect();
            let y = Dense3::from_frontal_slices(yks);

            let g1 = mttkrp(&y, &h, &v_t, &w, 1);
            h = g1
                .matmul(&pinv(&w.gram().hadamard(&v_t.gram()).expect("WᵀW∗ṼᵀṼ")))
                .expect("H update");
            let (hn, _) = normalize_columns(&h);
            h = hn;

            let g2 = mttkrp(&y, &h, &v_t, &w, 2);
            v_t = g2
                .matmul(&pinv(&w.gram().hadamard(&h.gram()).expect("WᵀW∗HᵀH")))
                .expect("Ṽ update");
            let (vn, _) = normalize_columns(&v_t);
            v_t = vn;

            let g3 = mttkrp(&y, &h, &v_t, &w, 3);
            w = g3
                .matmul(&pinv(&v_t.gram().hadamard(&h.gram()).expect("ṼᵀṼ∗HᵀH")))
                .expect("W update");

            iterations += 1;
            // The expensive part the paper highlights: the *true*
            // reconstruction error against the ORIGINAL slices.
            let v_full = v_c.matmul(&v_t).expect("V_c·Ṽ");
            let err = true_error_sq_pooled(tensor, &qs, &h, &w, &v_full, &self.pool);
            per_iteration_secs.push(it0.elapsed().as_secs_f64());
            let done =
                converged(criterion_trace.last().copied(), err, x_norm_sq, self.config.tolerance);
            criterion_trace.push(err);
            if done {
                break;
            }
        }

        let v = v_c.matmul(&v_t).expect("V_c·Ṽ");
        let u: Vec<Mat> = qs.iter().map(|q| q.matmul(&h).expect("Q_k·H")).collect();
        let s: Vec<Vec<f64>> = (0..k_dim).map(|k| w.row(k).to_vec()).collect();
        let iterations_secs: f64 = per_iteration_secs.iter().sum();

        Ok(Parafac2Fit {
            u,
            s,
            v,
            h,
            iterations,
            criterion_trace,
            timing: TimingBreakdown {
                preprocess_secs,
                iterations_secs,
                per_iteration_secs,
                total_secs: t0.elapsed().as_secs_f64(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parafac2_als::tests::planted;
    use crate::parafac2_als::Parafac2Als;

    #[test]
    fn fits_planted_data() {
        let t = planted(&[20, 30, 25], 12, 3, 0.0, 801);
        let fit = RdAls::new(AlsConfig::new(3)).fit(&t).unwrap();
        let f = fit.fitness(&t);
        assert!(f > 0.98, "RD-ALS fitness {f}");
    }

    #[test]
    fn projection_basis_is_orthonormal() {
        let t = planted(&[15, 22], 10, 2, 0.1, 802);
        let (v_c, reduced) = RdAls::new(AlsConfig::new(2)).preprocess(&t);
        assert_eq!(v_c.shape(), (10, 2));
        assert!((&v_c.gram() - &Mat::eye(2)).fro_norm() < 1e-9);
        assert_eq!(reduced.len(), 2);
        assert_eq!(reduced[0].shape(), (15, 2));
    }

    #[test]
    fn preprocessing_captures_dominant_subspace() {
        // On noiseless planted data the projection loses nothing: fitness
        // of RD-ALS must match plain PARAFAC2-ALS closely.
        let t = planted(&[25, 35, 20], 14, 3, 0.0, 803);
        let cfg = AlsConfig::new(3).with_max_iterations(20);
        let rd = RdAls::new(cfg.clone()).fit(&t).unwrap();
        let als = Parafac2Als::new(cfg).fit(&t).unwrap();
        let (fr, fa) = (rd.fitness(&t), als.fitness(&t));
        assert!((fr - fa).abs() < 0.02, "RD-ALS {fr} vs ALS {fa}");
    }

    #[test]
    fn error_trace_nonincreasing() {
        let t = planted(&[25, 18, 30], 10, 2, 0.2, 804);
        let fit = RdAls::new(AlsConfig::new(2).with_tolerance(0.0).with_max_iterations(12))
            .fit(&t)
            .unwrap();
        for pair in fit.criterion_trace.windows(2) {
            // The reduced-space ALS minimizes a projected objective, so the
            // true error can wobble at rounding scale but not diverge.
            assert!(pair[1] <= pair[0] * 1.01, "RD-ALS error diverged: {:?}", fit.criterion_trace);
        }
    }

    #[test]
    fn timing_separates_preprocessing() {
        let t = planted(&[30, 30], 12, 2, 0.1, 805);
        let fit = RdAls::new(AlsConfig::new(2)).fit(&t).unwrap();
        assert!(fit.timing.preprocess_secs > 0.0);
        assert!(fit.timing.iterations_secs > 0.0);
    }

    #[test]
    fn preprocessed_size_formula() {
        let t = planted(&[10, 20], 8, 2, 0.0, 806);
        // V_c: 8×2 + reduced slices: (10+20)×2 = 16 + 60.
        assert_eq!(RdAls::preprocessed_size_floats(&t, 2), 76);
    }

    #[test]
    fn rejects_invalid_rank() {
        let t = planted(&[6, 30], 14, 2, 0.0, 807);
        assert!(RdAls::new(AlsConfig::new(7)).fit(&t).is_err());
    }
}
