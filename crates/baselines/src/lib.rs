//! # dpar2-baselines
//!
//! The three PARAFAC2 solvers the DPar2 paper compares against (§IV-A
//! "Competitors"), implemented from their algorithm descriptions — exactly
//! as the authors did for RD-ALS ("Since there is no public code, we
//! implement it … based on its paper"):
//!
//! * [`Parafac2Als`] — the classic direct-fitting ALS of Kiers, ten Berge &
//!   Bro (1999); Algorithm 2 of the paper. Materializes `Y` and the
//!   Khatri-Rao products (`O(JKR²)` per iteration) and checks convergence
//!   on the true reconstruction error.
//! * [`RdAls`] — Cheng & Haardt (2019): preprocesses with one truncated SVD
//!   of the column-wise concatenation `[X_1ᵀ ∥ … ∥ X_Kᵀ] ∈ R^{J×ΣI_k}`,
//!   iterates on rank-reduced slices, but (as the paper stresses) still
//!   evaluates the *true* reconstruction error each iteration.
//! * [`SpartanDense`] — SPARTan (Perros et al., 2017) adapted to dense
//!   slices: identical maths to PARAFAC2-ALS but with slice-parallel `Q_k`
//!   updates and an MTTKRP that accumulates per-slice contributions without
//!   materializing unfoldings (their scheduling idea, which loses its main
//!   advantage without sparsity — Fig. 9 of the paper).
//!
//! Plus the §III-C ablation [`NaiveCompressedAls`] (compress, reconstruct,
//! iterate at full cost), and [`SpartanSparse`] — SPARTan on *actually
//! sparse* CSR tensors (its native workload), with per-iteration cost and
//! memory proportional to `nnz` and fits that are bit-identical for every
//! thread count.
//!
//! Every solver — including `dpar2_core::Dpar2` — implements
//! [`Parafac2Solver`], takes the same [`FitOptions`], and produces the
//! shared [`dpar2_core::Parafac2Fit`], so harness code treats all methods
//! uniformly. [`Method`] (with `FromStr`/`Display`) plus [`fit_with`] give
//! a dynamic, name-addressable registry for sweeps.

pub mod common;
pub mod naive_compressed;
pub mod parafac2_als;
pub mod rd_als;
pub mod spartan;
pub mod spartan_sparse;

pub use naive_compressed::NaiveCompressedAls;
pub use parafac2_als::Parafac2Als;
pub use rd_als::RdAls;
pub use spartan::SpartanDense;
pub use spartan_sparse::SpartanSparse;

use dpar2_core::{Dpar2, FitObserver, FitOptions, Parafac2Fit, Parafac2Solver, Result};
use dpar2_tensor::{IrregularTensor, SparseIrregularTensor};
use std::fmt;
use std::str::FromStr;

/// The solver registry: the four methods of the paper's evaluation plus
/// the §III-C naive-compression ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// DPar2 (the paper's contribution, from `dpar2-core`).
    Dpar2,
    /// RD-ALS (Cheng & Haardt 2019).
    RdAls,
    /// PARAFAC2-ALS (Kiers et al. 1999).
    Parafac2Als,
    /// SPARTan adapted to dense slices (Perros et al. 2017).
    Spartan,
    /// SPARTan on CSR slices — its native sparse workload.
    SpartanSparse,
    /// Compress-reconstruct-iterate ablation (§III-C).
    NaiveCompressed,
}

impl Method {
    /// The paper's four evaluated methods, in the order its figures list
    /// them (the ablation is not part of the figure set; see
    /// [`Method::WITH_ABLATION`]).
    pub const ALL: [Method; 4] =
        [Method::Dpar2, Method::RdAls, Method::Parafac2Als, Method::Spartan];

    /// Every registered solver, including the sparse SPARTan variant and
    /// the §III-C ablation.
    pub const WITH_ABLATION: [Method; 6] = [
        Method::Dpar2,
        Method::RdAls,
        Method::Parafac2Als,
        Method::Spartan,
        Method::SpartanSparse,
        Method::NaiveCompressed,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Dpar2 => "DPar2",
            Method::RdAls => "RD-ALS",
            Method::Parafac2Als => "PARAFAC2-ALS",
            Method::Spartan => "SPARTan",
            Method::SpartanSparse => "SPARTan-sparse",
            Method::NaiveCompressed => "NaiveCompressed",
        }
    }

    /// Constructs the solver behind this name.
    pub fn solver(&self) -> Box<dyn Parafac2Solver> {
        match self {
            Method::Dpar2 => Box::new(Dpar2),
            Method::RdAls => Box::new(RdAls),
            Method::Parafac2Als => Box::new(Parafac2Als),
            Method::Spartan => Box::new(SpartanDense),
            Method::SpartanSparse => Box::new(SpartanSparse),
            Method::NaiveCompressed => Box::new(NaiveCompressedAls),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for an unrecognized method name (lists the valid spellings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMethodError {
    /// The string that failed to parse.
    pub input: String,
}

impl fmt::Display for ParseMethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown method {:?} (expected one of: dpar2, rd-als, parafac2-als, spartan, \
             spartan-sparse, naive-compressed)",
            self.input
        )
    }
}

impl std::error::Error for ParseMethodError {}

impl FromStr for Method {
    type Err = ParseMethodError;

    /// Case-insensitive; accepts the paper display names plus short
    /// aliases (`als` for PARAFAC2-ALS, `rdals`, `naive`).
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dpar2" => Ok(Method::Dpar2),
            "rd-als" | "rdals" | "rd_als" => Ok(Method::RdAls),
            "parafac2-als" | "parafac2als" | "parafac2_als" | "als" => Ok(Method::Parafac2Als),
            "spartan" => Ok(Method::Spartan),
            "spartan-sparse" | "spartansparse" | "spartan_sparse" | "sparse" => {
                Ok(Method::SpartanSparse)
            }
            "naive-compressed" | "naivecompressed" | "naive_compressed" | "naive" => {
                Ok(Method::NaiveCompressed)
            }
            _ => Err(ParseMethodError { input: s.to_string() }),
        }
    }
}

/// Runs the chosen method on `tensor` with the shared fit options — a thin
/// veneer over `method.solver().fit(...)`, plus the sparse auto-dispatch
/// described on [`FitOptions::sparse_threshold`]: when the threshold is
/// set, the method is [`Method::Dpar2`], and the tensor's nonzero density
/// is strictly below the threshold, the input is sparsified (one CSR
/// conversion) and routed through [`Dpar2::fit_sparse`], making the whole
/// compression stage O(nnz). The decision lands on the observer's
/// `on_input_shape` hook (and through it on the fit metrics'
/// `sparse_dispatch` gauge).
///
/// # Errors
/// Propagates rank-validation and warm-start errors (identical across
/// methods).
pub fn fit_with(
    method: Method,
    tensor: &IrregularTensor,
    options: &FitOptions<'_>,
) -> Result<Parafac2Fit> {
    fit_with_observer(method, tensor, options, &mut dpar2_core::NoopObserver)
}

/// [`fit_with`] with a [`FitObserver`] session.
///
/// # Errors
/// See [`fit_with`].
pub fn fit_with_observer(
    method: Method,
    tensor: &IrregularTensor,
    options: &FitOptions<'_>,
    observer: &mut dyn FitObserver,
) -> Result<Parafac2Fit> {
    if method == Method::Dpar2 {
        if let Some(threshold) = options.sparse_threshold {
            let cells = tensor.num_entries();
            let density = if cells == 0 { 1.0 } else { tensor.nnz() as f64 / cells as f64 };
            if density < threshold {
                let sparse = SparseIrregularTensor::from_dense(tensor);
                return Dpar2.fit_sparse_observed(&sparse, options, observer);
            }
        }
    }
    method.solver().fit_observed(tensor, options, observer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_str_round_trips_display() {
        for m in Method::WITH_ABLATION {
            assert_eq!(m.name().parse::<Method>().unwrap(), m, "{m} display must parse back");
            assert_eq!(m.to_string(), m.name());
        }
    }

    #[test]
    fn from_str_is_case_insensitive_with_aliases() {
        assert_eq!("DPAR2".parse::<Method>().unwrap(), Method::Dpar2);
        assert_eq!("rdals".parse::<Method>().unwrap(), Method::RdAls);
        assert_eq!("als".parse::<Method>().unwrap(), Method::Parafac2Als);
        assert_eq!("Spartan".parse::<Method>().unwrap(), Method::Spartan);
        assert_eq!("sparse".parse::<Method>().unwrap(), Method::SpartanSparse);
        assert_eq!("SPARTAN_SPARSE".parse::<Method>().unwrap(), Method::SpartanSparse);
        assert_eq!("naive".parse::<Method>().unwrap(), Method::NaiveCompressed);
        let err = "pca".parse::<Method>().unwrap_err();
        assert!(err.to_string().contains("pca"));
    }

    #[test]
    fn registry_names_match_solvers() {
        for m in Method::WITH_ABLATION {
            assert_eq!(m.solver().name(), m.name());
        }
    }

    /// Captures the `on_input_shape` hook so the dispatch decision is
    /// observable without a metrics registry.
    struct CaptureDispatch {
        nnz: u64,
        num_cells: u64,
        sparse_path: Option<bool>,
    }

    impl FitObserver for CaptureDispatch {
        fn on_iteration(
            &mut self,
            _: &dpar2_core::IterationEvent,
        ) -> std::ops::ControlFlow<dpar2_core::StopReason> {
            std::ops::ControlFlow::Continue(())
        }

        fn on_input_shape(&mut self, nnz: u64, num_cells: u64, sparse_path: bool) {
            self.nnz = nnz;
            self.num_cells = num_cells;
            self.sparse_path = Some(sparse_path);
        }
    }

    #[test]
    fn sparse_threshold_auto_dispatches_dpar2() {
        use dpar2_core::RsvdConfig;
        use rand::{rngs::StdRng, Rng, SeedableRng};

        // ~4 nonzeros per 16-wide row → density ~0.25.
        let mut rng = StdRng::seed_from_u64(104);
        let slices: Vec<dpar2_linalg::Mat> = [40usize, 32, 36]
            .iter()
            .map(|&ik| {
                let mut m = dpar2_linalg::Mat::zeros(ik, 16);
                for i in 0..ik {
                    for _ in 0..4 {
                        let j = (rng.random::<u64>() % 16) as usize;
                        m.set(i, j, rng.random::<f64>() - 0.5);
                    }
                }
                m
            })
            .collect();
        let tensor = IrregularTensor::new(slices);
        // rank 3 + oversample 2 keeps the sketch on the naive dispatch
        // path, so the sparse route must be bitwise the dense one.
        let opts = FitOptions::new(3)
            .with_seed(105)
            .with_rsvd(RsvdConfig { rank: 3, oversample: 2, power_iterations: 1 })
            .with_max_iterations(6)
            .with_tolerance(0.0);

        // Below threshold: routed through the sparse path.
        let mut cap = CaptureDispatch { nnz: 0, num_cells: 0, sparse_path: None };
        let auto =
            fit_with_observer(Method::Dpar2, &tensor, &opts.with_sparse_threshold(0.5), &mut cap)
                .unwrap();
        assert_eq!(cap.sparse_path, Some(true), "low-density input must dispatch sparse");
        assert_eq!(cap.nnz, tensor.nnz() as u64);
        assert_eq!(cap.num_cells, tensor.num_entries() as u64);

        let dense = fit_with(Method::Dpar2, &tensor, &opts).unwrap();
        assert_eq!(auto.u, dense.u, "auto-dispatched sparse fit diverged from dense (U)");
        assert_eq!(auto.s, dense.s, "auto-dispatched sparse fit diverged from dense (S)");
        assert_eq!(auto.v, dense.v, "auto-dispatched sparse fit diverged from dense (V)");
        assert_eq!(auto.criterion_trace, dense.criterion_trace);

        // Density at/above threshold (or threshold unset): dense path.
        let mut cap = CaptureDispatch { nnz: 0, num_cells: 0, sparse_path: None };
        fit_with_observer(Method::Dpar2, &tensor, &opts.with_sparse_threshold(1e-6), &mut cap)
            .unwrap();
        assert_eq!(cap.sparse_path, Some(false), "dense-ish input must stay dense");
        assert_eq!(cap.nnz, cap.num_cells, "dense entry point reports full cells as nnz");

        // Non-DPar2 methods ignore the threshold.
        let mut cap = CaptureDispatch { nnz: 0, num_cells: 0, sparse_path: None };
        fit_with_observer(Method::Parafac2Als, &tensor, &opts.with_sparse_threshold(0.5), &mut cap)
            .unwrap();
        assert_ne!(cap.sparse_path, Some(true), "baselines must not be rerouted");
    }
}
