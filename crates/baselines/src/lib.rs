//! # dpar2-baselines
//!
//! The three PARAFAC2 solvers the DPar2 paper compares against (§IV-A
//! "Competitors"), implemented from their algorithm descriptions — exactly
//! as the authors did for RD-ALS ("Since there is no public code, we
//! implement it … based on its paper"):
//!
//! * [`Parafac2Als`] — the classic direct-fitting ALS of Kiers, ten Berge &
//!   Bro (1999); Algorithm 2 of the paper. Materializes `Y` and the
//!   Khatri-Rao products (`O(JKR²)` per iteration) and checks convergence
//!   on the true reconstruction error.
//! * [`RdAls`] — Cheng & Haardt (2019): preprocesses with one truncated SVD
//!   of the column-wise concatenation `[X_1ᵀ ∥ … ∥ X_Kᵀ] ∈ R^{J×ΣI_k}`,
//!   iterates on rank-reduced slices, but (as the paper stresses) still
//!   evaluates the *true* reconstruction error each iteration.
//! * [`SpartanDense`] — SPARTan (Perros et al., 2017) adapted to dense
//!   slices: identical maths to PARAFAC2-ALS but with slice-parallel `Q_k`
//!   updates and an MTTKRP that accumulates per-slice contributions without
//!   materializing unfoldings (their scheduling idea, which loses its main
//!   advantage without sparsity — Fig. 9 of the paper).
//!
//! Plus the §III-C ablation [`NaiveCompressedAls`] (compress, reconstruct,
//! iterate at full cost), and [`SpartanSparse`] — SPARTan on *actually
//! sparse* CSR tensors (its native workload), with per-iteration cost and
//! memory proportional to `nnz` and fits that are bit-identical for every
//! thread count.
//!
//! Every solver — including `dpar2_core::Dpar2` — implements
//! [`Parafac2Solver`], takes the same [`FitOptions`], and produces the
//! shared [`dpar2_core::Parafac2Fit`], so harness code treats all methods
//! uniformly. [`Method`] (with `FromStr`/`Display`) plus [`fit_with`] give
//! a dynamic, name-addressable registry for sweeps.

pub mod common;
pub mod naive_compressed;
pub mod parafac2_als;
pub mod rd_als;
pub mod spartan;
pub mod spartan_sparse;

pub use naive_compressed::NaiveCompressedAls;
pub use parafac2_als::Parafac2Als;
pub use rd_als::RdAls;
pub use spartan::SpartanDense;
pub use spartan_sparse::SpartanSparse;

use dpar2_core::{Dpar2, FitObserver, FitOptions, Parafac2Fit, Parafac2Solver, Result};
use dpar2_tensor::IrregularTensor;
use std::fmt;
use std::str::FromStr;

/// The solver registry: the four methods of the paper's evaluation plus
/// the §III-C naive-compression ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// DPar2 (the paper's contribution, from `dpar2-core`).
    Dpar2,
    /// RD-ALS (Cheng & Haardt 2019).
    RdAls,
    /// PARAFAC2-ALS (Kiers et al. 1999).
    Parafac2Als,
    /// SPARTan adapted to dense slices (Perros et al. 2017).
    Spartan,
    /// SPARTan on CSR slices — its native sparse workload.
    SpartanSparse,
    /// Compress-reconstruct-iterate ablation (§III-C).
    NaiveCompressed,
}

impl Method {
    /// The paper's four evaluated methods, in the order its figures list
    /// them (the ablation is not part of the figure set; see
    /// [`Method::WITH_ABLATION`]).
    pub const ALL: [Method; 4] =
        [Method::Dpar2, Method::RdAls, Method::Parafac2Als, Method::Spartan];

    /// Every registered solver, including the sparse SPARTan variant and
    /// the §III-C ablation.
    pub const WITH_ABLATION: [Method; 6] = [
        Method::Dpar2,
        Method::RdAls,
        Method::Parafac2Als,
        Method::Spartan,
        Method::SpartanSparse,
        Method::NaiveCompressed,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Dpar2 => "DPar2",
            Method::RdAls => "RD-ALS",
            Method::Parafac2Als => "PARAFAC2-ALS",
            Method::Spartan => "SPARTan",
            Method::SpartanSparse => "SPARTan-sparse",
            Method::NaiveCompressed => "NaiveCompressed",
        }
    }

    /// Constructs the solver behind this name.
    pub fn solver(&self) -> Box<dyn Parafac2Solver> {
        match self {
            Method::Dpar2 => Box::new(Dpar2),
            Method::RdAls => Box::new(RdAls),
            Method::Parafac2Als => Box::new(Parafac2Als),
            Method::Spartan => Box::new(SpartanDense),
            Method::SpartanSparse => Box::new(SpartanSparse),
            Method::NaiveCompressed => Box::new(NaiveCompressedAls),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for an unrecognized method name (lists the valid spellings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMethodError {
    /// The string that failed to parse.
    pub input: String,
}

impl fmt::Display for ParseMethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown method {:?} (expected one of: dpar2, rd-als, parafac2-als, spartan, \
             spartan-sparse, naive-compressed)",
            self.input
        )
    }
}

impl std::error::Error for ParseMethodError {}

impl FromStr for Method {
    type Err = ParseMethodError;

    /// Case-insensitive; accepts the paper display names plus short
    /// aliases (`als` for PARAFAC2-ALS, `rdals`, `naive`).
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dpar2" => Ok(Method::Dpar2),
            "rd-als" | "rdals" | "rd_als" => Ok(Method::RdAls),
            "parafac2-als" | "parafac2als" | "parafac2_als" | "als" => Ok(Method::Parafac2Als),
            "spartan" => Ok(Method::Spartan),
            "spartan-sparse" | "spartansparse" | "spartan_sparse" | "sparse" => {
                Ok(Method::SpartanSparse)
            }
            "naive-compressed" | "naivecompressed" | "naive_compressed" | "naive" => {
                Ok(Method::NaiveCompressed)
            }
            _ => Err(ParseMethodError { input: s.to_string() }),
        }
    }
}

/// Runs the chosen method on `tensor` with the shared fit options — a thin
/// veneer over `method.solver().fit(...)`.
///
/// # Errors
/// Propagates rank-validation and warm-start errors (identical across
/// methods).
pub fn fit_with(
    method: Method,
    tensor: &IrregularTensor,
    options: &FitOptions<'_>,
) -> Result<Parafac2Fit> {
    method.solver().fit(tensor, options)
}

/// [`fit_with`] with a [`FitObserver`] session.
///
/// # Errors
/// See [`fit_with`].
pub fn fit_with_observer(
    method: Method,
    tensor: &IrregularTensor,
    options: &FitOptions<'_>,
    observer: &mut dyn FitObserver,
) -> Result<Parafac2Fit> {
    method.solver().fit_observed(tensor, options, observer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_str_round_trips_display() {
        for m in Method::WITH_ABLATION {
            assert_eq!(m.name().parse::<Method>().unwrap(), m, "{m} display must parse back");
            assert_eq!(m.to_string(), m.name());
        }
    }

    #[test]
    fn from_str_is_case_insensitive_with_aliases() {
        assert_eq!("DPAR2".parse::<Method>().unwrap(), Method::Dpar2);
        assert_eq!("rdals".parse::<Method>().unwrap(), Method::RdAls);
        assert_eq!("als".parse::<Method>().unwrap(), Method::Parafac2Als);
        assert_eq!("Spartan".parse::<Method>().unwrap(), Method::Spartan);
        assert_eq!("sparse".parse::<Method>().unwrap(), Method::SpartanSparse);
        assert_eq!("SPARTAN_SPARSE".parse::<Method>().unwrap(), Method::SpartanSparse);
        assert_eq!("naive".parse::<Method>().unwrap(), Method::NaiveCompressed);
        let err = "pca".parse::<Method>().unwrap_err();
        assert!(err.to_string().contains("pca"));
    }

    #[test]
    fn registry_names_match_solvers() {
        for m in Method::WITH_ABLATION {
            assert_eq!(m.solver().name(), m.name());
        }
    }
}
