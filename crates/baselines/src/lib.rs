//! # dpar2-baselines
//!
//! The three PARAFAC2 solvers the DPar2 paper compares against (§IV-A
//! "Competitors"), implemented from their algorithm descriptions — exactly
//! as the authors did for RD-ALS ("Since there is no public code, we
//! implement it … based on its paper"):
//!
//! * [`Parafac2Als`] — the classic direct-fitting ALS of Kiers, ten Berge &
//!   Bro (1999); Algorithm 2 of the paper. Materializes `Y` and the
//!   Khatri-Rao products (`O(JKR²)` per iteration) and checks convergence
//!   on the true reconstruction error.
//! * [`RdAls`] — Cheng & Haardt (2019): preprocesses with one truncated SVD
//!   of the column-wise concatenation `[X_1ᵀ ∥ … ∥ X_Kᵀ] ∈ R^{J×ΣI_k}`,
//!   iterates on rank-reduced slices, but (as the paper stresses) still
//!   evaluates the *true* reconstruction error each iteration.
//! * [`SpartanDense`] — SPARTan (Perros et al., 2017) adapted to dense
//!   slices: identical maths to PARAFAC2-ALS but with slice-parallel `Q_k`
//!   updates and an MTTKRP that accumulates per-slice contributions without
//!   materializing unfoldings (their scheduling idea, which loses its main
//!   advantage without sparsity — Fig. 9 of the paper).
//!
//! All solvers produce the shared [`dpar2_core::Parafac2Fit`] so harness
//! code treats every method uniformly; [`Method`] + [`fit_with`] give a
//! dynamic entry point for sweeps.

pub mod common;
pub mod naive_compressed;
pub mod parafac2_als;
pub mod rd_als;
pub mod spartan;

pub use common::AlsConfig;
pub use naive_compressed::NaiveCompressedAls;
pub use parafac2_als::Parafac2Als;
pub use rd_als::RdAls;
pub use spartan::SpartanDense;

use dpar2_core::{Dpar2, Dpar2Config, Parafac2Fit, Result};
use dpar2_tensor::IrregularTensor;

/// The four methods of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// DPar2 (the paper's contribution, from `dpar2-core`).
    Dpar2,
    /// RD-ALS (Cheng & Haardt 2019).
    RdAls,
    /// PARAFAC2-ALS (Kiers et al. 1999).
    Parafac2Als,
    /// SPARTan adapted to dense slices (Perros et al. 2017).
    Spartan,
}

impl Method {
    /// All methods in the order the paper's figures list them.
    pub const ALL: [Method; 4] =
        [Method::Dpar2, Method::RdAls, Method::Parafac2Als, Method::Spartan];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Dpar2 => "DPar2",
            Method::RdAls => "RD-ALS",
            Method::Parafac2Als => "PARAFAC2-ALS",
            Method::Spartan => "SPARTan",
        }
    }
}

/// Runs the chosen method on `tensor` with the shared ALS configuration.
///
/// # Errors
/// Propagates rank-validation errors (identical across methods).
pub fn fit_with(
    method: Method,
    tensor: &IrregularTensor,
    config: &AlsConfig,
) -> Result<Parafac2Fit> {
    match method {
        Method::Dpar2 => {
            let cfg = Dpar2Config::new(config.rank)
                .with_seed(config.seed)
                .with_threads(config.threads)
                .with_max_iterations(config.max_iterations)
                .with_tolerance(config.tolerance);
            Dpar2::new(cfg).fit(tensor)
        }
        Method::RdAls => RdAls::new(config.clone()).fit(tensor),
        Method::Parafac2Als => Parafac2Als::new(config.clone()).fit(tensor),
        Method::Spartan => SpartanDense::new(config.clone()).fit(tensor),
    }
}
