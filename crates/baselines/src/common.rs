//! Shared machinery for the ALS-family baselines.
//!
//! All baselines are configured through the workspace-wide
//! [`dpar2_core::FitOptions`] (the former baseline-local `AlsConfig` is
//! gone) and drive their loops through [`dpar2_core::FitSession`].

use dpar2_core::error::{Dpar2Error, Result};
use dpar2_core::{FitOptions, Parafac2Fit, Workspace};
use dpar2_linalg::sparse::sparse_gram_into;
use dpar2_linalg::svd::{svd_truncated, svd_truncated_into};
use dpar2_linalg::{Mat, SvdFactors, SvdScratch};
use dpar2_parallel::{greedy_partition, ThreadPool};
use dpar2_tensor::{IrregularTensor, SparseIrregularTensor};

/// Initial `Q_k` for every slice: the identity embedding (first `R`
/// columns of `I_{I_k}`), a valid orthonormal basis. The first ALS
/// iteration overwrites these; they exist so a zero-iteration budget
/// still produces a well-formed model with full factor shapes, keeping
/// every solver uniform under the `Parafac2Solver` contract.
pub fn identity_qs(tensor: &IrregularTensor, rank: usize) -> Vec<Mat> {
    identity_qs_dims(tensor.dims(), rank)
}

/// [`identity_qs`] from raw slice row counts — shared by the sparse
/// solver, whose tensor type carries the same `dims()` view.
pub fn identity_qs_dims(row_dims: &[usize], rank: usize) -> Vec<Mat> {
    row_dims
        .iter()
        .map(|&ik| Mat::from_fn(ik, rank, |i, j| if i == j { 1.0 } else { 0.0 }))
        .collect()
}

/// Validates that `R ≤ min(I_k, J)` for every slice (same contract as the
/// DPar2 compression stage).
pub fn validate_rank(tensor: &IrregularTensor, rank: usize) -> Result<()> {
    validate_rank_dims(tensor.dims(), tensor.j(), rank)
}

/// [`validate_rank`] from raw dimensions — shared by the sparse solver.
pub fn validate_rank_dims(row_dims: &[usize], j: usize, rank: usize) -> Result<()> {
    if rank == 0 {
        return Err(Dpar2Error::ZeroRank);
    }
    for (k, &ik) in row_dims.iter().enumerate() {
        let limit = ik.min(j);
        if rank > limit {
            return Err(Dpar2Error::RankTooLarge { rank, slice: k, limit });
        }
    }
    Ok(())
}

/// Kiers-style initialization of `V`: the leading `R` eigenvectors of
/// `Σ_k X_kᵀ X_k` (computed via the SVD of the PSD Gram sum).
///
/// All baselines start from this `V` with `H = I`, `S_k = I`, matching the
/// classic direct-fitting algorithm and making cross-method fitness
/// comparisons meaningful.
pub fn init_v(tensor: &IrregularTensor, rank: usize) -> Mat {
    let j = tensor.j();
    let mut gram_sum = Mat::zeros(j, j);
    for k in 0..tensor.k() {
        gram_sum += &tensor.slice(k).gram();
    }
    svd_truncated(&gram_sum, rank).u
}

/// [`init_v`] over CSR slices: the Gram sum accumulates via the sparse
/// Gram kernel (ascending `k`, like the dense loop), so for tensors whose
/// dense Grams stay on the naive dispatch path the result is bitwise
/// identical to [`init_v`] on the densified tensor.
pub fn init_v_sparse(tensor: &SparseIrregularTensor, rank: usize) -> Mat {
    let j = tensor.j();
    let mut gram_sum = Mat::zeros(j, j);
    let mut g = Mat::zeros(j, j);
    for k in 0..tensor.k() {
        sparse_gram_into(tensor.slice(k), &mut g);
        gram_sum += &g;
    }
    svd_truncated(&gram_sum, rank).u
}

/// Scales the columns of `m` by the entries of `weights` (i.e. `m · diag(w)`),
/// in place. The `X_k V S_k Hᵀ` and `H S_k Vᵀ` products all reduce to this.
pub fn scale_columns(m: &mut Mat, weights: &[f64]) {
    for i in 0..m.rows() {
        let row = m.row_mut(i);
        for (c, &w) in weights.iter().enumerate() {
            row[c] *= w;
        }
    }
}

/// Updates `Q_k` from the target `T = X_k V S_k Hᵀ ∈ R^{I_k×R}`:
/// truncated SVD `Z' Σ' P'ᵀ ← T` at rank `R`, then `Q_k = Z' P'ᵀ`
/// (Algorithm 2, lines 4–5). This is the polar-factor solution of the
/// orthogonal Procrustes problem `min_Q ‖X_k − Q H S_k Vᵀ‖_F`.
pub fn update_q(target: &Mat, rank: usize) -> Mat {
    let f = svd_truncated(target, rank);
    f.u.matmul_nt(&f.v).expect("update_q: Z'·P'ᵀ")
}

/// [`update_q`] into a caller-owned `Q_k` with reusable SVD scratch — the
/// allocation-free form the RD-ALS steady-state loop runs on.
/// Bit-identical to [`update_q`].
pub fn update_q_into(
    target: &Mat,
    rank: usize,
    q_out: &mut Mat,
    f: &mut SvdFactors,
    tmp: &mut SvdFactors,
    ws: &mut SvdScratch,
) {
    svd_truncated_into(target, rank, f, tmp, ws);
    f.u.matmul_nt_into(&f.v, q_out);
}

/// True squared reconstruction error `Σ_k ‖X_k − Q_k H S_k Vᵀ‖²_F` given
/// explicit `Q_k` — what PARAFAC2-ALS, SPARTan, and RD-ALS use for their
/// convergence checks (and what DPar2 avoids; §III-E).
pub fn true_error_sq(tensor: &IrregularTensor, qs: &[Mat], h: &Mat, w: &Mat, v: &Mat) -> f64 {
    let (mut hs, mut qhs, mut model) = (Mat::default(), Mat::default(), Mat::default());
    let mut total = 0.0;
    for k in 0..qs.len() {
        total += slice_error_sq(tensor, qs, h, w, v, k, &mut hs, &mut qhs, &mut model);
    }
    total
}

/// [`true_error_sq`] with the per-slice reconstructions fanned out over
/// `pool`. This is the dominant per-iteration cost of every explicit-factor
/// baseline (`O(Σ_k I_k J R)` — as expensive as a whole compression pass),
/// so sharing the parallel treatment keeps method-comparison timings about
/// algorithmic cost, not about which solver got threads. Per-slice cost is
/// proportional to `I_k`, so slices are assigned by the same greedy
/// partition (Algorithm 4) the compression stage uses; results come back in
/// slice order and are summed in ascending `k`, making the result
/// bit-identical to the serial [`true_error_sq`] for every pool size.
pub fn true_error_sq_pooled(
    tensor: &IrregularTensor,
    qs: &[Mat],
    h: &Mat,
    w: &Mat,
    v: &Mat,
    pool: &ThreadPool,
) -> f64 {
    let partition = greedy_partition(&tensor.row_dims(), pool.threads());
    true_error_sq_ws(tensor, qs, h, w, v, pool, &partition, &mut Workspace::new())
}

/// [`true_error_sq_pooled`] against a caller-owned slice partition and
/// [`Workspace`]: single-threaded pools run the ascending-`k` sum on the
/// arena's scratch with zero allocations; larger pools fan slices out over
/// `partition`. Bit-identical to [`true_error_sq`] for every pool size.
#[allow(clippy::too_many_arguments)]
pub fn true_error_sq_ws(
    tensor: &IrregularTensor,
    qs: &[Mat],
    h: &Mat,
    w: &Mat,
    v: &Mat,
    pool: &ThreadPool,
    partition: &[Vec<usize>],
    ws: &mut Workspace,
) -> f64 {
    if pool.threads() == 1 {
        let mut total = 0.0;
        for k in 0..qs.len() {
            total += slice_error_sq(
                tensor,
                qs,
                h,
                w,
                v,
                k,
                &mut ws.crit_hs,
                &mut ws.tall_a,
                &mut ws.tall_b,
            );
        }
        return total;
    }
    let per_slice: Vec<f64> = pool.run_partitioned(partition, |k| {
        let (mut hs, mut qhs, mut model) = (Mat::default(), Mat::default(), Mat::default());
        slice_error_sq(tensor, qs, h, w, v, k, &mut hs, &mut qhs, &mut model)
    });
    per_slice.iter().sum()
}

/// `‖X_k − Q_k H S_k Vᵀ‖²_F` for one slice, computed on caller scratch.
#[allow(clippy::too_many_arguments)]
fn slice_error_sq(
    tensor: &IrregularTensor,
    qs: &[Mat],
    h: &Mat,
    w: &Mat,
    v: &Mat,
    k: usize,
    hs: &mut Mat,
    qhs: &mut Mat,
    model: &mut Mat,
) -> f64 {
    hs.copy_from(h);
    scale_columns(hs, w.row(k));
    qs[k].matmul_into(&*hs, qhs); // Q_k·HS
    qhs.matmul_nt_into(v, model); // ·Vᵀ
    tensor.slice(k).diff_norm_sq(&*model)
}

/// Cold- or warm-start factors `(H, V, W)` for the explicit-factor
/// baselines: Kiers init (`H = I`, `V` = [`init_v`], `W = 1`) unless the
/// options carry a warm start, in which case the previous fit's `H`, `V`,
/// and slice weights seed the iteration (slices beyond the warm fit's
/// coverage start at unit weights — the streaming semantics).
///
/// # Errors
/// [`Dpar2Error::WarmStart`] when the warm factors do not match the
/// tensor's rank/shape.
pub fn init_factors(tensor: &IrregularTensor, options: &FitOptions<'_>) -> Result<(Mat, Mat, Mat)> {
    init_factors_from(tensor.j(), tensor.k(), options, || init_v(tensor, options.rank))
}

/// [`init_factors`] decoupled from the tensor type: the caller supplies
/// the `(J, K)` shape and a closure producing the cold-start `V` (only
/// invoked when no warm start is present). This is how the sparse solver
/// shares the warm-start validation verbatim with the dense baselines.
///
/// # Errors
/// [`Dpar2Error::WarmStart`] when the warm factors do not match the
/// tensor's rank/shape.
pub fn init_factors_from(
    j: usize,
    k: usize,
    options: &FitOptions<'_>,
    cold_v: impl FnOnce() -> Mat,
) -> Result<(Mat, Mat, Mat)> {
    let r = options.rank;
    match options.warm_start {
        None => Ok((Mat::eye(r), cold_v(), Mat::ones(k, r))),
        Some(fit) => {
            let w = warm_weights(fit, k, r)?;
            if fit.h.shape() != (r, r) {
                return Err(Dpar2Error::WarmStart {
                    factor: "H",
                    expected: (r, r),
                    got: fit.h.shape(),
                });
            }
            if fit.v.shape() != (j, r) {
                return Err(Dpar2Error::WarmStart {
                    factor: "V",
                    expected: (j, r),
                    got: fit.v.shape(),
                });
            }
            Ok((fit.h.clone(), fit.v.clone(), w))
        }
    }
}

/// Warm-start slice weights: rows of `W` from the previous fit's
/// `diag(S_k)`, extended with unit rows for slices the fit does not cover.
///
/// # Errors
/// [`Dpar2Error::WarmStart`] when the fit's rank differs from `r` or it
/// covers more slices than the tensor.
pub fn warm_weights(fit: &Parafac2Fit, k: usize, r: usize) -> Result<Mat> {
    if fit.rank() != r || fit.k() > k {
        return Err(Dpar2Error::WarmStart {
            factor: "W",
            expected: (k, r),
            got: (fit.k(), fit.rank()),
        });
    }
    let mut w = Mat::ones(k, r);
    for (row, s) in fit.s.iter().enumerate() {
        w.set_row(row, s);
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_linalg::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_tensor(seed: u64) -> IrregularTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        IrregularTensor::new(vec![
            gaussian_mat(12, 8, &mut rng),
            gaussian_mat(20, 8, &mut rng),
            gaussian_mat(7, 8, &mut rng),
        ])
    }

    #[test]
    fn init_v_is_orthonormal() {
        let t = small_tensor(501);
        let v = init_v(&t, 3);
        assert_eq!(v.shape(), (8, 3));
        assert!((&v.gram() - &Mat::eye(3)).fro_norm() < 1e-9);
    }

    #[test]
    fn init_v_spans_dominant_subspace() {
        // For a tensor with planted shared column space, init_v must
        // recover that space.
        let mut rng = StdRng::seed_from_u64(502);
        let v_true = dpar2_linalg::qr::qr(gaussian_mat(10, 2, &mut rng)).q;
        let slices: Vec<Mat> =
            (0..3).map(|_| gaussian_mat(15, 2, &mut rng).matmul_nt(&v_true).unwrap()).collect();
        let t = IrregularTensor::new(slices);
        let v = init_v(&t, 2);
        // Projection of v_true onto span(v) should be identity-like.
        let proj = v.matmul_tn(&v_true).unwrap();
        let f = svd_truncated(&proj, 2);
        for s in &f.s {
            assert!((s - 1.0).abs() < 1e-8, "principal angle not zero: σ = {s}");
        }
    }

    #[test]
    fn update_q_is_orthonormal_and_procrustes_optimal() {
        let mut rng = StdRng::seed_from_u64(503);
        let target = gaussian_mat(20, 4, &mut rng);
        let q = update_q(&target, 4);
        assert!((&q.gram() - &Mat::eye(4)).fro_norm() < 1e-9);
        // Procrustes optimality: trace(QᵀT) ≥ trace(OᵀT) for any orthonormal O.
        let t_q: f64 = q.matmul_tn(&target).unwrap().diagonal().iter().sum();
        for trial in 0..5 {
            let o =
                dpar2_linalg::qr::qr(gaussian_mat(20, 4, &mut StdRng::seed_from_u64(504 + trial)))
                    .q;
            let t_o: f64 = o.matmul_tn(&target).unwrap().diagonal().iter().sum();
            assert!(t_q >= t_o - 1e-9, "Procrustes solution beaten by random Q");
        }
    }

    #[test]
    fn validate_rank_catches_bad_inputs() {
        let t = small_tensor(505);
        assert!(validate_rank(&t, 3).is_ok());
        assert!(validate_rank(&t, 0).is_err());
        assert!(validate_rank(&t, 8).is_err()); // slice 2 has I=7
    }

    #[test]
    fn scale_columns_matches_diag_product() {
        let mut rng = StdRng::seed_from_u64(506);
        let m = gaussian_mat(5, 3, &mut rng);
        let w = [2.0, 0.5, -1.0];
        let mut scaled = m.clone();
        scale_columns(&mut scaled, &w);
        let explicit = m.matmul(Mat::diag(&w)).unwrap();
        assert!((&scaled - &explicit).fro_norm() < 1e-12);
    }

    #[test]
    fn pooled_error_bitwise_matches_serial() {
        let mut rng = StdRng::seed_from_u64(508);
        let r = 3;
        let t = small_tensor(509);
        let h = gaussian_mat(r, r, &mut rng);
        let v = gaussian_mat(8, r, &mut rng);
        let w = gaussian_mat(3, r, &mut rng);
        let qs: Vec<Mat> =
            (0..3).map(|k| dpar2_linalg::qr::qr(gaussian_mat(t.i(k), r, &mut rng)).q).collect();
        let serial = true_error_sq(&t, &qs, &h, &w, &v);
        for threads in [1, 2, 4] {
            let pooled = true_error_sq_pooled(&t, &qs, &h, &w, &v, &ThreadPool::new(threads));
            assert_eq!(serial.to_bits(), pooled.to_bits(), "diverged at {threads} threads");
        }
    }

    #[test]
    fn true_error_zero_for_exact_model() {
        let mut rng = StdRng::seed_from_u64(507);
        let r = 2;
        let h = gaussian_mat(r, r, &mut rng);
        let v = gaussian_mat(9, r, &mut rng);
        let w = Mat::from_rows(&[&[1.0, 2.0], &[0.5, 1.5]]);
        let mut qs = Vec::new();
        let mut slices = Vec::new();
        for k in 0..2 {
            let q = dpar2_linalg::qr::qr(gaussian_mat(14, r, &mut rng)).q;
            let mut hs = h.clone();
            scale_columns(&mut hs, w.row(k));
            slices.push(q.matmul(&hs).unwrap().matmul_nt(&v).unwrap());
            qs.push(q);
        }
        let t = IrregularTensor::new(slices);
        assert!(true_error_sq(&t, &qs, &h, &w, &v) < 1e-18);
    }
}
