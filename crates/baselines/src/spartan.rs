//! SPARTan adapted to dense irregular tensors (Perros et al., KDD 2017).
//!
//! SPARTan's contribution is a parallel, slice-wise MTTKRP scheduling for
//! the PARAFAC2 inner step that avoids materializing unfoldings and
//! Khatri-Rao products, exploiting slice sparsity. The DPar2 paper adapts it
//! to dense inputs as a competitor ("Although it targets on sparse irregular
//! tensors, it can be adapted to irregular dense tensors", §IV-A); without
//! sparsity its per-slice work is identical to dense PARAFAC2-ALS, which is
//! why Fig. 9(b) shows little advantage — the behaviour this implementation
//! reproduces.
//!
//! Differences from [`crate::Parafac2Als`]:
//! * `Q_k` updates run in parallel over slices (greedy-partitioned by
//!   `I_k`, the same Algorithm-4 policy DPar2 uses);
//! * the CP-ALS step uses slice-wise MTTKRP accumulation
//!   (`Σ_k Y_k-contributions`) with per-thread partial sums instead of
//!   materialized unfoldings.

use crate::common::{
    identity_qs, init_factors, scale_columns, true_error_sq_pooled, update_q, validate_rank,
};
use dpar2_core::{
    FitObserver, FitOptions, FitSession, NoopObserver, Parafac2Fit, Parafac2Solver, Result,
    TimingBreakdown,
};
use dpar2_linalg::{pinv, Mat};
use dpar2_parallel::{greedy_partition, ThreadPool};
use dpar2_tensor::{normalize_columns, IrregularTensor};
use std::time::Instant;

/// SPARTan-style PARAFAC2 solver for dense slices — a stateless
/// [`Parafac2Solver`] handle; all per-fit settings travel in
/// [`FitOptions`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SpartanDense;

impl SpartanDense {
    /// Fits the PARAFAC2 model with slice-parallel scheduling.
    ///
    /// # Errors
    /// [`dpar2_core::Dpar2Error::RankTooLarge`] / `ZeroRank` on invalid
    /// rank; `WarmStart` on mismatched warm-start factors.
    pub fn fit(&self, tensor: &IrregularTensor, options: &FitOptions<'_>) -> Result<Parafac2Fit> {
        self.fit_observed(tensor, options, &mut NoopObserver)
    }

    /// [`SpartanDense::fit`] with a [`FitObserver`] session.
    ///
    /// # Errors
    /// See [`SpartanDense::fit`].
    pub fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        let t0 = Instant::now();
        let r = options.rank;
        validate_rank(tensor, r)?;
        let k_dim = tensor.k();
        let pool = ThreadPool::new(options.threads.max(1));
        // Slice partition by row count — SPARTan parallelizes over slices;
        // we reuse the greedy policy so thread counts compare fairly.
        let partition = greedy_partition(&tensor.row_dims(), pool.threads());

        let (mut h, mut v, mut w) = init_factors(tensor, options)?;
        let mut qs: Vec<Mat> = Vec::new();

        // Data norm for the absolute branch of the shared stopping rule.
        let x_norm_sq = tensor.fro_norm_sq();

        let mut session = FitSession::new(options, observer);
        for _iter in 0..options.max_iterations {
            session.start_iteration();

            // Q_k updates, slice-parallel.
            let new_qs: Vec<Mat> = pool.run_partitioned(&partition, |k| {
                let mut vs = v.clone();
                scale_columns(&mut vs, w.row(k));
                let vsh = vs.matmul_nt(&h).expect("V S_k Hᵀ");
                let target = tensor.slice(k).matmul(&vsh).expect("X_k·VSHᵀ");
                update_q(&target, r)
            });
            qs = new_qs;

            // Y_k = Q_kᵀ X_k, slice-parallel (kept per-slice, never stacked).
            let yks: Vec<Mat> = pool.run_partitioned(&partition, |k| {
                qs[k].matmul_tn(tensor.slice(k)).expect("Q_kᵀX_k")
            });

            // Slice-wise parallel MTTKRP + factor updates.
            let g1 = par_mttkrp_mode1(&yks, &v, &w, &pool);
            h = g1.matmul(pinv(w.gram().hadamard(&v.gram()).expect("WᵀW∗VᵀV"))).expect("H update");
            let (hn, _) = normalize_columns(&h);
            h = hn;

            let g2 = par_mttkrp_mode2(&yks, &h, &w, &pool);
            v = g2.matmul(pinv(w.gram().hadamard(&h.gram()).expect("WᵀW∗HᵀH"))).expect("V update");
            let (vn, _) = normalize_columns(&v);
            v = vn;

            let g3 = par_mttkrp_mode3(&yks, &h, &v, &pool);
            w = g3.matmul(pinv(v.gram().hadamard(&h.gram()).expect("VᵀV∗HᵀH"))).expect("W update");

            let err = true_error_sq_pooled(tensor, &qs, &h, &w, &v, &pool);
            if session.finish_iteration(err, x_norm_sq) {
                break;
            }
        }
        let outcome = session.finish();
        if qs.is_empty() {
            // Zero-iteration budget: identity-embedded Q_k keep the model
            // well-formed (see `common::identity_qs`).
            qs = identity_qs(tensor, r);
        }

        let u: Vec<Mat> = qs.iter().map(|q| q.matmul(&h).expect("Q_k·H")).collect();
        let s: Vec<Vec<f64>> = (0..k_dim).map(|k| w.row(k).to_vec()).collect();

        Ok(Parafac2Fit {
            u,
            s,
            v,
            h,
            iterations: outcome.iterations(),
            stop_reason: outcome.stop_reason,
            timing: TimingBreakdown {
                preprocess_secs: 0.0,
                iterations_secs: outcome.iterations_secs(),
                per_iteration_secs: outcome.per_iteration_secs,
                total_secs: t0.elapsed().as_secs_f64(),
            },
            criterion_trace: outcome.criterion_trace,
        })
    }
}

impl Parafac2Solver for SpartanDense {
    fn name(&self) -> &'static str {
        "SPARTan"
    }

    fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        SpartanDense::fit_observed(self, tensor, options, observer)
    }
}

/// `Y_(1)(W ⊙ V) = Σ_k Y_k V diag(W(k,:))` with per-thread partial sums.
fn par_mttkrp_mode1(yks: &[Mat], v: &Mat, w: &Mat, pool: &ThreadPool) -> Mat {
    let r = v.cols();
    let rows = yks[0].rows();
    let chunks = chunk_ranges(yks.len(), pool.threads());
    let partials: Vec<Mat> = pool.map(&chunks, |_, range| {
        let mut acc = Mat::zeros(rows, r);
        let mut tmp = Mat::zeros(rows, r);
        for k in range.clone() {
            yks[k].matmul_into(v, &mut tmp);
            for i in 0..rows {
                let arow = acc.row_mut(i);
                let trow = tmp.row(i);
                for (c, &wv) in w.row(k).iter().enumerate() {
                    arow[c] += trow[c] * wv;
                }
            }
        }
        acc
    });
    sum_mats(partials)
}

/// `Y_(2)(W ⊙ H) = Σ_k Y_kᵀ H diag(W(k,:))` with per-thread partial sums.
fn par_mttkrp_mode2(yks: &[Mat], h: &Mat, w: &Mat, pool: &ThreadPool) -> Mat {
    let r = h.cols();
    let j = yks[0].cols();
    let chunks = chunk_ranges(yks.len(), pool.threads());
    let partials: Vec<Mat> = pool.map(&chunks, |_, range| {
        let mut acc = Mat::zeros(j, r);
        let mut tmp = Mat::zeros(j, r);
        for k in range.clone() {
            yks[k].matmul_tn_into(h, &mut tmp);
            for i in 0..j {
                let arow = acc.row_mut(i);
                let trow = tmp.row(i);
                for (c, &wv) in w.row(k).iter().enumerate() {
                    arow[c] += trow[c] * wv;
                }
            }
        }
        acc
    });
    sum_mats(partials)
}

/// `Y_(3)(V ⊙ H)`: row `k` is `diag(Hᵀ Y_k V)ᵀ`, one slice per work item.
fn par_mttkrp_mode3(yks: &[Mat], h: &Mat, v: &Mat, pool: &ThreadPool) -> Mat {
    let r = h.cols();
    let rows: Vec<Vec<f64>> = pool.map(yks, |_, yk| {
        let tmp = yk.matmul(v).expect("Y_k·V"); // R×R
        let mut row = vec![0.0; r];
        for i in 0..h.rows() {
            let hrow = h.row(i);
            let trow = tmp.row(i);
            for (c, val) in row.iter_mut().enumerate() {
                *val += hrow[c] * trow[c];
            }
        }
        row
    });
    let mut g = Mat::zeros(yks.len(), r);
    for (k, row) in rows.iter().enumerate() {
        g.set_row(k, row);
    }
    g
}

fn chunk_ranges(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(threads).max(1);
    (0..threads).map(|t| t * chunk..((t + 1) * chunk).min(n)).filter(|r| !r.is_empty()).collect()
}

fn sum_mats(mut mats: Vec<Mat>) -> Mat {
    let mut acc = mats.pop().expect("sum_mats: empty");
    for m in &mats {
        acc += m;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parafac2_als::tests::planted;
    use crate::parafac2_als::Parafac2Als;

    #[test]
    fn matches_parafac2_als_exactly() {
        // Same math, different scheduling: traces must agree to rounding.
        let t = planted(&[18, 25, 12], 10, 3, 0.2, 701);
        let cfg = FitOptions::new(3).with_max_iterations(6).with_tolerance(0.0);
        let als = Parafac2Als.fit(&t, &cfg).unwrap();
        let sp = SpartanDense.fit(&t, &cfg).unwrap();
        assert_eq!(als.iterations, sp.iterations);
        for (a, b) in als.criterion_trace.iter().zip(&sp.criterion_trace) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a), "traces diverge: {a} vs {b}");
        }
        assert!((&als.v - &sp.v).fro_norm() < 1e-6);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let t = planted(&[20, 35, 15, 27], 12, 2, 0.1, 702);
        let cfg1 = FitOptions::new(2).with_threads(1).with_max_iterations(5);
        let cfg4 = FitOptions::new(2).with_threads(4).with_max_iterations(5);
        let f1 = SpartanDense.fit(&t, &cfg1).unwrap();
        let f4 = SpartanDense.fit(&t, &cfg4).unwrap();
        assert!((&f1.v - &f4.v).fro_norm() < 1e-9);
        for k in 0..t.k() {
            assert!((&f1.u[k] - &f4.u[k]).fro_norm() < 1e-9);
        }
    }

    #[test]
    fn fits_planted_data() {
        let t = planted(&[25, 30, 18], 14, 3, 0.05, 703);
        let fit = SpartanDense.fit(&t, &FitOptions::new(3)).unwrap();
        assert!(fit.fitness(&t) > 0.95, "fitness {}", fit.fitness(&t));
    }

    #[test]
    fn rejects_invalid_rank() {
        let t = planted(&[6, 30], 14, 2, 0.0, 704);
        assert!(SpartanDense.fit(&t, &FitOptions::new(7)).is_err());
    }
}
