//! SPARTan on actually-sparse irregular tensors (Perros et al., KDD 2017).
//!
//! [`crate::SpartanDense`] adapts SPARTan's slice-wise MTTKRP scheduling to
//! dense slices — the form the DPar2 paper benchmarks against. This module
//! is the real thing: PARAFAC2-ALS over CSR slices where every product
//! touching the data (`X_k·VS_kHᵀ`, `Q_kᵀX_k`, the Gram init, the error
//! term, `‖X‖²_F`) runs over nonzeros only, so per-iteration cost and
//! peak memory scale with `nnz`, not `Σ_k I_k·J`.
//!
//! ## Determinism and dense parity
//!
//! The sparse kernels preserve the dense naive accumulation order exactly
//! (see [`dpar2_linalg::sparse`]), and the cross-slice MTTKRP / error sums
//! here run serially in ascending `k` regardless of the pool size — unlike
//! [`crate::SpartanDense`]'s thread-count-dependent partial sums. Two
//! consequences, both pinned by tests:
//!
//! * a fit is **bit-identical for every thread count**, and
//! * on tensors whose dense products all take the naive dispatch path
//!   (small `J` and `R` — see `dpar2_linalg::kernel`), a fit is
//!   **bit-identical to [`crate::SpartanDense`] at one thread** on the
//!   densified tensor.
//!
//! ## Allocation discipline
//!
//! At one thread the steady-state iteration runs entirely on the
//! [`Workspace`] arena plus factor-sized scratch allocated before the
//! loop: sparse kernels write through `resize_zeroed` (capacity-reusing),
//! SVD/pinv use the `_into` forms, and factor swaps are `mem::swap` — zero
//! heap allocations per iteration, enforced by `tests/alloc_regression.rs`.
//! Multi-thread fits allocate per-slice temporaries inside the pool (the
//! same convention as the dense baselines).

use crate::common::{
    identity_qs_dims, init_factors_from, init_v_sparse, scale_columns, update_q, update_q_into,
    validate_rank_dims,
};
use dpar2_core::{
    FitObserver, FitOptions, FitSession, NoopObserver, Parafac2Fit, Parafac2Solver, Result,
    TimingBreakdown, Workspace,
};
use dpar2_linalg::mat::dot;
use dpar2_linalg::sparse::{spmm, spmm_into, spmm_tn, spmm_tn_into, SparseSlice};
use dpar2_linalg::{pinv_into, Mat};
use dpar2_parallel::{greedy_partition, ThreadPool};
use dpar2_tensor::{normalize_columns_mut, IrregularTensor, SparseIrregularTensor};
use std::time::Instant;

/// SPARTan PARAFAC2 solver for CSR slices — a stateless
/// [`Parafac2Solver`] handle; all per-fit settings travel in
/// [`FitOptions`].
///
/// The native entry points are [`SpartanSparse::fit_sparse`] /
/// [`SpartanSparse::fit_sparse_observed`] on a [`SparseIrregularTensor`];
/// the [`Parafac2Solver`] impl accepts a dense tensor and sparsifies it
/// (dropping exact zeros), which keeps the solver uniform under the trait
/// conformance suite and gives dense callers a drop-in migration path.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpartanSparse;

impl SpartanSparse {
    /// Fits the PARAFAC2 model over CSR slices.
    ///
    /// # Errors
    /// [`dpar2_core::Dpar2Error::RankTooLarge`] / `ZeroRank` on invalid
    /// rank; `WarmStart` on mismatched warm-start factors.
    pub fn fit_sparse(
        &self,
        tensor: &SparseIrregularTensor,
        options: &FitOptions<'_>,
    ) -> Result<Parafac2Fit> {
        self.fit_sparse_observed(tensor, options, &mut NoopObserver)
    }

    /// [`SpartanSparse::fit_sparse`] with a [`FitObserver`] session.
    ///
    /// # Errors
    /// See [`SpartanSparse::fit_sparse`].
    pub fn fit_sparse_observed(
        &self,
        tensor: &SparseIrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        let t0 = Instant::now();
        observer.on_input_shape(tensor.nnz() as u64, tensor.num_cells() as u64, true);
        let r = options.rank;
        validate_rank_dims(tensor.dims(), tensor.j(), r)?;
        let k_dim = tensor.k();
        let j_dim = tensor.j();
        let pool = ThreadPool::new(options.threads.max(1));
        // Slice-level parallelism is the winning axis for SPARTan (per-slice
        // work is proportional to nnz(X_k)); greedy-partition by row count,
        // matching the dense baselines' scheduling policy.
        let partition = greedy_partition(&tensor.row_dims(), pool.threads());

        let (mut h, mut v, mut w) =
            init_factors_from(j_dim, k_dim, options, || init_v_sparse(tensor, r))?;

        // Data norm over nonzeros — bitwise equal to the densified tensor's
        // norm (structural squares are exact +0.0 terms).
        let x_norm_sq = tensor.fro_norm_sq();

        // Everything the steady-state iteration touches is allocated here
        // once; the loop body reuses capacity via `resize_zeroed`/`copy_from`
        // and the `_into` kernel forms.
        let mut ws = Workspace::new();
        let mut qs: Vec<Mat> = tensor.dims().iter().map(|&ik| Mat::zeros(ik, r)).collect();
        let mut yks: Vec<Mat> = (0..k_dim).map(|_| Mat::zeros(r, j_dim)).collect();
        let mut g1 = Mat::zeros(r, r);
        let mut g2 = Mat::zeros(j_dim, r);
        let mut g3 = Mat::zeros(k_dim, r);
        let mut gram_a = Mat::zeros(r, r);
        let mut gram_b = Mat::zeros(r, r);
        let mut pinv_out = Mat::zeros(r, r);
        let mut new_h = Mat::zeros(r, r);
        let mut new_v = Mat::zeros(j_dim, r);
        let mut new_w = Mat::zeros(k_dim, r);
        let mut populated = false;

        let mut session = FitSession::new(options, observer);
        for _iter in 0..options.max_iterations {
            session.start_iteration();

            // Q_k update + Y_k = Q_kᵀX_k, slice-parallel. Per-slice results
            // are independent, so fusing the two dense-solver loops changes
            // no values.
            if pool.threads() == 1 {
                for k in 0..k_dim {
                    ws.tall_a.copy_from(&v);
                    scale_columns(&mut ws.tall_a, w.row(k));
                    ws.tall_a.matmul_nt_into(&h, &mut ws.tall_b); // V S_k Hᵀ
                    spmm_into(tensor.slice(k), &ws.tall_b, &mut ws.slice_a); // X_k·VS_kHᵀ
                    update_q_into(
                        &ws.slice_a,
                        r,
                        &mut qs[k],
                        &mut ws.svd_out,
                        &mut ws.svd_tmp,
                        &mut ws.svd,
                    );
                    spmm_tn_into(&qs[k], tensor.slice(k), &mut yks[k]);
                }
            } else {
                let per_slice: Vec<(Mat, Mat)> = pool.run_partitioned(&partition, |k| {
                    let mut vs = v.clone();
                    scale_columns(&mut vs, w.row(k));
                    let vsh = vs.matmul_nt(&h).expect("V S_k Hᵀ");
                    let target = spmm(tensor.slice(k), &vsh);
                    let q = update_q(&target, r);
                    let yk = spmm_tn(&q, tensor.slice(k));
                    (q, yk)
                });
                for (k, (q, yk)) in per_slice.into_iter().enumerate() {
                    qs[k] = q;
                    yks[k] = yk;
                }
            }
            populated = true;

            // Slice-wise MTTKRP accumulation, serially in ascending k — the
            // order the dense solver produces at one thread, and invariant
            // to this solver's pool size. The per-slice products are tiny
            // (R×R / J×R) next to the sparse Y_k step, so serializing them
            // costs nothing and buys thread-count determinism.
            g1.resize_zeroed(r, r);
            for k in 0..k_dim {
                yks[k].matmul_into(&v, &mut ws.lemma_tmp); // Y_k·V, R×R
                accumulate_weighted(&mut g1, &ws.lemma_tmp, w.row(k));
            }
            w.gram_into(&mut gram_a);
            v.gram_into(&mut gram_b);
            gram_a.hadamard_assign(&gram_b); // WᵀW ∗ VᵀV
            pinv_into(&gram_a, &mut pinv_out, &mut ws.svd_tmp, &mut ws.svd);
            g1.matmul_into(&pinv_out, &mut new_h);
            normalize_columns_mut(&mut new_h, &mut ws.norms);
            std::mem::swap(&mut h, &mut new_h);

            g2.resize_zeroed(j_dim, r);
            for k in 0..k_dim {
                yks[k].matmul_tn_into(&h, &mut ws.lemma_tmp); // Y_kᵀ·H, J×R
                accumulate_weighted(&mut g2, &ws.lemma_tmp, w.row(k));
            }
            w.gram_into(&mut gram_a);
            h.gram_into(&mut gram_b);
            gram_a.hadamard_assign(&gram_b); // WᵀW ∗ HᵀH
            pinv_into(&gram_a, &mut pinv_out, &mut ws.svd_tmp, &mut ws.svd);
            g2.matmul_into(&pinv_out, &mut new_v);
            normalize_columns_mut(&mut new_v, &mut ws.norms);
            std::mem::swap(&mut v, &mut new_v);

            g3.resize_zeroed(k_dim, r);
            for k in 0..k_dim {
                yks[k].matmul_into(&v, &mut ws.lemma_tmp); // Y_k·V, R×R
                let grow = g3.row_mut(k);
                for i in 0..h.rows() {
                    let hrow = h.row(i);
                    let trow = ws.lemma_tmp.row(i);
                    for (c, val) in grow.iter_mut().enumerate() {
                        *val += hrow[c] * trow[c];
                    }
                }
            }
            v.gram_into(&mut gram_a);
            h.gram_into(&mut gram_b);
            gram_a.hadamard_assign(&gram_b); // VᵀV ∗ HᵀH
            pinv_into(&gram_a, &mut pinv_out, &mut ws.svd_tmp, &mut ws.svd);
            g3.matmul_into(&pinv_out, &mut new_w);
            std::mem::swap(&mut w, &mut new_w);

            let err = sparse_error_sq(tensor, &qs, &h, &w, &v, &pool, &partition, &mut ws);
            if session.finish_iteration(err, x_norm_sq) {
                break;
            }
        }
        let outcome = session.finish();
        if !populated {
            // Zero-iteration budget: identity-embedded Q_k keep the model
            // well-formed (see `common::identity_qs_dims`).
            qs = identity_qs_dims(tensor.dims(), r);
        }

        let u: Vec<Mat> = qs.iter().map(|q| q.matmul(&h).expect("Q_k·H")).collect();
        let s: Vec<Vec<f64>> = (0..k_dim).map(|k| w.row(k).to_vec()).collect();

        Ok(Parafac2Fit {
            u,
            s,
            v,
            h,
            iterations: outcome.iterations(),
            stop_reason: outcome.stop_reason,
            timing: TimingBreakdown {
                preprocess_secs: 0.0,
                iterations_secs: outcome.iterations_secs(),
                per_iteration_secs: outcome.per_iteration_secs,
                total_secs: t0.elapsed().as_secs_f64(),
            },
            criterion_trace: outcome.criterion_trace,
        })
    }

    /// Fits a dense tensor by sparsifying it first (exact zeros dropped) —
    /// the [`Parafac2Solver`] conformance path and the dense→sparse
    /// migration shim.
    ///
    /// # Errors
    /// See [`SpartanSparse::fit_sparse`].
    pub fn fit(&self, tensor: &IrregularTensor, options: &FitOptions<'_>) -> Result<Parafac2Fit> {
        self.fit_observed(tensor, options, &mut NoopObserver)
    }

    /// [`SpartanSparse::fit`] with a [`FitObserver`] session.
    ///
    /// # Errors
    /// See [`SpartanSparse::fit_sparse`].
    pub fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        let sparse = SparseIrregularTensor::from_dense(tensor);
        self.fit_sparse_observed(&sparse, options, observer)
    }
}

impl Parafac2Solver for SpartanSparse {
    fn name(&self) -> &'static str {
        "SPARTan-sparse"
    }

    fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        SpartanSparse::fit_observed(self, tensor, options, observer)
    }
}

/// `acc += tmp · diag(w_row)`, the per-slice MTTKRP weighting — the same
/// inner accumulation as the dense solver's partial-sum loops.
fn accumulate_weighted(acc: &mut Mat, tmp: &Mat, w_row: &[f64]) {
    for i in 0..acc.rows() {
        let arow = acc.row_mut(i);
        let trow = tmp.row(i);
        for (c, &wv) in w_row.iter().enumerate() {
            arow[c] += trow[c] * wv;
        }
    }
}

/// True squared reconstruction error `Σ_k ‖X_k − Q_k H S_k Vᵀ‖²_F` over a
/// sparse tensor in O(nnz + Σ_k I_k·R) time and O(max_k I_k·R + J) scratch:
/// per slice, `Q_k·HS_k` is materialized (`I_k×R`), each model row is
/// formed with the same [`dot`] the dense NT kernel uses, and the
/// subtract-square-accumulate walks columns `0..J` with a nonzero cursor —
/// the exact flat order of the dense `diff_norm_sq`, so the result is
/// bitwise equal to the dense error on the densified tensor. Slices fan out
/// over the pool; per-slice sums combine in ascending `k` for every pool
/// size.
#[allow(clippy::too_many_arguments)]
fn sparse_error_sq(
    tensor: &SparseIrregularTensor,
    qs: &[Mat],
    h: &Mat,
    w: &Mat,
    v: &Mat,
    pool: &ThreadPool,
    partition: &[Vec<usize>],
    ws: &mut Workspace,
) -> f64 {
    if pool.threads() == 1 {
        let mut total = 0.0;
        for k in 0..qs.len() {
            total += slice_error_sq(
                tensor.slice(k),
                &qs[k],
                h,
                w.row(k),
                v,
                &mut ws.crit_hs,
                &mut ws.slice_b,
                &mut ws.col_out,
            );
        }
        return total;
    }
    let per_slice: Vec<f64> = pool.run_partitioned(partition, |k| {
        let (mut hs, mut qhs) = (Mat::default(), Mat::default());
        let mut jrow = Vec::new();
        slice_error_sq(tensor.slice(k), &qs[k], h, w.row(k), v, &mut hs, &mut qhs, &mut jrow)
    });
    per_slice.iter().sum()
}

/// `‖X_k − Q_k H S_k Vᵀ‖²_F` for one CSR slice on caller scratch.
#[allow(clippy::too_many_arguments)]
fn slice_error_sq(
    slice: &SparseSlice,
    q: &Mat,
    h: &Mat,
    w_row: &[f64],
    v: &Mat,
    hs: &mut Mat,
    qhs: &mut Mat,
    jrow: &mut Vec<f64>,
) -> f64 {
    hs.copy_from(h);
    scale_columns(hs, w_row);
    q.matmul_into(&*hs, qhs); // Q_k·HS_k, I_k×R
    let j = slice.cols();
    if jrow.len() != j {
        jrow.clear();
        jrow.resize(j, 0.0);
    }
    let mut total = 0.0;
    for i in 0..slice.rows() {
        let qrow = qhs.row(i);
        for (col, m) in jrow.iter_mut().enumerate() {
            *m = dot(qrow, v.row(col)); // model row, same op as the NT kernel
        }
        let (cols, vals) = slice.row(i);
        let mut p = 0;
        for (col, &m) in jrow.iter().enumerate() {
            let x = if p < cols.len() && cols[p] == col {
                let val = vals[p];
                p += 1;
                val
            } else {
                0.0
            };
            let d = x - m;
            total += d * d;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spartan::SpartanDense;
    use dpar2_data::{planted_parafac2, planted_sparse};

    fn assert_fit_bits_eq(a: &Parafac2Fit, b: &Parafac2Fit) {
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.stop_reason, b.stop_reason);
        assert_mat_bits(&a.h, &b.h, "H");
        assert_mat_bits(&a.v, &b.v, "V");
        for (k, (ua, ub)) in a.u.iter().zip(&b.u).enumerate() {
            assert_mat_bits(ua, ub, &format!("U[{k}]"));
        }
        assert_eq!(a.s, b.s);
        for (i, (ca, cb)) in a.criterion_trace.iter().zip(&b.criterion_trace).enumerate() {
            assert_eq!(ca.to_bits(), cb.to_bits(), "criterion_trace[{i}]: {ca} vs {cb}");
        }
    }

    fn assert_mat_bits(a: &Mat, b: &Mat, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what} shape");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what} entry {i}: {x} vs {y}");
        }
    }

    // J = 7, R = 3 keeps every dense product in SpartanDense on the naive
    // dispatch path regardless of slice height (n = R < NR or n = J < NR or
    // m = R < MR throughout), which is the configuration where sparse↔dense
    // bit-identity is exact. See dpar2_linalg::kernel::use_blocked.
    const GOLDEN_J: usize = 7;
    const GOLDEN_R: usize = 3;

    #[test]
    fn matches_dense_spartan_bit_for_bit() {
        let dense = planted_parafac2(&[23, 31, 17, 26], GOLDEN_J, GOLDEN_R, 0.2, 811);
        let sparse = SparseIrregularTensor::from_dense(&dense);
        let cfg = FitOptions::new(GOLDEN_R).with_max_iterations(6).with_tolerance(0.0);
        let df = SpartanDense.fit(&dense, &cfg).unwrap();
        let sf = SpartanSparse.fit_sparse(&sparse, &cfg).unwrap();
        assert_fit_bits_eq(&df, &sf);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let t = planted_sparse(&[40, 65, 28, 51], GOLDEN_J, GOLDEN_R, 0.3, 0.1, 812);
        let base = SpartanSparse
            .fit_sparse(&t, &FitOptions::new(GOLDEN_R).with_threads(1).with_max_iterations(5))
            .unwrap();
        for threads in [2, 4] {
            let f = SpartanSparse
                .fit_sparse(
                    &t,
                    &FitOptions::new(GOLDEN_R).with_threads(threads).with_max_iterations(5),
                )
                .unwrap();
            assert_fit_bits_eq(&base, &f);
        }
    }

    #[test]
    fn fits_dense_planted_data_via_trait_path() {
        let t = planted_parafac2(&[25, 30, 18], 14, 3, 0.05, 813);
        let fit = SpartanSparse.fit(&t, &FitOptions::new(3)).unwrap();
        assert!(fit.fitness(&t) > 0.95, "fitness {}", fit.fitness(&t));
    }

    #[test]
    fn converges_on_fully_observed_sparse_model() {
        // density 1, no noise: the CSR tensor IS an exact PARAFAC2 model.
        let t = planted_sparse(&[22, 28, 16], 9, 3, 1.0, 0.0, 814);
        let dense = t.to_dense();
        let fit = SpartanSparse.fit_sparse(&t, &FitOptions::new(3)).unwrap();
        assert!(fit.fitness(&dense) > 0.999, "fitness {}", fit.fitness(&dense));
    }

    #[test]
    fn rejects_invalid_rank() {
        let t = planted_sparse(&[6, 30], 14, 2, 0.5, 0.0, 815);
        assert!(SpartanSparse.fit_sparse(&t, &FitOptions::new(7)).is_err());
        assert!(SpartanSparse.fit_sparse(&t, &FitOptions::new(0)).is_err());
    }

    #[test]
    fn zero_iteration_budget_yields_identity_model() {
        let t = planted_sparse(&[12, 15], 6, 2, 0.4, 0.0, 816);
        let fit = SpartanSparse.fit_sparse(&t, &FitOptions::new(2).with_max_iterations(0)).unwrap();
        assert_eq!(fit.iterations, 0);
        assert_eq!(fit.u.len(), 2);
        assert_eq!(fit.u[0].shape(), (12, 2));
    }
}
