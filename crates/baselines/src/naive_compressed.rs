//! The "naive approach" ablation of §III-C: compress like DPar2, then
//! **reconstruct** `X̃_k = A_k F(k) E Dᵀ` and run plain PARAFAC2-ALS on the
//! reconstructed slices.
//!
//! The paper dismisses this design in one sentence — *"However, this
//! approach fails to improve the efficiency of updating factor matrices"* —
//! because reconstruction reinstates the `O(Σ_k I_k J)` per-iteration data
//! footprint that compression was supposed to remove. This implementation
//! exists to measure exactly that: same compression, same fitted model
//! family, but per-iteration cost back at PARAFAC2-ALS levels. See the
//! `ablation` rows of EXPERIMENTS.md.

use crate::parafac2_als::Parafac2Als;
use dpar2_core::{
    compress, FitObserver, FitOptions, FitPhase, NoopObserver, Parafac2Fit, Parafac2Solver, Result,
};
use dpar2_tensor::IrregularTensor;
use std::time::Instant;

/// Compress-reconstruct-iterate strawman (the §III-C naive design) — a
/// stateless [`Parafac2Solver`] handle; all per-fit settings travel in
/// [`FitOptions`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveCompressedAls;

impl NaiveCompressedAls {
    /// Runs DPar2's two-stage compression, reconstructs every slice, and
    /// fits with plain PARAFAC2-ALS on the reconstructions.
    ///
    /// # Errors
    /// Propagates rank-validation errors from either phase.
    pub fn fit(&self, tensor: &IrregularTensor, options: &FitOptions<'_>) -> Result<Parafac2Fit> {
        self.fit_observed(tensor, options, &mut NoopObserver)
    }

    /// [`NaiveCompressedAls::fit`] with a [`FitObserver`] session. The
    /// preprocessing phase reported to the observer covers compression
    /// *and* reconstruction (this ablation's whole point is that the
    /// reconstruction undoes the compression).
    ///
    /// # Errors
    /// See [`NaiveCompressedAls::fit`].
    pub fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        let t0 = Instant::now();
        let ct = compress(tensor, options)?;
        let reconstructed =
            IrregularTensor::new((0..ct.k()).map(|k| ct.reconstruct_slice(k)).collect());
        let preprocess_secs = t0.elapsed().as_secs_f64();
        observer.on_phase(FitPhase::Compress, preprocess_secs);

        let mut fit = Parafac2Als.fit_observed(&reconstructed, options, observer)?;
        fit.timing.preprocess_secs = preprocess_secs;
        fit.timing.total_secs += preprocess_secs;
        Ok(fit)
    }
}

impl Parafac2Solver for NaiveCompressedAls {
    fn name(&self) -> &'static str {
        "NaiveCompressed"
    }

    fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        NaiveCompressedAls::fit_observed(self, tensor, options, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parafac2_als::tests::planted;

    #[test]
    fn reaches_comparable_fitness() {
        let t = planted(&[30, 40, 25], 14, 3, 0.1, 901);
        let cfg = FitOptions::new(3).with_max_iterations(16).with_seed(902);
        let naive = NaiveCompressedAls.fit(&t, &cfg).unwrap();
        let direct = Parafac2Als.fit(&t, &cfg).unwrap();
        let (fn_, fd) = (naive.fitness(&t), direct.fitness(&t));
        assert!((fn_ - fd).abs() < 0.02, "naive {fn_} vs direct {fd}");
    }

    #[test]
    fn per_iteration_cost_not_reduced_by_compression() {
        // The ablation's point, asserted structurally: the naive pipeline's
        // iteration phase works on full-size slices (same shapes as the
        // input), so its per-iteration time scales like PARAFAC2-ALS, not
        // like DPar2. We check the data footprint it iterates over.
        let t = planted(&[50, 60], 20, 2, 0.05, 903);
        let dcfg = FitOptions::new(2).with_seed(904);
        let ct = compress(&t, &dcfg).unwrap();
        let recon = IrregularTensor::new((0..2).map(|k| ct.reconstruct_slice(k)).collect());
        assert_eq!(recon.num_entries(), t.num_entries());
        assert!(ct.size_floats() < t.num_entries());
    }

    #[test]
    fn timing_includes_compression() {
        let t = planted(&[25, 30], 12, 2, 0.1, 905);
        let fit = NaiveCompressedAls.fit(&t, &FitOptions::new(2).with_max_iterations(4)).unwrap();
        assert!(fit.timing.preprocess_secs > 0.0);
    }
}
