//! PARAFAC2-ALS — Algorithm 2 of the paper (Kiers, ten Berge & Bro 1999).
//!
//! The direct-fitting alternating least squares algorithm, implemented
//! faithfully to its textbook form:
//!
//! * `Q_k` updates via rank-`R` truncated SVD of `X_k V S_k Hᵀ` (lines 4–5),
//! * explicit `Y_k = Q_kᵀ X_k` and a materialized tensor `Y` (lines 8–10),
//! * naive MTTKRP — unfoldings times materialized Khatri-Rao products —
//!   for the single CP-ALS iteration (lines 11–16),
//! * convergence on the true reconstruction error (line 17).
//!
//! This is deliberately the expensive formulation that DPar2 improves on:
//! every iteration touches the raw slices (`O(Σ_k I_k J R)`) and pays the
//! `O(J K R²)` MTTKRP with `O(J K R)` intermediates.

use crate::common::{
    identity_qs, init_factors, scale_columns, true_error_sq_pooled, update_q, validate_rank,
};
use dpar2_core::{
    FitObserver, FitOptions, FitSession, NoopObserver, Parafac2Fit, Parafac2Solver, Result,
    TimingBreakdown,
};
use dpar2_linalg::{pinv, Mat};
use dpar2_parallel::ThreadPool;
use dpar2_tensor::{mttkrp, normalize_columns, Dense3, IrregularTensor};
use std::time::Instant;

/// The classic PARAFAC2-ALS solver — a stateless [`Parafac2Solver`] handle;
/// all per-fit settings travel in [`FitOptions`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Parafac2Als;

impl Parafac2Als {
    /// Fits the PARAFAC2 model by direct ALS (Algorithm 2).
    ///
    /// # Errors
    /// [`dpar2_core::Dpar2Error::RankTooLarge`] / `ZeroRank` on invalid
    /// rank; `WarmStart` on mismatched warm-start factors.
    pub fn fit(&self, tensor: &IrregularTensor, options: &FitOptions<'_>) -> Result<Parafac2Fit> {
        self.fit_observed(tensor, options, &mut NoopObserver)
    }

    /// [`Parafac2Als::fit`] with a [`FitObserver`] session.
    ///
    /// # Errors
    /// See [`Parafac2Als::fit`].
    pub fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        let t0 = Instant::now();
        let r = options.rank;
        validate_rank(tensor, r)?;
        let k_dim = tensor.k();
        // Pool for the per-iteration convergence check (the reconstruction
        // error costs as much as a compression pass). The ALS updates
        // themselves stay deliberately serial — they are the textbook
        // formulation DPar2 is compared against — but the *stopping rule*
        // shares the kernel-layer speedup so cross-method timings compare
        // algorithms, not thread budgets. `true_error_sq_pooled` is
        // bit-identical for every pool size.
        let pool = ThreadPool::new(options.threads.max(1));

        // Line 1 — initialization (or the caller's warm start).
        let (mut h, mut v, mut w) = init_factors(tensor, options)?;
        let mut qs: Vec<Mat> = Vec::with_capacity(k_dim);

        // Data norm for the absolute branch of the shared stopping rule.
        let x_norm_sq = tensor.fro_norm_sq();

        let mut session = FitSession::new(options, observer);
        for _iter in 0..options.max_iterations {
            session.start_iteration();

            // Lines 3–6: Q_k ← polar factor of X_k V S_k Hᵀ.
            qs.clear();
            for k in 0..k_dim {
                let mut vs = v.clone();
                scale_columns(&mut vs, w.row(k));
                // X_k · (V S_k Hᵀ) — build the J×R operand first.
                let vsh = vs.matmul_nt(&h).expect("V S_k Hᵀ");
                let target = tensor.slice(k).matmul(&vsh).expect("X_k · VSHᵀ");
                qs.push(update_q(&target, r));
            }

            // Lines 7–10: materialize Y with frontal slices Q_kᵀ X_k.
            let yks: Vec<Mat> =
                (0..k_dim).map(|k| qs[k].matmul_tn(tensor.slice(k)).expect("Q_kᵀX_k")).collect();
            let y = Dense3::from_frontal_slices(yks);

            // Lines 11–16: one naive CP-ALS iteration on Y.
            let g1 = mttkrp(&y, &h, &v, &w, 1);
            h = g1.matmul(pinv(w.gram().hadamard(&v.gram()).expect("WᵀW∗VᵀV"))).expect("H update");
            let (hn, _) = normalize_columns(&h);
            h = hn;

            let g2 = mttkrp(&y, &h, &v, &w, 2);
            v = g2.matmul(pinv(w.gram().hadamard(&h.gram()).expect("WᵀW∗HᵀH"))).expect("V update");
            let (vn, _) = normalize_columns(&v);
            v = vn;

            let g3 = mttkrp(&y, &h, &v, &w, 3);
            w = g3.matmul(pinv(v.gram().hadamard(&h.gram()).expect("VᵀV∗HᵀH"))).expect("W update");

            // Line 17: true reconstruction error, then the session's shared
            // stopping rule (convergence / observer / time budget /
            // iteration budget).
            let err = true_error_sq_pooled(tensor, &qs, &h, &w, &v, &pool);
            if session.finish_iteration(err, x_norm_sq) {
                break;
            }
        }
        let outcome = session.finish();
        if qs.is_empty() {
            // Zero-iteration budget: identity-embedded Q_k keep the model
            // well-formed (see `common::identity_qs`).
            qs = identity_qs(tensor, r);
        }

        // Lines 18–20: U_k = Q_k H.
        let u: Vec<Mat> = qs.iter().map(|q| q.matmul(&h).expect("Q_k·H")).collect();
        let s: Vec<Vec<f64>> = (0..k_dim).map(|k| w.row(k).to_vec()).collect();

        Ok(Parafac2Fit {
            u,
            s,
            v,
            h,
            iterations: outcome.iterations(),
            stop_reason: outcome.stop_reason,
            timing: TimingBreakdown {
                preprocess_secs: 0.0,
                iterations_secs: outcome.iterations_secs(),
                per_iteration_secs: outcome.per_iteration_secs,
                total_secs: t0.elapsed().as_secs_f64(),
            },
            criterion_trace: outcome.criterion_trace,
        })
    }
}

impl Parafac2Solver for Parafac2Als {
    fn name(&self) -> &'static str {
        "PARAFAC2-ALS"
    }

    fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        Parafac2Als::fit_observed(self, tensor, options, observer)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use dpar2_linalg::qr;
    use dpar2_linalg::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub(crate) fn planted(
        row_dims: &[usize],
        j: usize,
        r: usize,
        noise: f64,
        seed: u64,
    ) -> IrregularTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = gaussian_mat(r, r, &mut rng);
        let v = gaussian_mat(j, r, &mut rng);
        let slices = row_dims
            .iter()
            .map(|&ik| {
                let q = qr::qr(gaussian_mat(ik, r, &mut rng)).q;
                let sk: Vec<f64> =
                    (0..r).map(|i| 1.0 + 0.3 * i as f64 + rng.random::<f64>()).collect();
                let mut qh = q.matmul(&h).unwrap();
                scale_columns(&mut qh, &sk);
                let mut x = qh.matmul_nt(&v).unwrap();
                if noise > 0.0 {
                    let scale = noise * x.fro_norm() / ((ik * j) as f64).sqrt();
                    x.axpy(scale, &gaussian_mat(ik, j, &mut rng));
                }
                x
            })
            .collect();
        IrregularTensor::new(slices)
    }

    #[test]
    fn fits_planted_data() {
        let t = planted(&[20, 35, 15], 12, 3, 0.0, 601);
        let fit = Parafac2Als.fit(&t, &FitOptions::new(3)).unwrap();
        let f = fit.fitness(&t);
        assert!(f > 0.98, "PARAFAC2-ALS fitness {f}");
    }

    #[test]
    fn error_trace_nonincreasing() {
        let t = planted(&[25, 30, 20, 15], 10, 2, 0.3, 602);
        let fit = Parafac2Als
            .fit(&t, &FitOptions::new(2).with_tolerance(0.0).with_max_iterations(15))
            .unwrap();
        for pair in fit.criterion_trace.windows(2) {
            assert!(
                pair[1] <= pair[0] * (1.0 + 1e-9),
                "ALS error increased: {:?}",
                fit.criterion_trace
            );
        }
    }

    #[test]
    fn uk_cross_products_invariant() {
        let t = planted(&[30, 22], 14, 3, 0.05, 603);
        let fit = Parafac2Als.fit(&t, &FitOptions::new(3)).unwrap();
        let hth = fit.h.gram();
        for k in 0..2 {
            let utu = fit.u[k].gram();
            assert!((&utu - &hth).fro_norm() < 1e-8 * (1.0 + hth.fro_norm()));
        }
    }

    #[test]
    fn rejects_invalid_rank() {
        let t = planted(&[5, 30], 14, 2, 0.0, 604);
        assert!(Parafac2Als.fit(&t, &FitOptions::new(9)).is_err());
    }

    #[test]
    fn respects_iteration_budget() {
        let t = planted(&[15, 15], 8, 2, 0.5, 605);
        let fit = Parafac2Als
            .fit(&t, &FitOptions::new(2).with_max_iterations(4).with_tolerance(0.0))
            .unwrap();
        assert_eq!(fit.iterations, 4);
    }
}
