//! The metrics registry and its lock-free handles.
//!
//! A [`MetricsRegistry`] interns named metric cells; registration returns a
//! cheap cloneable handle ([`Counter`], [`Gauge`], [`Histogram`]) that
//! records through relaxed atomics — no locks, no allocation. Registering
//! the same name twice returns a handle to the *same* cell, so independent
//! components naming the same metric contribute to one total.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::histogram::{bucket_index, HistogramSnapshot, BUCKETS};
use crate::span::SpanTimer;

/// Monotonically increasing `u64` metric (events, totals).
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    fn new() -> Self {
        Self { cell: Arc::new(AtomicU64::new(0)) }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (queue depths, last-seen markers).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    fn new() -> Self {
        Self { cell: Arc::new(AtomicI64::new(0)) }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramCell {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Log₂-bucket latency histogram handle (see [`crate::histogram`] for the
/// bucket geometry). Recording is lock-free and allocation-free.
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    fn new() -> Self {
        Self { cell: Arc::new(HistogramCell::new()) }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        let c = &self.cell;
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
        c.min.fetch_min(value, Ordering::Relaxed);
        c.max.fetch_max(value, Ordering::Relaxed);
        c.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration as whole nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Start an RAII span: the elapsed wall time (ns) is recorded here
    /// when the returned guard drops.
    #[inline]
    pub fn start_span(&self) -> SpanTimer<'_> {
        SpanTimer::new(self)
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy for quantile readout, merging and export.
    ///
    /// Each field is read with a relaxed load, so a snapshot taken while
    /// writers are active is per-field accurate but not a single atomic
    /// cut — take snapshots at quiescent points for exact reconciliation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.cell;
        let count = c.count.load(Ordering::Relaxed);
        let min = c.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: c.max.load(Ordering::Relaxed),
            buckets: c.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metric cells.
///
/// The registry itself is only touched at registration and snapshot time;
/// the handles it returns record without ever taking its lock.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<(String, Metric)>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("MetricsRegistry").field("metrics", &n).finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        if let Some((_, m)) = metrics.iter().find(|(n, _)| n == name) {
            return match m {
                Metric::Counter(c) => Metric::Counter(c.clone()),
                Metric::Gauge(g) => Metric::Gauge(g.clone()),
                Metric::Histogram(h) => Metric::Histogram(h.clone()),
            };
        }
        let metric = make();
        let handle = match &metric {
            Metric::Counter(c) => Metric::Counter(c.clone()),
            Metric::Gauge(g) => Metric::Gauge(g.clone()),
            Metric::Histogram(h) => Metric::Histogram(h.clone()),
        };
        metrics.push((name.to_string(), metric));
        handle
    }

    /// Register (or look up) a counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Register (or look up) a gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Register (or look up) a histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Copy every metric's current value, sorted by name. The result is a
    /// plain value: exportable (see [`crate::export`]), mergeable, and
    /// comparable for round-trip tests.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut snap = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

/// Point-in-time copy of a whole registry, sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, total)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_one_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.snapshot().counter("x"), Some(3));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _c = reg.counter("x");
        let _g = reg.gauge("x");
    }

    #[test]
    fn histogram_tracks_exact_extremes() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [7u64, 1000, 3] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!((s.count, s.min, s.max, s.sum), (3, 3, 1000, 1010));
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn gauge_add_sub_set() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(reg.snapshot().gauge("depth"), Some(-1));
    }
}
