//! Telemetry for the DPar2 reproduction: a global-free, handle-based
//! metrics registry with lock-free counters, gauges and log₂-bucket latency
//! histograms, RAII span timers, and text/JSON exporters.
//!
//! Design constraints, in order:
//!
//! 1. **Allocation-free record path.** Registering a metric allocates (it
//!    interns the name and an `Arc`'d cell), but bumping a [`Counter`],
//!    setting a [`Gauge`], recording into a [`Histogram`] or dropping a
//!    [`SpanTimer`] never allocates. This lets the workspace's counting
//!    allocator pins (`tests/alloc_regression.rs`) cover instrumented code.
//! 2. **Lock-free record path.** Every cell is a plain atomic (or a fixed
//!    array of them); writers never contend on a mutex. The registry's
//!    mutex is touched only at registration and snapshot time.
//! 3. **No globals.** A [`MetricsRegistry`] is an ordinary value; callers
//!    thread handles (cheap `Arc` clones) to whatever needs them. Library
//!    code takes `Option<&...>` hooks and stays zero-cost when unused.
//!
//! ```
//! use dpar2_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let queries = reg.counter("queries_total");
//! let latency = reg.histogram("query_latency_ns");
//!
//! queries.inc();
//! {
//!     let _span = latency.start_span(); // records elapsed ns on drop
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("queries_total"), Some(1));
//! assert_eq!(snap.histogram("query_latency_ns").unwrap().count, 1);
//! // Round-trips through the JSON exporter.
//! let back = dpar2_obs::export::from_json(&dpar2_obs::export::to_json(&snap)).unwrap();
//! assert_eq!(back, snap);
//! ```

pub mod export;
pub mod histogram;
pub mod registry;
pub mod span;

pub use histogram::{HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, Snapshot};
pub use span::SpanTimer;
