//! Exporters: Prometheus-style text exposition and a JSON snapshot format
//! that round-trips ([`to_json`] → [`from_json`] reproduces the snapshot
//! exactly — every field is an integer, so there is no float drift).
//!
//! The JSON layout, consumed by the bench bins for `BENCH_*.json`:
//!
//! ```json
//! {
//!   "counters": {"queries_total": 42},
//!   "gauges": {"queue_depth": 3},
//!   "histograms": {
//!     "latency_ns": {"count": 2, "sum": 9, "min": 4, "max": 5,
//!                    "buckets": [[3, 2]]}
//!   }
//! }
//! ```
//!
//! Histogram buckets are encoded sparsely as `[index, count]` pairs.

use std::fmt::Write as _;

use crate::histogram::{bucket_upper, HistogramSnapshot, BUCKETS};
use crate::registry::Snapshot;

// ---------------------------------------------------------------------------
// Text exposition
// ---------------------------------------------------------------------------

/// Render a snapshot in Prometheus-style text exposition format.
///
/// Histograms emit cumulative `_bucket{le="…"}` lines (the `le` bound is
/// the bucket's inclusive upper edge) followed by `_sum` and `_count`.
pub fn to_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let top = h.buckets.iter().rposition(|&n| n > 0).map_or(0, |b| b + 1);
        let mut cumulative = 0u64;
        for (b, &n) in h.buckets.iter().enumerate().take(top) {
            cumulative += n;
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", bucket_upper(b));
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
    }
    out
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_histogram(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
        h.count, h.sum, h.min, h.max
    );
    let mut first = true;
    for (b, &n) in h.buckets.iter().enumerate() {
        if n > 0 {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "[{b}, {n}]");
        }
    }
    out.push_str("]}");
}

/// Serialize a snapshot to the JSON format described in the module docs.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        push_json_string(&mut out, name);
        let _ = write!(out, ": {v}");
    }
    out.push_str(if snap.counters.is_empty() {
        "},\n  \"gauges\": {"
    } else {
        "\n  },\n  \"gauges\": {"
    });
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        push_json_string(&mut out, name);
        let _ = write!(out, ": {v}");
    }
    out.push_str(if snap.gauges.is_empty() {
        "},\n  \"histograms\": {"
    } else {
        "\n  },\n  \"histograms\": {"
    });
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        push_json_string(&mut out, name);
        out.push_str(": ");
        push_histogram(&mut out, h);
    }
    out.push_str(if snap.histograms.is_empty() { "}\n}\n" } else { "\n  }\n}\n" });
    out
}

// ---------------------------------------------------------------------------
// JSON reader (minimal recursive descent — just enough for the format
// above; the build environment has no serde)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type ParseResult<T> = Result<T, String>;

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self { bytes: s.as_bytes(), pos: 0 }
    }

    fn err<T>(&self, msg: &str) -> ParseResult<T> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> ParseResult<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, c: u8) -> ParseResult<()> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", c as char))
        }
    }

    fn string(&mut self) -> ParseResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("unsupported escape"),
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep multi-byte
                    // UTF-8 sequences intact.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn integer(&mut self) -> ParseResult<i128> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected integer");
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("invalid integer at byte {start}"))
    }

    fn u64(&mut self) -> ParseResult<u64> {
        let v = self.integer()?;
        u64::try_from(v).map_err(|_| format!("value {v} out of u64 range"))
    }

    fn i64(&mut self) -> ParseResult<i64> {
        let v = self.integer()?;
        i64::try_from(v).map_err(|_| format!("value {v} out of i64 range"))
    }

    /// Parse `{ "key": <item>, ... }`, calling `item` for each value.
    fn object(
        &mut self,
        mut item: impl FnMut(&mut Self, String) -> ParseResult<()>,
    ) -> ParseResult<()> {
        self.expect(b'{')?;
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            item(self, key)?;
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn histogram(&mut self) -> ParseResult<HistogramSnapshot> {
        let mut h = HistogramSnapshot::empty();
        self.object(|p, key| {
            match key.as_str() {
                "count" => h.count = p.u64()?,
                "sum" => h.sum = p.u64()?,
                "min" => h.min = p.u64()?,
                "max" => h.max = p.u64()?,
                "buckets" => {
                    p.expect(b'[')?;
                    if p.peek()? == b']' {
                        p.pos += 1;
                        return Ok(());
                    }
                    loop {
                        p.expect(b'[')?;
                        let idx = p.u64()? as usize;
                        p.expect(b',')?;
                        let n = p.u64()?;
                        p.expect(b']')?;
                        if idx >= BUCKETS {
                            return Err(format!("bucket index {idx} out of range"));
                        }
                        h.buckets[idx] = n;
                        match p.peek()? {
                            b',' => p.pos += 1,
                            b']' => {
                                p.pos += 1;
                                break;
                            }
                            _ => return p.err("expected `,` or `]`"),
                        }
                    }
                }
                other => return Err(format!("unknown histogram field `{other}`")),
            }
            Ok(())
        })?;
        Ok(h)
    }
}

/// Parse a snapshot previously serialized with [`to_json`].
pub fn from_json(s: &str) -> Result<Snapshot, String> {
    let mut p = Parser::new(s);
    let mut snap = Snapshot::default();
    p.object(|p, section| {
        match section.as_str() {
            "counters" => p.object(|p, name| {
                let v = p.u64()?;
                snap.counters.push((name, v));
                Ok(())
            })?,
            "gauges" => p.object(|p, name| {
                let v = p.i64()?;
                snap.gauges.push((name, v));
                Ok(())
            })?,
            "histograms" => p.object(|p, name| {
                let h = p.histogram()?;
                snap.histograms.push((name, h));
                Ok(())
            })?,
            other => return Err(format!("unknown section `{other}`")),
        }
        Ok(())
    })?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data");
    }
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample() -> Snapshot {
        let reg = MetricsRegistry::new();
        reg.counter("queries_total").add(42);
        reg.gauge("queue_depth").set(-3);
        let h = reg.histogram("latency_ns");
        for v in [1u64, 2, 1023, 1024, 0] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample();
        let back = from_json(&to_json(&snap)).expect("parse back");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert_eq!(from_json(&to_json(&snap)).unwrap(), snap);
    }

    #[test]
    fn odd_names_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter("weird \"name\"\\with\nescapes").inc();
        let snap = reg.snapshot();
        assert_eq!(from_json(&to_json(&snap)).unwrap(), snap);
    }

    #[test]
    fn text_exposition_shape() {
        let text = to_text(&sample());
        assert!(text.contains("# TYPE queries_total counter"));
        assert!(text.contains("queries_total 42"));
        assert!(text.contains("queue_depth -3"));
        assert!(text.contains("# TYPE latency_ns histogram"));
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("latency_ns_count 5"));
        // Cumulative buckets are monotone non-decreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("latency_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone cumulative bucket: {line}");
            last = v;
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_json("{\"bogus\": {}}").is_err());
        assert!(from_json("{\"counters\": {\"x\": }}").is_err());
        assert!(from_json("not json").is_err());
    }
}
