//! RAII span timing.

use std::time::Instant;

use crate::registry::Histogram;

/// Records the wall time between its creation and its drop into a
/// [`Histogram`], in nanoseconds. Create one with
/// [`Histogram::start_span`]; the record happens in `Drop`, so early
/// returns and `?` propagation are timed correctly. Nothing allocates.
///
/// ```
/// use dpar2_obs::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let hist = reg.histogram("phase_ns");
/// {
///     let _span = hist.start_span();
///     // ... timed work ...
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl<'a> SpanTimer<'a> {
    pub(crate) fn new(hist: &'a Histogram) -> Self {
        Self { hist, start: Instant::now() }
    }

    /// Elapsed time so far, without ending the span.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn span_records_on_drop() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t");
        {
            let span = h.start_span();
            std::thread::sleep(std::time::Duration::from_millis(1));
            span.finish();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.min >= 1_000_000, "slept ≥ 1ms, recorded {} ns", s.min);
    }
}
