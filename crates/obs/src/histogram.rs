//! Fixed-bucket log₂-scale histogram.
//!
//! Values (typically latencies in nanoseconds) are binned by order of
//! magnitude in base 2: bucket 0 holds the value `0`, bucket `b` for
//! `1 ≤ b < 63` holds `[2^(b-1), 2^b)`, and the last bucket holds
//! everything from `2^62` up. Exact `min`/`max`/`sum`/`count` ride along,
//! so `max` (and the mean) are exact while quantiles are accurate to one
//! bucket — i.e. within a factor of 2, which is the right resolution for
//! latency percentiles.
//!
//! The atomic cell lives in [`crate::registry`]; this module owns the
//! bucket geometry and the immutable [`HistogramSnapshot`] arithmetic
//! (quantiles, merge) shared by the live handle and the exporters.

/// Number of buckets in every histogram.
pub const BUCKETS: usize = 64;

/// Bucket index for a recorded value.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        // 64 - leading_zeros = floor(log2(v)) + 1, clamped into the last bucket.
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Smallest value that lands in bucket `b` (inclusive).
#[inline]
pub fn bucket_lower(b: usize) -> u64 {
    debug_assert!(b < BUCKETS);
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Largest value that lands in bucket `b` (inclusive).
#[inline]
pub fn bucket_upper(b: usize) -> u64 {
    debug_assert!(b < BUCKETS);
    if b == 0 {
        0
    } else if b == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// An immutable point-in-time copy of a histogram, with quantile readout
/// and lossless merge. Produced by [`crate::Histogram::snapshot`] and by
/// the JSON importer; all exporter arithmetic happens here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
    /// Exact smallest recorded value (0 when empty).
    pub min: u64,
    /// Exact largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts; always `BUCKETS` long.
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        Self { count: 0, sum: 0, min: 0, max: 0, buckets: vec![0; BUCKETS] }
    }

    /// Mean of the recorded values (exact, from `sum/count`); 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q ∈ [0, 1]`.
    ///
    /// Returns the inclusive upper bound of the bucket containing the
    /// rank-`⌈q·count⌉` observation, clamped to the exact `[min, max]`
    /// range — so the true order-statistic is always within the returned
    /// value's bucket, `quantile(1.0)` is the exact max, and a
    /// single-valued histogram reads back that value exactly.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= rank {
                return bucket_upper(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (see [`Self::quantile`]).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (see [`Self::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge `other` into `self`. The empty snapshot is the identity and
    /// the operation is associative and commutative, so per-thread or
    /// per-shard histograms can be combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.wrapping_add(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry_is_exact_at_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        for b in 0..63usize {
            let v = 1u64 << b;
            assert_eq!(bucket_index(v), (b + 1).min(BUCKETS - 1), "2^{b}");
            assert!(bucket_lower(bucket_index(v)) <= v);
            assert!(v <= bucket_upper(bucket_index(v)));
            if v > 1 {
                // One below a power of two stays in the previous bucket.
                assert_eq!(bucket_index(v - 1), bucket_index(v) - 1, "2^{b}-1");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantile_of_single_value_is_exact() {
        let mut s = HistogramSnapshot::empty();
        s.count = 1;
        s.sum = 1234;
        s.min = 1234;
        s.max = 1234;
        s.buckets[bucket_index(1234)] = 1;
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 1234);
        }
    }

    #[test]
    fn empty_is_merge_identity() {
        let mut s = HistogramSnapshot::empty();
        let mut other = HistogramSnapshot::empty();
        other.count = 2;
        other.sum = 6;
        other.min = 2;
        other.max = 4;
        other.buckets[bucket_index(2)] += 1;
        other.buckets[bucket_index(4)] += 1;
        s.merge(&other);
        assert_eq!(s, other);
        let before = s.clone();
        s.merge(&HistogramSnapshot::empty());
        assert_eq!(s, before);
    }
}
