//! Property tests for the log₂ histogram: exact bucket boundaries at
//! powers of two, quantile readout within one bucket of a sorted-oracle
//! quantile, and merge associativity with the empty snapshot as identity.

use dpar2_obs::histogram::{bucket_index, bucket_lower, bucket_upper};
use dpar2_obs::{HistogramSnapshot, MetricsRegistry, BUCKETS};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("h");
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The sorted-oracle quantile: the rank-`⌈q·n⌉` order statistic.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// Every power of two is the *lower* edge of its bucket, and the value
    /// one below it falls in the previous bucket — boundaries are exact.
    #[test]
    fn bucket_boundaries_exact_at_powers_of_two(exp in 0u32..63) {
        let v = 1u64 << exp;
        let b = bucket_index(v);
        prop_assert_eq!(bucket_lower(b), v);
        prop_assert_eq!(bucket_index(v - 1), b - 1);
        prop_assert!(bucket_upper(b - 1) == v - 1);
    }

    /// Recorded values always land inside their bucket's [lower, upper].
    #[test]
    fn bucket_contains_value(v in 0u64..u64::MAX) {
        let b = bucket_index(v);
        prop_assert!(b < BUCKETS);
        prop_assert!(bucket_lower(b) <= v && v <= bucket_upper(b));
    }

    /// The histogram quantile lands in the same log₂ bucket as the exact
    /// sorted-oracle quantile (and is clamped into [min, max]).
    #[test]
    fn quantile_within_one_bucket_of_oracle(
        mut values in prop::collection::vec(0u64..1u64 << 40, 1..200),
        q in 0.0f64..1.0,
    ) {
        let snap = snapshot_of(&values);
        values.sort_unstable();
        let oracle = oracle_quantile(&values, q);
        let approx = snap.quantile(q);
        let ob = bucket_index(oracle);
        prop_assert!(
            bucket_lower(ob) <= approx && approx <= bucket_upper(ob),
            "oracle {} (bucket {}), histogram read {}", oracle, ob, approx
        );
        prop_assert!(snap.min <= approx && approx <= snap.max);
        // p100 is exact: the max is tracked outside the buckets.
        prop_assert_eq!(snap.quantile(1.0), *values.last().unwrap());
    }

    /// merge is associative, commutative, and has the empty snapshot as
    /// identity; merging equals recording the concatenation.
    #[test]
    fn merge_associative(
        a in prop::collection::vec(0u64..u64::MAX, 0..50),
        b in prop::collection::vec(0u64..u64::MAX, 0..50),
        c in prop::collection::vec(0u64..u64::MAX, 0..50),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        // Commutes: b ⊕ a == a ⊕ b.
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Identity on both sides.
        let mut id = HistogramSnapshot::empty();
        id.merge(&sa);
        prop_assert_eq!(&id, &sa);
        let mut sa2 = sa.clone();
        sa2.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&sa2, &sa);

        // Equals the histogram of the concatenation.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &snapshot_of(&all));
    }
}
