//! Hammer one registry from several threads and check that every recorded
//! event is accounted for exactly — atomic RMW operations lose nothing
//! even under contention, and handles registered under the same name on
//! different threads share one cell.

use std::thread;

use dpar2_obs::MetricsRegistry;

const THREADS: u64 = 4;
const OPS: u64 = 50_000;

#[test]
fn four_threads_reconcile_exactly() {
    let reg = MetricsRegistry::new();
    // Pre-register on the main thread; worker threads re-register by name
    // and must land on the same cells.
    let _ = reg.counter("ops_total");
    let _ = reg.gauge("inflight");
    let _ = reg.histogram("latency_ns");

    thread::scope(|scope| {
        for t in 0..THREADS {
            let reg = &reg;
            scope.spawn(move || {
                let ops = reg.counter("ops_total");
                let inflight = reg.gauge("inflight");
                let lat = reg.histogram("latency_ns");
                for i in 0..OPS {
                    inflight.add(1);
                    ops.inc();
                    // Distinct per-thread values so the sum detects any
                    // lost update: thread t records t*OPS + i + 1.
                    lat.record(t * OPS + i + 1);
                    inflight.sub(1);
                }
            });
        }
    });

    let snap = reg.snapshot();
    assert_eq!(snap.counter("ops_total"), Some(THREADS * OPS));
    assert_eq!(snap.gauge("inflight"), Some(0), "every add matched by a sub");

    let h = snap.histogram("latency_ns").expect("histogram registered");
    let n = THREADS * OPS;
    assert_eq!(h.count, n);
    assert_eq!(h.sum, n * (n + 1) / 2, "sum of 1..=n — no lost updates");
    assert_eq!(h.min, 1);
    assert_eq!(h.max, n);
    assert_eq!(h.buckets.iter().sum::<u64>(), n, "bucket counts cover every record");

    // The snapshot was taken at a quiescent point, so the exporter
    // round-trip reproduces the reconciled totals bit-for-bit.
    let back = dpar2_obs::export::from_json(&dpar2_obs::export::to_json(&snap)).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn concurrent_registration_yields_one_cell_per_name() {
    let reg = MetricsRegistry::new();
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let reg = &reg;
            scope.spawn(move || {
                for i in 0..64 {
                    reg.counter(&format!("c{i}")).inc();
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.counters.len(), 64);
    for (name, v) in &snap.counters {
        assert_eq!(*v, THREADS, "{name}");
    }
}
