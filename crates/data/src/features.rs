//! Video-feature-track simulator — the stand-in for the Activity and
//! Action datasets (frame × feature × video tensors of motion features).
//!
//! Motion-feature time series are smooth (features evolve continuously
//! between frames) and approximately low-rank within a clip (a few latent
//! motion modes drive many correlated features). We model each clip as
//! `smooth latent tracks × feature loadings + noise`.

use dpar2_linalg::random::{gaussian_mat, standard_normal};
use dpar2_linalg::Mat;
use dpar2_tensor::IrregularTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the feature-track corpus.
#[derive(Debug, Clone)]
pub struct FeatureTracksConfig {
    /// Number of clips `K`.
    pub n_clips: usize,
    /// Feature dimension `J`.
    pub n_features: usize,
    /// Maximum frames per clip.
    pub max_frames: usize,
    /// Minimum frames per clip.
    pub min_frames: usize,
    /// Number of latent motion modes.
    pub latent_dims: usize,
    /// Relative measurement-noise amplitude.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl FeatureTracksConfig {
    /// Defaults sized like the Activity/Action datasets (scaled).
    pub fn new(n_clips: usize, n_features: usize, max_frames: usize, seed: u64) -> Self {
        FeatureTracksConfig {
            n_clips,
            n_features,
            max_frames,
            min_frames: (max_frames / 3).max(4),
            latent_dims: 8,
            noise: 0.1,
            seed,
        }
    }
}

/// Generates the corpus: one `(frames × features)` slice per clip.
pub fn generate(config: &FeatureTracksConfig) -> IrregularTensor {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Feature loadings shared across clips (same sensor space), per-clip
    // latent trajectories (different motions).
    let loadings = gaussian_mat(config.n_features, config.latent_dims, &mut rng);
    let slices: Vec<Mat> = (0..config.n_clips)
        .map(|_| {
            let frames = config.min_frames
                + (rng.random::<f64>() * (config.max_frames - config.min_frames) as f64) as usize;
            let latent = smooth_tracks(frames, config.latent_dims, &mut rng);
            let mut x = latent.matmul_nt(&loadings).expect("tracks × loadingsᵀ");
            let scale = config.noise * x.fro_norm() / (x.len() as f64).sqrt();
            let noise = gaussian_mat(frames, config.n_features, &mut rng);
            x.axpy(scale, &noise);
            x
        })
        .collect();
    IrregularTensor::new(slices)
}

/// Smooth latent trajectories: cumulative random walks passed through a
/// width-5 moving average, one column per latent mode.
fn smooth_tracks(frames: usize, dims: usize, rng: &mut StdRng) -> Mat {
    let mut m = Mat::zeros(frames, dims);
    for d in 0..dims {
        let mut walk = Vec::with_capacity(frames);
        let mut acc = 0.0;
        for _ in 0..frames {
            acc += standard_normal(rng) * 0.3;
            walk.push(acc);
        }
        // Moving-average smoothing.
        for i in 0..frames {
            let lo = i.saturating_sub(2);
            let hi = (i + 3).min(frames);
            let mean: f64 = walk[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            m.set(i, d, mean);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_linalg::svd::svd_thin;

    fn tiny() -> FeatureTracksConfig {
        FeatureTracksConfig::new(5, 20, 30, 11)
    }

    #[test]
    fn shapes() {
        let t = generate(&tiny());
        assert_eq!(t.k(), 5);
        assert_eq!(t.j(), 20);
        for k in 0..5 {
            assert!(t.i(k) >= 10 && t.i(k) <= 30);
        }
    }

    #[test]
    fn slices_are_approximately_low_rank() {
        let t = generate(&tiny());
        let s = svd_thin(t.slice(0)).s;
        // Energy of the top-8 (latent_dims) singular values dominates.
        let head: f64 = s[..8.min(s.len())].iter().map(|x| x * x).sum();
        let total: f64 = s.iter().map(|x| x * x).sum();
        assert!(head / total > 0.9, "head energy only {}", head / total);
    }

    #[test]
    fn tracks_are_smooth() {
        // Frame-to-frame differences must be much smaller than the track
        // amplitude (smoothness = temporal coherence of motion features).
        let t = generate(&tiny());
        let s = t.slice(1);
        let mut diff_sq = 0.0;
        let mut amp_sq = 0.0;
        for i in 1..s.rows() {
            for j in 0..s.cols() {
                let d = s.at(i, j) - s.at(i - 1, j);
                diff_sq += d * d;
                amp_sq += s.at(i, j) * s.at(i, j);
            }
        }
        assert!(diff_sq < 0.5 * amp_sq, "tracks not smooth: {diff_sq} vs {amp_sq}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&tiny()).slice(3), generate(&tiny()).slice(3));
    }
}
