//! Seeded sparse planted tensors — the SPARTan-parity workload generator.
//!
//! Real sparse PARAFAC2 data (EHR encounter records, clickstreams,
//! user–item logs) is a low-rank interaction signal observed through a
//! sparse sampling mask. [`planted_sparse`] reproduces exactly that: an
//! exact PARAFAC2 model `X_k = Q_k H S_k Vᵀ` (the same construction as
//! [`crate::planted_parafac2`]) observed at a Bernoulli(`density`) subset
//! of cells, optionally with relative per-entry noise. Memory is O(nnz) —
//! the dense slices are never materialized; each stored value is computed
//! from its factor rows on the fly.

use dpar2_linalg::sparse::SparseSlice;
use dpar2_linalg::{qr, random::gaussian_mat};
use dpar2_tensor::SparseIrregularTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a sparse irregular tensor with an exact planted PARAFAC2
/// structure observed through a Bernoulli(`density`) mask.
///
/// * `row_dims`, `j`, `rank`, `seed` — as in [`crate::planted_parafac2`].
/// * `density` — probability each cell `(i, j)` of each slice is stored;
///   expected nnz is `density · Σ_k I_k · J`. Must be in `[0, 1]`.
/// * `noise` — relative per-entry noise: each stored value is
///   `signal · (1 + noise · g)` with `g ~ N(0, 1)` (0 → exact low-rank
///   values at the observed cells).
///
/// Cells are visited in row-major `(i, j)` order per slice, so the CSR
/// arrays are built directly without a sort, and the whole construction
/// is deterministic given the seed. A sampled cell whose model value is
/// exactly `0.0` is still stored (the mask, not the value, decides
/// storage — as in real interaction logs where an observed zero is data).
///
/// # Panics
/// Panics if `density` is not within `[0, 1]`.
pub fn planted_sparse(
    row_dims: &[usize],
    j: usize,
    rank: usize,
    density: f64,
    noise: f64,
    seed: u64,
) -> SparseIrregularTensor {
    assert!((0.0..=1.0).contains(&density), "planted_sparse: density {density} not in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let h = gaussian_mat(rank, rank, &mut rng);
    let v = gaussian_mat(j, rank, &mut rng);
    let slices = row_dims
        .iter()
        .map(|&ik| {
            let q = qr::qr(gaussian_mat(ik, rank, &mut rng)).q;
            let sk: Vec<f64> =
                (0..rank).map(|i| 1.0 + 0.3 * i as f64 + rng.random::<f64>()).collect();
            // Left factor Q_k·H·S_k (I_k × R) — the only dense intermediate;
            // slice values are dotted against V rows on demand.
            let mut qhs = q.matmul(&h).expect("planted_sparse: Q·H");
            for row in 0..ik {
                let r = qhs.row_mut(row);
                for (c, &sv) in sk.iter().enumerate() {
                    r[c] *= sv;
                }
            }
            let expected = (density * (ik * j) as f64).ceil() as usize;
            let mut indptr = Vec::with_capacity(ik + 1);
            let mut indices = Vec::with_capacity(expected);
            let mut values = Vec::with_capacity(expected);
            indptr.push(0);
            for i in 0..ik {
                let lrow = qhs.row(i);
                for col in 0..j {
                    if rng.random::<f64>() < density {
                        let mut x: f64 = lrow.iter().zip(v.row(col)).map(|(&a, &b)| a * b).sum();
                        if noise > 0.0 {
                            // Box–Muller via two uniforms, matching the
                            // seeded-Gaussian style of dpar2_linalg::random.
                            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                            let u2: f64 = rng.random();
                            let g =
                                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                            x *= 1.0 + noise * g;
                        }
                        indices.push(col);
                        values.push(x);
                    }
                }
                indptr.push(indices.len());
            }
            SparseSlice::new(ik, j, indptr, indices, values)
        })
        .collect();
    SparseIrregularTensor::new(slices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = planted_sparse(&[30, 20], 8, 3, 0.2, 0.1, 42);
        let b = planted_sparse(&[30, 20], 8, 3, 0.2, 0.1, 42);
        assert_eq!(a, b);
        let c = planted_sparse(&[30, 20], 8, 3, 0.2, 0.1, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn density_controls_nnz() {
        let t = planted_sparse(&[200, 300], 40, 3, 0.05, 0.0, 7);
        let expected = 0.05 * t.num_cells() as f64;
        let nnz = t.nnz() as f64;
        // Binomial concentration: 3σ band around the mean.
        let sigma = (t.num_cells() as f64 * 0.05 * 0.95).sqrt();
        assert!((nnz - expected).abs() < 3.0 * sigma, "nnz {nnz} vs expected {expected}");
    }

    #[test]
    fn extreme_densities() {
        let full = planted_sparse(&[10, 12], 6, 2, 1.0, 0.0, 1);
        assert_eq!(full.nnz(), full.num_cells());
        let empty = planted_sparse(&[10, 12], 6, 2, 0.0, 0.0, 1);
        assert_eq!(empty.nnz(), 0);
    }

    #[test]
    fn stored_values_are_low_rank_consistent() {
        // At density 1 with no noise, the densified tensor has numerical
        // rank ≤ rank per slice (same planted construction as the dense
        // generator).
        let t = planted_sparse(&[20, 15], 10, 3, 1.0, 0.0, 9).to_dense();
        for k in 0..t.k() {
            let s = dpar2_linalg::svd::svd_thin(t.slice(k)).s;
            assert!(s[3] < 1e-9 * s[0], "slice {k} rank exceeds 3: {:?}", &s[..5]);
        }
    }

    #[test]
    #[should_panic(expected = "density")]
    fn rejects_bad_density() {
        planted_sparse(&[5], 4, 2, 1.5, 0.0, 0);
    }
}
