//! Technical indicators for the stock-market simulator.
//!
//! The paper's stock tensors have 88 features per day: 5 basic (open, high,
//! low, close prices and trading volume) and 83 technical indicators
//! "calculated based on the basic features" (§IV-A). This module implements
//! the standard indicator families — including the four the paper analyzes
//! in Fig. 12 (OBV, ATR, MACD, STOCH) with their textbook definitions — and
//! a parameter grid that yields exactly 83 derived columns.
//!
//! All functions take day-indexed series and return a series of equal
//! length; warm-up prefixes (before a window fills) fall back to the
//! partial-window value so no NaNs enter the tensors.

/// Simple moving average over a trailing `window`.
pub fn sma(x: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "sma: window must be positive");
    let mut out = Vec::with_capacity(x.len());
    let mut sum = 0.0;
    for i in 0..x.len() {
        sum += x[i];
        if i >= window {
            sum -= x[i - window];
        }
        let n = (i + 1).min(window) as f64;
        out.push(sum / n);
    }
    out
}

/// Exponential moving average with smoothing `α = 2/(window+1)`.
pub fn ema(x: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "ema: window must be positive");
    let alpha = 2.0 / (window as f64 + 1.0);
    let mut out = Vec::with_capacity(x.len());
    let mut prev = match x.first() {
        Some(&v) => v,
        None => return out,
    };
    for &v in x {
        prev = alpha * v + (1.0 - alpha) * prev;
        out.push(prev);
    }
    out
}

/// Relative Strength Index (Wilder): `100 − 100/(1 + avg_gain/avg_loss)`.
pub fn rsi(close: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "rsi: window must be positive");
    let mut out = Vec::with_capacity(close.len());
    let (mut avg_gain, mut avg_loss) = (0.0f64, 0.0f64);
    for i in 0..close.len() {
        if i == 0 {
            out.push(50.0);
            continue;
        }
        let change = close[i] - close[i - 1];
        let (gain, loss) = if change >= 0.0 { (change, 0.0) } else { (0.0, -change) };
        // Wilder smoothing.
        let n = window as f64;
        avg_gain = (avg_gain * (n - 1.0) + gain) / n;
        avg_loss = (avg_loss * (n - 1.0) + loss) / n;
        if avg_loss < 1e-12 {
            out.push(if avg_gain < 1e-12 { 50.0 } else { 100.0 });
        } else {
            out.push(100.0 - 100.0 / (1.0 + avg_gain / avg_loss));
        }
    }
    out
}

/// True range of day `i`: `max(high−low, |high−prev_close|, |low−prev_close|)`.
fn true_range(high: &[f64], low: &[f64], close: &[f64], i: usize) -> f64 {
    let hl = high[i] - low[i];
    if i == 0 {
        return hl;
    }
    let hc = (high[i] - close[i - 1]).abs();
    let lc = (low[i] - close[i - 1]).abs();
    hl.max(hc).max(lc)
}

/// Average True Range (Wilder) — the volatility indicator of Fig. 12.
pub fn atr(high: &[f64], low: &[f64], close: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "atr: window must be positive");
    let n = window as f64;
    let mut out = Vec::with_capacity(close.len());
    let mut prev = 0.0;
    for i in 0..close.len() {
        let tr = true_range(high, low, close, i);
        prev = if i == 0 { tr } else { (prev * (n - 1.0) + tr) / n };
        out.push(prev);
    }
    out
}

/// On-Balance Volume: cumulative volume signed by the day's close-to-close
/// direction — the accumulation indicator of Fig. 12.
pub fn obv(close: &[f64], volume: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(close.len());
    let mut acc = 0.0;
    for i in 0..close.len() {
        if i > 0 {
            if close[i] > close[i - 1] {
                acc += volume[i];
            } else if close[i] < close[i - 1] {
                acc -= volume[i];
            }
        }
        out.push(acc);
    }
    out
}

/// MACD line: `EMA_fast(close) − EMA_slow(close)` (Appel's 12/26 default).
pub fn macd(close: &[f64], fast: usize, slow: usize) -> Vec<f64> {
    let ef = ema(close, fast);
    let es = ema(close, slow);
    ef.iter().zip(&es).map(|(f, s)| f - s).collect()
}

/// MACD signal line: 9-period EMA of the MACD line.
pub fn macd_signal(close: &[f64], fast: usize, slow: usize, signal: usize) -> Vec<f64> {
    ema(&macd(close, fast, slow), signal)
}

/// MACD histogram: MACD line minus its signal line.
pub fn macd_histogram(close: &[f64], fast: usize, slow: usize, signal: usize) -> Vec<f64> {
    let line = macd(close, fast, slow);
    let sig = ema(&line, signal);
    line.iter().zip(&sig).map(|(l, s)| l - s).collect()
}

/// Stochastic oscillator %K (Lane): position of the close within the
/// trailing `window` high-low range, in [0, 100] — Fig. 12's momentum
/// indicator.
pub fn stoch_k(high: &[f64], low: &[f64], close: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "stoch_k: window must be positive");
    let mut out = Vec::with_capacity(close.len());
    for i in 0..close.len() {
        let start = (i + 1).saturating_sub(window);
        let hh = high[start..=i].iter().cloned().fold(f64::MIN, f64::max);
        let ll = low[start..=i].iter().cloned().fold(f64::MAX, f64::min);
        let denom = hh - ll;
        out.push(if denom < 1e-12 { 50.0 } else { 100.0 * (close[i] - ll) / denom });
    }
    out
}

/// Stochastic %D: 3-period SMA of %K.
pub fn stoch_d(high: &[f64], low: &[f64], close: &[f64], window: usize) -> Vec<f64> {
    sma(&stoch_k(high, low, close, window), 3)
}

/// Rate of change: `100 · (close_t − close_{t−w}) / close_{t−w}`.
pub fn roc(close: &[f64], window: usize) -> Vec<f64> {
    (0..close.len())
        .map(|i| {
            let past = close[i.saturating_sub(window)];
            if past.abs() < 1e-12 {
                0.0
            } else {
                100.0 * (close[i] - past) / past
            }
        })
        .collect()
}

/// Momentum: `close_t − close_{t−w}`.
pub fn momentum(close: &[f64], window: usize) -> Vec<f64> {
    (0..close.len()).map(|i| close[i] - close[i.saturating_sub(window)]).collect()
}

/// Bollinger band width: `2 · 2σ_w / SMA_w` (normalized band spread).
pub fn bollinger_width(close: &[f64], window: usize) -> Vec<f64> {
    let mid = sma(close, window);
    (0..close.len())
        .map(|i| {
            let start = (i + 1).saturating_sub(window);
            let seg = &close[start..=i];
            let m = mid[i];
            let var = seg.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / seg.len() as f64;
            let sd = var.sqrt();
            if m.abs() < 1e-12 {
                0.0
            } else {
                4.0 * sd / m
            }
        })
        .collect()
}

/// Williams %R: `−100 · (HH − close)/(HH − LL)` over the trailing window.
pub fn williams_r(high: &[f64], low: &[f64], close: &[f64], window: usize) -> Vec<f64> {
    stoch_k(high, low, close, window).iter().map(|k| k - 100.0).collect()
}

/// Commodity Channel Index: `(TP − SMA(TP)) / (0.015 · mean|TP − SMA|)`
/// on the typical price `TP = (H+L+C)/3`.
pub fn cci(high: &[f64], low: &[f64], close: &[f64], window: usize) -> Vec<f64> {
    let tp: Vec<f64> = (0..close.len()).map(|i| (high[i] + low[i] + close[i]) / 3.0).collect();
    let mid = sma(&tp, window);
    (0..tp.len())
        .map(|i| {
            let start = (i + 1).saturating_sub(window);
            let seg = &tp[start..=i];
            let mean_dev = seg.iter().map(|&x| (x - mid[i]).abs()).sum::<f64>() / seg.len() as f64;
            if mean_dev < 1e-12 {
                0.0
            } else {
                (tp[i] - mid[i]) / (0.015 * mean_dev)
            }
        })
        .collect()
}

/// Disparity index: `100 · close / SMA_w(close) − 100`.
pub fn disparity(close: &[f64], window: usize) -> Vec<f64> {
    let m = sma(close, window);
    close
        .iter()
        .zip(&m)
        .map(|(c, s)| if s.abs() < 1e-12 { 0.0 } else { 100.0 * c / s - 100.0 })
        .collect()
}

/// The window grid shared by all windowed indicator families.
pub const WINDOWS: [usize; 6] = [5, 10, 14, 20, 30, 60];

/// Names of the 88 feature columns in tensor order: the 5 basic features
/// followed by the 83 technical indicators.
pub fn feature_names() -> Vec<String> {
    let mut names: Vec<String> = ["OPENING", "HIGHEST", "LOWEST", "CLOSING", "VOLUME"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    for family in [
        "SMA", "EMA", "RSI", "ATR", "STOCH_K", "STOCH_D", "ROC", "MOM", "BBW", "WILLR", "CCI",
        "DISP",
    ] {
        for w in WINDOWS {
            names.push(format!("{family}_{w}"));
        }
    }
    names.push("MACD".to_string());
    names.push("MACD_SIGNAL".to_string());
    names.push("MACD_HIST".to_string());
    names.push("OBV".to_string());
    for w in WINDOWS {
        names.push(format!("VOL_SMA_{w}"));
    }
    names.push("OBV_ROC_10".to_string());
    names
}

/// Builds the full `T × 88` feature matrix from OHLCV series.
///
/// Column order matches [`feature_names`].
///
/// # Panics
/// Panics if the series lengths differ.
pub fn feature_matrix(
    open: &[f64],
    high: &[f64],
    low: &[f64],
    close: &[f64],
    volume: &[f64],
) -> Vec<Vec<f64>> {
    let t = close.len();
    assert!(
        [open.len(), high.len(), low.len(), volume.len()].iter().all(|&l| l == t),
        "feature_matrix: series length mismatch"
    );
    let mut cols: Vec<Vec<f64>> =
        vec![open.to_vec(), high.to_vec(), low.to_vec(), close.to_vec(), volume.to_vec()];
    for w in WINDOWS {
        cols.push(sma(close, w));
    }
    for w in WINDOWS {
        cols.push(ema(close, w));
    }
    for w in WINDOWS {
        cols.push(rsi(close, w));
    }
    for w in WINDOWS {
        cols.push(atr(high, low, close, w));
    }
    for w in WINDOWS {
        cols.push(stoch_k(high, low, close, w));
    }
    for w in WINDOWS {
        cols.push(stoch_d(high, low, close, w));
    }
    for w in WINDOWS {
        cols.push(roc(close, w));
    }
    for w in WINDOWS {
        cols.push(momentum(close, w));
    }
    for w in WINDOWS {
        cols.push(bollinger_width(close, w));
    }
    for w in WINDOWS {
        cols.push(williams_r(high, low, close, w));
    }
    for w in WINDOWS {
        cols.push(cci(high, low, close, w));
    }
    for w in WINDOWS {
        cols.push(disparity(close, w));
    }
    cols.push(macd(close, 12, 26));
    cols.push(macd_signal(close, 12, 26, 9));
    cols.push(macd_histogram(close, 12, 26, 9));
    cols.push(obv(close, volume));
    for w in WINDOWS {
        cols.push(sma(volume, w));
    }
    cols.push(roc(&obv(close, volume).iter().map(|x| x + 1.0).collect::<Vec<_>>(), 10));
    cols
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::type_complexity)] // (open, high, low, close, volume) fixture
    fn rising() -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let close: Vec<f64> = (1..=50).map(|i| 100.0 + i as f64).collect();
        let high: Vec<f64> = close.iter().map(|c| c + 1.0).collect();
        let low: Vec<f64> = close.iter().map(|c| c - 1.0).collect();
        let open: Vec<f64> = close.iter().map(|c| c - 0.5).collect();
        let volume = vec![1000.0; 50];
        (open, high, low, close, volume)
    }

    #[test]
    fn sma_constant_series() {
        let out = sma(&[3.0; 10], 4);
        assert!(out.iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn sma_window_one_is_identity() {
        let x = [1.0, 5.0, 2.0];
        assert_eq!(sma(&x, 1), x.to_vec());
    }

    #[test]
    fn ema_converges_to_constant() {
        let mut x = vec![0.0; 5];
        x.extend(vec![10.0; 200]);
        let out = ema(&x, 10);
        assert!((out.last().unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn rsi_rising_series_saturates_high() {
        let (_, _, _, close, _) = rising();
        let out = rsi(&close, 14);
        assert!(*out.last().unwrap() > 95.0, "RSI of monotone rise: {}", out.last().unwrap());
    }

    #[test]
    fn rsi_bounded() {
        let close: Vec<f64> = (0..100).map(|i| 100.0 + (i as f64 * 0.7).sin() * 10.0).collect();
        assert!(rsi(&close, 14).iter().all(|&v| (0.0..=100.0).contains(&v)));
    }

    #[test]
    fn atr_reflects_range() {
        let (_, high, low, close, _) = rising();
        let out = atr(&high, &low, &close, 14);
        // high−low = 2 and |high_t − close_{t−1}| = 2 (the +1 band absorbs
        // the unit drift), so the true range is exactly 2 every day.
        let last = *out.last().unwrap();
        assert!((last - 2.0).abs() < 0.2, "ATR {last}");
    }

    #[test]
    fn obv_rising_accumulates() {
        let (_, _, _, close, volume) = rising();
        let out = obv(&close, &volume);
        assert_eq!(*out.last().unwrap(), 49.0 * 1000.0);
    }

    #[test]
    fn obv_flat_is_zero() {
        let out = obv(&[5.0; 10], &[100.0; 10]);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn macd_zero_for_constant() {
        let out = macd(&[50.0; 100], 12, 26);
        assert!(out.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn macd_positive_in_uptrend() {
        let (_, _, _, close, _) = rising();
        assert!(*macd(&close, 12, 26).last().unwrap() > 0.0);
    }

    #[test]
    fn stoch_k_bounds_and_position() {
        let (_, high, low, close, _) = rising();
        let out = stoch_k(&high, &low, &close, 14);
        assert!(out.iter().all(|&v| (0.0..=100.0).contains(&v)));
        // Close sits near the top of a rising window.
        assert!(*out.last().unwrap() > 80.0);
    }

    #[test]
    fn williams_is_shifted_stoch() {
        let (_, high, low, close, _) = rising();
        let k = stoch_k(&high, &low, &close, 14);
        let w = williams_r(&high, &low, &close, 14);
        for (kv, wv) in k.iter().zip(&w) {
            assert!((wv - (kv - 100.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn roc_and_momentum_linear_series() {
        let close: Vec<f64> = (0..30).map(|i| 100.0 + i as f64).collect();
        let m = momentum(&close, 10);
        assert_eq!(m[29], 10.0);
        let r = roc(&close, 10);
        assert!((r[29] - 100.0 * 10.0 / 119.0).abs() < 1e-9);
    }

    #[test]
    fn bollinger_width_nonnegative() {
        let close: Vec<f64> = (0..60).map(|i| 100.0 + (i as f64).sin() * 5.0).collect();
        assert!(bollinger_width(&close, 20).iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn cci_centered_for_oscillation() {
        let high: Vec<f64> = (0..200).map(|i| 101.0 + (i as f64 * 0.5).sin()).collect();
        let low: Vec<f64> = (0..200).map(|i| 99.0 + (i as f64 * 0.5).sin()).collect();
        let close: Vec<f64> = (0..200).map(|i| 100.0 + (i as f64 * 0.5).sin()).collect();
        let out = cci(&high, &low, &close, 20);
        let mean: f64 = out[50..].iter().sum::<f64>() / 150.0;
        assert!(mean.abs() < 30.0, "CCI mean {mean} not centered");
    }

    #[test]
    fn feature_matrix_is_88_wide() {
        let (open, high, low, close, volume) = rising();
        let cols = feature_matrix(&open, &high, &low, &close, &volume);
        assert_eq!(cols.len(), 88);
        assert_eq!(feature_names().len(), 88);
        assert!(cols.iter().all(|c| c.len() == close.len()));
        // No NaN/inf anywhere (warm-up handling).
        for (ci, col) in cols.iter().enumerate() {
            assert!(col.iter().all(|v| v.is_finite()), "column {ci} has non-finite values");
        }
    }

    #[test]
    fn feature_names_match_fig12_selection() {
        // Fig. 12 uses OPENING/HIGHEST/LOWEST/CLOSING + ATR/STOCH/OBV/MACD;
        // all must exist in the registry.
        let names = feature_names();
        for needed in
            ["OPENING", "HIGHEST", "LOWEST", "CLOSING", "ATR_14", "STOCH_K_14", "OBV", "MACD"]
        {
            assert!(names.iter().any(|n| n == needed), "missing feature {needed}");
        }
    }
}
