//! Audio-spectrogram simulator — the stand-in for the FMA (music) and
//! Urban Sound datasets.
//!
//! The paper converts each recording into a log-power spectrogram
//! `(time × frequency)`; the collection over songs forms the irregular
//! tensor. We synthesize each "recording" as a sum of harmonic partials
//! with per-note envelopes over a noise floor, then run a real short-time
//! Fourier transform (Hann window, naive DFT at `J` bins) and take
//! `log(1 + |X|²)` — the same pipeline shape, at laptop scale.
//!
//! These tensors exercise DPar2's sweet spot: `J ≫ R` (2049 bins in the
//! paper, 256 here), so the `R/J` term dominates the compression ratio
//! (§IV-B "the compression ratio is larger on FMA, Urban, …").

use dpar2_linalg::random::standard_normal;
use dpar2_linalg::Mat;
use dpar2_tensor::IrregularTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the spectrogram corpus generator.
#[derive(Debug, Clone)]
pub struct SpectrogramConfig {
    /// Number of recordings `K`.
    pub n_clips: usize,
    /// Frequency bins `J`.
    pub n_bins: usize,
    /// Maximum frames per clip (`max I_k`).
    pub max_frames: usize,
    /// Minimum frames per clip.
    pub min_frames: usize,
    /// Number of harmonic partials per note.
    pub n_partials: usize,
    /// Relative noise-floor amplitude.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SpectrogramConfig {
    /// FMA-like defaults (music: strong harmonic structure).
    pub fn music(n_clips: usize, n_bins: usize, max_frames: usize, seed: u64) -> Self {
        SpectrogramConfig {
            n_clips,
            n_bins,
            max_frames,
            min_frames: (max_frames / 4).max(8),
            n_partials: 6,
            noise: 0.05,
            seed,
        }
    }

    /// Urban-Sound-like defaults (broadband events: fewer partials, more
    /// noise).
    pub fn urban(n_clips: usize, n_bins: usize, max_frames: usize, seed: u64) -> Self {
        SpectrogramConfig {
            n_clips,
            n_bins,
            max_frames,
            min_frames: (max_frames / 4).max(8),
            n_partials: 2,
            noise: 0.4,
            seed,
        }
    }
}

/// Generates the corpus as an irregular tensor of
/// `(frames × bins)` log-power spectrograms.
pub fn generate(config: &SpectrogramConfig) -> IrregularTensor {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let frame_len = config.n_bins * 2; // real signal, J bins below Nyquist
    let hop = frame_len / 2;
    let slices: Vec<Mat> = (0..config.n_clips)
        .map(|_| {
            let frames = config.min_frames
                + (rng.random::<f64>() * (config.max_frames - config.min_frames) as f64) as usize;
            let n_samples = frame_len + hop * (frames - 1);
            let audio = synth_clip(n_samples, config, &mut rng);
            stft_log_power(&audio, frame_len, hop, config.n_bins, frames)
        })
        .collect();
    IrregularTensor::new(slices)
}

/// Synthesizes one clip: a few "notes", each a harmonic stack with an
/// attack-decay envelope, over white noise.
fn synth_clip(n_samples: usize, config: &SpectrogramConfig, rng: &mut StdRng) -> Vec<f64> {
    let mut audio: Vec<f64> = (0..n_samples).map(|_| config.noise * standard_normal(rng)).collect();
    let n_notes = 2 + (rng.random::<f64>() * 3.0) as usize;
    for _ in 0..n_notes {
        // Normalized fundamental in (0.005, 0.08) cycles/sample.
        let f0 = 0.005 + 0.075 * rng.random::<f64>();
        let start = (rng.random::<f64>() * 0.6 * n_samples as f64) as usize;
        let dur = (n_samples / 4) + (rng.random::<f64>() * 0.5 * n_samples as f64) as usize;
        let end = (start + dur).min(n_samples);
        let amp = 0.4 + 0.6 * rng.random::<f64>();
        let phase: f64 = rng.random::<f64>() * std::f64::consts::TAU;
        for p in 1..=config.n_partials {
            let pf = f0 * p as f64;
            if pf >= 0.5 {
                break; // above Nyquist
            }
            let pamp = amp / p as f64;
            for (offset, sample) in audio[start..end].iter_mut().enumerate() {
                let t = offset as f64;
                // Attack over 5% of the note, exponential decay after.
                let note_pos = offset as f64 / dur as f64;
                let env = if note_pos < 0.05 { note_pos / 0.05 } else { (-2.0 * note_pos).exp() };
                *sample += pamp * env * (std::f64::consts::TAU * pf * t + phase * p as f64).sin();
            }
        }
    }
    audio
}

/// Hann-windowed STFT magnitude → `log(1 + |X|²)`, `frames × bins`.
fn stft_log_power(
    audio: &[f64],
    frame_len: usize,
    hop: usize,
    n_bins: usize,
    frames: usize,
) -> Mat {
    // Precompute the Hann window and the DFT twiddle tables.
    let window: Vec<f64> = (0..frame_len)
        .map(|n| 0.5 * (1.0 - (std::f64::consts::TAU * n as f64 / frame_len as f64).cos()))
        .collect();
    let mut out = Mat::zeros(frames, n_bins);
    let mut buf = vec![0.0; frame_len];
    for f in 0..frames {
        let start = f * hop;
        for (n, b) in buf.iter_mut().enumerate() {
            *b = audio[start + n] * window[n];
        }
        let row = out.row_mut(f);
        for (bin, r) in row.iter_mut().enumerate().take(n_bins) {
            // Naive DFT at bin `bin` (bins 0..n_bins of a frame_len DFT).
            let omega = std::f64::consts::TAU * bin as f64 / frame_len as f64;
            let (mut re, mut im) = (0.0, 0.0);
            for (n, &x) in buf.iter().enumerate() {
                let a = omega * n as f64;
                re += x * a.cos();
                im -= x * a.sin();
            }
            *r = (1.0 + re * re + im * im).ln();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SpectrogramConfig {
        SpectrogramConfig::music(4, 32, 12, 42)
    }

    #[test]
    fn shapes() {
        let t = generate(&tiny());
        assert_eq!(t.k(), 4);
        assert_eq!(t.j(), 32);
        for k in 0..4 {
            assert!(t.i(k) >= 8 && t.i(k) <= 12);
        }
    }

    #[test]
    fn log_power_nonnegative_and_finite() {
        let t = generate(&tiny());
        for k in 0..t.k() {
            assert!(t.slice(k).data().iter().all(|&v| v.is_finite() && v >= 0.0));
        }
    }

    #[test]
    fn harmonic_content_concentrates_energy() {
        // Music config must put visibly more energy in some bins than the
        // noise floor — i.e. the per-bin column means vary strongly.
        let t = generate(&SpectrogramConfig::music(2, 64, 16, 7));
        let s = t.slice(0);
        let means: Vec<f64> =
            (0..s.cols()).map(|j| s.col(j).iter().sum::<f64>() / s.rows() as f64).collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 4.0 * min.max(0.01), "no spectral structure: max {max}, min {min}");
    }

    #[test]
    fn pure_tone_peaks_at_expected_bin() {
        // Direct STFT test: a sinusoid at bin 8 of a 64-sample frame.
        let frame_len = 64;
        let bin = 8;
        let freq = bin as f64 / frame_len as f64;
        let audio: Vec<f64> =
            (0..256).map(|n| (std::f64::consts::TAU * freq * n as f64).sin()).collect();
        let spec = stft_log_power(&audio, frame_len, 32, 32, 4);
        for f in 0..4 {
            let row = spec.row(f);
            let argmax =
                row.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            assert_eq!(argmax, bin, "frame {f} peaked at {argmax}");
        }
    }

    #[test]
    fn urban_vs_music_noise_levels() {
        let m = generate(&SpectrogramConfig::music(2, 32, 10, 9));
        let u = generate(&SpectrogramConfig::urban(2, 32, 10, 9));
        // Urban has a higher noise floor: larger median bin energy.
        let median = |t: &IrregularTensor| {
            let mut v: Vec<f64> = t.slice(0).data().to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        assert!(median(&u) > median(&m), "urban floor not higher");
    }

    #[test]
    fn deterministic() {
        let a = generate(&tiny());
        let b = generate(&tiny());
        assert_eq!(a.slice(2), b.slice(2));
    }
}
