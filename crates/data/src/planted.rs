//! Ground-truth tensors: exact PARAFAC2 models and `tenrand` equivalents.

use dpar2_linalg::{qr, random::gaussian_mat, Mat};
use dpar2_tensor::IrregularTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds an irregular tensor with an *exact* planted PARAFAC2 structure
/// `X_k = Q_k H S_k Vᵀ` plus relative Gaussian noise of magnitude `noise`
/// (0 → exact model; 0.1 → noise Frobenius mass ≈ 10% of the signal's).
///
/// Used by correctness tests across the workspace: any PARAFAC2 solver must
/// reach high fitness on `noise = 0` instances.
pub fn planted_parafac2(
    row_dims: &[usize],
    j: usize,
    rank: usize,
    noise: f64,
    seed: u64,
) -> IrregularTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let h = gaussian_mat(rank, rank, &mut rng);
    let v = gaussian_mat(j, rank, &mut rng);
    let slices = row_dims
        .iter()
        .map(|&ik| {
            let q = qr::qr(gaussian_mat(ik, rank, &mut rng)).q;
            let sk: Vec<f64> =
                (0..rank).map(|i| 1.0 + 0.3 * i as f64 + rng.random::<f64>()).collect();
            let mut qh = q.matmul(&h).expect("planted: Q·H");
            for row in 0..ik {
                let r = qh.row_mut(row);
                for (c, &sv) in sk.iter().enumerate() {
                    r[c] *= sv;
                }
            }
            let mut x = qh.matmul_nt(&v).expect("planted: ·Vᵀ");
            if noise > 0.0 {
                let scale = noise * x.fro_norm() / ((ik * j) as f64).sqrt();
                x.axpy(scale, &gaussian_mat(ik, j, &mut rng));
            }
            x
        })
        .collect();
    IrregularTensor::new(slices)
}

/// The paper's synthetic-scalability tensors (§IV-C): uniform `U[0,1)`
/// entries via Tensor Toolbox's `tenrand(I, J, K)`, wrapped in the
/// irregular interface with `I_1 = … = I_K = i`.
pub fn tenrand_irregular(i: usize, j: usize, k: usize, seed: u64) -> IrregularTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let slices = (0..k).map(|_| Mat::from_fn(i, j, |_, _| rng.random::<f64>())).collect();
    IrregularTensor::new(slices)
}

/// Draws `k` slice row counts from a truncated power-law profile shaped
/// like Fig. 8's sorted listing lengths: a few slices near `max_len`, a
/// long tail near `min_len`.
pub fn powerlaw_row_dims(k: usize, min_len: usize, max_len: usize, seed: u64) -> Vec<usize> {
    assert!(min_len <= max_len, "powerlaw_row_dims: min_len > max_len");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let u: f64 = rng.random();
            // u^1.5 skews mass toward short slices, matching the convex
            // decay of the paper's sorted-length curves.
            min_len + ((max_len - min_len) as f64 * u.powf(1.5)).round() as usize
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_is_exact_rank() {
        let t = planted_parafac2(&[20, 15], 10, 3, 0.0, 1);
        // Each noiseless slice has numerical rank ≤ 3.
        for k in 0..t.k() {
            let s = dpar2_linalg::svd::svd_thin(t.slice(k)).s;
            assert!(s[3] < 1e-9 * s[0], "slice {k} rank exceeds 3: {:?}", &s[..5]);
        }
    }

    #[test]
    fn planted_noise_scales() {
        let clean = planted_parafac2(&[25], 12, 2, 0.0, 2);
        let noisy = planted_parafac2(&[25], 12, 2, 0.3, 2);
        // Same seed → same signal; difference is pure noise at ~30% mass.
        let d = (clean.slice(0) - noisy.slice(0)).fro_norm() / clean.slice(0).fro_norm();
        assert!(d > 0.1 && d < 0.6, "noise mass {d} out of range");
    }

    #[test]
    fn tenrand_properties() {
        let t = tenrand_irregular(6, 5, 4, 3);
        assert_eq!(t.k(), 4);
        assert!(t.is_regular());
        assert!(t.packed_data().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn powerlaw_dims_within_bounds_and_skewed() {
        let dims = powerlaw_row_dims(500, 50, 2000, 4);
        assert_eq!(dims.len(), 500);
        assert!(dims.iter().all(|&d| (50..=2000).contains(&d)));
        // Skew check: median well below the midpoint.
        let mut sorted = dims;
        sorted.sort_unstable();
        let median = sorted[250];
        assert!(median < 1025, "median {median} suggests no skew");
    }

    #[test]
    fn deterministic() {
        assert_eq!(powerlaw_row_dims(10, 5, 50, 9), powerlaw_row_dims(10, 5, 50, 9));
        let a = tenrand_irregular(3, 3, 2, 10);
        let b = tenrand_irregular(3, 3, 2, 10);
        assert_eq!(a.slice(0), b.slice(0));
    }
}
