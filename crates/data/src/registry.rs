//! The dataset registry — one entry per row of the paper's Table II,
//! mapping each real dataset to its synthetic stand-in with both the paper
//! dimensions and our scaled defaults.

use crate::features::{self, FeatureTracksConfig};
use crate::spectrogram::{self, SpectrogramConfig};
use crate::stock::{self, StockMarketConfig};
use crate::traffic::{self, TrafficConfig};
use dpar2_tensor::IrregularTensor;

/// Floor on `min(I_k, J)` at any scale: keeps rank ≤ 24 well-posed (the
/// paper's trade-off experiments go up to R = 20).
const MIN_SLICE: usize = 24;

/// The eight datasets of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// FMA music spectrograms.
    FmaSim,
    /// Urban Sound spectrograms.
    UrbanSim,
    /// US stock market.
    UsStockSim,
    /// Korea stock market.
    KrStockSim,
    /// Activity video features.
    ActivitySim,
    /// Action video features.
    ActionSim,
    /// Melbourne traffic volumes.
    TrafficSim,
    /// PEMS-SF freeway occupancy.
    PemsSfSim,
}

/// A Table II row: paper dimensions, scaled synthetic dimensions, and a
/// seeded generator.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which dataset this models.
    pub kind: DatasetKind,
    /// Display name (paper name + `-sim` suffix).
    pub name: &'static str,
    /// One-line summary (Table II "Summary" column).
    pub summary: &'static str,
    /// Paper dimensions `(max I_k, J, K)`.
    pub paper_dims: (usize, usize, usize),
    /// Our generated dimensions `(max I_k, J, K)` at `scale = 1.0`.
    pub sim_dims: (usize, usize, usize),
}

impl DatasetSpec {
    /// Generates the dataset at full simulated size.
    pub fn generate(&self, seed: u64) -> IrregularTensor {
        self.generate_scaled(1.0, seed)
    }

    /// Generates the dataset with all three dimensions multiplied by
    /// `scale`. Dimension floors guarantee every slice supports a target
    /// rank of at least 24 (`min(I_k, J) ≥ 24` — the paper's experiments
    /// use R up to 20).
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> IrregularTensor {
        let (max_i, j, k) = self.scaled_dims(scale);
        match self.kind {
            DatasetKind::FmaSim => {
                let mut c = SpectrogramConfig::music(k, j, max_i, seed);
                c.min_frames = c.min_frames.max(MIN_SLICE);
                spectrogram::generate(&c)
            }
            DatasetKind::UrbanSim => {
                let mut c = SpectrogramConfig::urban(k, j, max_i, seed);
                c.min_frames = c.min_frames.max(MIN_SLICE);
                spectrogram::generate(&c)
            }
            DatasetKind::UsStockSim => {
                stock::generate(&StockMarketConfig::us_like(k, max_i, seed)).tensor
            }
            DatasetKind::KrStockSim => {
                stock::generate(&StockMarketConfig::kr_like(k, max_i, seed)).tensor
            }
            DatasetKind::ActivitySim | DatasetKind::ActionSim => {
                let mut c = FeatureTracksConfig::new(k, j, max_i, seed);
                c.min_frames = c.min_frames.max(MIN_SLICE);
                features::generate(&c)
            }
            DatasetKind::TrafficSim | DatasetKind::PemsSfSim => {
                traffic::generate(&TrafficConfig::new(max_i, j, k, seed))
            }
        }
    }

    /// The `(max I_k, J, K)` this spec generates at the given scale.
    pub fn scaled_dims(&self, scale: f64) -> (usize, usize, usize) {
        let (mi, j, k) = self.sim_dims;
        let s = |x: usize, floor: usize| ((x as f64 * scale).round() as usize).max(floor);
        match self.kind {
            // Stock slices need ≥65 days for indicator warm-up + headroom;
            // J is pinned to the 88 features.
            DatasetKind::UsStockSim | DatasetKind::KrStockSim => (s(mi, 560), 88, s(k, 12)),
            _ => (s(mi, MIN_SLICE + 8), s(j, MIN_SLICE), s(k, 8)),
        }
    }
}

/// All eight Table II rows. Simulated dimensions keep the *ratios* of the
/// paper's datasets (tall-J spectrograms, tall-I stock matrices, …) at
/// roughly 10–30× smaller absolute size, so the full evaluation suite runs
/// on one laptop core.
pub fn registry() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            kind: DatasetKind::FmaSim,
            name: "FMA-sim",
            summary: "music",
            paper_dims: (704, 2049, 7997),
            sim_dims: (70, 256, 400),
        },
        DatasetSpec {
            kind: DatasetKind::UrbanSim,
            name: "Urban-sim",
            summary: "urban sound",
            paper_dims: (174, 2049, 8455),
            sim_dims: (45, 256, 420),
        },
        DatasetSpec {
            kind: DatasetKind::UsStockSim,
            name: "US-Stock-sim",
            summary: "stock",
            paper_dims: (7883, 88, 4742),
            sim_dims: (790, 88, 240),
        },
        DatasetSpec {
            kind: DatasetKind::KrStockSim,
            name: "KR-Stock-sim",
            summary: "stock",
            paper_dims: (5270, 88, 3664),
            sim_dims: (560, 88, 180),
        },
        DatasetSpec {
            kind: DatasetKind::ActivitySim,
            name: "Activity-sim",
            summary: "video feature",
            paper_dims: (553, 570, 320),
            sim_dims: (110, 140, 64),
        },
        DatasetSpec {
            kind: DatasetKind::ActionSim,
            name: "Action-sim",
            summary: "video feature",
            paper_dims: (936, 570, 567),
            sim_dims: (190, 140, 110),
        },
        DatasetSpec {
            kind: DatasetKind::TrafficSim,
            name: "Traffic-sim",
            summary: "traffic",
            paper_dims: (2033, 96, 1084),
            sim_dims: (200, 96, 108),
        },
        DatasetSpec {
            kind: DatasetKind::PemsSfSim,
            name: "PEMS-SF-sim",
            summary: "traffic",
            paper_dims: (963, 144, 440),
            sim_dims: (96, 144, 88),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eight_rows() {
        assert_eq!(registry().len(), 8);
    }

    #[test]
    fn all_generate_at_small_scale() {
        for spec in registry() {
            let t = spec.generate_scaled(0.1, 7);
            let (max_i, j, k) = spec.scaled_dims(0.1);
            assert_eq!(t.j(), j, "{}: J mismatch", spec.name);
            assert_eq!(t.k(), k, "{}: K mismatch", spec.name);
            assert!(t.max_i() <= max_i, "{}: max I exceeded", spec.name);
            assert!(t.max_i() >= 1);
            // Rank-4 PARAFAC2 must be well-posed on the scaled data.
            assert!(t.row_dims().iter().all(|&i| i >= 4), "{}: slice too small", spec.name);
        }
    }

    #[test]
    fn stock_dims_keep_j_88() {
        let spec = registry().into_iter().find(|s| s.kind == DatasetKind::UsStockSim).unwrap();
        let (_, j, _) = spec.scaled_dims(0.3);
        assert_eq!(j, 88, "stock J is fixed by the 88 features");
    }

    #[test]
    fn irregular_datasets_are_irregular() {
        for spec in registry() {
            let t = spec.generate_scaled(0.1, 3);
            match spec.kind {
                DatasetKind::TrafficSim | DatasetKind::PemsSfSim => {
                    assert!(t.is_regular(), "{} should be regular", spec.name)
                }
                _ => assert!(!t.is_regular(), "{} should be irregular", spec.name),
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let spec = &registry()[4]; // Activity-sim (cheap)
        let a = spec.generate_scaled(0.1, 11);
        let b = spec.generate_scaled(0.1, 11);
        assert_eq!(a.slice(0), b.slice(0));
    }
}
