//! Stock-market simulator — the stand-in for the paper's US Stock and
//! Korea Stock datasets.
//!
//! Each stock is a `(days × 88-features)` slice; listing periods differ per
//! stock (the irregularity of Fig. 8), and all listings end at the present
//! day. Prices follow a factor model (market + sector + idiosyncratic
//! returns) so that sector structure is discoverable from the factors
//! (Table III), and an optional crash-recovery event models the COVID-19
//! window the paper analyzes.
//!
//! Two market profiles reproduce the Fig. 12 contrast:
//!
//! * [`StockMarketConfig::us_like`] — multiplicative (GBM) dynamics: the
//!   daily trading range scales with the price level, so ATR tracks price;
//!   volume concentrates on up-days, so OBV tracks price. Both indicators
//!   then correlate positively with the price features, as the paper found
//!   on the US market.
//! * [`StockMarketConfig::kr_like`] — additive dynamics with
//!   price-independent range and down-day-skewed volume: ATR and OBV
//!   decouple from the price level, as the paper found on the Korean
//!   market.

use crate::indicators::{feature_matrix, feature_names};
use crate::planted::powerlaw_row_dims;
use dpar2_linalg::random::standard_normal;
use dpar2_linalg::Mat;
use dpar2_tensor::IrregularTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sector labels used by the simulator (first `n_sectors` are active).
pub const SECTOR_NAMES: [&str; 8] = [
    "Technology",
    "Financial Services",
    "Consumer Cyclical",
    "Communication Services",
    "Healthcare",
    "Energy",
    "Industrials",
    "Utilities",
];

/// Configuration of the market simulator.
#[derive(Debug, Clone)]
pub struct StockMarketConfig {
    /// Number of stocks `K`.
    pub n_stocks: usize,
    /// Number of sectors (≤ 8).
    pub n_sectors: usize,
    /// Length of the full market history in days (`max I_k`).
    pub max_days: usize,
    /// Shortest allowed listing period.
    pub min_days: usize,
    /// Fraction of stocks listed for the whole history (needed by
    /// similarity analyses that require a common time range).
    pub full_history_fraction: f64,
    /// 1.0 → multiplicative/GBM dynamics (range ∝ price, US-like);
    /// 0.0 → additive dynamics (range constant, KR-like).
    pub vol_price_coupling: f64,
    /// Positive → volume concentrates on up-days (OBV tracks price,
    /// US-like); negative → volume concentrates on down-days (OBV
    /// decouples, KR-like).
    pub volume_trend_coupling: f64,
    /// Optional crash-and-recovery event `(start_day, end_day)` modelling
    /// the COVID-19 window of §IV-E2.
    pub crash_window: Option<(usize, usize)>,
    /// Z-score each feature column per stock (recommended: raw feature
    /// scales differ by orders of magnitude).
    pub normalize: bool,
    /// RNG seed.
    pub seed: u64,
}

impl StockMarketConfig {
    /// US-market-like profile (multiplicative dynamics, up-day volume,
    /// crash event in the last third of the history).
    pub fn us_like(n_stocks: usize, max_days: usize, seed: u64) -> Self {
        StockMarketConfig {
            n_stocks,
            n_sectors: 8,
            max_days,
            min_days: (max_days / 8).max(70),
            full_history_fraction: 0.4,
            vol_price_coupling: 1.0,
            volume_trend_coupling: 1.0,
            crash_window: Some((max_days * 2 / 3, max_days * 5 / 6)),
            normalize: true,
            seed,
        }
    }

    /// Korean-market-like profile (additive dynamics, down-day-skewed
    /// volume). No crash event: market-wide crashes couple *every*
    /// indicator to prices and would mask the decoupling this profile
    /// models; the crash belongs to the US/COVID analysis (Table III).
    pub fn kr_like(n_stocks: usize, max_days: usize, seed: u64) -> Self {
        StockMarketConfig {
            n_stocks,
            n_sectors: 8,
            max_days,
            min_days: (max_days / 8).max(70),
            full_history_fraction: 0.4,
            vol_price_coupling: 0.0,
            volume_trend_coupling: -2.0,
            crash_window: None,
            normalize: true,
            seed,
        }
    }
}

/// Per-stock metadata.
#[derive(Debug, Clone)]
pub struct StockMeta {
    /// Synthetic ticker, e.g. `TECH-003`.
    pub ticker: String,
    /// Sector index into [`SECTOR_NAMES`].
    pub sector: usize,
    /// Listing length in days (`I_k`).
    pub days: usize,
}

/// A generated market: the irregular tensor plus everything needed for the
/// §IV-E discovery analyses.
#[derive(Debug, Clone)]
pub struct StockDataset {
    /// `(days × 88)` slices, one per stock, listings ending "today".
    pub tensor: IrregularTensor,
    /// Ticker/sector/length per stock, aligned with tensor slices.
    pub meta: Vec<StockMeta>,
    /// The 88 feature column names.
    pub feature_names: Vec<String>,
    /// Active sector names.
    pub sector_names: Vec<String>,
    /// Full history length (day indices run `0..max_days`).
    pub max_days: usize,
}

impl StockDataset {
    /// Restricts the dataset to the day window `[start, end)`, keeping only
    /// stocks whose listing covers the whole window — the construction used
    /// for the COVID-19 analysis ("constructing the tensor included in the
    /// range", §IV-E2, which also needs equal-size `U_k` for Eq. 10).
    ///
    /// # Panics
    /// Panics if the window is empty or extends beyond the history.
    pub fn window(&self, start: usize, end: usize) -> StockDataset {
        assert!(start < end && end <= self.max_days, "invalid window [{start}, {end})");
        let mut slices = Vec::new();
        let mut meta = Vec::new();
        for (k, m) in self.meta.iter().enumerate() {
            let first_day = self.max_days - m.days;
            if first_day > start {
                continue; // not yet listed at window start
            }
            let slice = self.tensor.slice(k);
            let r0 = start - first_day;
            let r1 = end - first_day;
            slices.push(slice.submatrix(r0, r1, 0, slice.cols()).to_mat());
            meta.push(StockMeta { ticker: m.ticker.clone(), sector: m.sector, days: end - start });
        }
        StockDataset {
            tensor: IrregularTensor::new(slices),
            meta,
            feature_names: self.feature_names.clone(),
            sector_names: self.sector_names.clone(),
            max_days: end - start,
        }
    }
}

/// Runs the market simulation.
pub fn generate(config: &StockMarketConfig) -> StockDataset {
    assert!(config.n_sectors >= 1 && config.n_sectors <= SECTOR_NAMES.len());
    assert!(config.min_days >= 65, "need ≥65 days for the 60-day indicator warm-up");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let t_max = config.max_days;

    // --- Market and sector factor returns over the full history ---
    let market: Vec<f64> = (0..t_max)
        .map(|t| {
            let mut r = 0.0003 + 0.008 * standard_normal(&mut rng);
            if let Some((cs, ce)) = config.crash_window {
                if t >= cs && t < ce {
                    let phase = (t - cs) as f64 / (ce - cs) as f64;
                    // Sharp drawdown for the first third, strong recovery after.
                    r += if phase < 0.33 { -0.02 } else { 0.012 };
                }
            }
            r
        })
        .collect();
    let sector_factors: Vec<Vec<f64>> = (0..config.n_sectors)
        .map(|s| {
            // Each sector gets a distinct low-frequency return cycle: this
            // is what makes same-sector price paths co-move beyond the
            // market factor, so sector membership is discoverable from the
            // temporal factors U_k (Table III).
            let period = 40.0 + 80.0 * rng.random::<f64>();
            let phase = rng.random::<f64>() * std::f64::consts::TAU;
            (0..t_max)
                .map(|t| {
                    let cycle = 0.010 * (std::f64::consts::TAU * t as f64 / period + phase).sin();
                    let mut r = cycle + 0.004 * standard_normal(&mut rng);
                    if let Some((cs, ce)) = config.crash_window {
                        // Technology (sector 0) rebounds hardest — the
                        // pattern behind Table III's tech-heavy top-10.
                        if s == 0 && t >= cs && t < ce {
                            let phase = (t - cs) as f64 / (ce - cs) as f64;
                            if phase >= 0.33 {
                                r += 0.008;
                            }
                        }
                    }
                    r
                })
                .collect()
        })
        .collect();

    // --- Listing lengths: Fig. 8-style power-law tail + full-history head ---
    let n_full = ((config.n_stocks as f64 * config.full_history_fraction).ceil() as usize)
        .min(config.n_stocks);
    let mut days = vec![t_max; n_full];
    days.extend(powerlaw_row_dims(
        config.n_stocks - n_full,
        config.min_days,
        t_max,
        config.seed ^ 0xABCD,
    ));

    // --- Per-stock price/volume paths and feature slices ---
    let mut slices = Vec::with_capacity(config.n_stocks);
    let mut meta = Vec::with_capacity(config.n_stocks);
    let mut sector_counter = vec![0usize; config.n_sectors];
    for (k, &d) in days.iter().enumerate() {
        let sector = k % config.n_sectors;
        let beta = 0.5 + rng.random::<f64>();
        let gamma = 0.7 + 0.8 * rng.random::<f64>();
        let idio = 0.005 + 0.006 * rng.random::<f64>();
        let p0 = 20.0 + 180.0 * rng.random::<f64>();
        let base_vol = 1e5 * (1.0 + 9.0 * rng.random::<f64>());
        let c = config.vol_price_coupling;

        let first_day = t_max - d;
        let mut close = Vec::with_capacity(d);
        let mut open = Vec::with_capacity(d);
        let mut high = Vec::with_capacity(d);
        let mut low = Vec::with_capacity(d);
        let mut volume = Vec::with_capacity(d);
        let mut price = p0;
        for t in first_day..t_max {
            let r = beta * market[t]
                + gamma * sector_factors[sector][t]
                + idio * standard_normal(&mut rng);
            // Blend multiplicative (price-proportional) and additive
            // (price-independent) dynamics.
            let mult_step = price * (r.exp() - 1.0);
            let add_step = p0 * r;
            price = (price + c * mult_step + (1.0 - c) * add_step).max(0.5);

            let prev_close = close.last().copied().unwrap_or(price);
            let range_base = 0.004 + 0.8 * r.abs();
            // Range ∝ price (US) vs ∝ p0 (KR): this is what couples or
            // decouples ATR from the price level.
            let range = (c * price + (1.0 - c) * p0) * range_base;
            let o = prev_close + 0.2 * range * standard_normal(&mut rng);
            let hi = price.max(o) + range * rng.random::<f64>();
            let lo = (price.min(o) - range * rng.random::<f64>()).max(0.1);
            // Volume: log-normal around base, skewed toward up-days (+v)
            // or down-days (−v).
            let v_dir = config.volume_trend_coupling * r.signum();
            let vol = base_vol * (0.25 * standard_normal(&mut rng) + v_dir * 12.0 * r.abs()).exp();

            open.push(o);
            high.push(hi);
            low.push(lo);
            close.push(price);
            volume.push(vol);
        }

        let cols = feature_matrix(&open, &high, &low, &close, &volume);
        let mut slice = Mat::zeros(d, cols.len());
        for (j, col) in cols.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                slice.set(i, j, v);
            }
        }
        if config.normalize {
            zscore_columns(&mut slice);
        }
        slices.push(slice);
        let idx = sector_counter[sector];
        sector_counter[sector] += 1;
        let prefix: String = SECTOR_NAMES[sector].chars().take(4).collect();
        meta.push(StockMeta {
            ticker: format!("{}-{idx:03}", prefix.to_uppercase()),
            sector,
            days: d,
        });
    }

    StockDataset {
        tensor: IrregularTensor::new(slices),
        meta,
        feature_names: feature_names(),
        sector_names: SECTOR_NAMES[..config.n_sectors].iter().map(|s| s.to_string()).collect(),
        max_days: t_max,
    }
}

/// Z-scores each column in place; near-constant columns become zeros.
fn zscore_columns(m: &mut Mat) {
    let (rows, cols) = m.shape();
    if rows == 0 {
        return;
    }
    for j in 0..cols {
        let mut mean = 0.0;
        for i in 0..rows {
            mean += m.at(i, j);
        }
        mean /= rows as f64;
        let mut var = 0.0;
        for i in 0..rows {
            let d = m.at(i, j) - mean;
            var += d * d;
        }
        var /= rows as f64;
        let sd = var.sqrt();
        if sd < 1e-9 {
            for i in 0..rows {
                m.set(i, j, 0.0);
            }
        } else {
            for i in 0..rows {
                let v = (m.at(i, j) - mean) / sd;
                m.set(i, j, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64) -> StockMarketConfig {
        let mut c = StockMarketConfig::us_like(12, 150, seed);
        c.n_sectors = 3;
        c
    }

    #[test]
    fn shapes_and_metadata() {
        let ds = generate(&tiny_config(1));
        assert_eq!(ds.tensor.k(), 12);
        assert_eq!(ds.tensor.j(), 88);
        assert_eq!(ds.meta.len(), 12);
        assert_eq!(ds.feature_names.len(), 88);
        for (k, m) in ds.meta.iter().enumerate() {
            assert_eq!(ds.tensor.i(k), m.days);
            assert!(m.days >= 70 && m.days <= 150);
            assert!(m.sector < 3);
        }
    }

    #[test]
    fn full_history_head_exists() {
        let ds = generate(&tiny_config(2));
        let full = ds.meta.iter().filter(|m| m.days == 150).count();
        assert!(full >= 5, "expected ≥40% full-history stocks, got {full}");
    }

    #[test]
    fn normalized_columns_are_zscored() {
        let ds = generate(&tiny_config(3));
        let s = ds.tensor.slice(0);
        for j in 0..s.cols() {
            let col = s.col(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-8, "column {j} mean {mean}");
        }
    }

    #[test]
    fn all_entries_finite() {
        for seed in [4, 5] {
            let ds = generate(&tiny_config(seed));
            for k in 0..ds.tensor.k() {
                assert!(ds.tensor.slice(k).data().iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&tiny_config(6));
        let b = generate(&tiny_config(6));
        assert_eq!(a.tensor.slice(0), b.tensor.slice(0));
        assert_eq!(a.meta[3].ticker, b.meta[3].ticker);
    }

    #[test]
    fn window_selects_covering_stocks() {
        let ds = generate(&tiny_config(7));
        let w = ds.window(100, 150);
        // Only stocks listed at day ≤ 100 survive, all with 50 rows.
        assert!(w.tensor.k() >= 5);
        for k in 0..w.tensor.k() {
            assert_eq!(w.tensor.i(k), 50);
        }
        assert!(w.tensor.k() <= ds.tensor.k());
    }

    #[test]
    fn window_rows_align_with_source() {
        let ds = {
            let mut c = tiny_config(8);
            c.normalize = false; // align raw values
            generate(&c)
        };
        let w = ds.window(120, 150);
        // First windowed stock is a full-history stock: rows 120..150.
        let src = ds.tensor.slice(0);
        let dst = w.tensor.slice(0);
        for i in 0..30 {
            assert_eq!(src.at(120 + i, 3), dst.at(i, 3)); // CLOSING column
        }
    }

    #[test]
    #[should_panic(expected = "invalid window")]
    fn bad_window_panics() {
        generate(&tiny_config(9)).window(140, 130);
    }

    #[test]
    fn us_and_kr_profiles_differ() {
        let us = generate(&StockMarketConfig {
            n_stocks: 6,
            n_sectors: 2,
            ..StockMarketConfig::us_like(6, 150, 10)
        });
        let kr = generate(&StockMarketConfig {
            n_stocks: 6,
            n_sectors: 2,
            ..StockMarketConfig::kr_like(6, 150, 10)
        });
        assert_ne!(us.tensor.slice(0).data()[0], kr.tensor.slice(0).data()[0]);
    }
}
