//! # dpar2-data
//!
//! Synthetic dataset generators standing in for the eight real-world
//! datasets of the DPar2 paper's evaluation (Table II). The real datasets
//! are multi-gigabyte downloads or proprietary feeds; each generator here
//! reproduces the *shape characteristics that drive the algorithms*:
//! slice-size irregularity (Fig. 8), column dimension vs. row dimension
//! ratios (which set compression ratios, Fig. 10), and the spectral decay
//! that makes rank-10 PARAFAC2 meaningful on dense data.
//!
//! | paper dataset | module | what is modelled |
//! |---|---|---|
//! | FMA, Urban Sound | [`spectrogram`] | harmonic audio → log-power STFT, tall `J` |
//! | US / Korea Stock | [`stock`] | GBM OHLCV + 83 real technical indicators ([`indicators`]), power-law listing lengths, sector structure |
//! | Activity, Action | [`features`] | smooth low-rank motion-feature tracks |
//! | Traffic, PEMS-SF | [`traffic`] | daily-periodic sensor matrices (regular tensors) |
//!
//! [`planted`] additionally provides exact-PARAFAC2 tensors (ground truth
//! for correctness tests) and the `tenrand` uniform tensors used by the
//! paper's scalability experiments (§IV-C). [`sparse`] extends the planted
//! family to the SPARTan-parity sparse workload: the same exact PARAFAC2
//! model observed through a Bernoulli(density) mask, built in O(nnz)
//! memory as CSR slices.
//!
//! [`mod@registry`] ties everything together: one [`registry::DatasetSpec`] per
//! Table II row, with paper dimensions, scaled-down defaults, and a
//! seeded `generate()`.

pub mod features;
pub mod indicators;
pub mod planted;
pub mod registry;
pub mod sparse;
pub mod spectrogram;
pub mod stock;
pub mod traffic;

pub use planted::{planted_parafac2, tenrand_irregular};
pub use registry::{registry, DatasetKind, DatasetSpec};
pub use sparse::planted_sparse;
pub use stock::{StockDataset, StockMarketConfig};
