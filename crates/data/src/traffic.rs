//! Traffic-sensor simulator — the stand-in for the Traffic (Melbourne) and
//! PEMS-SF (San Francisco freeway occupancy) datasets.
//!
//! Both are *regular* 3-order tensors that the paper nonetheless analyzes
//! with PARAFAC2 ("Traffic data and PEMS-SF data are 3-order regular
//! tensors, but we can analyze them using PARAFAC2 decomposition
//! approaches"). Each frontal slice is one day: a `(station × timestamp)`
//! matrix of occupancy/volume with morning and evening rush-hour peaks,
//! per-station scale, and weekday/weekend modulation.

use dpar2_linalg::random::standard_normal;
use dpar2_linalg::Mat;
use dpar2_tensor::IrregularTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the traffic corpus.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Stations (rows of each slice, `I`).
    pub n_stations: usize,
    /// Timestamps per day (columns, `J`).
    pub n_timestamps: usize,
    /// Days (`K`).
    pub n_days: usize,
    /// Relative noise amplitude.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TrafficConfig {
    /// PEMS-SF-like defaults.
    pub fn new(n_stations: usize, n_timestamps: usize, n_days: usize, seed: u64) -> Self {
        TrafficConfig { n_stations, n_timestamps, n_days, noise: 0.1, seed }
    }
}

/// Generates the corpus: one `(stations × timestamps)` slice per day,
/// wrapped in the irregular interface with equal `I_k`.
pub fn generate(config: &TrafficConfig) -> IrregularTensor {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Per-station character: overall scale, rush-hour weighting, phase.
    let scales: Vec<f64> = (0..config.n_stations).map(|_| 0.3 + rng.random::<f64>()).collect();
    let am_weight: Vec<f64> = (0..config.n_stations).map(|_| rng.random::<f64>()).collect();
    let phases: Vec<f64> =
        (0..config.n_stations).map(|_| 0.04 * standard_normal(&mut rng)).collect();

    let slices: Vec<Mat> = (0..config.n_days)
        .map(|day| {
            let weekend = day % 7 >= 5;
            let day_level =
                if weekend { 0.45 } else { 1.0 } * (1.0 + 0.1 * standard_normal(&mut rng));
            Mat::from_fn(config.n_stations, config.n_timestamps, |s, t| {
                let tod = t as f64 / config.n_timestamps as f64 + phases[s];
                // Two Gaussian rush-hour bumps (~8:00 and ~17:30) over a
                // low night-time base.
                let am = (-((tod - 0.33) / 0.06).powi(2)).exp();
                let pm = (-((tod - 0.73) / 0.08).powi(2)).exp();
                let profile = 0.08 + am_weight[s] * am + (1.0 - am_weight[s]) * pm;
                let v = scales[s]
                    * day_level
                    * profile
                    * (1.0 + config.noise * standard_normal(&mut rng));
                v.max(0.0)
            })
        })
        .collect();
    IrregularTensor::new(slices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TrafficConfig {
        TrafficConfig::new(10, 48, 14, 21)
    }

    #[test]
    fn shapes_regular() {
        let t = generate(&tiny());
        assert_eq!(t.k(), 14);
        assert_eq!(t.j(), 48);
        assert!(t.is_regular());
        assert_eq!(t.i(0), 10);
    }

    #[test]
    fn nonnegative_occupancy() {
        let t = generate(&tiny());
        for k in 0..t.k() {
            assert!(t.slice(k).data().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn rush_hours_beat_night() {
        let t = generate(&tiny());
        // Slice 0 is Monday; timestamp ~33% (morning rush) vs ~2% (night).
        let s = t.slice(0);
        let rush_col = (0.33 * 48.0) as usize;
        let night_col = 1;
        let rush: f64 = s.col(rush_col).iter().sum();
        let night: f64 = s.col(night_col).iter().sum();
        assert!(rush > 2.0 * night, "rush {rush} vs night {night}");
    }

    #[test]
    fn weekends_quieter() {
        let t = generate(&tiny());
        let weekday: f64 = t.slice(0).data().iter().sum();
        let weekend: f64 = t.slice(5).data().iter().sum();
        assert!(weekend < weekday, "weekend {weekend} not below weekday {weekday}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&tiny()).slice(4), generate(&tiny()).slice(4));
    }
}
