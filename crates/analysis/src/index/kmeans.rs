//! Seeded, deterministic k-means partitioner over embedding rows.
//!
//! This is the build-time half of the pruned top-k index: it groups the
//! per-entity factor embeddings into compact partitions whose centroid /
//! radius / norm summaries drive the triangle-inequality pruning in
//! [`pruned`](super::pruned). Quality requirements are therefore modest —
//! any reasonable clustering prunes well — but **determinism is strict**:
//! the same `(points, partitions, seed)` must produce the same assignment on
//! every machine and at every thread count, because serve-side tests pin
//! `nprobe = num_partitions` to the exact engine bitwise. Every step below
//! is either serial or built on the pooled GEMM kernels, which are
//! bit-identical across pool sizes by construction (PR 3).
//!
//! The assignment pass is the only O(n·p) part and is done in row blocks:
//! `D_block = X_block · Cᵀ` through [`MatRef::matmul_nt_pooled_into`] with a
//! reused output buffer, so the full `n × p` score matrix (8 GB at
//! n = 10⁶, p = 10³) is never materialized.

use crate::similarity::squared_distance;
use dpar2_linalg::{Mat, MatRef};
use dpar2_parallel::ThreadPool;

/// Result of [`partition_points`]: a flat assignment plus the centroids it
/// converged to.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// `assignments[i]` = partition of row `i`, in `0..centroids.rows()`.
    pub assignments: Vec<u32>,
    /// `p × dim` centroid matrix (empty partitions keep their last
    /// centroid, so every row is always a valid point in space).
    pub centroids: Mat,
    /// Lloyd iterations actually run (stops early once assignments are
    /// stable).
    pub iterations: usize,
}

/// Row block length for the blocked assignment GEMM: large enough that the
/// blocked kernel path engages and per-block overhead vanishes, small
/// enough that `block × p` stays a few MB for p ≈ √n at n = 10⁶.
const ASSIGN_BLOCK: usize = 2048;

/// SplitMix64 — tiny deterministic seed mixer (same generator the solver
/// crates use for per-stage seed derivation).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Clusters the rows of `points` (`n × dim`) into at most `partitions`
/// groups with seeded farthest-first initialization and blocked Lloyd
/// iterations. Deterministic for every thread count of `pool`.
///
/// The effective partition count is clamped to `1..=n` (one point cannot
/// fill two partitions); duplicate points may leave some partitions empty,
/// which is fine — empty partitions are skipped at query time.
///
/// # Panics
/// Panics if `n > u32::MAX` (assignments are stored as `u32`).
pub fn partition_points(
    points: MatRef<'_>,
    partitions: usize,
    max_iterations: usize,
    seed: u64,
    pool: &ThreadPool,
) -> Partitioning {
    let (n, dim) = points.shape();
    assert!(u32::try_from(n).is_ok(), "partition_points: too many rows for u32 assignments");
    let p = partitions.clamp(1, n.max(1));
    if n == 0 {
        return Partitioning {
            assignments: Vec::new(),
            centroids: Mat::zeros(0, dim),
            iterations: 0,
        };
    }

    let mut centroids = init_farthest_first(points, p, seed);
    let mut centroid_norms: Vec<f64> = (0..p).map(|c| sq_norm(centroids.row(c))).collect();
    let mut assignments: Vec<u32> = vec![0; n];
    let mut scores = Mat::zeros(0, 0); // reused `block × p` GEMM output
    let mut iterations = 0;

    for _ in 0..max_iterations.max(1) {
        iterations += 1;
        let mut changed = 0usize;
        let mut r0 = 0;
        while r0 < n {
            let r1 = (r0 + ASSIGN_BLOCK).min(n);
            let block = points.submatrix(r0, r1, 0, dim);
            block.matmul_nt_pooled_into(&centroids, &mut scores, pool);
            for i in 0..r1 - r0 {
                // argmin over ‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²; the ‖x‖²
                // term is constant per row, so rank by ‖c‖² − 2·x·c.
                // Ties break to the lower partition id (strict `<`).
                let row = scores.row(i);
                let mut best = 0usize;
                let mut best_score = centroid_norms[0] - 2.0 * row[0];
                for (c, &dot) in row.iter().enumerate().skip(1) {
                    let score = centroid_norms[c] - 2.0 * dot;
                    if score < best_score {
                        best = c;
                        best_score = score;
                    }
                }
                let slot = r0 + i;
                #[allow(clippy::cast_possible_truncation)] // n ≤ u32::MAX asserted above
                let best32 = best as u32;
                if assignments[slot] != best32 {
                    assignments[slot] = best32;
                    changed += 1;
                }
            }
            r0 = r1;
        }

        // Centroid update: ascending-row accumulation (deterministic sum
        // order). Empty partitions keep their previous centroid.
        let mut sums = Mat::zeros(p, dim);
        let mut counts = vec![0usize; p];
        for i in 0..n {
            let c = assignments[i] as usize;
            counts[c] += 1;
            let dst = sums.row_mut(c);
            for (d, &x) in points.row(i).iter().enumerate() {
                dst[d] += x;
            }
        }
        for c in 0..p {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                let src = sums.row(c);
                for d in 0..dim {
                    centroids.set(c, d, src[d] * inv);
                }
                centroid_norms[c] = sq_norm(centroids.row(c));
            }
        }

        if changed == 0 {
            break;
        }
    }

    Partitioning { assignments, centroids, iterations }
}

/// Farthest-first (k-center greedy) initialization on a deterministic
/// stride subsample. O(sample · p · dim), independent of thread count.
fn init_farthest_first(points: MatRef<'_>, p: usize, seed: u64) -> Mat {
    let (n, dim) = points.shape();
    // Subsample so init stays cheap at n = 10⁶: a fixed stride keeps the
    // choice deterministic while covering the whole row range.
    let sample_target = p.saturating_mul(16).max(1024).min(n.max(1));
    let stride = n.div_ceil(sample_target).max(1);
    let candidates: Vec<usize> = (0..n).step_by(stride).collect();
    let m = candidates.len();

    let mut centroids = Mat::zeros(p, dim);
    let first = candidates[(splitmix64(seed) % m as u64) as usize];
    centroids.row_mut(0).copy_from_slice(points.row(first));

    // min_d2[i] = distance² from candidate i to its nearest chosen center.
    let mut min_d2 = vec![f64::INFINITY; m];
    for c in 1..p {
        let last = centroids.row(c - 1).to_vec();
        let mut far = 0usize;
        let mut far_d2 = f64::NEG_INFINITY;
        for (i, &cand) in candidates.iter().enumerate() {
            let d2 = squared_distance(points.row(cand), &last).min(min_d2[i]);
            min_d2[i] = d2;
            if d2 > far_d2 {
                far = i;
                far_d2 = d2;
            }
        }
        // All-duplicate tails (far_d2 == 0) still pick a valid point;
        // the resulting duplicate centroids simply leave partitions empty.
        centroids.row_mut(c).copy_from_slice(points.row(candidates[far]));
    }
    centroids
}

fn sq_norm(x: &[f64]) -> f64 {
    x.iter().map(|&v| v * v).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_points(per_cluster: usize, dim: usize) -> Mat {
        // Four well-separated blobs with deterministic intra-blob jitter.
        let centers = [-30.0, -10.0, 10.0, 30.0];
        Mat::from_fn(4 * per_cluster, dim, |i, j| {
            let blob = i / per_cluster;
            let jitter = (splitmix64((i * dim + j) as u64) % 1000) as f64 / 1000.0 - 0.5;
            centers[blob] + jitter + j as f64 * 0.01
        })
    }

    #[test]
    fn separated_blobs_land_in_distinct_partitions() {
        let pts = clustered_points(50, 3);
        let pool = ThreadPool::new(2);
        let part = partition_points(pts.view(), 4, 10, 7, &pool);
        assert_eq!(part.centroids.rows(), 4);
        // Points of one blob share a partition, different blobs differ.
        for blob in 0..4 {
            let first = part.assignments[blob * 50];
            assert!(
                part.assignments[blob * 50..(blob + 1) * 50].iter().all(|&a| a == first),
                "blob {blob} split across partitions"
            );
        }
        let mut seen: Vec<u32> = part.assignments.iter().step_by(50).copied().collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4, "blobs merged into one partition");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let pts = clustered_points(30, 4);
        let reference = partition_points(pts.view(), 7, 8, 42, &ThreadPool::new(1));
        for threads in [2, 3, 8] {
            let got = partition_points(pts.view(), 7, 8, 42, &ThreadPool::new(threads));
            assert_eq!(got.assignments, reference.assignments, "{threads} threads");
            assert_eq!(got.centroids, reference.centroids, "{threads} threads");
        }
    }

    #[test]
    fn more_partitions_than_points_is_clamped() {
        let pts = Mat::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let pool = ThreadPool::new(1);
        let part = partition_points(pts.view(), 10, 5, 0, &pool);
        assert_eq!(part.centroids.rows(), 3);
        assert!(part.assignments.iter().all(|&a| a < 3));
    }

    #[test]
    fn duplicate_points_converge_without_panic() {
        let pts = Mat::from_fn(20, 3, |_, j| j as f64); // all rows identical
        let pool = ThreadPool::new(2);
        let part = partition_points(pts.view(), 4, 10, 1, &pool);
        // Everyone ties; strict `<` argmin sends all rows to partition 0.
        assert!(part.assignments.iter().all(|&a| a == 0));
        assert!(part.iterations <= 10);
    }

    #[test]
    fn empty_input() {
        let pts = Mat::zeros(0, 5);
        let pool = ThreadPool::new(1);
        let part = partition_points(pts.view(), 4, 5, 0, &pool);
        assert!(part.assignments.is_empty());
        assert_eq!(part.centroids.shape(), (0, 5));
    }
}
