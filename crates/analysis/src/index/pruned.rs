//! Cluster-pruned top-k search over embedding rows with an exactness knob.
//!
//! [`EmbeddingIndex`] answers "k most Eq. 10-similar rows to this query"
//! sub-linearly: rows live in k-means partitions ([`kmeans`](super::kmeans)),
//! each summarized by a centroid, a radius, and min/max row norms. At query
//! time partitions are visited in ascending order of a *lower bound* on the
//! distance from the query to any of their members; once the top-k heap is
//! full and a partition's bound already loses to the current k-th result,
//! that partition — and, because bounds are visited in ascending order,
//! every later one — is skipped without touching a single row.
//!
//! # Exactness contract
//!
//! `nprobe ≥ num_partitions` degenerates to the exact scan **bitwise**, not
//! just approximately. Three properties make that provable:
//!
//! 1. **Identical arithmetic per candidate.** A candidate's similarity is
//!    `exp(−γ · squared_distance(query, row))` where
//!    [`squared_distance`] is the same fused kernel (same element order)
//!    the exact serving path uses, and `row` is a verbatim copy of the
//!    entity's factor buffer. Same inputs, same instruction sequence ⇒
//!    same bits.
//! 2. **Identical total order.** The running top-k heap orders candidates
//!    by `(similarity desc, id asc)` using `f64::total_cmp` — precisely the
//!    comparator of [`select_top_k`](crate::knn::select_top_k). The ranking
//!    is applied to *similarities*, never to distances: `exp` rounds and
//!    underflows (γ·d ≳ 745 ⇒ sim = 0.0 exactly), so distinct distances can
//!    collapse to equal similarities, and ranking by distance would break
//!    the id tie-break the exact path applies after that collapse.
//! 3. **No pruning unless it is sound.** With `nprobe ≥ num_partitions`
//!    pruning is disabled outright, so the candidate set is every row. A
//!    full candidate set under a strict total order yields one unique
//!    answer regardless of visit order.
//!
//! When pruning *is* active (`nprobe < num_partitions`), a partition is
//! dropped only on **strict** inequality `bound_similarity < kth_similarity`
//! — an equal bound could still hide a candidate that ties the k-th result
//! and wins the id tie-break.
//!
//! Bounds are made robust to floating-point rounding by a relative safety
//! margin (`BOUND_MARGIN`): radii are inflated and lower bounds deflated by
//! ~1e-9 relative, dwarfing the ~1e-16·dim accumulation error of the fused
//! distance sums while costing a negligible amount of pruning.

use super::kmeans::{partition_points, Partitioning};
use crate::similarity::squared_distance;
use dpar2_linalg::{Mat, MatRef};
use dpar2_parallel::ThreadPool;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Relative safety margin applied to pruning bounds (see module docs).
const BOUND_MARGIN: f64 = 1e-9;

/// Build-time options for [`EmbeddingIndex`].
#[derive(Debug, Clone, Copy)]
pub struct IndexOptions {
    /// Number of k-means partitions; `None` ⇒ `⌈√n⌉` (balances the
    /// O(p·dim) centroid pass against the O(n/p · nprobe · dim) row scans).
    pub partitions: Option<usize>,
    /// Lloyd iteration cap for the partitioner (assignment converges far
    /// earlier on clustered data; this bounds the worst case).
    pub max_iterations: usize,
    /// Default partitions probed per query; `None` ⇒ `max(1, p / 10)`.
    /// Any query can override it, and `nprobe ≥ partitions` is the exact
    /// path.
    pub nprobe: Option<usize>,
    /// Partitioner seed — two builds from the same rows and seed are
    /// identical.
    pub seed: u64,
}

impl Default for IndexOptions {
    fn default() -> Self {
        Self { partitions: None, max_iterations: 8, nprobe: None, seed: 0x1DE2 }
    }
}

/// Per-partition summary driving the pruning bounds.
#[derive(Debug, Clone)]
struct PartitionInfo {
    /// Slot range `start..end` into the permuted row storage.
    start: usize,
    end: usize,
    /// Max distance from the centroid to a member (inflated by
    /// `BOUND_MARGIN`).
    radius: f64,
    /// Min / max member Euclidean norm — a second, independent lower bound
    /// `d(q, x) ≥ | ‖q‖ − ‖x‖ |` that often beats the triangle bound for
    /// scale-separated data.
    min_norm: f64,
    max_norm: f64,
}

/// Work counters of one pruned search — how much of the index a query
/// actually touched. All plain integers, so recording them is free on the
/// allocation-free search path; serving layers aggregate them into pruning
/// efficiency metrics (partitions probed vs. total, candidates scanned
/// vs. indexed rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Partitions in the index (non-empty or not).
    pub partitions_total: usize,
    /// Partitions whose rows were actually scanned (≤ the requested
    /// `nprobe`: the bound check can stop the probe walk early).
    pub partitions_probed: usize,
    /// Rows scored against the query (excluded row not counted).
    pub candidates_scanned: usize,
    /// Rows in the index — the exact scan's candidate count.
    pub candidates_total: usize,
}

/// Reusable query scratch: after the first call at a given `(p, k)` no
/// further heap or sort allocations occur (see
/// [`EmbeddingIndex::top_k_similar_into`]).
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// `(lower_bound_dist_sq, partition)` — sorted ascending per query.
    order: Vec<(f64, usize)>,
    /// Running top-k, max element = current worst (see [`HeapEntry`]).
    heap: BinaryHeap<HeapEntry>,
    /// Work counters of the most recent search through this scratch.
    stats: SearchStats,
}

impl SearchScratch {
    /// Work counters of the most recent
    /// [`top_k_similar_into`](EmbeddingIndex::top_k_similar_into) call
    /// (zeroed counts before any search).
    pub fn stats(&self) -> SearchStats {
        self.stats
    }
}

/// Heap entry ordered so the binary max-heap surfaces the *worst-ranked*
/// candidate at the top: `a > b` ⇔ `a` ranks after `b` under
/// `(similarity desc, id asc)`.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    sim: f64,
    id: usize,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.sim.total_cmp(&self.sim).then(self.id.cmp(&other.id))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}

thread_local! {
    /// Per-thread scratch for the allocating convenience wrapper — the
    /// query engine's worker threads each reuse their own buffers.
    static TL_SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::default());
}

/// Cluster-pruned Eq. 10 top-k index over `n` embedding rows of width
/// `dim`. Immutable once built; see the module docs for the exactness
/// contract.
#[derive(Debug, Clone)]
pub struct EmbeddingIndex {
    dim: usize,
    n: usize,
    /// Row storage permuted partition-contiguously: slot `s` holds the row
    /// of original id `ids[s]` at `data[s*dim .. (s+1)*dim]`, byte-for-byte
    /// equal to the source row (property 1 of the exactness contract).
    data: Vec<f64>,
    /// Slot → original row id. Within each partition slots are in
    /// ascending id order (cosmetic — the heap comparator alone fixes the
    /// ranking).
    ids: Vec<u32>,
    parts: Vec<PartitionInfo>,
    centroids: Mat,
    default_nprobe: usize,
}

impl EmbeddingIndex {
    /// Builds the index over the rows of `points` (`n × dim`).
    /// Deterministic for every thread count of `pool`.
    ///
    /// # Panics
    /// Panics if `n > u32::MAX`.
    pub fn build(points: MatRef<'_>, options: &IndexOptions, pool: &ThreadPool) -> Self {
        let (n, dim) = points.shape();
        assert!(u32::try_from(n).is_ok(), "EmbeddingIndex: too many rows for u32 ids");
        let p_request = options.partitions.unwrap_or_else(|| isqrt_ceil(n));
        let Partitioning { assignments, centroids, .. } =
            partition_points(points, p_request, options.max_iterations, options.seed, pool);
        let p = centroids.rows();

        // Counting sort of rows into partition-contiguous slots; scanning
        // ids in ascending order keeps each partition's slots ascending.
        let mut counts = vec![0usize; p + 1];
        for &a in &assignments {
            counts[a as usize + 1] += 1;
        }
        for c in 0..p {
            counts[c + 1] += counts[c];
        }
        let starts = counts; // starts[c]..starts[c+1] is partition c
        let mut cursor = starts.clone();
        let mut data = vec![0.0f64; n * dim];
        let mut ids = vec![0u32; n];
        for i in 0..n {
            let c = assignments[i] as usize;
            let slot = cursor[c];
            cursor[c] += 1;
            data[slot * dim..(slot + 1) * dim].copy_from_slice(points.row(i));
            #[allow(clippy::cast_possible_truncation)] // n ≤ u32::MAX asserted above
            {
                ids[slot] = i as u32;
            }
        }

        let parts = (0..p)
            .map(|c| {
                let (start, end) = (starts[c], starts[c + 1]);
                let centroid = centroids.row(c);
                let mut radius_sq = 0.0f64;
                let mut min_norm = f64::INFINITY;
                let mut max_norm = 0.0f64;
                for s in start..end {
                    let row = &data[s * dim..(s + 1) * dim];
                    radius_sq = radius_sq.max(squared_distance(row, centroid));
                    let norm = row.iter().map(|&v| v * v).sum::<f64>().sqrt();
                    min_norm = min_norm.min(norm);
                    max_norm = max_norm.max(norm);
                }
                if start == end {
                    min_norm = 0.0;
                }
                PartitionInfo {
                    start,
                    end,
                    radius: radius_sq.sqrt() * (1.0 + BOUND_MARGIN),
                    min_norm: min_norm * (1.0 - BOUND_MARGIN),
                    max_norm: max_norm * (1.0 + BOUND_MARGIN),
                }
            })
            .collect();

        let default_nprobe = options.nprobe.unwrap_or_else(|| (p / 10).max(1)).clamp(1, p.max(1));
        Self { dim, n, data, ids, parts, centroids, default_nprobe }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding width the index was built over.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Partition count; probing this many partitions is bitwise-exact.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// The `nprobe` used when a query passes `None`.
    pub fn default_nprobe(&self) -> usize {
        self.default_nprobe
    }

    /// Convenience wrapper over [`top_k_similar_into`] using thread-local
    /// scratch; allocates only the returned `Vec`.
    ///
    /// [`top_k_similar_into`]: EmbeddingIndex::top_k_similar_into
    pub fn top_k_similar(
        &self,
        query: &[f64],
        gamma: f64,
        k: usize,
        nprobe: usize,
        exclude: Option<usize>,
    ) -> Vec<(usize, f64)> {
        self.top_k_similar_with_stats(query, gamma, k, nprobe, exclude).0
    }

    /// [`top_k_similar`](EmbeddingIndex::top_k_similar) additionally
    /// returning the search's work counters ([`SearchStats`]).
    pub fn top_k_similar_with_stats(
        &self,
        query: &[f64],
        gamma: f64,
        k: usize,
        nprobe: usize,
        exclude: Option<usize>,
    ) -> (Vec<(usize, f64)>, SearchStats) {
        let mut out = Vec::new();
        let stats = TL_SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            self.top_k_similar_into(query, gamma, k, nprobe, exclude, &mut scratch, &mut out);
            scratch.stats()
        });
        (out, stats)
    }

    /// Writes into `out` the `k` rows most Eq. 10-similar to `query`
    /// (`(id, similarity)`, similarity descending, ties by ascending id),
    /// probing at most `nprobe` partitions. `exclude` drops one id from
    /// consideration (the self-row for neighbor queries).
    ///
    /// Steady-state allocation-free: `scratch` and `out` only grow to
    /// capacities bounded by `num_partitions` and `k`, after which repeat
    /// calls allocate nothing (pinned by the root `alloc_regression`
    /// suite).
    ///
    /// # Panics
    /// Panics if `query.len() != self.dim()`.
    // Every parameter is a distinct search knob or caller-owned buffer;
    // bundling them into a struct would force per-call construction on the
    // allocation-free path.
    #[allow(clippy::too_many_arguments)]
    pub fn top_k_similar_into(
        &self,
        query: &[f64],
        gamma: f64,
        k: usize,
        nprobe: usize,
        exclude: Option<usize>,
        scratch: &mut SearchScratch,
        out: &mut Vec<(usize, f64)>,
    ) {
        assert_eq!(query.len(), self.dim, "EmbeddingIndex: query width != index dim");
        out.clear();
        scratch.stats = SearchStats {
            partitions_total: self.parts.len(),
            partitions_probed: 0,
            candidates_scanned: 0,
            candidates_total: self.n,
        };
        if k == 0 || self.n == 0 {
            return;
        }

        let q_norm = query.iter().map(|&v| v * v).sum::<f64>().sqrt();
        scratch.order.clear();
        for (c, part) in self.parts.iter().enumerate() {
            if part.start == part.end {
                continue;
            }
            let d_centroid = squared_distance(query, self.centroids.row(c)).sqrt();
            // Triangle bound and norm-gap bound; either alone is a valid
            // lower bound on d(query, member), so take the larger.
            let triangle = (d_centroid - part.radius).max(0.0);
            let norm_gap = if q_norm < part.min_norm {
                part.min_norm - q_norm
            } else if q_norm > part.max_norm {
                q_norm - part.max_norm
            } else {
                0.0
            };
            let lb = triangle.max(norm_gap) * (1.0 - BOUND_MARGIN);
            scratch.order.push((lb * lb, c));
        }
        scratch.order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let probe = nprobe.max(1).min(scratch.order.len());
        // Exactness knob: pruning only engages when the probe set is a
        // strict subset of the (non-empty) partitions.
        let prune = nprobe < self.parts.len();

        scratch.heap.clear();
        for &(lb_sq, c) in &scratch.order[..probe] {
            if prune && scratch.heap.len() == k {
                // Highest similarity any member of this (or any later —
                // bounds ascend) partition can reach.
                let bound_sim = (-gamma * lb_sq).exp();
                let worst = scratch.heap.peek().expect("heap full").sim;
                if bound_sim < worst {
                    break;
                }
            }
            let part = &self.parts[c];
            scratch.stats.partitions_probed += 1;
            for s in part.start..part.end {
                let id = self.ids[s] as usize;
                if Some(id) == exclude {
                    continue;
                }
                scratch.stats.candidates_scanned += 1;
                let row = &self.data[s * self.dim..(s + 1) * self.dim];
                let sim = (-gamma * squared_distance(query, row)).exp();
                let entry = HeapEntry { sim, id };
                if scratch.heap.len() < k {
                    scratch.heap.push(entry);
                } else if entry < *scratch.heap.peek().expect("heap full") {
                    scratch.heap.pop();
                    scratch.heap.push(entry);
                }
            }
        }

        out.extend(scratch.heap.drain().map(|e| (e.id, e.sim)));
        // Ascending HeapEntry order == (similarity desc, id asc) — the
        // exact comparator of `select_top_k`. `sort_unstable` keeps the
        // call allocation-free (stable sort buffers).
        out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    }
}

/// `⌈√n⌉` without floating-point round-trip surprises at large `n`.
fn isqrt_ceil(n: usize) -> usize {
    if n <= 1 {
        return n;
    }
    let mut r = (n as f64).sqrt() as usize;
    while r * r < n {
        r += 1;
    }
    while r > 1 && (r - 1) * (r - 1) >= n {
        r -= 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::select_top_k;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_fn(n, dim, |_, _| rng.random::<f64>() * 4.0 - 2.0)
    }

    /// Reference: the exact serving computation (fused distance + Eq. 10 +
    /// `select_top_k`).
    fn exact_top_k(
        points: &Mat,
        query: &[f64],
        gamma: f64,
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<(usize, f64)> {
        let pairs: Vec<(usize, f64)> = (0..points.rows())
            .filter(|&i| Some(i) != exclude)
            .map(|i| (i, (-gamma * squared_distance(query, points.row(i))).exp()))
            .collect();
        select_top_k(pairs, k)
    }

    #[test]
    fn full_probe_is_bitwise_exact() {
        let points = random_points(200, 6, 11);
        let pool = ThreadPool::new(2);
        let opts = IndexOptions { partitions: Some(14), ..IndexOptions::default() };
        let index = EmbeddingIndex::build(points.view(), &opts, &pool);
        for target in [0usize, 7, 199] {
            let expect = exact_top_k(&points, points.row(target), 0.05, 10, Some(target));
            let got = index.top_k_similar(
                points.row(target),
                0.05,
                10,
                index.num_partitions(),
                Some(target),
            );
            assert_eq!(got, expect, "target {target}");
        }
    }

    #[test]
    fn full_probe_exact_under_similarity_underflow_ties() {
        // Huge gamma forces exp underflow to exactly 0.0 for most pairs —
        // the ranking must still match the exact path's id tie-breaks.
        let points = random_points(120, 4, 13);
        let pool = ThreadPool::new(1);
        let opts = IndexOptions { partitions: Some(9), ..IndexOptions::default() };
        let index = EmbeddingIndex::build(points.view(), &opts, &pool);
        let expect = exact_top_k(&points, points.row(3), 1e6, 20, Some(3));
        let got = index.top_k_similar(points.row(3), 1e6, 20, index.num_partitions(), Some(3));
        assert_eq!(got, expect);
    }

    #[test]
    fn pruned_probe_on_separated_clusters_is_exact_in_practice() {
        // Blobs far apart: the true top-k lives entirely in the query's
        // blob, so even nprobe = 1 recovers the exact answer.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 400;
        let points = Mat::from_fn(n, 5, |i, _| {
            let blob = (i % 4) as f64 * 100.0;
            blob + rng.random::<f64>()
        });
        let pool = ThreadPool::new(2);
        let opts = IndexOptions { partitions: Some(4), ..IndexOptions::default() };
        let index = EmbeddingIndex::build(points.view(), &opts, &pool);
        for target in [0usize, 1, 2, 3] {
            let expect = exact_top_k(&points, points.row(target), 0.01, 5, Some(target));
            let got = index.top_k_similar(points.row(target), 0.01, 5, 1, Some(target));
            assert_eq!(got, expect, "target {target}");
        }
    }

    #[test]
    fn recall_is_monotone_in_nprobe() {
        let points = random_points(300, 8, 17);
        let pool = ThreadPool::new(2);
        let opts = IndexOptions { partitions: Some(17), ..IndexOptions::default() };
        let index = EmbeddingIndex::build(points.view(), &opts, &pool);
        let k = 10;
        let exact = exact_top_k(&points, points.row(42), 0.02, k, Some(42));
        let exact_ids: Vec<usize> = exact.iter().map(|&(i, _)| i).collect();
        let mut prev = 0usize;
        for nprobe in 1..=index.num_partitions() {
            let got = index.top_k_similar(points.row(42), 0.02, k, nprobe, Some(42));
            let hits = got.iter().filter(|&&(i, _)| exact_ids.contains(&i)).count();
            assert!(hits >= prev, "recall dropped {prev} -> {hits} at nprobe {nprobe}");
            prev = hits;
        }
        assert_eq!(prev, k, "full probe must reach recall 1.0");
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let points = random_points(150, 5, 23);
        let pool = ThreadPool::new(1);
        let index = EmbeddingIndex::build(points.view(), &IndexOptions::default(), &pool);
        let mut scratch = SearchScratch::default();
        let mut out = Vec::new();
        for target in 0..20 {
            index.top_k_similar_into(
                points.row(target),
                0.05,
                7,
                3,
                Some(target),
                &mut scratch,
                &mut out,
            );
            let fresh = index.top_k_similar(points.row(target), 0.05, 7, 3, Some(target));
            assert_eq!(out, fresh, "target {target}");
        }
    }

    #[test]
    fn k_zero_and_empty_index() {
        let points = random_points(10, 3, 29);
        let pool = ThreadPool::new(1);
        let index = EmbeddingIndex::build(points.view(), &IndexOptions::default(), &pool);
        assert!(index.top_k_similar(points.row(0), 0.01, 0, 4, None).is_empty());
        let empty = EmbeddingIndex::build(Mat::zeros(0, 3).view(), &IndexOptions::default(), &pool);
        assert!(empty.is_empty());
        assert!(empty.top_k_similar(&[0.0; 3], 0.01, 5, 1, None).is_empty());
    }

    #[test]
    fn stats_reflect_probe_work() {
        let points = random_points(200, 6, 37);
        let pool = ThreadPool::new(1);
        let opts = IndexOptions { partitions: Some(10), ..IndexOptions::default() };
        let index = EmbeddingIndex::build(points.view(), &opts, &pool);
        // Full probe: every partition visited, every row but the excluded
        // one scored.
        let (_, full) =
            index.top_k_similar_with_stats(points.row(0), 0.05, 5, index.num_partitions(), Some(0));
        assert_eq!(full.partitions_total, index.num_partitions());
        assert_eq!(full.partitions_probed, index.num_partitions());
        assert_eq!(full.candidates_total, 200);
        assert_eq!(full.candidates_scanned, 199);
        // nprobe = 1: exactly one partition scanned, strictly fewer rows.
        let (_, one) = index.top_k_similar_with_stats(points.row(0), 0.05, 5, 1, Some(0));
        assert_eq!(one.partitions_probed, 1);
        assert!(one.candidates_scanned < full.candidates_scanned);
        // The scratch-level accessor agrees with the wrapper's copy.
        let mut scratch = SearchScratch::default();
        let mut out = Vec::new();
        index.top_k_similar_into(points.row(0), 0.05, 5, 1, Some(0), &mut scratch, &mut out);
        assert_eq!(scratch.stats(), one);
    }

    #[test]
    fn default_knobs() {
        let points = random_points(100, 4, 31);
        let pool = ThreadPool::new(1);
        let index = EmbeddingIndex::build(points.view(), &IndexOptions::default(), &pool);
        assert_eq!(index.num_partitions(), 10); // ⌈√100⌉
        assert_eq!(index.default_nprobe(), 1); // max(1, 10/10)
        assert_eq!(index.len(), 100);
        assert_eq!(index.dim(), 4);
    }
}
