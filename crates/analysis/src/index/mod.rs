//! Sub-linear Eq. 10 top-k: a cluster-pruned index over factor embeddings.
//!
//! The serving path's exact answer to "k most similar entities" is an O(n)
//! scan; at the ROADMAP's 10⁶–10⁷-entity scale that scan is the latency
//! wall. Because Eq. 10 similarity factorizes through the R-dimensional
//! factor rows (R ≪ n), the scan can be made sub-linear with an IVF-style
//! two-level structure:
//!
//! * [`kmeans`] — a seeded, deterministic k-means partitioner built on the
//!   pooled GEMM kernels (blocked assignment, no n×p materialization);
//! * [`pruned`] — [`EmbeddingIndex`], which prunes whole partitions via
//!   triangle-inequality and norm-gap bounds and exposes an
//!   `nprobe` exactness-vs-speed knob where `nprobe = num_partitions`
//!   degenerates **bitwise** to the exact scan (the contract the serve
//!   crate's differential tests pin).

pub mod kmeans;
pub mod pruned;

pub use kmeans::{partition_points, Partitioning};
pub use pruned::{EmbeddingIndex, IndexOptions, SearchScratch, SearchStats};
