//! Stock-pair similarity from temporal factors — Eq. 10 & 11 of the paper.

use crate::knn::select_top_k;
use dpar2_linalg::Mat;
use dpar2_parallel::{greedy_partition, ThreadPool};

/// Eq. 10: `sim(s_i, s_j) = exp(−γ ‖U_i − U_j‖²_F)`.
///
/// `U_i` are the temporal latent factors of the two stocks, which must have
/// identical shape ("we use only the stocks that have the same target
/// range since `U_i − U_j` is defined only when the two matrices are of the
/// same size", §IV-E2). The paper uses `γ = 0.01`.
///
/// # Panics
/// Panics if the shapes differ.
pub fn stock_similarity(u_i: &Mat, u_j: &Mat, gamma: f64) -> f64 {
    (-gamma * dist_sq(u_i, u_j)).exp()
}

/// `‖U_i − U_j‖²_F` accumulated directly over the two backing stores —
/// no `U_i − U_j` temporary. Same element order as
/// `(u_i - u_j).fro_norm_sq()`, so the result is bit-identical to the
/// allocating formulation.
///
/// # Panics
/// Panics if the shapes differ (see [`stock_similarity`]).
fn dist_sq(u_i: &Mat, u_j: &Mat) -> f64 {
    assert_eq!(u_i.shape(), u_j.shape(), "stock_similarity: factors must share the time range");
    squared_distance(u_i.data(), u_j.data())
}

/// `‖a − b‖²` in one fused pass over two equal-length buffers.
///
/// This is **the** distance kernel of every Eq. 10 path — offline
/// ([`stock_similarity`]), exact serving, and the pruned index — so all of
/// them produce bit-identical similarities for the same inputs. Unlike the
/// Gram expansion `‖a‖² + ‖b‖² − 2·a·b`, the fused form cannot go negative
/// through catastrophic cancellation: each addend is a square, so the
/// result is exactly `0.0` for bit-identical buffers and `> 0` otherwise.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: buffer lengths differ");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Streaming per-row top-k over Eq. 10 similarities: for every factor `i`,
/// the `k` most similar other factors as `(index, similarity)` pairs,
/// descending with ties broken by lower index — row `i` of the ranking that
/// `similarity_graph` + [`top_k_neighbors`](crate::knn::top_k_neighbors)
/// would produce, **without** materializing the O(n²) similarity matrix.
///
/// One row of `n − 1` candidate pairs is scored at a time and immediately
/// reduced through [`select_top_k`]; the candidate buffer is reused across
/// rows, so peak extra memory is O(n + n·k) instead of O(n²) (pinned by
/// the `topk_index` bench's peak-allocation probe). Use this when only the
/// rankings are needed; RWR-style consumers that genuinely need the dense
/// matrix keep using [`similarity_graph`].
///
/// Factors whose shape differs from row `i`'s are skipped for that row
/// (Eq. 10 is defined only on equal shapes, §IV-E2) — unlike
/// [`similarity_graph`], which panics on mixed shapes.
pub fn similarity_topk(factors: &[&Mat], gamma: f64, k: usize) -> Vec<Vec<(usize, f64)>> {
    let n = factors.len();
    let mut out: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    let mut pairs: Vec<(usize, f64)> = Vec::with_capacity(n.saturating_sub(1));
    for i in 0..n {
        pairs.clear();
        pairs.extend(
            (0..n)
                .filter(|&j| j != i && factors[j].shape() == factors[i].shape())
                .map(|j| (j, stock_similarity(factors[i], factors[j], gamma))),
        );
        // `select_top_k` consumes and returns the buffer with capacity
        // intact: keep the k survivors for the caller, hand the n-capacity
        // allocation back for the next row.
        let top = select_top_k(std::mem::take(&mut pairs), k);
        out.push(top.as_slice().to_vec());
        pairs = top;
        pairs.clear();
    }
    out
}

/// Builds the symmetric similarity matrix over a set of stocks, and — per
/// Eq. 11 — the graph adjacency with zeroed self-loops.
///
/// Returns `(S, A)` where `S(i,j) = sim(s_i, s_j)` (unit diagonal) and
/// `A = S` with `A(i,i) = 0`.
///
/// Single-threaded reference path; [`similarity_graph_par`] produces the
/// identical matrices in parallel.
///
/// # Panics
/// Panics if factor shapes differ (see [`stock_similarity`]).
pub fn similarity_graph(factors: &[&Mat], gamma: f64) -> (Mat, Mat) {
    let n = factors.len();
    let mut s = Mat::zeros(n, n);
    for i in 0..n {
        s.set(i, i, 1.0);
        for j in i + 1..n {
            let v = stock_similarity(factors[i], factors[j], gamma);
            s.set(i, j, v);
            s.set(j, i, v);
        }
    }
    with_adjacency(s)
}

/// Parallel [`similarity_graph`]: the upper triangle is distributed over the
/// pool with greedy partitioning (row `i` owns the `n − 1 − i` pairs
/// `(i, i+1..n)`, so later rows are cheaper — exactly the imbalance
/// Algorithm 4 of the paper targets). Each pair accumulates
/// `‖U_i − U_j‖²_F` straight off the factor buffers, so the hot loop
/// performs no allocation beyond one score row per owned row index.
///
/// Bit-identical to the serial path for any thread count.
///
/// # Panics
/// Panics if factor shapes differ (see [`stock_similarity`]).
pub fn similarity_graph_par(factors: &[&Mat], gamma: f64, pool: &ThreadPool) -> (Mat, Mat) {
    let n = factors.len();
    // Row i computes n − 1 − i pairwise similarities.
    let weights: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
    let partition = greedy_partition(&weights, pool.threads());
    let rows: Vec<Vec<f64>> = pool.run_partitioned(&partition, |i| {
        (i + 1..n).map(|j| stock_similarity(factors[i], factors[j], gamma)).collect()
    });
    let mut s = Mat::zeros(n, n);
    for i in 0..n {
        s.set(i, i, 1.0);
        for (off, &v) in rows[i].iter().enumerate() {
            let j = i + 1 + off;
            s.set(i, j, v);
            s.set(j, i, v);
        }
    }
    with_adjacency(s)
}

/// Eq. 11: pairs `S` with its zero-diagonal adjacency `A`.
fn with_adjacency(s: Mat) -> (Mat, Mat) {
    let mut a = s.clone();
    for i in 0..s.rows() {
        a.set(i, i, 0.0);
    }
    (s, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_linalg::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn self_similarity_is_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = gaussian_mat(10, 3, &mut rng);
        assert_eq!(stock_similarity(&u, &u, 0.01), 1.0);
    }

    #[test]
    fn similarity_decays_with_distance() {
        let mut rng = StdRng::seed_from_u64(2);
        let u = gaussian_mat(10, 3, &mut rng);
        let mut near = u.clone();
        near.axpy(0.1, &gaussian_mat(10, 3, &mut rng));
        let mut far = u.clone();
        far.axpy(2.0, &gaussian_mat(10, 3, &mut rng));
        let s_near = stock_similarity(&u, &near, 0.01);
        let s_far = stock_similarity(&u, &far, 0.01);
        assert!(s_near > s_far, "near {s_near} vs far {s_far}");
        assert!((0.0..=1.0).contains(&s_near) && (0.0..=1.0).contains(&s_far));
    }

    #[test]
    fn gamma_sharpens() {
        let mut rng = StdRng::seed_from_u64(3);
        let u = gaussian_mat(8, 2, &mut rng);
        let v = gaussian_mat(8, 2, &mut rng);
        assert!(stock_similarity(&u, &v, 0.1) < stock_similarity(&u, &v, 0.001));
    }

    #[test]
    fn dist_sq_matches_allocating_formulation() {
        let mut rng = StdRng::seed_from_u64(6);
        let u = gaussian_mat(12, 4, &mut rng);
        let v = gaussian_mat(12, 4, &mut rng);
        assert_eq!(dist_sq(&u, &v), (&u - &v).fro_norm_sq());
    }

    #[test]
    fn graph_symmetric_no_self_loops() {
        let mut rng = StdRng::seed_from_u64(4);
        let us: Vec<Mat> = (0..5).map(|_| gaussian_mat(6, 2, &mut rng)).collect();
        let refs: Vec<&Mat> = us.iter().collect();
        let (s, a) = similarity_graph(&refs, 0.01);
        assert!((&s - &s.transpose()).fro_norm() < 1e-15);
        for i in 0..5 {
            assert_eq!(s.at(i, i), 1.0);
            assert_eq!(a.at(i, i), 0.0);
        }
        // Off-diagonal entries agree between S and A.
        assert!((s.at(1, 3) - a.at(1, 3)).abs() < 1e-15);
    }

    #[test]
    fn parallel_graph_matches_serial_exactly() {
        let mut rng = StdRng::seed_from_u64(7);
        let us: Vec<Mat> = (0..17).map(|_| gaussian_mat(9, 3, &mut rng)).collect();
        let refs: Vec<&Mat> = us.iter().collect();
        let (s_ref, a_ref) = similarity_graph(&refs, 0.02);
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let (s, a) = similarity_graph_par(&refs, 0.02, &pool);
            assert_eq!(s, s_ref, "S differs at {threads} threads");
            assert_eq!(a, a_ref, "A differs at {threads} threads");
        }
    }

    #[test]
    fn parallel_graph_empty_and_singleton() {
        let pool = ThreadPool::new(4);
        let (s, a) = similarity_graph_par(&[], 0.01, &pool);
        assert_eq!(s.shape(), (0, 0));
        assert_eq!(a.shape(), (0, 0));
        let mut rng = StdRng::seed_from_u64(8);
        let u = gaussian_mat(5, 2, &mut rng);
        let (s, a) = similarity_graph_par(&[&u], 0.01, &pool);
        assert_eq!(s.at(0, 0), 1.0);
        assert_eq!(a.at(0, 0), 0.0);
    }

    #[test]
    fn topk_matches_graph_plus_knn() {
        use crate::knn::top_k_neighbors;
        let mut rng = StdRng::seed_from_u64(9);
        let us: Vec<Mat> = (0..12).map(|_| gaussian_mat(7, 3, &mut rng)).collect();
        let refs: Vec<&Mat> = us.iter().collect();
        let (s, _) = similarity_graph(&refs, 0.03);
        let streamed = similarity_topk(&refs, 0.03, 4);
        for i in 0..12 {
            assert_eq!(streamed[i], top_k_neighbors(&s, i, 4), "row {i}");
        }
    }

    #[test]
    fn topk_skips_incomparable_shapes() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = gaussian_mat(6, 2, &mut rng);
        let b = gaussian_mat(6, 2, &mut rng);
        let odd = gaussian_mat(9, 2, &mut rng); // different time range
        let streamed = similarity_topk(&[&a, &b, &odd], 0.01, 5);
        assert_eq!(streamed[0].len(), 1);
        assert_eq!(streamed[0][0].0, 1);
        assert_eq!(streamed[2], vec![], "no comparable partner for the odd shape");
    }

    #[test]
    fn topk_empty_and_k_zero() {
        assert!(similarity_topk(&[], 0.01, 3).is_empty());
        let mut rng = StdRng::seed_from_u64(11);
        let a = gaussian_mat(4, 2, &mut rng);
        let b = gaussian_mat(4, 2, &mut rng);
        let streamed = similarity_topk(&[&a, &b], 0.01, 0);
        assert!(streamed.iter().all(Vec::is_empty));
    }

    #[test]
    fn squared_distance_identical_buffers_is_exact_zero() {
        // The fused form cannot cancel catastrophically; the Gram
        // expansion this replaces could return tiny negative values here.
        let xs: Vec<f64> = (0..64).map(|i| 1e8 + i as f64 * 1e-8).collect();
        assert_eq!(squared_distance(&xs, &xs), 0.0);
    }

    #[test]
    #[should_panic(expected = "share the time range")]
    fn shape_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let u = gaussian_mat(6, 2, &mut rng);
        let v = gaussian_mat(7, 2, &mut rng);
        stock_similarity(&u, &v, 0.01);
    }
}
