//! Pearson correlation between feature latent vectors — Fig. 12.
//!
//! After decomposing a stock tensor, row `i` of `V ∈ R^{J×R}` is the latent
//! vector of feature `i`. The paper computes the Pearson Correlation
//! Coefficient between selected feature rows (4 price features + OBV, ATR,
//! MACD, STOCH) and contrasts the US and Korean heatmaps.

use dpar2_linalg::Mat;

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0 when either sample has zero variance (degenerate but
/// well-defined for heat-map rendering).
///
/// # Panics
/// Panics if lengths differ or are zero.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    assert!(!x.is_empty(), "pearson: empty input");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let da = a - mx;
        let db = b - my;
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    if vx < 1e-300 || vy < 1e-300 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Correlation matrix between selected rows of `V`.
///
/// `rows[i]` indexes the feature whose latent vector `V(rows[i], :)` forms
/// the `i`-th row/column of the result. The output is symmetric with unit
/// diagonal (for non-degenerate rows).
pub fn pcc_matrix(v: &Mat, rows: &[usize]) -> Mat {
    let n = rows.len();
    let vecs: Vec<&[f64]> = rows.iter().map(|&r| v.row(r)).collect();
    let mut out = Mat::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let c = pearson(vecs[i], vecs[j]);
            out.set(i, j, c);
            out.set(j, i, c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn shift_and_scale_invariance() {
        let x = [0.3, -1.2, 2.5, 0.8, -0.4];
        let y: Vec<f64> = x.iter().map(|v| 5.0 * v - 7.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_degenerate() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn uncorrelated_orthogonal_samples() {
        // Designed zero-covariance pair.
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn pcc_matrix_symmetric_unit_diagonal() {
        let v = Mat::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[2.0, 4.0, 6.0],
            &[3.0, 1.0, -2.0],
            &[0.5, 0.5, 0.5], // degenerate row
        ]);
        let m = pcc_matrix(&v, &[0, 1, 2, 3]);
        assert_eq!(m.shape(), (4, 4));
        assert!((m.at(0, 0) - 1.0).abs() < 1e-12);
        assert!((m.at(0, 1) - 1.0).abs() < 1e-12); // rows 0,1 proportional
        assert!((&m - &m.transpose()).fro_norm() < 1e-12);
        assert_eq!(m.at(3, 3), 0.0); // degenerate diagonal stays 0
    }

    #[test]
    fn pcc_matrix_row_selection() {
        let v = Mat::from_rows(&[&[1.0, 0.0], &[9.0, 9.0], &[0.0, 1.0]]);
        let m = pcc_matrix(&v, &[0, 2]);
        assert_eq!(m.shape(), (2, 2));
        assert!((m.at(0, 1) + 1.0).abs() < 1e-12); // [1,0] vs [0,1] are anti-correlated
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
