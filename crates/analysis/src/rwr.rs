//! Random Walk with Restart — Eq. 12 of the paper (Table III(b)).
//!
//! Scores are computed by power iteration on the row-normalized similarity
//! graph: `r ← (1−c) Ãᵀ r + c q`, with restart probability `c = 0.15`,
//! maximum 100 iterations, and a one-hot query vector at the target stock —
//! exactly the §IV-E2 settings.

use dpar2_linalg::Mat;

/// RWR hyper-parameters (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct RwrConfig {
    /// Restart probability `c` (paper: 0.15).
    pub restart: f64,
    /// Maximum power iterations (paper: 100).
    pub max_iterations: usize,
    /// Early-exit threshold on `‖r_new − r‖₁`.
    pub tolerance: f64,
}

impl Default for RwrConfig {
    fn default() -> Self {
        RwrConfig { restart: 0.15, max_iterations: 100, tolerance: 1e-12 }
    }
}

/// Computes RWR scores from a (non-negative) adjacency matrix and a query
/// distribution `q` (typically one-hot at the target).
///
/// The adjacency is row-normalized internally (`Ã`); rows that sum to zero
/// become uniform restarts. Returns the stationary score vector `r`.
///
/// # Panics
/// Panics if shapes are inconsistent or `q` is all-zero.
pub fn rwr_scores(adjacency: &Mat, q: &[f64], config: &RwrConfig) -> Vec<f64> {
    let n = adjacency.rows();
    assert_eq!(adjacency.cols(), n, "rwr: adjacency must be square");
    assert_eq!(q.len(), n, "rwr: query length mismatch");
    let qsum: f64 = q.iter().sum();
    assert!(qsum > 0.0, "rwr: query vector must be non-zero");
    let qn: Vec<f64> = q.iter().map(|v| v / qsum).collect();

    // Row-normalize: Ã(i,:) = A(i,:) / Σ_j A(i,j).
    let mut tilde = adjacency.clone();
    for i in 0..n {
        let row = tilde.row_mut(i);
        let s: f64 = row.iter().sum();
        if s > 1e-300 {
            for v in row.iter_mut() {
                *v /= s;
            }
        } else {
            // Dangling node: teleport uniformly.
            for v in row.iter_mut() {
                *v = 1.0 / n as f64;
            }
        }
    }

    let c = config.restart;
    let mut r = qn.clone();
    for _ in 0..config.max_iterations {
        // r_new = (1−c) Ãᵀ r + c q
        let at_r = tilde.matvec_t(&r);
        let mut delta = 0.0;
        let mut r_new = Vec::with_capacity(n);
        for i in 0..n {
            let v = (1.0 - c) * at_r[i] + c * qn[i];
            delta += (v - r[i]).abs();
            r_new.push(v);
        }
        r = r_new;
        if delta < config.tolerance {
            break;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles bridged by one edge; RWR from node 0 should score the
    /// home triangle {1, 2} above the far triangle {4, 5}.
    fn two_communities() -> Mat {
        let mut a = Mat::zeros(6, 6);
        let edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
        for (i, j) in edges {
            a.set(i, j, 1.0);
            a.set(j, i, 1.0);
        }
        a
    }

    #[test]
    fn scores_sum_to_one() {
        let a = two_communities();
        let q = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let r = rwr_scores(&a, &q, &RwrConfig::default());
        let s: f64 = r.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "scores sum {s}");
        assert!(r.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn home_community_ranks_higher() {
        let a = two_communities();
        let q = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let r = rwr_scores(&a, &q, &RwrConfig::default());
        assert!(r[1] > r[4], "{:?}", r);
        assert!(r[2] > r[5], "{:?}", r);
    }

    #[test]
    fn restart_concentrates_on_query() {
        let a = two_communities();
        let q = [0.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        let high_c = rwr_scores(&a, &q, &RwrConfig { restart: 0.9, ..Default::default() });
        let low_c = rwr_scores(&a, &q, &RwrConfig { restart: 0.05, ..Default::default() });
        assert!(high_c[3] > low_c[3], "higher restart should concentrate mass on the query");
    }

    #[test]
    fn symmetric_complete_graph_is_uniform() {
        let n = 5;
        let mut a = Mat::ones(n, n);
        for i in 0..n {
            a.set(i, i, 0.0);
        }
        let mut q = vec![0.0; n];
        q[2] = 1.0;
        let r = rwr_scores(&a, &q, &RwrConfig::default());
        // All non-query nodes are interchangeable by symmetry.
        let others: Vec<f64> = (0..n).filter(|&i| i != 2).map(|i| r[i]).collect();
        for pair in others.windows(2) {
            assert!((pair[0] - pair[1]).abs() < 1e-9, "{:?}", r);
        }
        assert!(r[2] > others[0], "query node keeps extra mass");
    }

    #[test]
    fn dangling_nodes_handled() {
        // Node 2 has no outgoing edges.
        let mut a = Mat::zeros(3, 3);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        let q = [1.0, 0.0, 0.0];
        let r = rwr_scores(&a, &q, &RwrConfig::default());
        assert!(r.iter().all(|v| v.is_finite()));
        let s: f64 = r.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_query_panics() {
        rwr_scores(&Mat::ones(2, 2), &[0.0, 0.0], &RwrConfig::default());
    }
}
