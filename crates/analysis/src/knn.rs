//! k-nearest-neighbour ranking — the Table III(a) technique.

use dpar2_linalg::Mat;

/// Returns the `k` most similar items to `target` (excluding itself) from a
/// similarity matrix, as `(index, similarity)` pairs in descending order.
/// Deterministic tie-break by lower index.
///
/// # Panics
/// Panics if `target` is out of range.
pub fn top_k_neighbors(sim: &Mat, target: usize, k: usize) -> Vec<(usize, f64)> {
    assert!(target < sim.rows(), "top_k_neighbors: target out of range");
    let mut pairs: Vec<(usize, f64)> =
        (0..sim.rows()).filter(|&i| i != target).map(|i| (i, sim.at(target, i))).collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN similarity").then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim4() -> Mat {
        Mat::from_rows(&[
            &[1.0, 0.9, 0.2, 0.5],
            &[0.9, 1.0, 0.3, 0.1],
            &[0.2, 0.3, 1.0, 0.8],
            &[0.5, 0.1, 0.8, 1.0],
        ])
    }

    #[test]
    fn ranks_by_similarity() {
        let top = top_k_neighbors(&sim4(), 0, 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 3);
    }

    #[test]
    fn excludes_self() {
        let top = top_k_neighbors(&sim4(), 2, 3);
        assert!(top.iter().all(|&(i, _)| i != 2));
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn k_larger_than_population() {
        let top = top_k_neighbors(&sim4(), 1, 99);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn deterministic_tie_break() {
        let m = Mat::from_rows(&[&[1.0, 0.5, 0.5], &[0.5, 1.0, 0.5], &[0.5, 0.5, 1.0]]);
        let top = top_k_neighbors(&m, 0, 2);
        assert_eq!(top[0].0, 1); // lower index wins the tie
        assert_eq!(top[1].0, 2);
    }
}
