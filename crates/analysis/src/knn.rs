//! k-nearest-neighbour ranking — the Table III(a) technique.

use dpar2_linalg::Mat;

/// Returns the `k` most similar items to `target` (excluding itself) from a
/// similarity matrix, as `(index, similarity)` pairs in descending order.
/// Deterministic tie-break by lower index.
///
/// Uses [`select_top_k`]: `O(n + k log k)` partial selection and a total
/// order on `f64`, so a NaN similarity can never panic a serving path.
///
/// # Panics
/// Panics if `target` is out of range.
pub fn top_k_neighbors(sim: &Mat, target: usize, k: usize) -> Vec<(usize, f64)> {
    assert!(target < sim.rows(), "top_k_neighbors: target out of range");
    let pairs: Vec<(usize, f64)> =
        (0..sim.rows()).filter(|&i| i != target).map(|i| (i, sim.at(target, i))).collect();
    select_top_k(pairs, k)
}

/// Selects the `k` highest-scoring `(index, score)` pairs, descending, with
/// deterministic tie-break by lower index.
///
/// When `k < n` this runs a partial selection (`select_nth_unstable_by`,
/// expected `O(n)`) and only sorts the surviving `k` entries — the common
/// serving case is `k ≪ n`, where a full `O(n log n)` sort is waste.
/// Ordering is [`f64::total_cmp`], so NaN scores are handled without
/// panicking (a NaN orders above every finite score in the total order;
/// garbage scores surface at the top of the ranking instead of aborting
/// the query thread).
pub fn select_top_k(mut pairs: Vec<(usize, f64)>, k: usize) -> Vec<(usize, f64)> {
    let desc = |a: &(usize, f64), b: &(usize, f64)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
    if k == 0 {
        pairs.clear();
        return pairs;
    }
    if k < pairs.len() {
        pairs.select_nth_unstable_by(k, desc);
        pairs.truncate(k);
    }
    pairs.sort_by(desc);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim4() -> Mat {
        Mat::from_rows(&[
            &[1.0, 0.9, 0.2, 0.5],
            &[0.9, 1.0, 0.3, 0.1],
            &[0.2, 0.3, 1.0, 0.8],
            &[0.5, 0.1, 0.8, 1.0],
        ])
    }

    #[test]
    fn ranks_by_similarity() {
        let top = top_k_neighbors(&sim4(), 0, 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 3);
    }

    #[test]
    fn excludes_self() {
        let top = top_k_neighbors(&sim4(), 2, 3);
        assert!(top.iter().all(|&(i, _)| i != 2));
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn k_larger_than_population() {
        let top = top_k_neighbors(&sim4(), 1, 99);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn deterministic_tie_break() {
        let m = Mat::from_rows(&[&[1.0, 0.5, 0.5], &[0.5, 1.0, 0.5], &[0.5, 0.5, 1.0]]);
        let top = top_k_neighbors(&m, 0, 2);
        assert_eq!(top[0].0, 1); // lower index wins the tie
        assert_eq!(top[1].0, 2);
    }

    #[test]
    fn nan_does_not_panic() {
        let m = Mat::from_rows(&[
            &[1.0, f64::NAN, 0.7, 0.2],
            &[f64::NAN, 1.0, 0.3, 0.1],
            &[0.7, 0.3, 1.0, 0.8],
            &[0.2, 0.1, 0.8, 1.0],
        ]);
        // NaN orders above every finite score; the finite ranking below it
        // is preserved.
        let top = top_k_neighbors(&m, 0, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 1);
        assert!(top[0].1.is_nan());
        assert_eq!(top[1].0, 2);
        assert_eq!(top[2].0, 3);
    }

    #[test]
    fn partial_selection_matches_full_sort() {
        // Pseudo-random scores; partial selection must agree with the naive
        // full sort for every k.
        let n = 200usize;
        let scores: Vec<(usize, f64)> =
            (0..n).map(|i| (i, ((i * 2654435761) % 1000) as f64 / 1000.0)).collect();
        let mut full = scores.clone();
        full.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for k in [0, 1, 5, 50, 199, 200, 300] {
            let got = select_top_k(scores.clone(), k);
            assert_eq!(got, full[..k.min(n)].to_vec(), "k = {k}");
        }
    }
}
