//! # dpar2-analysis
//!
//! The post-decomposition analyses of the DPar2 paper's "Discoveries"
//! section (§IV-E):
//!
//! * [`pcc`] — Pearson correlation between feature latent vectors `V(i,:)`,
//!   producing the Fig. 12 correlation heatmaps (US vs. Korea feature
//!   similarity patterns).
//! * [`similarity`] — the stock-pair similarity
//!   `sim(s_i, s_j) = exp(−γ ‖U_i − U_j‖²_F)` (Eq. 10) and the similarity
//!   graph with zeroed self-loops (Eq. 11).
//! * [`knn`] — top-`k` nearest neighbours of a target stock
//!   (Table III(a)).
//! * [`rwr`] — Random Walk with Restart scores by power iteration
//!   (Eq. 12, `r ← (1−c) Ãᵀ r + c q`) for the multi-hop ranking of
//!   Table III(b).
//! * [`index`] — sub-linear Eq. 10 top-k: a cluster-pruned
//!   [`EmbeddingIndex`] over the factor embeddings with an `nprobe`
//!   exactness-vs-speed knob (`nprobe = num_partitions` is bitwise-exact).

pub mod index;
pub mod knn;
pub mod pcc;
pub mod rwr;
pub mod similarity;

pub use index::{EmbeddingIndex, IndexOptions, SearchScratch, SearchStats};
pub use knn::{select_top_k, top_k_neighbors};
pub use pcc::{pcc_matrix, pearson};
pub use rwr::{rwr_scores, RwrConfig};
pub use similarity::{
    similarity_graph, similarity_graph_par, similarity_topk, squared_distance, stock_similarity,
};
