//! Two-stage compression of an irregular tensor (§III-B, Fig. 4).
//!
//! **Stage 1** — randomized SVD of every slice at the target rank:
//! `X_k ≈ A_k B_k C_kᵀ` with column-orthonormal `A_k ∈ R^{I_k×R}`, diagonal
//! `B_k`, and `C_k ∈ R^{J×R}`. Slices are distributed over threads with the
//! greedy partitioning of Algorithm 4, because the rSVD cost is proportional
//! to `I_k`.
//!
//! **Stage 2** — randomized SVD of the horizontal concatenation
//! `M = ∥_k (C_k B_k) ∈ R^{J×KR} ≈ D E Fᵀ` with `D ∈ R^{J×R}`, diagonal `E`,
//! `F ∈ R^{KR×R}`. Writing `F(k)` for the `k`-th `R×R` vertical block of `F`,
//! the slice re-expression used by every later step is
//!
//! ```text
//! X_k ≈ A_k B_k C_kᵀ = A_k (C_k B_k)ᵀ-block ≈ A_k F(k) E Dᵀ.
//! ```
//!
//! Only `{A_k}`, `{F(k)}`, `E`, `D` survive — `O(Σ_k I_k R + K R² + J R)`
//! floats (Theorem 2), which Fig. 10 of the paper shows is up to 201× smaller
//! than the input.

use crate::config::FitOptions;
use crate::error::{Dpar2Error, Result};
use dpar2_linalg::Mat;
use dpar2_parallel::{greedy_partition, ThreadPool};
use dpar2_rsvd::{rsvd, rsvd_op, rsvd_pooled, RsvdConfig};
use dpar2_tensor::{IrregularTensor, SparseIrregularTensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The compressed representation `{A_k}, {F(k)}, E, D` of an irregular
/// tensor, produced once before the ALS iterations.
#[derive(Debug, Clone)]
pub struct CompressedTensor {
    /// Column-orthonormal stage-1 left factors `A_k ∈ R^{I_k×R}`.
    pub a: Vec<Mat>,
    /// Stage-2 left factor `D ∈ R^{J×R}` (column-orthonormal).
    pub d: Mat,
    /// Diagonal of the stage-2 singular-value matrix `E ∈ R^{R×R}`.
    pub e: Vec<f64>,
    /// Vertical blocks `F(k) ∈ R^{R×R}` of the stage-2 right factor
    /// `F ∈ R^{KR×R}`.
    pub f_blocks: Vec<Mat>,
    /// Target rank `R`.
    pub rank: usize,
    /// Shared column dimension `J` of the original tensor.
    pub j: usize,
}

impl CompressedTensor {
    /// Number of slices `K`.
    pub fn k(&self) -> usize {
        self.a.len()
    }

    /// `E Dᵀ ∈ R^{R×J}` — the product both Lemma kernels and the `Q_k`
    /// update consume. Materialized once; `E` is diagonal so this is just a
    /// row-scaled `Dᵀ`.
    pub fn edt(&self) -> Mat {
        let mut edt = self.d.transpose();
        for (r, &er) in self.e.iter().enumerate() {
            for v in edt.row_mut(r) {
                *v *= er;
            }
        }
        edt
    }

    /// Reconstructs slice `k` as `A_k F(k) E Dᵀ` (lossy; used by tests and
    /// the naive-update ablation, not by the solver).
    pub fn reconstruct_slice(&self, k: usize) -> Mat {
        let afe = self.a[k].matmul(&self.f_blocks[k]).expect("A_k · F(k)");
        afe.matmul(self.edt()).expect("· E Dᵀ")
    }

    /// Total number of `f64` values retained — the "Size of Preprocessed
    /// Data" metric of Fig. 10 (Theorem 2: `O(Σ I_k R + K R² + J R)`).
    pub fn size_floats(&self) -> usize {
        let a: usize = self.a.iter().map(Mat::len).sum();
        let f: usize = self.f_blocks.iter().map(Mat::len).sum();
        a + f + self.d.len() + self.e.len()
    }

    /// Compression ratio versus the raw tensor
    /// (`Σ_k I_k J` / [`Self::size_floats`]).
    pub fn compression_ratio(&self, tensor: &IrregularTensor) -> f64 {
        tensor.num_entries() as f64 / self.size_floats() as f64
    }
}

/// Runs the two-stage compression (lines 2–6 of Algorithm 3).
///
/// Stage-1 per-slice randomized SVDs run in parallel over
/// `options.threads` threads, with slices assigned by greedy number
/// partitioning on their row counts (Algorithm 4). Each slice draws from an
/// independent RNG seeded with `options.seed ⊕ k`, so results are identical
/// for every thread count.
///
/// # Errors
/// [`Dpar2Error::RankTooLarge`] if `R > min(I_k, J)` for any slice;
/// [`Dpar2Error::ZeroRank`] if `R == 0`.
pub fn compress(tensor: &IrregularTensor, options: &FitOptions<'_>) -> Result<CompressedTensor> {
    let r = options.rank;
    if r == 0 {
        return Err(Dpar2Error::ZeroRank);
    }
    for k in 0..tensor.k() {
        let limit = tensor.i(k).min(tensor.j());
        if r > limit {
            return Err(Dpar2Error::RankTooLarge { rank: r, slice: k, limit });
        }
    }

    // ---- Stage 1: per-slice rSVD, greedy-partitioned over threads ----
    let pool = ThreadPool::new(options.threads.max(1));
    let partition = greedy_partition(&tensor.row_dims(), pool.threads());
    // The compression rank always follows `options.rank`; only the
    // oversampling/power-iteration knobs of `options.rsvd` apply.
    let rsvd_cfg = RsvdConfig { rank: r, ..options.rsvd };
    let base_seed = options.seed;
    let stage1: Vec<(Mat, Vec<f64>, Mat)> = pool.run_partitioned(&partition, |k| {
        // Independent, slice-indexed stream: parallel schedule cannot
        // change the factorization.
        let mut rng = StdRng::seed_from_u64(stage1_seed(base_seed, k));
        let f = rsvd(tensor.slice(k), &rsvd_cfg, &mut rng);
        (f.u, f.s, f.v)
    });

    Ok(stage2(stage1, r, tensor.j(), &rsvd_cfg, base_seed, &pool))
}

/// Runs the two-stage compression directly on a CSR tensor — no dense
/// slice is ever materialized, so peak memory and per-pass cost are
/// proportional to `nnz`, not `Σ_k I_k·J`.
///
/// Identical to [`compress`] in everything observable but the kernel
/// family: the same validation, the same per-slice and stage-2 RNG
/// streams, and stage-1 rSVDs running on the sparse [`dpar2_rsvd::ProductOp`]
/// path, whose kernels accumulate in the dense naive loop order. When
/// every sketch-width product stays on the dense naive dispatch path
/// (`rank + oversample` below the blocked-GEMM tile width), the result is
/// **bitwise identical** to `compress(&tensor.to_dense(), options)` —
/// the property the sparse differential suite pins. Slices are
/// greedy-partitioned over threads by nnz (the sparse rSVD cost driver)
/// rather than by row count; the partition only affects scheduling, never
/// values.
///
/// # Errors
/// [`Dpar2Error::RankTooLarge`] if `R > min(I_k, J)` for any slice;
/// [`Dpar2Error::ZeroRank`] if `R == 0`.
pub fn compress_sparse(
    tensor: &SparseIrregularTensor,
    options: &FitOptions<'_>,
) -> Result<CompressedTensor> {
    let r = options.rank;
    if r == 0 {
        return Err(Dpar2Error::ZeroRank);
    }
    for k in 0..tensor.k() {
        let limit = tensor.i(k).min(tensor.j());
        if r > limit {
            return Err(Dpar2Error::RankTooLarge { rank: r, slice: k, limit });
        }
    }

    let pool = ThreadPool::new(options.threads.max(1));
    let nnz_weights: Vec<usize> = (0..tensor.k()).map(|k| tensor.slice(k).nnz()).collect();
    let partition = greedy_partition(&nnz_weights, pool.threads());
    let rsvd_cfg = RsvdConfig { rank: r, ..options.rsvd };
    let base_seed = options.seed;
    let stage1: Vec<(Mat, Vec<f64>, Mat)> = pool.run_partitioned(&partition, |k| {
        // The identical slice-indexed stream as the dense path: same seed,
        // same Gaussian draws, only the product kernels differ.
        let mut rng = StdRng::seed_from_u64(stage1_seed(base_seed, k));
        let f = rsvd_op(tensor.slice(k), &rsvd_cfg, &mut rng);
        (f.u, f.s, f.v)
    });

    Ok(stage2(stage1, r, tensor.j(), &rsvd_cfg, base_seed, &pool))
}

/// Per-slice stage-1 RNG seed — one fixed formula shared by the dense and
/// sparse compression paths (and mirrored by the rank-probe/streaming
/// derivations), so the two paths consume identical Gaussian streams.
#[inline]
fn stage1_seed(base_seed: u64, k: usize) -> u64 {
    base_seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(k as u64 + 1))
}

/// Stage 2 — rSVD of `M = ∥_k (C_k B_k) ∈ R^{J×KR}` — shared verbatim by
/// [`compress`] and [`compress_sparse`]: stage 1 already reduced every
/// slice to small dense factors, so from here on the pipeline is dense and
/// identical regardless of the input representation.
fn stage2(
    stage1: Vec<(Mat, Vec<f64>, Mat)>,
    r: usize,
    j: usize,
    rsvd_cfg: &RsvdConfig,
    base_seed: u64,
    pool: &ThreadPool,
) -> CompressedTensor {
    // C_k B_k is C_k with column c scaled by B_k's c-th singular value.
    let cb: Vec<Mat> = stage1
        .iter()
        .map(|(_, b, c)| {
            let mut cb = c.clone();
            for i in 0..cb.rows() {
                let row = cb.row_mut(i);
                for (col, &s) in b.iter().enumerate() {
                    row[col] *= s;
                }
            }
            cb
        })
        .collect();
    let m = Mat::hstack_all(&cb.iter().collect::<Vec<_>>());
    let mut rng2 = StdRng::seed_from_u64(base_seed ^ 0xD1B5_4A32_D192_ED03);
    // Stage 2 is one big `J × KR` factorization with no slice-level
    // parallelism to exploit, so its GEMM chains fan out over the pool
    // instead (pooled GEMM is bit-identical for every thread count, which
    // keeps the whole compression schedule-independent).
    let f2 = rsvd_pooled(&m, rsvd_cfg, &mut rng2, pool);

    // F ∈ R^{KR×R} comes back as f2.v; carve out the K vertical R×R blocks.
    let f_blocks: Vec<Mat> =
        (0..stage1.len()).map(|k| f2.v.block(k * r, (k + 1) * r, 0, r)).collect();

    CompressedTensor {
        a: stage1.into_iter().map(|(a, _, _)| a).collect(),
        d: f2.u,
        e: f2.s,
        f_blocks,
        rank: r,
        j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_linalg::random::gaussian_mat;
    use rand::Rng;

    /// Irregular tensor with planted rank-`r` structure plus noise `eps`.
    fn planted(row_dims: &[usize], j: usize, r: usize, eps: f64, seed: u64) -> IrregularTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = gaussian_mat(j, r, &mut rng);
        let slices = row_dims
            .iter()
            .map(|&ik| {
                let u = gaussian_mat(ik, r, &mut rng);
                let mut x = u.matmul_nt(&v).unwrap();
                if eps > 0.0 {
                    x.axpy(eps, &gaussian_mat(ik, j, &mut rng));
                }
                x
            })
            .collect();
        IrregularTensor::new(slices)
    }

    #[test]
    fn exact_on_planted_low_rank() {
        let t = planted(&[30, 50, 20, 40], 25, 3, 0.0, 1);
        let c = compress(&t, &FitOptions::new(3).with_seed(2)).unwrap();
        for k in 0..t.k() {
            let err = (t.slice(k) - &c.reconstruct_slice(k)).fro_norm() / t.slice(k).fro_norm();
            assert!(err < 1e-8, "slice {k} rel err {err}");
        }
    }

    #[test]
    fn a_factors_column_orthonormal() {
        let t = planted(&[40, 25], 20, 4, 0.1, 3);
        let c = compress(&t, &FitOptions::new(4).with_seed(4)).unwrap();
        for (k, a) in c.a.iter().enumerate() {
            let dev = (&a.gram() - &Mat::eye(4)).fro_norm();
            assert!(dev < 1e-10, "A_{k} not orthonormal: {dev}");
        }
    }

    #[test]
    fn shapes_match_theorem_2() {
        let t = planted(&[15, 25, 35], 18, 5, 0.05, 5);
        let c = compress(&t, &FitOptions::new(5).with_seed(6)).unwrap();
        assert_eq!(c.k(), 3);
        assert_eq!(c.d.shape(), (18, 5));
        assert_eq!(c.e.len(), 5);
        assert_eq!(c.f_blocks.len(), 3);
        for f in &c.f_blocks {
            assert_eq!(f.shape(), (5, 5));
        }
        // Theorem 2: Σ I_k R + K R² + J R (+R for diagonal E).
        let expected = (15 + 25 + 35) * 5 + 3 * 25 + 18 * 5 + 5;
        assert_eq!(c.size_floats(), expected);
        assert!(c.compression_ratio(&t) > 1.0);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let t = planted(&[30, 60, 10, 45, 22], 16, 3, 0.2, 7);
        let c1 = compress(&t, &FitOptions::new(3).with_seed(8).with_threads(1)).unwrap();
        let c4 = compress(&t, &FitOptions::new(3).with_seed(8).with_threads(4)).unwrap();
        for k in 0..t.k() {
            assert!((&c1.a[k] - &c4.a[k]).fro_norm() < 1e-14, "A_{k} differs across thread counts");
            assert!((&c1.f_blocks[k] - &c4.f_blocks[k]).fro_norm() < 1e-14);
        }
        assert_eq!(c1.e, c4.e);
    }

    #[test]
    fn noisy_compression_near_optimal() {
        // With noise, compressed reconstruction should still capture the
        // signal: relative error about the noise floor, not worse.
        let eps = 0.05;
        let t = planted(&[50, 70], 30, 4, eps, 9);
        let c = compress(&t, &FitOptions::new(4).with_seed(10)).unwrap();
        for k in 0..t.k() {
            let rel = (t.slice(k) - &c.reconstruct_slice(k)).fro_norm() / t.slice(k).fro_norm();
            assert!(rel < 0.2, "slice {k} rel err {rel} too high");
        }
    }

    #[test]
    fn rank_too_large_rejected() {
        let t = planted(&[10, 4], 20, 2, 0.0, 11);
        let err = compress(&t, &FitOptions::new(5)).unwrap_err();
        assert!(matches!(err, Dpar2Error::RankTooLarge { slice: 1, limit: 4, .. }));
    }

    #[test]
    fn zero_rank_rejected() {
        let t = planted(&[10], 8, 2, 0.0, 12);
        assert_eq!(compress(&t, &FitOptions::new(0)).unwrap_err(), Dpar2Error::ZeroRank);
    }

    #[test]
    fn edt_matches_explicit_product() {
        let t = planted(&[20, 30], 15, 3, 0.1, 13);
        let c = compress(&t, &FitOptions::new(3).with_seed(14)).unwrap();
        let explicit = Mat::diag(&c.e).matmul(c.d.transpose()).unwrap();
        assert!((&c.edt() - &explicit).fro_norm() < 1e-12);
    }

    #[test]
    fn blockwise_equivalence_of_m_factorization() {
        // B_k C_kᵀ ≈ F(k) E Dᵀ (Equation 6's replacement step): verify the
        // products agree for noiseless low-rank input.
        let t = planted(&[25, 35], 12, 2, 0.0, 15);
        let cfg = FitOptions::new(2).with_seed(16);
        let c = compress(&t, &cfg).unwrap();
        // Reconstruct both sides through the slices: A_k B_k C_kᵀ == X_k
        // (noiseless) and A_k F(k) E Dᵀ == X_k.
        for k in 0..t.k() {
            let rel = (t.slice(k) - &c.reconstruct_slice(k)).fro_norm() / t.slice(k).fro_norm();
            assert!(rel < 1e-8);
        }
    }

    #[test]
    fn works_on_uniform_random_tensor() {
        // tenrand-style dense tensor — low fitness but valid shapes.
        let mut rng = StdRng::seed_from_u64(17);
        let slices = (0..4).map(|_| Mat::from_fn(22, 14, |_, _| rng.random())).collect();
        let t = IrregularTensor::new(slices);
        let c = compress(&t, &FitOptions::new(5).with_seed(18)).unwrap();
        assert_eq!(c.k(), 4);
        assert_eq!(c.rank, 5);
    }
}
