//! The DPar2 solver — Algorithm 3 of the paper.

use crate::compress::{compress, compress_sparse, CompressedTensor};
use crate::config::FitOptions;
use crate::convergence::compressed_criterion_ws;
use crate::error::{Dpar2Error, Result};
use crate::fitness::{Parafac2Fit, TimingBreakdown};
use crate::lemmas::{g1_ws, g2_ws, g3_ws};
use crate::session::{FitObserver, FitPhase, FitSession, NoopObserver, Parafac2Solver};
use dpar2_linalg::pinv_into;
use dpar2_linalg::svd::svd_thin_into;
use dpar2_linalg::{Mat, SvdFactors, SvdScratch};
use dpar2_parallel::ThreadPool;
use dpar2_tensor::normalize_columns_mut;
use dpar2_tensor::{IrregularTensor, SparseIrregularTensor};
use rand::SeedableRng;
use std::time::Instant;

/// Initial factors for warm-started iterations (see
/// [`Dpar2::fit_compressed_with_init`]).
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Shared `H ∈ R^{R×R}`.
    pub h: Mat,
    /// Shared `V ∈ R^{J×R}`.
    pub v: Mat,
    /// Slice weights `W ∈ R^{K×R}` (row `k` = `diag(S_k)`).
    pub w: Mat,
}

impl WarmStart {
    /// Extracts warm-start factors from a previous fit (`W` row `k` is
    /// `diag(S_k)`). The usual path is [`FitOptions::with_warm_start`],
    /// which performs this conversion internally.
    pub fn from_fit(fit: &Parafac2Fit) -> WarmStart {
        let r = fit.rank();
        let mut w = Mat::zeros(fit.k(), r);
        for (k, s) in fit.s.iter().enumerate() {
            w.set_row(k, s);
        }
        WarmStart { h: fit.h.clone(), v: fit.v.clone(), w }
    }

    /// Validates this warm start against a compressed tensor and extends
    /// `W` with unit rows for slices beyond its coverage (the streaming
    /// semantics: newcomers start at unit weights).
    ///
    /// # Errors
    /// [`Dpar2Error::WarmStart`] on a rank/shape mismatch or when the warm
    /// start covers more slices than the data.
    fn conform(mut self, ct: &CompressedTensor) -> Result<WarmStart> {
        let r = ct.rank;
        let k = ct.k();
        if self.h.shape() != (r, r) {
            return Err(Dpar2Error::WarmStart {
                factor: "H",
                expected: (r, r),
                got: self.h.shape(),
            });
        }
        if self.v.shape() != (ct.j, r) {
            return Err(Dpar2Error::WarmStart {
                factor: "V",
                expected: (ct.j, r),
                got: self.v.shape(),
            });
        }
        if self.w.cols() != r || self.w.rows() > k {
            return Err(Dpar2Error::WarmStart {
                factor: "W",
                expected: (k, r),
                got: self.w.shape(),
            });
        }
        if self.w.rows() < k {
            let mut w = Mat::ones(k, r);
            for i in 0..self.w.rows() {
                w.set_row(i, self.w.row(i));
            }
            self.w = w;
        }
        Ok(self)
    }
}

/// Fast and scalable PARAFAC2 decomposition for irregular dense tensors.
///
/// A stateless solver handle: all per-fit settings (rank, seed, threads,
/// iteration/time budgets, warm start) travel in [`FitOptions`], so the
/// same value serves every fit and the type slots into
/// `Box<dyn Parafac2Solver>` registries.
///
/// ```text
/// Algorithm 3 (paper):
///   1  initialize H, V, S_k
///   2-4  compress slices in parallel:  X_k ≈ A_k B_k C_kᵀ       (stage 1)
///   5-6  M ← ∥_k C_k B_k;  D E Fᵀ ← rSVD(M)                     (stage 2)
///   7  repeat
///   8-10   Z_k Σ_k P_kᵀ ← SVD(F(k) E Dᵀ V S_k Hᵀ)   (R×R SVDs)
///   11-13  Y_k kept factorized as P_k Z_kᵀ F(k) E Dᵀ
///   14-15  G⁽¹⁾ ← Lemma 1;  H ← G⁽¹⁾(WᵀW ∗ VᵀV)†;  normalize H
///   16-17  G⁽²⁾ ← Lemma 2;  V ← G⁽²⁾(WᵀW ∗ HᵀH)†;  normalize V
///   18-19  G⁽³⁾ ← Lemma 3;  W ← G⁽³⁾(VᵀV ∗ HᵀH)†
///   20-22  S_k ← diag(W(k,:))
///   23 until converged / iteration budget / observer break / time budget
///   24-26  U_k ← A_k Z_k P_kᵀ H
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Dpar2;

impl Dpar2 {
    /// Decomposes an irregular tensor: compression + iterations + recovery.
    ///
    /// # Errors
    /// Propagates [`crate::Dpar2Error`] from the compression stage (invalid
    /// rank) and warm-start validation.
    pub fn fit(&self, tensor: &IrregularTensor, options: &FitOptions<'_>) -> Result<Parafac2Fit> {
        self.fit_observed(tensor, options, &mut NoopObserver)
    }

    /// [`Dpar2::fit`] with a [`FitObserver`] session: the observer sees the
    /// preprocessing phase and every ALS iteration, and can cancel
    /// cooperatively.
    ///
    /// # Errors
    /// See [`Dpar2::fit`].
    pub fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        let t0 = Instant::now();
        let cells = tensor.num_entries() as u64;
        observer.on_input_shape(cells, cells, false);
        let options = &self.resolve_rank_energy(tensor, options);
        let compressed = compress(tensor, options)?;
        let preprocess_secs = t0.elapsed().as_secs_f64();
        observer.on_phase(FitPhase::Compress, preprocess_secs);
        let mut fit = self.fit_compressed_observed(&compressed, options, observer)?;
        fit.timing.preprocess_secs = preprocess_secs;
        fit.timing.total_secs += preprocess_secs;
        Ok(fit)
    }

    /// Decomposes a CSR sparse irregular tensor without ever materializing
    /// dense slices: stage-1 compression runs the randomized SVD directly
    /// on each [`dpar2_linalg::SparseSlice`] at O(nnz·(R+s)) per pass
    /// (see [`crate::compress_sparse`]), and stages 2+ reuse the dense
    /// pipeline unchanged on the already-compressed `R`-dimensional
    /// factors. With the sketch width on the naive-dispatch path the
    /// result is bitwise identical to [`Dpar2::fit`] on
    /// [`SparseIrregularTensor::to_dense`].
    ///
    /// # Errors
    /// Same surface as [`Dpar2::fit`]: [`crate::Dpar2Error`] from the
    /// compression stage (invalid rank) and warm-start validation.
    pub fn fit_sparse(
        &self,
        tensor: &SparseIrregularTensor,
        options: &FitOptions<'_>,
    ) -> Result<Parafac2Fit> {
        self.fit_sparse_observed(tensor, options, &mut NoopObserver)
    }

    /// [`Dpar2::fit_sparse`] with a [`FitObserver`] session.
    ///
    /// # Errors
    /// See [`Dpar2::fit_sparse`].
    pub fn fit_sparse_observed(
        &self,
        tensor: &SparseIrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        let t0 = Instant::now();
        observer.on_input_shape(tensor.nnz() as u64, tensor.num_cells() as u64, true);
        let options = &self.resolve_rank_energy_sparse(tensor, options);
        let compressed = compress_sparse(tensor, options)?;
        let preprocess_secs = t0.elapsed().as_secs_f64();
        observer.on_phase(FitPhase::Compress, preprocess_secs);
        let mut fit = self.fit_compressed_observed(&compressed, options, observer)?;
        fit.timing.preprocess_secs = preprocess_secs;
        fit.timing.total_secs += preprocess_secs;
        Ok(fit)
    }

    /// Applies the [`FitOptions::rank_energy`] escape hatch: probes the
    /// spectrum of the stacked tensor `[X_1; …; X_K]` (zero-copy view, one
    /// rank-`R` randomized SVD) and lowers the target rank to the smallest
    /// value capturing the requested spectral-energy fraction. The probe
    /// runs at a *uniform* reduced rank applied before compression — both
    /// compression stages and the ALS assume one rank `R` throughout
    /// (`F_k ∈ R^{R×R}`, `Z = I_R`), so per-stage heterogeneous ranks are
    /// not representable.
    fn resolve_rank_energy<'a>(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'a>,
    ) -> FitOptions<'a> {
        let Some(threshold) = options.rank_energy else {
            return *options;
        };
        let pool = ThreadPool::new(options.threads.max(1));
        // Fixed offset keeps the probe's RNG stream independent of the
        // compression stages' (same idiom as their per-stage seeds).
        let mut rng = rand::rngs::StdRng::seed_from_u64(options.seed ^ 0xAD4A_9F1E_5EED_0C47);
        let cfg = dpar2_rsvd::RsvdConfig { rank: options.rank, ..options.rsvd };
        let probe = dpar2_rsvd::svd_truncated_energy_pooled(
            tensor.stacked(),
            &cfg,
            threshold,
            &mut rng,
            &pool,
        );
        options.with_rank(probe.rank.clamp(1, options.rank.max(1)))
    }

    /// Sparse counterpart of [`Dpar2::resolve_rank_energy`]: probes the
    /// stacked spectrum through a [`dpar2_rsvd::SparseVStack`] operator
    /// (O(nnz) per pass, nothing densified) with the same probe seed
    /// offset, so dense and sparse probes of the same data draw identical
    /// sketches.
    fn resolve_rank_energy_sparse<'a>(
        &self,
        tensor: &SparseIrregularTensor,
        options: &FitOptions<'a>,
    ) -> FitOptions<'a> {
        let Some(threshold) = options.rank_energy else {
            return *options;
        };
        let pool = ThreadPool::new(options.threads.max(1));
        let mut rng = rand::rngs::StdRng::seed_from_u64(options.seed ^ 0xAD4A_9F1E_5EED_0C47);
        let cfg = dpar2_rsvd::RsvdConfig { rank: options.rank, ..options.rsvd };
        let stack = dpar2_rsvd::SparseVStack::new(tensor.slices());
        let probe =
            dpar2_rsvd::svd_truncated_energy_op_pooled(&stack, &cfg, threshold, &mut rng, &pool);
        options.with_rank(probe.rank.clamp(1, options.rank.max(1)))
    }

    /// Runs the ALS iterations on an already-compressed tensor (lines 7–26).
    ///
    /// Exposed separately so the benchmark harness can time preprocessing
    /// and iterations independently (Fig. 9 of the paper).
    ///
    /// # Errors
    /// [`Dpar2Error::WarmStart`] if `options.warm_start` does not match the
    /// compressed tensor's rank/shape.
    pub fn fit_compressed(
        &self,
        ct: &CompressedTensor,
        options: &FitOptions<'_>,
    ) -> Result<Parafac2Fit> {
        self.fit_compressed_observed(ct, options, &mut NoopObserver)
    }

    /// [`Dpar2::fit_compressed`] with an observer session.
    ///
    /// # Errors
    /// See [`Dpar2::fit_compressed`].
    pub fn fit_compressed_observed(
        &self,
        ct: &CompressedTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        // `fit_compressed_with_init` owns the warm-start rule (explicit
        // factors win, else `options.warm_start`).
        self.fit_compressed_with_init(ct, None, options, observer)
    }

    /// Like [`Dpar2::fit_compressed_observed`] but warm-started from
    /// explicit factors — the entry point of the streaming extension
    /// ([`crate::streaming`]), where factors from the previous window seed
    /// the next decomposition. An explicit `warm` takes precedence over
    /// `options.warm_start`.
    ///
    /// # Errors
    /// [`Dpar2Error::WarmStart`] if warm-start factor shapes do not match
    /// the compressed tensor (`H: R×R`, `V: J×R`, `W: at most K×R` — `W`
    /// with fewer than `K` rows is extended with unit rows).
    pub fn fit_compressed_with_init(
        &self,
        ct: &CompressedTensor,
        warm: Option<WarmStart>,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        let t_start = Instant::now();
        // Doc contract: an explicit warm start wins, otherwise fall back
        // to the one carried in the options.
        let warm = warm.or_else(|| options.warm_start.map(WarmStart::from_fit));
        // The compressed tensor's rank governs the iteration; `compress`
        // already enforced `0 < R ≤ min(I_k, J)`, but a hand-built
        // CompressedTensor (the fields are public) gets the same typed
        // rejection instead of a downstream panic.
        if ct.rank == 0 {
            return Err(Dpar2Error::ZeroRank);
        }
        if ct.f_blocks.len() != ct.a.len() {
            return Err(Dpar2Error::Linalg(dpar2_linalg::LinalgError::DimensionMismatch {
                op: "fit_compressed: F-blocks vs A-factors",
                left: (ct.f_blocks.len(), ct.rank),
                right: (ct.a.len(), ct.rank),
            }));
        }
        let r = ct.rank;
        let k_dim = ct.k();
        let pool = ThreadPool::new(options.threads.max(1));

        // Static precomputations: E Dᵀ (R×J) and D E (J×R).
        let edt = ct.edt();
        let mut de = ct.d.clone();
        for i in 0..de.rows() {
            let row = de.row_mut(i);
            for (c, &ev) in ct.e.iter().enumerate() {
                row[c] *= ev;
            }
        }

        // Line 1 — initialization: H = I, V = D (orthonormal, spans the
        // compressed column space), S_k = I (W = all-ones); or the caller's
        // warm start, validated and W-extended to the current slice count.
        let (mut h, mut v, mut w) = match warm {
            Some(ws) => {
                let ws = ws.conform(ct)?;
                (ws.h, ws.v, ws.w)
            }
            None => (Mat::eye(r), ct.d.clone(), Mat::ones(k_dim, r)),
        };

        // Squared norm of the compressed data: `P_k Z_kᵀ` is orthogonal, so
        // ‖PZF_k·EDᵀ‖ = ‖F(k)·EDᵀ‖ for every iteration — computed once and
        // used for the absolute ("residual is already tiny") stop test.
        // Slice-parallel; the ascending-k summation keeps the value
        // bit-identical for every thread count.
        let slice_norms: Vec<f64> =
            pool.map(&ct.f_blocks, |_, f_k| f_k.matmul(&edt).expect("F(k)·EDᵀ").fro_norm_sq());
        let data_norm_sq: f64 = slice_norms.iter().sum();

        let mut edtv = edt.matmul(&v).expect("EDᵀ·V");
        // Z_k P_kᵀ kept for the final U_k recovery. `pzf` is fully
        // overwritten by the first iteration's slice step before any read,
        // so it starts as empty buffers (no `f_blocks` clone).
        let mut zpt: Vec<Mat> = vec![Mat::eye(r); k_dim];
        let mut pzf: Vec<Mat> = (0..k_dim).map(|_| Mat::default()).collect();
        let serial = pool.threads() == 1;

        // Factor-update staging buffers, persistent across iterations so
        // the steady-state loop allocates nothing.
        let mut g_out = Mat::default();
        let mut gram_a = Mat::default();
        let mut gram_b = Mat::default();
        let mut pinv_buf = Mat::default();
        // One staging buffer per factor: capacities differ (H is R×R, V is
        // J×R, W is K×R), so a shared buffer would re-grow as it ping-pongs
        // between shapes via the swaps below.
        let mut next_h = Mat::default();
        let mut next_v = Mat::default();
        let mut next_w = Mat::default();

        let mut session = FitSession::new(options, observer);
        // Everything since `t_start` was initialization: warm-start
        // conformance, static precomputations, the data norm.
        session.phase(FitPhase::Init, t_start.elapsed().as_secs_f64());
        for _iter in 0..options.max_iterations {
            session.start_iteration();
            let ws = session.workspace();

            // Lines 8–10: per-slice R×R SVD of F(k)·(E Dᵀ V)·S_k·Hᵀ.
            if serial {
                for k in 0..k_dim {
                    slice_svd_update(
                        &ct.f_blocks[k],
                        &edtv,
                        w.row(k),
                        &h,
                        &mut zpt[k],
                        &mut pzf[k],
                        &mut ws.svd_out,
                        &mut ws.svd,
                        &mut ws.slice_a,
                        &mut ws.slice_b,
                    );
                }
            } else {
                let svd_out: Vec<(Mat, Mat)> = pool.map(&ct.f_blocks, |k, f_k| {
                    let (mut zp, mut pzf_k) = (Mat::default(), Mat::default());
                    slice_svd_update(
                        f_k,
                        &edtv,
                        w.row(k),
                        &h,
                        &mut zp,
                        &mut pzf_k,
                        &mut SvdFactors::default(),
                        &mut SvdScratch::default(),
                        &mut Mat::default(),
                        &mut Mat::default(),
                    );
                    (zp, pzf_k)
                });
                for (k, (zp, pzf_k)) in svd_out.into_iter().enumerate() {
                    zpt[k] = zp;
                    pzf[k] = pzf_k;
                }
            }

            // Lines 14–15: H update.
            g1_ws(&pzf, &w, &edtv, &pool, &mut g_out, ws);
            w.gram_into(&mut gram_a);
            v.gram_into(&mut gram_b);
            gram_a.hadamard_assign(&gram_b); // WᵀW ∗ VᵀV
            pinv_into(&gram_a, &mut pinv_buf, &mut ws.svd_tmp, &mut ws.svd);
            g_out.matmul_into(&pinv_buf, &mut next_h);
            std::mem::swap(&mut h, &mut next_h);
            normalize_columns_mut(&mut h, &mut ws.norms);

            // Lines 16–17: V update (edtv refreshed afterwards).
            g2_ws(&pzf, &w, &h, &de, &pool, &mut g_out, ws);
            w.gram_into(&mut gram_a);
            h.gram_into(&mut gram_b);
            gram_a.hadamard_assign(&gram_b); // WᵀW ∗ HᵀH
            pinv_into(&gram_a, &mut pinv_buf, &mut ws.svd_tmp, &mut ws.svd);
            g_out.matmul_into(&pinv_buf, &mut next_v);
            std::mem::swap(&mut v, &mut next_v);
            normalize_columns_mut(&mut v, &mut ws.norms);
            edt.matmul_into(&v, &mut edtv);

            // Lines 18–19: W update.
            g3_ws(&pzf, &edtv, &h, &pool, &mut g_out, ws);
            v.gram_into(&mut gram_a);
            h.gram_into(&mut gram_b);
            gram_a.hadamard_assign(&gram_b); // VᵀV ∗ HᵀH
            pinv_into(&gram_a, &mut pinv_buf, &mut ws.svd_tmp, &mut ws.svd);
            g_out.matmul_into(&pinv_buf, &mut next_w);
            std::mem::swap(&mut w, &mut next_w);

            // Line 23: compressed convergence criterion, then the session's
            // shared stopping rule (convergence / observer / time budget /
            // iteration budget).
            let crit = compressed_criterion_ws(&pzf, &edt, &h, &w, &v, &pool, ws);
            if session.finish_iteration(crit, data_norm_sq) {
                break;
            }
        }
        let mut outcome = session.finish();

        // Lines 24–26: U_k = A_k Z_k P_kᵀ H.
        let t_final = Instant::now();
        let u: Vec<Mat> = pool.map(&ct.a, |k, a_k| {
            let zph = zpt[k].matmul(&h).expect("ZPᵀ·H");
            a_k.matmul(&zph).expect("A_k·ZPᵀH")
        });
        let s: Vec<Vec<f64>> = (0..k_dim).map(|k| w.row(k).to_vec()).collect();
        let finalize_secs = t_final.elapsed().as_secs_f64();
        outcome.phases.record(FitPhase::Finalize, finalize_secs);
        observer.on_phase(FitPhase::Finalize, finalize_secs);

        Ok(Parafac2Fit {
            u,
            s,
            v,
            h,
            iterations: outcome.iterations(),
            stop_reason: outcome.stop_reason,
            timing: TimingBreakdown::from_spans(
                &outcome.phases,
                outcome.per_iteration_secs,
                t_start.elapsed().as_secs_f64(),
            ),
            criterion_trace: outcome.criterion_trace,
        })
    }
}

/// One slice's `Q_k` step (lines 8–13): the `R×R` SVD of
/// `F(k)·(EDᵀV)·S_k·Hᵀ` plus the factorized-slice refresh, entirely into
/// caller-owned buffers. Shared by the serial (workspace-backed) and
/// pooled paths so both are bit-identical.
#[allow(clippy::too_many_arguments)]
fn slice_svd_update(
    f_k: &Mat,
    edtv: &Mat,
    wrow: &[f64],
    h: &Mat,
    zp: &mut Mat,
    pzf_k: &mut Mat,
    svd_out: &mut SvdFactors,
    svd_ws: &mut SvdScratch,
    t1: &mut Mat,
    t2: &mut Mat,
) {
    f_k.matmul_into(edtv, t1); // F(k)·EDᵀV
                               // · S_k (diagonal, scale columns by W(k,:))
    for i in 0..t1.rows() {
        let row = t1.row_mut(i);
        for (c, &wv) in wrow.iter().enumerate() {
            row[c] *= wv;
        }
    }
    // · Hᵀ, then the small SVD.
    t1.matmul_nt_into(h, t2);
    svd_thin_into(&*t2, svd_out, svd_ws);
    // Z_k P_kᵀ and PZF_k = P_k Z_kᵀ F(k) = (Z_k P_kᵀ)ᵀ F(k).
    svd_out.u.matmul_nt_into(&svd_out.v, zp);
    zp.matmul_tn_into(f_k, pzf_k);
}

impl Parafac2Solver for Dpar2 {
    fn name(&self) -> &'static str {
        "DPar2"
    }

    fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit> {
        Dpar2::fit_observed(self, tensor, options, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{IterationEvent, StopReason};
    use dpar2_linalg::qr;
    use dpar2_linalg::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::ops::ControlFlow;

    /// Irregular tensor with an exact PARAFAC2 structure
    /// `X_k = Q_k H S_k Vᵀ` plus optional noise.
    fn planted_parafac2(
        row_dims: &[usize],
        j: usize,
        r: usize,
        noise: f64,
        seed: u64,
    ) -> IrregularTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = gaussian_mat(r, r, &mut rng);
        let v = gaussian_mat(j, r, &mut rng);
        let slices = row_dims
            .iter()
            .map(|&ik| {
                let q = qr::qr(gaussian_mat(ik, r, &mut rng)).q;
                let sk: Vec<f64> =
                    (0..r).map(|i| 1.0 + 0.3 * i as f64 + rng.random::<f64>()).collect();
                let mut qh = q.matmul(&h).unwrap();
                for row in 0..ik {
                    let rr = qh.row_mut(row);
                    for (c, &sv) in sk.iter().enumerate() {
                        rr[c] *= sv;
                    }
                }
                let mut x = qh.matmul_nt(&v).unwrap();
                if noise > 0.0 {
                    let scale = noise * x.fro_norm() / ((ik * j) as f64).sqrt();
                    x.axpy(scale, &gaussian_mat(ik, j, &mut rng));
                }
                x
            })
            .collect();
        IrregularTensor::new(slices)
    }

    #[test]
    fn recovers_noiseless_planted_model() {
        // Note: ALS-family solvers converge through a slow "swamp" on this
        // instance — a reference (uncompressed) PARAFAC2-ALS reaches the
        // same 0.9985 fitness plateau at 32 iterations. DPar2 must match
        // that reference behaviour, not exceed it.
        let t = planted_parafac2(&[25, 40, 30, 20], 15, 3, 0.0, 401);
        let fit = Dpar2.fit(&t, &FitOptions::new(3).with_seed(402)).unwrap();
        let f = fit.fitness(&t);
        assert!(f > 0.99, "fitness on noiseless planted data: {f}");
    }

    #[test]
    fn high_fitness_on_noisy_planted_model() {
        let t = planted_parafac2(&[35, 50, 25], 20, 4, 0.1, 403);
        let fit = Dpar2.fit(&t, &FitOptions::new(4).with_seed(404)).unwrap();
        let f = fit.fitness(&t);
        assert!(f > 0.9, "fitness on lightly-noisy planted data: {f}");
    }

    #[test]
    fn criterion_trace_is_monotone_decreasing() {
        let t = planted_parafac2(&[30, 45, 25, 35], 18, 3, 0.3, 405);
        let fit = Dpar2
            .fit(&t, &FitOptions::new(3).with_seed(406).with_tolerance(0.0).with_max_iterations(12))
            .unwrap();
        // ALS on a fixed objective should not increase the criterion
        // (tiny numerical wobble tolerated).
        for pair in fit.criterion_trace.windows(2) {
            assert!(
                pair[1] <= pair[0] * (1.0 + 1e-6),
                "criterion increased: {:?}",
                fit.criterion_trace
            );
        }
    }

    #[test]
    fn factor_shapes() {
        let t = planted_parafac2(&[12, 22, 9], 11, 2, 0.2, 407);
        let fit = Dpar2.fit(&t, &FitOptions::new(2).with_seed(408)).unwrap();
        assert_eq!(fit.u.len(), 3);
        assert_eq!(fit.u[0].shape(), (12, 2));
        assert_eq!(fit.u[1].shape(), (22, 2));
        assert_eq!(fit.v.shape(), (11, 2));
        assert_eq!(fit.h.shape(), (2, 2));
        assert_eq!(fit.s.len(), 3);
        assert_eq!(fit.s[0].len(), 2);
    }

    #[test]
    fn rank_energy_lowers_rank_to_planted_signal() {
        // True rank 2, fit requested at rank 6 with an energy threshold:
        // the probe should land on (about) the planted rank, never above
        // the cap, and the fit still explains the data.
        let t = planted_parafac2(&[30, 40, 25], 16, 2, 0.0, 440);
        let opts = FitOptions::new(6).with_seed(441).with_rank_energy(0.999);
        let fit = Dpar2.fit(&t, &opts).unwrap();
        assert_eq!(fit.rank(), 2, "energy probe should find the planted rank");
        assert!(fit.fitness(&t) > 0.98);
        // A fully-demanding threshold keeps the requested rank.
        let full = Dpar2.fit(&t, &FitOptions::new(6).with_seed(441).with_rank_energy(2.0)).unwrap();
        assert_eq!(full.rank(), 6);
    }

    #[test]
    fn rank_energy_none_is_bit_identical_to_default() {
        let t = planted_parafac2(&[20, 25], 10, 3, 0.1, 442);
        let base = Dpar2.fit(&t, &FitOptions::new(3).with_seed(443)).unwrap();
        // threshold that keeps everything the cap allows ⇒ same rank ⇒ the
        // same compression seeds ⇒ identical factors.
        let adapted =
            Dpar2.fit(&t, &FitOptions::new(3).with_seed(443).with_rank_energy(2.0)).unwrap();
        assert_eq!(base.rank(), adapted.rank());
        assert_eq!(base.v, adapted.v);
    }

    #[test]
    fn u_k_has_orthonormal_core() {
        // U_k = Q_k H with Q_k orthonormal: U_kᵀ U_k = Hᵀ H for all k
        // (the PARAFAC2 cross-product invariance constraint).
        let t = planted_parafac2(&[30, 40], 14, 3, 0.05, 409);
        let fit = Dpar2.fit(&t, &FitOptions::new(3).with_seed(410)).unwrap();
        let hth = fit.h.gram();
        for k in 0..2 {
            let utu = fit.u[k].gram();
            assert!(
                (&utu - &hth).fro_norm() < 1e-8 * (1.0 + hth.fro_norm()),
                "U_{k}ᵀU_{k} deviates from HᵀH"
            );
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let t = planted_parafac2(&[20, 35, 15, 28, 40], 12, 3, 0.2, 411);
        let fit1 = Dpar2.fit(&t, &FitOptions::new(3).with_seed(412).with_threads(1)).unwrap();
        let fit4 = Dpar2.fit(&t, &FitOptions::new(3).with_seed(412).with_threads(4)).unwrap();
        assert_eq!(fit1.iterations, fit4.iterations);
        assert!((&fit1.v - &fit4.v).fro_norm() < 1e-10);
        for k in 0..t.k() {
            assert!((&fit1.u[k] - &fit4.u[k]).fro_norm() < 1e-10);
        }
    }

    #[test]
    fn respects_iteration_budget() {
        let t = planted_parafac2(&[15, 25], 10, 2, 0.5, 413);
        let fit = Dpar2
            .fit(&t, &FitOptions::new(2).with_seed(414).with_max_iterations(3).with_tolerance(0.0))
            .unwrap();
        assert_eq!(fit.iterations, 3);
        assert_eq!(fit.criterion_trace.len(), 3);
        assert_eq!(fit.timing.per_iteration_secs.len(), 3);
        assert_eq!(fit.stop_reason, StopReason::MaxIterations);
    }

    #[test]
    fn early_stop_on_converged_input() {
        let t = planted_parafac2(&[30, 30], 12, 2, 0.0, 415);
        let fit = Dpar2.fit(&t, &FitOptions::new(2).with_seed(416).with_tolerance(1e-2)).unwrap();
        assert!(
            fit.iterations < 32,
            "noiseless input should converge early, ran {} iterations",
            fit.iterations
        );
        assert_eq!(fit.stop_reason, StopReason::Converged);
    }

    #[test]
    fn timing_populated() {
        let t = planted_parafac2(&[20, 20], 10, 2, 0.1, 417);
        let fit = Dpar2.fit(&t, &FitOptions::new(2).with_seed(418)).unwrap();
        assert!(fit.timing.total_secs > 0.0);
        assert!(fit.timing.preprocess_secs > 0.0);
        assert!(fit.timing.iterations_secs > 0.0);
    }

    #[test]
    fn rank_one_tensor() {
        let t = planted_parafac2(&[10, 14, 8], 9, 1, 0.0, 419);
        let fit = Dpar2.fit(&t, &FitOptions::new(1).with_seed(420)).unwrap();
        assert!(fit.fitness(&t) > 0.999);
    }

    #[test]
    fn fit_compressed_matches_fit() {
        let t = planted_parafac2(&[18, 26], 12, 3, 0.1, 421);
        let opts = FitOptions::new(3).with_seed(422);
        let via_fit = Dpar2.fit(&t, &opts).unwrap();
        let ct = compress(&t, &opts).unwrap();
        let via_compressed = Dpar2.fit_compressed(&ct, &opts).unwrap();
        assert!((&via_fit.v - &via_compressed.v).fro_norm() < 1e-12);
        assert_eq!(via_fit.iterations, via_compressed.iterations);
    }

    #[test]
    fn fit_compressed_rejects_degenerate_compressed_tensors() {
        let t = planted_parafac2(&[16, 20], 10, 2, 0.1, 430);
        let opts = FitOptions::new(2).with_seed(431);
        let mut ct = compress(&t, &opts).unwrap();
        ct.rank = 0;
        assert_eq!(Dpar2.fit_compressed(&ct, &opts).unwrap_err(), Dpar2Error::ZeroRank);
        let mut ct = compress(&t, &opts).unwrap();
        ct.f_blocks.pop();
        assert!(matches!(Dpar2.fit_compressed(&ct, &opts).unwrap_err(), Dpar2Error::Linalg(_)));
    }

    #[test]
    fn observer_trace_matches_fit_trace() {
        let t = planted_parafac2(&[20, 28, 16], 12, 3, 0.2, 423);
        let mut seen: Vec<f64> = Vec::new();
        let mut obs = |e: &IterationEvent| {
            seen.push(e.criterion);
            ControlFlow::<StopReason>::Continue(())
        };
        let opts = FitOptions::new(3).with_seed(424).with_max_iterations(8).with_tolerance(0.0);
        let fit = Dpar2.fit_observed(&t, &opts, &mut obs).unwrap();
        assert_eq!(seen, fit.criterion_trace, "observer must see the exact criterion trace");
    }

    #[test]
    fn observer_cancellation_is_typed() {
        let t = planted_parafac2(&[20, 28], 12, 2, 0.3, 425);
        let mut obs = |e: &IterationEvent| {
            if e.iteration == 2 {
                ControlFlow::Break(StopReason::Cancelled)
            } else {
                ControlFlow::Continue(())
            }
        };
        let opts = FitOptions::new(2).with_seed(426).with_tolerance(0.0);
        let fit = Dpar2.fit_observed(&t, &opts, &mut obs).unwrap();
        assert_eq!(fit.stop_reason, StopReason::Cancelled);
        assert_eq!(fit.iterations, 2);
    }

    #[test]
    fn warm_start_from_options_accepted_and_validated() {
        let t = planted_parafac2(&[22, 30, 18], 12, 3, 0.1, 427);
        let opts = FitOptions::new(3).with_seed(428).with_tolerance(1e-6);
        let cold = Dpar2.fit(&t, &opts).unwrap();
        // Warm-started refit converges at least as fast as the cold fit.
        let warm = Dpar2.fit(&t, &opts.with_warm_start(&cold)).unwrap();
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
        // A rank-mismatched warm start is a typed error, not a panic.
        let bad = Dpar2.fit(&t, &FitOptions::new(2).with_seed(428).with_warm_start(&cold));
        assert!(matches!(bad.unwrap_err(), Dpar2Error::WarmStart { .. }));
    }
}
