//! The Lemma 1–3 MTTKRP kernels (§III-E of the paper).
//!
//! After the `Q_k` update, PARAFAC2-ALS runs one CP-ALS iteration on the
//! small tensor `Y` whose frontal slices are `Y_k = Q_kᵀ X_k ∈ R^{R×J}`.
//! DPar2 keeps `Y_k` in factorized form
//!
//! ```text
//! Y_k = P_k Z_kᵀ F(k) E Dᵀ = PZF_k · (E Dᵀ),     PZF_k := P_k Z_kᵀ F(k) ∈ R^{R×R}
//! ```
//!
//! and evaluates the three matricized-tensor-times-Khatri-Rao products
//! without ever materializing `Y`:
//!
//! * **Lemma 1**: `G⁽¹⁾(:,r) = (Σ_k W(k,r) · PZF_k) · (E Dᵀ V)(:,r)`
//! * **Lemma 2**: `G⁽²⁾(:,r) = D E · Σ_k W(k,r) · PZF_kᵀ H(:,r)`
//! * **Lemma 3**: `G⁽³⁾(k,r) = vec(PZF_k)ᵀ (E Dᵀ V(:,r) ⊗ H(:,r))
//!                            = H(:,r)ᵀ · PZF_k · (E Dᵀ V)(:,r)`
//!
//! each costing `O(J R² + K R³)` versus the naive `O(J K R²)` — the paper's
//! headline per-iteration improvement. The naive forms (used by the plain
//! PARAFAC2-ALS baseline and as test oracles) are provided alongside.
//!
//! The closed form used for Lemma 3 follows from column-major vectorization:
//! `vec(M)ᵀ (a ⊗ b) = Σ_{ij} M(i,j)·a(j)·b(i) = bᵀ M a`.

use crate::session::Workspace;
use dpar2_linalg::Mat;
use dpar2_parallel::ThreadPool;
use dpar2_tensor::{mttkrp, Dense3};

/// Width of one reduction chunk over the slice index `k`.
///
/// Fixed (instead of `K / threads`) so the *grouping* of the floating-point
/// partial sums never depends on the pool size: partial sums are formed per
/// chunk and then added in ascending chunk order, which makes `g1`/`g2`
/// bit-identical for every thread count — the property `Dpar2::fit`'s
/// determinism contract rests on. Work per chunk is `CHUNK` dense `R×R`
/// accumulations, comfortably above scheduling overhead.
const K_CHUNK: usize = 16;

/// Splits `0..k` into contiguous ranges of [`K_CHUNK`] slices (the last
/// range may be shorter) for parallel reduction.
fn k_chunks(k: usize) -> Vec<std::ops::Range<usize>> {
    (0..k.div_ceil(K_CHUNK)).map(|c| c * K_CHUNK..((c + 1) * K_CHUNK).min(k)).collect()
}

/// Lemma 1: `G⁽¹⁾ = Y_(1)(W ⊙ V) ∈ R^{R×R}` from the factorized slices.
///
/// `pzf[k] = P_k Z_kᵀ F(k)`, `w ∈ R^{K×R}`, `edtv = E Dᵀ V ∈ R^{R×R}`.
pub fn g1(pzf: &[Mat], w: &Mat, edtv: &Mat, pool: &ThreadPool) -> Mat {
    let mut g = Mat::default();
    g1_ws(pzf, w, edtv, pool, &mut g, &mut Workspace::new());
    g
}

/// [`g1`] into a caller-owned output against a reusable [`Workspace`]:
/// single-threaded pools run the chunked reduction allocation-free on the
/// arena's accumulator slots; larger pools fan chunks out as before.
/// Bit-identical to [`g1`] for every thread count (same `K_CHUNK`
/// grouping, same ascending-chunk reduction).
pub fn g1_ws(
    pzf: &[Mat],
    w: &Mat,
    edtv: &Mat,
    pool: &ThreadPool,
    out: &mut Mat,
    ws: &mut Workspace,
) {
    let r = edtv.rows();
    let k_total = pzf.len();
    if pool.threads() == 1 {
        let Workspace { lemma_acc, lemma_chunk, col_in, col_out, .. } = ws;
        while lemma_acc.len() < r {
            lemma_acc.push(Mat::default());
        }
        while lemma_chunk.len() < r {
            lemma_chunk.push(Mat::default());
        }
        for t in &mut lemma_acc[..r] {
            t.resize_zeroed(r, r);
        }
        for range in
            (0..k_total.div_ceil(K_CHUNK)).map(|c| c * K_CHUNK..((c + 1) * K_CHUNK).min(k_total))
        {
            for s in &mut lemma_chunk[..r] {
                s.resize_zeroed(r, r);
            }
            for k in range {
                let wrow = w.row(k);
                for (col, &wkr) in wrow.iter().enumerate() {
                    if wkr != 0.0 {
                        lemma_chunk[col].axpy(wkr, &pzf[k]);
                    }
                }
            }
            for (t, p) in lemma_acc[..r].iter_mut().zip(&lemma_chunk[..r]) {
                *t += p;
            }
        }
        out.resize_zeroed(r, r);
        for (col, t_r) in lemma_acc[..r].iter().enumerate() {
            col_in.clear();
            col_in.extend((0..edtv.rows()).map(|i| edtv.at(i, col)));
            t_r.view().matvec_into(col_in, col_out);
            out.set_col(col, col_out);
        }
        return;
    }

    // Per-chunk partial sums T_r = Σ_k W(k,r)·PZF_k, then the columns
    // G⁽¹⁾(:,r) = T_r · edtv(:,r).
    let chunks = k_chunks(k_total);
    let partials: Vec<Vec<Mat>> = pool.map(&chunks, |_, range| {
        let mut sums = vec![Mat::zeros(r, r); r];
        for k in range.clone() {
            let wrow = w.row(k);
            for (col, &wkr) in wrow.iter().enumerate() {
                if wkr != 0.0 {
                    sums[col].axpy(wkr, &pzf[k]);
                }
            }
        }
        sums
    });
    out.resize_zeroed(r, r);
    let mut total = vec![Mat::zeros(r, r); r];
    for part in &partials {
        for (t, p) in total.iter_mut().zip(part) {
            *t += p;
        }
    }
    for (col, t_r) in total.iter().enumerate() {
        let gcol = t_r.matvec(&edtv.col(col));
        out.set_col(col, &gcol);
    }
}

/// Lemma 2: `G⁽²⁾ = Y_(2)(W ⊙ H) ∈ R^{J×R}` from the factorized slices.
///
/// `de = D E ∈ R^{J×R}` (stage-2 left factor, columns scaled by the
/// singular values). Internally accumulates
/// `ACC(:,r) = Σ_k W(k,r) · (PZF_kᵀ H)(:,r)` and returns `D E · ACC`.
pub fn g2(pzf: &[Mat], w: &Mat, h: &Mat, de: &Mat, pool: &ThreadPool) -> Mat {
    let mut g = Mat::default();
    g2_ws(pzf, w, h, de, pool, &mut g, &mut Workspace::new());
    g
}

/// [`g2`] into a caller-owned output against a reusable [`Workspace`].
/// Bit-identical to [`g2`] for every thread count.
pub fn g2_ws(
    pzf: &[Mat],
    w: &Mat,
    h: &Mat,
    de: &Mat,
    pool: &ThreadPool,
    out: &mut Mat,
    ws: &mut Workspace,
) {
    let r = h.rows();
    let k_total = pzf.len();
    if pool.threads() == 1 {
        let Workspace { lemma_acc, lemma_chunk, lemma_tmp, .. } = ws;
        if lemma_acc.is_empty() {
            lemma_acc.push(Mat::default());
        }
        if lemma_chunk.is_empty() {
            lemma_chunk.push(Mat::default());
        }
        let total = &mut lemma_acc[0];
        let chunk_acc = &mut lemma_chunk[0];
        let pth = lemma_tmp;
        total.resize_zeroed(r, r);
        for range in
            (0..k_total.div_ceil(K_CHUNK)).map(|c| c * K_CHUNK..((c + 1) * K_CHUNK).min(k_total))
        {
            chunk_acc.resize_zeroed(r, r);
            pth.resize_zeroed(r, r);
            for k in range {
                // PZF_kᵀ · H in one shot, then scale column r by W(k,r).
                pzf[k].matmul_tn_into(h, pth);
                let wrow = w.row(k);
                for i in 0..r {
                    let acc_row = chunk_acc.row_mut(i);
                    let pth_row = pth.row(i);
                    for (col, &wkr) in wrow.iter().enumerate() {
                        acc_row[col] += wkr * pth_row[col];
                    }
                }
            }
            *total += &*chunk_acc;
        }
        // J×R product; at one thread the pooled GEMM path is exactly the
        // serial blocked/naive dispatch, so `matmul_into` is bit-identical.
        de.matmul_into(&*total, out);
        return;
    }

    let chunks = k_chunks(k_total);
    let partials: Vec<Mat> = pool.map(&chunks, |_, range| {
        let mut acc = Mat::zeros(r, r);
        let mut pth = Mat::zeros(r, r);
        for k in range.clone() {
            // PZF_kᵀ · H in one shot, then scale column r by W(k,r).
            pzf[k].matmul_tn_into(h, &mut pth);
            let wrow = w.row(k);
            for i in 0..r {
                let acc_row = acc.row_mut(i);
                let pth_row = pth.row(i);
                for (col, &wkr) in wrow.iter().enumerate() {
                    acc_row[col] += wkr * pth_row[col];
                }
            }
        }
        acc
    });
    let mut acc = Mat::zeros(r, r);
    for p in &partials {
        acc += p;
    }
    // J×R product — the only lemma-kernel GEMM that grows with J, so it
    // takes the pooled path (bit-identical for every pool size).
    de.matmul_pooled_into(&acc, out, pool);
}

/// Lemma 3: `G⁽³⁾ = Y_(3)(V ⊙ H) ∈ R^{K×R}` from the factorized slices.
///
/// Row `k` is computed via the bilinear form
/// `G⁽³⁾(k,r) = H(:,r)ᵀ · PZF_k · edtv(:,r)`.
pub fn g3(pzf: &[Mat], edtv: &Mat, h: &Mat, pool: &ThreadPool) -> Mat {
    let mut g = Mat::default();
    g3_ws(pzf, edtv, h, pool, &mut g, &mut Workspace::new());
    g
}

/// [`g3`] into a caller-owned output against a reusable [`Workspace`].
/// Bit-identical to [`g3`] for every thread count.
pub fn g3_ws(
    pzf: &[Mat],
    edtv: &Mat,
    h: &Mat,
    pool: &ThreadPool,
    out: &mut Mat,
    ws: &mut Workspace,
) {
    let r = h.rows();
    let k_total = pzf.len();
    if pool.threads() == 1 {
        let Workspace { lemma_tmp, col_out, .. } = ws;
        out.resize_zeroed(k_total, r);
        for (k, pzf_k) in pzf.iter().enumerate() {
            // T = PZF_k · edtv, then G⁽³⁾(k,r) = Σ_i H(i,r) T(i,r).
            pzf_k.matmul_into(edtv, lemma_tmp);
            col_out.clear();
            col_out.resize(r, 0.0);
            for i in 0..r {
                let hrow = h.row(i);
                let trow = lemma_tmp.row(i);
                for (col, v) in col_out.iter_mut().enumerate() {
                    *v += hrow[col] * trow[col];
                }
            }
            out.set_row(k, col_out);
        }
        return;
    }

    let rows: Vec<Vec<f64>> = pool.map(pzf, |_, pzf_k| {
        // T = PZF_k · edtv, then G⁽³⁾(k,r) = Σ_i H(i,r) T(i,r).
        let t = pzf_k.matmul(edtv).expect("g3: PZF_k · edtv");
        let mut row = vec![0.0; r];
        for i in 0..r {
            let hrow = h.row(i);
            let trow = t.row(i);
            for (col, v) in row.iter_mut().enumerate() {
                *v += hrow[col] * trow[col];
            }
        }
        row
    });
    out.resize_zeroed(k_total, r);
    for (k, row) in rows.iter().enumerate() {
        out.set_row(k, row);
    }
}

/// Materializes the frontal slices `Y_k = PZF_k · E Dᵀ` — the explicit
/// tensor the naive kernels and the convergence oracle operate on.
pub fn materialize_y(pzf: &[Mat], edt: &Mat) -> Dense3 {
    let slices: Vec<Mat> = pzf.iter().map(|p| p.matmul(edt).expect("materialize_y")).collect();
    Dense3::from_frontal_slices(slices)
}

/// Naive `Y_(1)(W ⊙ V)` on the materialized `Y` — `O(J K R²)` time and
/// `O(J K R)` memory. Test oracle and ablation baseline for [`g1`].
pub fn naive_g1(y: &Dense3, v: &Mat, w: &Mat) -> Mat {
    let dummy = Mat::zeros(y.dim_i(), v.cols());
    mttkrp(y, &dummy, v, w, 1)
}

/// Naive `Y_(2)(W ⊙ H)`. Test oracle and ablation baseline for [`g2`].
pub fn naive_g2(y: &Dense3, h: &Mat, w: &Mat) -> Mat {
    let dummy = Mat::zeros(y.dim_j(), h.cols());
    let _ = &dummy;
    mttkrp(y, h, &dummy, w, 2)
}

/// Naive `Y_(3)(V ⊙ H)`. Test oracle and ablation baseline for [`g3`].
pub fn naive_g3(y: &Dense3, h: &Mat, v: &Mat) -> Mat {
    let dummy = Mat::zeros(y.dim_k(), h.cols());
    let _ = &dummy;
    mttkrp(y, h, v, &dummy, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_linalg::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Setup {
        pzf: Vec<Mat>,
        edt: Mat,
        de: Mat,
        v: Mat,
        h: Mat,
        w: Mat,
        edtv: Mat,
    }

    fn setup(k: usize, j: usize, r: usize, seed: u64) -> Setup {
        let mut rng = StdRng::seed_from_u64(seed);
        let pzf: Vec<Mat> = (0..k).map(|_| gaussian_mat(r, r, &mut rng)).collect();
        let d = gaussian_mat(j, r, &mut rng);
        let e: Vec<f64> = (0..r).map(|i| 1.0 + i as f64).collect();
        // edt = E Dᵀ, de = D E.
        let mut edt = d.transpose();
        for (row, &ev) in e.iter().enumerate() {
            for x in edt.row_mut(row) {
                *x *= ev;
            }
        }
        let mut de = d;
        for i in 0..j {
            let rr = de.row_mut(i);
            for (c, &ev) in e.iter().enumerate() {
                rr[c] *= ev;
            }
        }
        let v = gaussian_mat(j, r, &mut rng);
        let h = gaussian_mat(r, r, &mut rng);
        let w = gaussian_mat(k, r, &mut rng);
        let edtv = edt.matmul(&v).unwrap();
        Setup { pzf, edt, de, v, h, w, edtv }
    }

    #[test]
    fn lemma1_matches_naive() {
        let s = setup(7, 11, 4, 101);
        let pool = ThreadPool::new(1);
        let fast = g1(&s.pzf, &s.w, &s.edtv, &pool);
        let y = materialize_y(&s.pzf, &s.edt);
        let naive = naive_g1(&y, &s.v, &s.w);
        assert!(
            (&fast - &naive).fro_norm() < 1e-9 * (1.0 + naive.fro_norm()),
            "Lemma 1 mismatch: {}",
            (&fast - &naive).fro_norm()
        );
    }

    #[test]
    fn lemma2_matches_naive() {
        let s = setup(6, 9, 3, 102);
        let pool = ThreadPool::new(1);
        let fast = g2(&s.pzf, &s.w, &s.h, &s.de, &pool);
        let y = materialize_y(&s.pzf, &s.edt);
        let naive = naive_g2(&y, &s.h, &s.w);
        assert!(
            (&fast - &naive).fro_norm() < 1e-9 * (1.0 + naive.fro_norm()),
            "Lemma 2 mismatch: {}",
            (&fast - &naive).fro_norm()
        );
    }

    #[test]
    fn lemma3_matches_naive() {
        let s = setup(8, 10, 5, 103);
        let pool = ThreadPool::new(1);
        let fast = g3(&s.pzf, &s.edtv, &s.h, &pool);
        let y = materialize_y(&s.pzf, &s.edt);
        let naive = naive_g3(&y, &s.h, &s.v);
        assert!(
            (&fast - &naive).fro_norm() < 1e-9 * (1.0 + naive.fro_norm()),
            "Lemma 3 mismatch: {}",
            (&fast - &naive).fro_norm()
        );
    }

    #[test]
    fn kernels_bit_identical_across_thread_counts() {
        // K = 53 spans multiple K_CHUNK reduction chunks; the fixed chunk
        // grouping makes every kernel exactly schedule-independent.
        let s = setup(53, 13, 4, 104);
        let a1 = g1(&s.pzf, &s.w, &s.edtv, &ThreadPool::new(1));
        let b1 = g2(&s.pzf, &s.w, &s.h, &s.de, &ThreadPool::new(1));
        let c1 = g3(&s.pzf, &s.edtv, &s.h, &ThreadPool::new(1));
        for threads in [2, 3, 4] {
            let pool = ThreadPool::new(threads);
            assert_eq!(a1, g1(&s.pzf, &s.w, &s.edtv, &pool), "g1 diverged at {threads} threads");
            assert_eq!(b1, g2(&s.pzf, &s.w, &s.h, &s.de, &pool), "g2 diverged at {threads}");
            assert_eq!(c1, g3(&s.pzf, &s.edtv, &s.h, &pool), "g3 diverged at {threads}");
        }
    }

    #[test]
    fn shapes() {
        let s = setup(5, 12, 3, 105);
        let pool = ThreadPool::new(2);
        assert_eq!(g1(&s.pzf, &s.w, &s.edtv, &pool).shape(), (3, 3));
        assert_eq!(g2(&s.pzf, &s.w, &s.h, &s.de, &pool).shape(), (12, 3));
        assert_eq!(g3(&s.pzf, &s.edtv, &s.h, &pool).shape(), (5, 3));
    }

    #[test]
    fn single_slice() {
        let s = setup(1, 6, 2, 106);
        let pool = ThreadPool::new(3);
        let y = materialize_y(&s.pzf, &s.edt);
        let fast = g1(&s.pzf, &s.w, &s.edtv, &pool);
        let naive = naive_g1(&y, &s.v, &s.w);
        assert!((&fast - &naive).fro_norm() < 1e-10 * (1.0 + naive.fro_norm()));
    }

    #[test]
    fn k_chunks_cover_range() {
        for k in [1, 7, K_CHUNK, K_CHUNK + 1, 100] {
            let chunks = k_chunks(k);
            let mut covered = vec![false; k];
            for c in &chunks {
                for i in c.clone() {
                    assert!(!covered[i]);
                    covered[i] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "k={k} left gaps");
        }
        assert!(k_chunks(0).is_empty());
    }
}
