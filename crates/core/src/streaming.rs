//! Streaming DPar2 — the extension the paper names as future work
//! (§VI: *"Future work includes devising an efficient PARAFAC2
//! decomposition method in a streaming setting"*), in the spirit of SPADE
//! (Gujral et al., SDM 2020, reference 48 of the paper).
//!
//! New slices arrive over time (new stocks listing, new songs ingested).
//! Rather than recompressing everything, [`StreamingDpar2`] maintains the
//! two-stage compressed representation incrementally:
//!
//! 1. **Stage 1** runs only on the *new* slices: `X_k ≈ A_k B_k C_kᵀ`.
//! 2. **Stage 2** is updated without touching old data. With the current
//!    factorization `M ≈ D E Fᵀ`, the extended matrix is
//!    `M' = [D E Fᵀ ∥ M_new]`. Its column space lies inside
//!    `span([D ∥ M_new])`, so we factorize the small matrix
//!
//!    ```text
//!    G = [D·E ∥ M_new] ∈ R^{J×(R + K_new·R)} ≈ D' E' G'ᵀ
//!    ```
//!
//!    and rewrite both block families against the new basis:
//!    * old slices:  `D E F(k)ᵀ = (D E) F(k)ᵀ ≈ D' E' (F(k) G'_top)ᵀ`,
//!      so `F'(k) = F(k) · G'_top` where `G'_top` is the first `R` rows
//!      of `G'`;
//!    * new slice `j`: `F'(K+j)` is the `j`-th `R×R` block of `G'` below
//!      the top.
//!
//!    Cost: `O(J·K_new·R²)` — independent of the number of *old* slices
//!    and of `Σ I_k`.
//! 3. Decompositions warm-start from the previous window's factors
//!    (`H`, `V`, and `W` extended with unit rows for the newcomers), which
//!    empirically cuts the iterations to re-converge.

use crate::compress::{compress, compress_sparse, CompressedTensor};
use crate::config::FitOptions;
use crate::error::{Dpar2Error, Result};
use crate::fitness::Parafac2Fit;
use crate::session::{FitObserver, NoopObserver};
use crate::solver::{Dpar2, WarmStart};
use dpar2_linalg::{Mat, SparseSlice};
use dpar2_rsvd::{rsvd, rsvd_op, RsvdConfig};
use dpar2_tensor::{IrregularTensor, SparseIrregularTensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a per-slice sketch seed from `(base, k)` with a splitmix64-style
/// finalizer. A plain `base.wrapping_mul(k + 1)` collides badly: any even
/// `base` sheds low-bit entropy and `base = 0` hands every slice the
/// identical RNG stream, correlating the rsvd sketches across slices.
fn stream_seed(base: u64, k: usize) -> u64 {
    let mut z = base.wrapping_add((k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Incremental PARAFAC2 over a growing collection of slices.
#[derive(Debug, Clone)]
pub struct StreamingDpar2 {
    options: FitOptions<'static>,
    ct: Option<CompressedTensor>,
    warm: Option<WarmStart>,
    appended_batches: usize,
}

impl StreamingDpar2 {
    /// Creates an empty streaming decomposer. The options' `time_budget`
    /// applies to every [`StreamingDpar2::decompose`] refit (warm starts are
    /// managed internally, so only `'static` options are accepted).
    pub fn new(options: FitOptions<'static>) -> Self {
        StreamingDpar2 { options, ct: None, warm: None, appended_batches: 0 }
    }

    /// Number of slices ingested so far.
    pub fn k(&self) -> usize {
        self.ct.as_ref().map_or(0, CompressedTensor::k)
    }

    /// The current compressed representation (None before the first batch).
    pub fn compressed(&self) -> Option<&CompressedTensor> {
        self.ct.as_ref()
    }

    /// Ingests a batch of new slices, updating the compressed
    /// representation incrementally (see the module docs for the algebra).
    ///
    /// # Errors
    /// [`Dpar2Error::RankTooLarge`] if a new slice cannot support the rank;
    /// [`Dpar2Error::Linalg`] on dimension mismatches (inconsistent `J`).
    pub fn append(&mut self, slices: Vec<Mat>) -> Result<()> {
        if slices.is_empty() {
            return Ok(());
        }
        // Validate column consistency up front (within the batch and
        // against the ingested state) so a malformed batch is an `Err`,
        // never a panic — long-lived ingest loops depend on this.
        let j = self.ct.as_ref().map_or(slices[0].cols(), |ct| ct.j);
        if let Some(bad) = slices.iter().find(|s| s.cols() != j) {
            return Err(Dpar2Error::Linalg(dpar2_linalg::LinalgError::DimensionMismatch {
                op: "streaming append",
                left: (j, self.options.rank),
                right: (bad.cols(), self.options.rank),
            }));
        }
        let batch = IrregularTensor::new(slices);
        match self.ct.take() {
            None => {
                // First batch: plain two-stage compression.
                self.ct = Some(compress(&batch, &self.options)?);
                // Count the batch only once it is ingested: a rejected
                // batch must not shift the rsvd seed stream, or the same
                // good batches would produce different factors depending on
                // whether a bad batch was ever submitted.
                self.appended_batches += 1;
                Ok(())
            }
            Some(old) => {
                // A rejected batch must leave the ingested state untouched
                // (long-lived serving ingest keeps going after a bad batch).
                let result = self.extend(&old, &batch);
                match result {
                    Ok(updated) => {
                        self.ct = Some(updated);
                        self.appended_batches += 1;
                        Ok(())
                    }
                    Err(e) => {
                        self.ct = Some(old);
                        Err(e)
                    }
                }
            }
        }
    }

    /// [`StreamingDpar2::append`] for CSR slices: stage 1 runs the O(nnz)
    /// sparse randomized SVD on each new slice without densifying, and the
    /// incremental stage-2 update is shared with the dense path. The seed
    /// derivation is identical — interleaving dense and sparse appends of
    /// the same data (with the sketch on the naive-dispatch path) produces
    /// bit-identical compressed state, and `appended_batches` advances the
    /// same way.
    ///
    /// # Errors
    /// Same contract as [`StreamingDpar2::append`]: a rejected batch
    /// ([`Dpar2Error::RankTooLarge`], [`Dpar2Error::Linalg`]) leaves the
    /// ingested state untouched and does not shift the seed stream.
    pub fn append_sparse(&mut self, slices: Vec<SparseSlice>) -> Result<()> {
        if slices.is_empty() {
            return Ok(());
        }
        let j = self.ct.as_ref().map_or(slices[0].cols(), |ct| ct.j);
        if let Some(bad) = slices.iter().find(|s| s.cols() != j) {
            return Err(Dpar2Error::Linalg(dpar2_linalg::LinalgError::DimensionMismatch {
                op: "streaming append",
                left: (j, self.options.rank),
                right: (bad.cols(), self.options.rank),
            }));
        }
        let batch = SparseIrregularTensor::new(slices);
        match self.ct.take() {
            None => {
                self.ct = Some(compress_sparse(&batch, &self.options)?);
                self.appended_batches += 1;
                Ok(())
            }
            Some(old) => {
                let result = self.extend_sparse(&old, &batch);
                match result {
                    Ok(updated) => {
                        self.ct = Some(updated);
                        self.appended_batches += 1;
                        Ok(())
                    }
                    Err(e) => {
                        self.ct = Some(old);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Incremental stage-2 update with a batch of freshly compressed
    /// slices.
    fn extend(&self, old: &CompressedTensor, batch: &IrregularTensor) -> Result<CompressedTensor> {
        let r = self.options.rank;
        if batch.j() != old.j {
            return Err(Dpar2Error::Linalg(dpar2_linalg::LinalgError::DimensionMismatch {
                op: "streaming append",
                left: (old.j, r),
                right: (batch.j(), r),
            }));
        }
        for k in 0..batch.k() {
            let limit = batch.i(k).min(batch.j());
            if r > limit {
                return Err(Dpar2Error::RankTooLarge { rank: r, slice: old.k() + k, limit });
            }
        }

        let (base_seed, rsvd_cfg) = self.batch_stage1_params(r);
        let mut stage1: Vec<(Mat, Vec<f64>, Mat)> = Vec::with_capacity(batch.k());
        for k in 0..batch.k() {
            let mut rng = StdRng::seed_from_u64(stream_seed(base_seed, k));
            let f = rsvd(batch.slice(k), &rsvd_cfg, &mut rng);
            stage1.push((f.u, f.s, f.v));
        }
        Ok(Self::extend_stage2(old, stage1, r, base_seed, &rsvd_cfg))
    }

    /// [`StreamingDpar2::extend`] for a CSR batch: stage 1 runs the O(nnz)
    /// sparse randomized SVD per new slice; the stage-2 basis update is the
    /// shared dense code (its operands are already `R`-compressed). Seeds
    /// match the dense path exactly, slice for slice.
    fn extend_sparse(
        &self,
        old: &CompressedTensor,
        batch: &SparseIrregularTensor,
    ) -> Result<CompressedTensor> {
        let r = self.options.rank;
        if batch.j() != old.j {
            return Err(Dpar2Error::Linalg(dpar2_linalg::LinalgError::DimensionMismatch {
                op: "streaming append",
                left: (old.j, r),
                right: (batch.j(), r),
            }));
        }
        for k in 0..batch.k() {
            let limit = batch.i(k).min(batch.j());
            if r > limit {
                return Err(Dpar2Error::RankTooLarge { rank: r, slice: old.k() + k, limit });
            }
        }

        let (base_seed, rsvd_cfg) = self.batch_stage1_params(r);
        let mut stage1: Vec<(Mat, Vec<f64>, Mat)> = Vec::with_capacity(batch.k());
        for k in 0..batch.k() {
            let mut rng = StdRng::seed_from_u64(stream_seed(base_seed, k));
            let f = rsvd_op(batch.slice(k), &rsvd_cfg, &mut rng);
            stage1.push((f.u, f.s, f.v));
        }
        Ok(Self::extend_stage2(old, stage1, r, base_seed, &rsvd_cfg))
    }

    /// Seed base and rsvd configuration for the batch currently being
    /// ingested. `appended_batches` counts only *successful* appends, so
    /// the ordinal of the batch being ingested is one past it (this keeps
    /// clean-history seed streams identical to what they were when the
    /// counter was bumped up front).
    fn batch_stage1_params(&self, r: usize) -> (u64, RsvdConfig) {
        let ordinal = self.appended_batches as u64 + 1;
        let base_seed = self.options.seed.wrapping_add(0x5EED_0000 + ordinal);
        (base_seed, RsvdConfig { rank: r, ..self.options.rsvd })
    }

    /// Shared incremental stage-2 basis update (the module-docs algebra),
    /// identical for dense- and sparse-ingested batches: by this point the
    /// batch only exists as its stage-1 factors.
    fn extend_stage2(
        old: &CompressedTensor,
        stage1: Vec<(Mat, Vec<f64>, Mat)>,
        r: usize,
        base_seed: u64,
        rsvd_cfg: &RsvdConfig,
    ) -> CompressedTensor {
        let batch_k = stage1.len();
        // G = [D·E ∥ C_1B_1 ∥ … ∥ C_newB_new] ∈ R^{J×(R + K_new R)}.
        let mut de = old.d.clone();
        for i in 0..de.rows() {
            let row = de.row_mut(i);
            for (c, &ev) in old.e.iter().enumerate() {
                row[c] *= ev;
            }
        }
        let mut blocks: Vec<Mat> = vec![de];
        for (_, b, c) in &stage1 {
            let mut cb = c.clone();
            for i in 0..cb.rows() {
                let row = cb.row_mut(i);
                for (col, &s) in b.iter().enumerate() {
                    row[col] *= s;
                }
            }
            blocks.push(cb);
        }
        let g = Mat::hstack_all(&blocks.iter().collect::<Vec<_>>());
        let mut rng2 = StdRng::seed_from_u64(base_seed ^ 0x0B5E55ED);
        let f2 = rsvd(&g, rsvd_cfg, &mut rng2);

        // Rewrite old F-blocks against the new basis: F'(k) = F(k)·G'_top.
        let g_top = f2.v.block(0, r, 0, r);
        let mut f_blocks: Vec<Mat> =
            old.f_blocks.iter().map(|fk| fk.matmul(&g_top).expect("F(k)·G'_top")).collect();
        // New blocks come straight from G' below the top rows.
        for j in 0..batch_k {
            f_blocks.push(f2.v.block(r + j * r, r + (j + 1) * r, 0, r));
        }

        let mut a = old.a.clone();
        a.extend(stage1.into_iter().map(|(u, _, _)| u));
        CompressedTensor { a, d: f2.u, e: f2.s, f_blocks, rank: r, j: old.j }
    }

    /// Decomposes the current collection, warm-starting from the previous
    /// call's factors, and caches the new factors for the next call.
    ///
    /// # Errors
    /// [`Dpar2Error::Empty`] if called before any slices were appended —
    /// a misordered caller (e.g. a serving ingest worker asked to refit
    /// before its first batch landed) gets a typed error, not a panic.
    pub fn decompose(&mut self) -> Result<Parafac2Fit> {
        self.decompose_observed(&mut NoopObserver)
    }

    /// [`StreamingDpar2::decompose`] with a [`FitObserver`] session: the
    /// observer sees every refit iteration and can cancel cooperatively —
    /// together with the options' `time_budget`, this is what lets a
    /// serving ingest loop bound refit latency and shut down promptly
    /// (see `dpar2_serve::ingest`).
    ///
    /// # Errors
    /// [`Dpar2Error::Empty`] if called before any slices were appended.
    pub fn decompose_observed(&mut self, observer: &mut dyn FitObserver) -> Result<Parafac2Fit> {
        let Some(ct) = self.ct.as_ref() else { return Err(Dpar2Error::Empty) };
        // Extend the cached W with unit rows for slices added since the
        // last decomposition; H and V carry over unchanged. A stale warm
        // start with more rows than the current slice count (impossible
        // through the public API, but cheap to guard) is discarded.
        let warm = self.warm.take().filter(|ws| ws.w.rows() <= ct.k()).map(|ws| {
            let mut w = Mat::ones(ct.k(), ct.rank);
            for i in 0..ws.w.rows() {
                w.set_row(i, ws.w.row(i));
            }
            WarmStart { h: ws.h, v: ws.v, w }
        });
        let fit = Dpar2
            .fit_compressed_with_init(ct, warm, &self.options, observer)
            .expect("streaming warm start is internally consistent");
        self.warm = Some(WarmStart {
            h: fit.h.clone(),
            v: fit.v.clone(),
            w: {
                let mut w = Mat::zeros(ct.k(), ct.rank);
                for (k, s) in fit.s.iter().enumerate() {
                    w.set_row(k, s);
                }
                w
            },
        });
        Ok(fit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_linalg::qr;
    use dpar2_linalg::random::gaussian_mat;
    use rand::Rng;

    /// Planted PARAFAC2 slices sharing H and V so that streaming batches
    /// stay mutually consistent.
    struct Planted {
        h: Mat,
        v: Mat,
        rng: StdRng,
        rank: usize,
    }

    impl Planted {
        fn new(j: usize, rank: usize, seed: u64) -> Self {
            let mut rng = StdRng::seed_from_u64(seed);
            let h = gaussian_mat(rank, rank, &mut rng);
            let v = gaussian_mat(j, rank, &mut rng);
            Planted { h, v, rng, rank }
        }

        fn slice(&mut self, ik: usize, noise: f64) -> Mat {
            let q = qr::qr(gaussian_mat(ik, self.rank, &mut self.rng)).q;
            let sk: Vec<f64> = (0..self.rank).map(|_| 0.5 + self.rng.random::<f64>()).collect();
            let mut qh = q.matmul(&self.h).unwrap();
            for row in 0..ik {
                let r = qh.row_mut(row);
                for (c, &sv) in sk.iter().enumerate() {
                    r[c] *= sv;
                }
            }
            let mut x = qh.matmul_nt(&self.v).unwrap();
            if noise > 0.0 {
                let scale = noise * x.fro_norm() / ((ik * self.v.rows()) as f64).sqrt();
                x.axpy(scale, &gaussian_mat(ik, self.v.rows(), &mut self.rng));
            }
            x
        }
    }

    #[test]
    fn streaming_matches_batch_fitness() {
        let mut gen = Planted::new(16, 3, 71);
        let all: Vec<Mat> =
            [30usize, 45, 25, 38, 28, 33].iter().map(|&ik| gen.slice(ik, 0.05)).collect();
        let tensor = IrregularTensor::new(all.clone());

        // Batch run.
        let cfg = FitOptions::new(3).with_seed(72).with_max_iterations(24);
        let batch_fit = Dpar2.fit(&tensor, &cfg).unwrap();

        // Streaming run: two batches of three.
        let mut stream = StreamingDpar2::new(cfg);
        stream.append(all[..3].to_vec()).unwrap();
        let _ = stream.decompose().unwrap();
        stream.append(all[3..].to_vec()).unwrap();
        let stream_fit = stream.decompose().unwrap();

        let fb = batch_fit.fitness(&tensor);
        let fs = stream_fit.fitness(&tensor);
        assert!((fb - fs).abs() < 0.02, "streaming fitness {fs} deviates from batch {fb}");
    }

    #[test]
    fn incremental_compression_reconstructs_new_and_old() {
        let mut gen = Planted::new(14, 2, 73);
        let first: Vec<Mat> = (0..3).map(|_| gen.slice(30, 0.0)).collect();
        let second: Vec<Mat> = (0..2).map(|_| gen.slice(24, 0.0)).collect();
        let all: Vec<Mat> = first.iter().chain(&second).cloned().collect();

        let cfg = FitOptions::new(2).with_seed(74);
        let mut stream = StreamingDpar2::new(cfg);
        stream.append(first).unwrap();
        stream.append(second).unwrap();
        let ct = stream.compressed().unwrap();
        assert_eq!(ct.k(), 5);
        for (k, x) in all.iter().enumerate() {
            let rel = (x - &ct.reconstruct_slice(k)).fro_norm() / x.fro_norm();
            assert!(rel < 1e-6, "slice {k} rel err {rel} after incremental update");
        }
    }

    #[test]
    fn warm_start_accelerates_convergence() {
        let mut gen = Planted::new(18, 3, 75);
        let first: Vec<Mat> = (0..4).map(|_| gen.slice(35, 0.1)).collect();
        let second: Vec<Mat> = (0..2).map(|_| gen.slice(30, 0.1)).collect();

        let cfg = FitOptions::new(3).with_seed(76).with_tolerance(1e-5);
        let mut stream = StreamingDpar2::new(cfg);
        stream.append(first.clone()).unwrap();
        let _ = stream.decompose().unwrap();
        stream.append(second.clone()).unwrap();
        let warm_fit = stream.decompose().unwrap();

        // Cold baseline on the same 6 slices.
        let mut cold_slices = first;
        cold_slices.extend(second);
        let ct = compress(&IrregularTensor::new(cold_slices), &cfg).unwrap();
        let cold_fit = Dpar2.fit_compressed(&ct, &cfg).unwrap();

        assert!(
            warm_fit.iterations <= cold_fit.iterations,
            "warm start took {} iterations vs cold {}",
            warm_fit.iterations,
            cold_fit.iterations
        );
    }

    #[test]
    fn rejects_inconsistent_columns() {
        let cfg = FitOptions::new(2).with_seed(77);
        let mut stream = StreamingDpar2::new(cfg);
        let mut rng = StdRng::seed_from_u64(78);
        stream.append(vec![gaussian_mat(10, 8, &mut rng)]).unwrap();
        let err = stream.append(vec![gaussian_mat(10, 9, &mut rng)]).unwrap_err();
        assert!(matches!(err, Dpar2Error::Linalg(_)));
    }

    #[test]
    fn rejects_mixed_columns_within_batch() {
        // Inconsistent columns inside one batch must be an Err, not the
        // IrregularTensor constructor panic (serving ingest loops rely on
        // append never panicking on malformed input).
        let cfg = FitOptions::new(2).with_seed(88);
        let mut stream = StreamingDpar2::new(cfg);
        let mut rng = StdRng::seed_from_u64(89);
        let err = stream
            .append(vec![gaussian_mat(10, 8, &mut rng), gaussian_mat(10, 9, &mut rng)])
            .unwrap_err();
        assert!(matches!(err, Dpar2Error::Linalg(_)));
        assert_eq!(stream.k(), 0);
        // Same check against already-ingested state.
        stream.append(vec![gaussian_mat(10, 8, &mut rng)]).unwrap();
        let err = stream
            .append(vec![gaussian_mat(10, 8, &mut rng), gaussian_mat(10, 7, &mut rng)])
            .unwrap_err();
        assert!(matches!(err, Dpar2Error::Linalg(_)));
        assert_eq!(stream.k(), 1);
    }

    #[test]
    fn rejects_undersized_new_slice() {
        let cfg = FitOptions::new(5).with_seed(79);
        let mut stream = StreamingDpar2::new(cfg);
        let mut rng = StdRng::seed_from_u64(80);
        stream.append(vec![gaussian_mat(12, 10, &mut rng)]).unwrap();
        let err = stream.append(vec![gaussian_mat(3, 10, &mut rng)]).unwrap_err();
        assert!(matches!(err, Dpar2Error::RankTooLarge { .. }));
    }

    #[test]
    fn failed_append_preserves_state() {
        let cfg = FitOptions::new(2).with_seed(85);
        let mut stream = StreamingDpar2::new(cfg);
        let mut gen = Planted::new(12, 2, 86);
        stream.append(vec![gen.slice(20, 0.0), gen.slice(18, 0.0)]).unwrap();
        let _ = stream.decompose().unwrap();
        let mut rng = StdRng::seed_from_u64(87);
        // Wrong column count: rejected, but the two ingested slices (and the
        // cached warm start) must survive for the next good batch.
        assert!(stream.append(vec![gaussian_mat(10, 9, &mut rng)]).is_err());
        assert_eq!(stream.k(), 2, "failed append lost ingested slices");
        stream.append(vec![gen.slice(16, 0.0)]).unwrap();
        let fit = stream.decompose().unwrap();
        assert_eq!(fit.u.len(), 3);
    }

    #[test]
    fn failed_append_does_not_shift_seed_stream() {
        // A rejected batch must leave subsequent fits bit-identical to a
        // history that never saw the bad batch: the seed stream depends on
        // the number of *ingested* batches, not submission attempts.
        let mut gen = Planted::new(12, 2, 90);
        let good1 = vec![gen.slice(20, 0.02), gen.slice(18, 0.02)];
        let good2 = vec![gen.slice(16, 0.02), gen.slice(22, 0.02)];
        let cfg = FitOptions::new(2).with_seed(91).with_max_iterations(12);

        let mut with_failure = StreamingDpar2::new(cfg);
        with_failure.append(good1.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(92);
        assert!(with_failure.append(vec![gaussian_mat(10, 9, &mut rng)]).is_err());
        with_failure.append(good2.clone()).unwrap();
        let fit_a = with_failure.decompose().unwrap();

        let mut clean = StreamingDpar2::new(cfg);
        clean.append(good1).unwrap();
        clean.append(good2).unwrap();
        let fit_b = clean.decompose().unwrap();

        // Everything but the wall-clock timing must be bit-identical
        // (timing is the one legitimately non-deterministic field).
        assert_eq!(fit_a.u, fit_b.u, "rejected batch shifted the rsvd seed stream (U)");
        assert_eq!(fit_a.s, fit_b.s, "rejected batch shifted the rsvd seed stream (S)");
        assert_eq!(fit_a.v, fit_b.v, "rejected batch shifted the rsvd seed stream (V)");
        assert_eq!(fit_a.h, fit_b.h, "rejected batch shifted the rsvd seed stream (H)");
        assert_eq!(fit_a.iterations, fit_b.iterations);
        assert_eq!(fit_a.criterion_trace, fit_b.criterion_trace);
    }

    #[test]
    fn distinct_slices_get_distinct_seed_streams() {
        use std::collections::HashSet;
        // Adversarial bases: zero and even values used to collapse the old
        // `base.wrapping_mul(k + 1)` derivation into colliding (or for
        // base = 0, identical) streams.
        for base in [0u64, 2, 4, 1 << 32, u64::MAX - 1, 0x5EED_0000] {
            let mut seen = HashSet::new();
            for k in 0..64 {
                assert!(
                    seen.insert(stream_seed(base, k)),
                    "seed collision for base {base} at slice {k}"
                );
            }
        }
        // The derived RNG streams themselves must differ, not just the seeds.
        let firsts: HashSet<u64> =
            (0..16).map(|k| StdRng::seed_from_u64(stream_seed(0, k)).random::<u64>()).collect();
        assert_eq!(firsts.len(), 16, "distinct slices drew identical first values");
    }

    #[test]
    fn decompose_before_append_is_typed_error() {
        let mut stream = StreamingDpar2::new(FitOptions::new(2).with_seed(93));
        assert_eq!(stream.decompose().unwrap_err(), Dpar2Error::Empty);
        // Still usable afterwards.
        let mut gen = Planted::new(10, 2, 94);
        stream.append(vec![gen.slice(15, 0.0)]).unwrap();
        assert_eq!(stream.decompose().unwrap().u.len(), 1);
    }

    #[test]
    fn empty_append_is_noop() {
        let cfg = FitOptions::new(2).with_seed(81);
        let mut stream = StreamingDpar2::new(cfg);
        stream.append(vec![]).unwrap();
        assert_eq!(stream.k(), 0);
        assert!(stream.compressed().is_none());
    }

    /// Random CSR slices for the sparse-append suite (~30% fill keeps the
    /// rsvd well-conditioned at rank 3 while exercising real sparsity).
    fn sparse_batch(seed: u64, dims: &[usize], j: usize) -> Vec<SparseSlice> {
        let mut rng = StdRng::seed_from_u64(seed);
        dims.iter()
            .map(|&ik| {
                let mut b = dpar2_linalg::CooBuilder::new(ik, j);
                for i in 0..ik {
                    for _ in 0..j / 3 {
                        let col = (rng.random::<u64>() % j as u64) as usize;
                        b.push(i, col, rng.random::<f64>() - 0.5);
                    }
                }
                b.build()
            })
            .collect()
    }

    #[test]
    fn sparse_append_bitwise_matches_dense_append() {
        // rank 3 + oversample 2 → sketch 5, below the blocked-GEMM tile
        // height: every sparse product stays on the naive dispatch path,
        // so the sparse and dense ingest histories must agree *bitwise* —
        // including interleaving (dense batch, then sparse batch).
        let cfg = FitOptions::new(3)
            .with_seed(95)
            .with_rsvd(dpar2_rsvd::RsvdConfig { rank: 3, oversample: 2, power_iterations: 1 })
            .with_max_iterations(8)
            .with_tolerance(0.0);
        let b1 = sparse_batch(96, &[28, 35], 20);
        let b2 = sparse_batch(97, &[30, 26, 22], 20);

        let mut sparse = StreamingDpar2::new(cfg);
        sparse.append_sparse(b1.clone()).unwrap();
        sparse.append_sparse(b2.clone()).unwrap();
        let fit_s = sparse.decompose().unwrap();

        let mut dense = StreamingDpar2::new(cfg);
        dense.append(b1.iter().map(SparseSlice::to_dense).collect()).unwrap();
        dense.append(b2.iter().map(SparseSlice::to_dense).collect()).unwrap();
        let fit_d = dense.decompose().unwrap();

        assert_eq!(fit_s.u, fit_d.u, "sparse append diverged from dense (U)");
        assert_eq!(fit_s.s, fit_d.s, "sparse append diverged from dense (S)");
        assert_eq!(fit_s.v, fit_d.v, "sparse append diverged from dense (V)");
        assert_eq!(fit_s.h, fit_d.h, "sparse append diverged from dense (H)");
        assert_eq!(fit_s.criterion_trace, fit_d.criterion_trace);

        let mut mixed = StreamingDpar2::new(cfg);
        mixed.append(b1.iter().map(SparseSlice::to_dense).collect()).unwrap();
        mixed.append_sparse(b2).unwrap();
        let fit_m = mixed.decompose().unwrap();
        assert_eq!(fit_m.u, fit_d.u, "interleaved dense/sparse ingest diverged");
        assert_eq!(fit_m.criterion_trace, fit_d.criterion_trace);
    }

    #[test]
    fn failed_sparse_append_preserves_state_and_seed_stream() {
        let cfg = FitOptions::new(2).with_seed(98).with_max_iterations(10);
        let good1 = sparse_batch(99, &[24, 20], 12);
        let good2 = sparse_batch(100, &[18, 26], 12);

        let mut with_failure = StreamingDpar2::new(cfg);
        with_failure.append_sparse(good1.clone()).unwrap();
        // Wrong column count: typed error, state untouched.
        let err = with_failure.append_sparse(sparse_batch(101, &[10], 9)).unwrap_err();
        assert!(matches!(err, Dpar2Error::Linalg(_)));
        assert_eq!(with_failure.k(), 2, "failed sparse append lost ingested slices");
        // Undersized slice for the rank: same contract through extend.
        let err = with_failure.append_sparse(sparse_batch(102, &[1], 12)).unwrap_err();
        assert!(matches!(err, Dpar2Error::RankTooLarge { .. }));
        with_failure.append_sparse(good2.clone()).unwrap();
        let fit_a = with_failure.decompose().unwrap();

        let mut clean = StreamingDpar2::new(cfg);
        clean.append_sparse(good1).unwrap();
        clean.append_sparse(good2).unwrap();
        let fit_b = clean.decompose().unwrap();
        assert_eq!(fit_a.u, fit_b.u, "rejected sparse batch shifted the seed stream");
        assert_eq!(fit_a.criterion_trace, fit_b.criterion_trace);
    }

    #[test]
    fn empty_sparse_append_is_noop() {
        let mut stream = StreamingDpar2::new(FitOptions::new(2).with_seed(103));
        stream.append_sparse(vec![]).unwrap();
        assert_eq!(stream.k(), 0);
        assert!(stream.compressed().is_none());
    }
}
