//! # dpar2-core
//!
//! The DPar2 algorithm — *"DPar2: Fast and Scalable PARAFAC2 Decomposition
//! for Irregular Dense Tensors"* (Jang & Kang, ICDE 2022), Algorithm 3.
//!
//! Given an irregular tensor `{X_k}` and target rank `R`, DPar2 computes the
//! PARAFAC2 model `X_k ≈ U_k S_k Vᵀ` (`U_k = Q_k H`, `Q_k` column-orthonormal)
//! in three phases:
//!
//! 1. **Two-stage compression** ([`mod@compress`]): randomized SVD of each slice
//!    (`X_k ≈ A_k B_k C_kᵀ`), then randomized SVD of the concatenation
//!    `M = ∥_k C_k B_k ≈ D E Fᵀ`, after which `X_k ≈ A_k F(k) E Dᵀ` and the
//!    original tensor is never touched again.
//! 2. **Compressed ALS iterations** ([`solver`]): tiny `R×R` SVDs produce
//!    `Q_k = A_k Z_k P_kᵀ` implicitly; the CP-ALS step runs through the
//!    Lemma 1–3 kernels ([`lemmas`]) in `O(JR² + KR³)` per iteration; the
//!    convergence check ([`convergence`]) uses the compressed residual.
//! 3. **Factor recovery**: `U_k = A_k Z_k P_kᵀ H` after convergence.
//!
//! ## Quickstart
//!
//! Every solver in this workspace — [`Dpar2`] here, the baselines in
//! `dpar2-baselines` — implements the [`Parafac2Solver`] trait and is
//! driven by one shared [`FitOptions`] builder:
//!
//! ```
//! use dpar2_core::{Dpar2, FitOptions, Parafac2Solver, StopReason};
//! use dpar2_linalg::Mat;
//! use dpar2_tensor::IrregularTensor;
//! use rand::{rngs::StdRng, Rng, SeedableRng};
//!
//! // A small irregular tensor with K = 3 slices, J = 12 columns.
//! let mut rng = StdRng::seed_from_u64(0);
//! let slices = [20, 35, 15]
//!     .iter()
//!     .map(|&ik| Mat::from_fn(ik, 12, |_, _| rng.random::<f64>()))
//!     .collect();
//! let tensor = IrregularTensor::new(slices);
//!
//! let fit = Dpar2.fit(&tensor, &FitOptions::new(4)).unwrap();
//! assert_eq!(fit.v.shape(), (12, 4));
//! assert!(fit.fitness(&tensor) > 0.0);
//! assert!(matches!(fit.stop_reason, StopReason::Converged | StopReason::MaxIterations));
//! ```
//!
//! For live traces and cooperative cancellation, pass a [`FitObserver`]
//! (any `FnMut(&IterationEvent) -> ControlFlow<StopReason>` works):
//!
//! ```
//! use dpar2_core::{Dpar2, FitOptions, IterationEvent, StopReason};
//! use std::ops::ControlFlow;
//! # use dpar2_linalg::Mat;
//! # use dpar2_tensor::IrregularTensor;
//! # use rand::{rngs::StdRng, Rng, SeedableRng};
//! # let mut rng = StdRng::seed_from_u64(1);
//! # let tensor = IrregularTensor::new(
//! #     [14usize, 10].iter().map(|&ik| Mat::from_fn(ik, 8, |_, _| rng.random::<f64>())).collect(),
//! # );
//! let mut trace = Vec::new();
//! let mut observer = |e: &IterationEvent| {
//!     trace.push(e.criterion);
//!     if e.iteration >= 2 { ControlFlow::Break(StopReason::Cancelled) } else { ControlFlow::Continue(()) }
//! };
//! let fit = Dpar2.fit_observed(&tensor, &FitOptions::new(2).with_tolerance(0.0), &mut observer).unwrap();
//! assert_eq!(fit.stop_reason, StopReason::Cancelled);
//! assert_eq!(trace, fit.criterion_trace);
//! ```

pub mod compress;
pub mod config;
pub mod convergence;
pub mod error;
pub mod fitness;
pub mod lemmas;
pub mod metrics;
pub mod session;
pub mod solver;
pub mod streaming;

pub use compress::{compress, compress_sparse, CompressedTensor};
pub use config::FitOptions;
pub use error::{Dpar2Error, Result};
pub use fitness::{fitness, Parafac2Fit, TimingBreakdown};
pub use metrics::{FitMetrics, MetricsObserver};
pub use session::{
    CancelToken, FitObserver, FitPhase, FitSession, IterationEvent, NoopObserver, Parafac2Solver,
    PhaseSpans, SessionOutcome, StopReason, Workspace,
};
pub use solver::{Dpar2, WarmStart};
pub use streaming::StreamingDpar2;

// `FitOptions::rsvd` is part of this crate's public surface; re-export its
// type so downstream crates can configure it without a direct rsvd dep.
pub use dpar2_rsvd::RsvdConfig;
