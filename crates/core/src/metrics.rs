//! Bridging the solver surface to `dpar2-obs`: a pre-registered handle
//! bundle ([`FitMetrics`]) and a [`FitObserver`] adapter
//! ([`MetricsObserver`]) that streams every phase span and iteration
//! event into it.
//!
//! Registration happens once, up front (it allocates metric names); the
//! observer's record path is lock-free and allocation-free, so fits driven
//! through a `MetricsObserver` keep the workspace's zero-allocation
//! steady-state guarantee (`tests/alloc_regression.rs`).

use std::ops::ControlFlow;

use dpar2_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::session::{FitObserver, FitPhase, IterationEvent, StopReason};

/// Converts observer wall-clock seconds to whole nanoseconds for the
/// log₂-bucket histograms.
#[inline]
fn secs_to_ns(secs: f64) -> u64 {
    if secs <= 0.0 {
        0
    } else {
        (secs * 1e9).min(u64::MAX as f64) as u64
    }
}

/// Handle bundle for solver telemetry, registered under a common prefix:
///
/// * `{prefix}_fits_total` — completed fits (counted when the
///   [`FitPhase::Iterate`] span closes, which every solver emits once).
/// * `{prefix}_iterations_total` — ALS iterations across all fits.
/// * `{prefix}_iteration_ns` — per-iteration wall-clock histogram.
/// * `{prefix}_phase_{compress,init,iterate,finalize}_ns` — per-phase
///   span histograms.
/// * `{prefix}_input_nnz` / `{prefix}_input_density_ppm` — gauges
///   describing the most recent fit's input tensor (see
///   [`FitMetrics::record_input_shape`]).
/// * `{prefix}_sparse_dispatch` — 1 when the most recent fit took a
///   sparse solver path (including the auto-dispatch in
///   `baselines::fit_with`), 0 for a dense fit.
#[derive(Debug, Clone)]
pub struct FitMetrics {
    /// Completed fits.
    pub fits: Counter,
    /// ALS iterations across all fits.
    pub iterations: Counter,
    /// Per-iteration wall-clock (ns).
    pub iteration_ns: Histogram,
    /// Per-phase span wall-clock (ns), indexed by [`FitPhase::index`].
    pub phase_ns: [Histogram; FitPhase::COUNT],
    /// Stored nonzeros of the most recent fit's input tensor (total cells
    /// for dense fits).
    pub nnz: Gauge,
    /// Density of the most recent fit's input, in parts per million
    /// (1_000_000 for dense fits).
    pub density_ppm: Gauge,
    /// 1 when the most recent fit ran a sparse path, 0 when dense.
    pub sparse_dispatch: Gauge,
}

impl FitMetrics {
    /// Registers (or looks up) the bundle's metrics in `registry`.
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> FitMetrics {
        FitMetrics {
            fits: registry.counter(&format!("{prefix}_fits_total")),
            iterations: registry.counter(&format!("{prefix}_iterations_total")),
            iteration_ns: registry.histogram(&format!("{prefix}_iteration_ns")),
            phase_ns: FitPhase::ALL
                .map(|p| registry.histogram(&format!("{prefix}_phase_{}_ns", p.name()))),
            nnz: registry.gauge(&format!("{prefix}_input_nnz")),
            density_ppm: registry.gauge(&format!("{prefix}_input_density_ppm")),
            sparse_dispatch: registry.gauge(&format!("{prefix}_sparse_dispatch")),
        }
    }

    /// Stamps the input-shape gauges for a fit over a tensor with `nnz`
    /// stored entries out of `num_cells` addressable cells.
    ///
    /// Dense fits pass `nnz == num_cells` (density 1_000_000 ppm); sparse
    /// fits pass the CSR nonzero count. An empty tensor (`num_cells == 0`)
    /// records density 0. Values saturate at `i64::MAX`.
    pub fn record_input_shape(&self, nnz: u64, num_cells: u64) {
        let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        self.nnz.set(clamp(nnz));
        let ppm =
            if num_cells == 0 { 0 } else { ((nnz as f64 / num_cells as f64) * 1e6).round() as i64 };
        self.density_ppm.set(ppm);
    }
}

/// A [`FitObserver`] that records every event into a [`FitMetrics`]
/// bundle, optionally forwarding to an inner observer (whose stop
/// decisions are preserved).
pub struct MetricsObserver<'a> {
    metrics: &'a FitMetrics,
    inner: Option<&'a mut dyn FitObserver>,
}

impl std::fmt::Debug for MetricsObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsObserver")
            .field("metrics", self.metrics)
            .field("inner", &self.inner.is_some())
            .finish()
    }
}

impl<'a> MetricsObserver<'a> {
    /// Record-only observer (never cancels).
    pub fn new(metrics: &'a FitMetrics) -> MetricsObserver<'a> {
        MetricsObserver { metrics, inner: None }
    }

    /// Records into `metrics` and forwards every event to `inner`.
    pub fn wrap(metrics: &'a FitMetrics, inner: &'a mut dyn FitObserver) -> MetricsObserver<'a> {
        MetricsObserver { metrics, inner: Some(inner) }
    }
}

impl FitObserver for MetricsObserver<'_> {
    fn on_iteration(&mut self, event: &IterationEvent) -> ControlFlow<StopReason> {
        self.metrics.iterations.inc();
        self.metrics.iteration_ns.record(secs_to_ns(event.iteration_secs));
        match self.inner.as_deref_mut() {
            Some(inner) => inner.on_iteration(event),
            None => ControlFlow::Continue(()),
        }
    }

    fn on_phase(&mut self, phase: FitPhase, secs: f64) {
        self.metrics.phase_ns[phase.index()].record(secs_to_ns(secs));
        if phase == FitPhase::Iterate {
            // Every solver closes exactly one Iterate span per fit (the
            // session stamps it in `finish`), so it doubles as the
            // completed-fit marker.
            self.metrics.fits.inc();
        }
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_phase(phase, secs);
        }
    }

    fn on_input_shape(&mut self, nnz: u64, num_cells: u64, sparse_path: bool) {
        self.metrics.record_input_shape(nnz, num_cells);
        self.metrics.sparse_dispatch.set(i64::from(sparse_path));
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_input_shape(nnz, num_cells, sparse_path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::CancelToken;

    #[test]
    fn records_iterations_and_phases() {
        let registry = MetricsRegistry::new();
        let metrics = FitMetrics::register(&registry, "fit");
        let mut obs = MetricsObserver::new(&metrics);
        let event = IterationEvent {
            iteration: 1,
            criterion: 1.0,
            data_norm_sq: 2.0,
            iteration_secs: 0.5,
            elapsed_secs: 0.5,
        };
        assert!(obs.on_iteration(&event).is_continue());
        obs.on_phase(FitPhase::Compress, 0.25);
        obs.on_phase(FitPhase::Iterate, 0.5);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("fit_iterations_total"), Some(1));
        assert_eq!(snap.counter("fit_fits_total"), Some(1), "Iterate span marks the fit");
        let iter_ns = snap.histogram("fit_iteration_ns").unwrap();
        assert_eq!(iter_ns.count, 1);
        assert_eq!(iter_ns.max, 500_000_000);
        assert_eq!(snap.histogram("fit_phase_compress_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("fit_phase_finalize_ns").unwrap().count, 0);
    }

    #[test]
    fn wrap_preserves_inner_stop_decision() {
        let registry = MetricsRegistry::new();
        let metrics = FitMetrics::register(&registry, "fit");
        let mut inner = CancelToken::new();
        inner.cancel();
        let mut obs = MetricsObserver::wrap(&metrics, &mut inner);
        let event = IterationEvent {
            iteration: 1,
            criterion: 1.0,
            data_norm_sq: 2.0,
            iteration_secs: 0.1,
            elapsed_secs: 0.1,
        };
        assert_eq!(obs.on_iteration(&event), ControlFlow::Break(StopReason::Cancelled));
        // The metric still recorded the iteration that was cancelled.
        assert_eq!(metrics.iterations.get(), 1);
    }

    #[test]
    fn input_shape_gauges_record_nnz_and_density() {
        let registry = MetricsRegistry::new();
        let metrics = FitMetrics::register(&registry, "fit");
        metrics.record_input_shape(250, 1_000_000);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("fit_input_nnz"), Some(250));
        assert_eq!(snap.gauge("fit_input_density_ppm"), Some(250));

        // Dense fits report full density; empty tensors report zero.
        metrics.record_input_shape(42, 42);
        assert_eq!(registry.snapshot().gauge("fit_input_density_ppm"), Some(1_000_000));
        metrics.record_input_shape(0, 0);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("fit_input_nnz"), Some(0));
        assert_eq!(snap.gauge("fit_input_density_ppm"), Some(0));

        // Counts beyond i64 saturate instead of wrapping.
        metrics.record_input_shape(u64::MAX, u64::MAX);
        assert_eq!(registry.snapshot().gauge("fit_input_nnz"), Some(i64::MAX));
    }

    #[test]
    fn input_shape_hook_records_dispatch_decision() {
        let registry = MetricsRegistry::new();
        let metrics = FitMetrics::register(&registry, "fit");
        let mut obs = MetricsObserver::new(&metrics);
        obs.on_input_shape(17, 1_000, true);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("fit_input_nnz"), Some(17));
        assert_eq!(snap.gauge("fit_input_density_ppm"), Some(17_000));
        assert_eq!(snap.gauge("fit_sparse_dispatch"), Some(1));
        obs.on_input_shape(1_000, 1_000, false);
        assert_eq!(registry.snapshot().gauge("fit_sparse_dispatch"), Some(0));
    }

    #[test]
    fn secs_to_ns_saturates_sanely() {
        assert_eq!(secs_to_ns(-1.0), 0);
        assert_eq!(secs_to_ns(0.0), 0);
        assert_eq!(secs_to_ns(1e-9), 1);
        assert!(secs_to_ns(f64::MAX) == u64::MAX);
    }
}
