//! The PARAFAC2 model container and the paper's fitness metric (§IV-A).

use crate::session::{FitPhase, PhaseSpans, StopReason};
use dpar2_linalg::Mat;
use dpar2_tensor::IrregularTensor;

/// Wall-clock breakdown of a decomposition run, in the categories the
/// paper's evaluation reports (Fig. 9: preprocessing time and per-iteration
/// time; Fig. 1/11: total time).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimingBreakdown {
    /// Seconds spent in preprocessing (DPar2: two-stage compression;
    /// RD-ALS: concatenated SVD; others: 0).
    pub preprocess_secs: f64,
    /// Seconds spent across all ALS iterations.
    pub iterations_secs: f64,
    /// Per-iteration wall-clock seconds.
    pub per_iteration_secs: Vec<f64>,
    /// Total seconds (preprocessing + iterations + factor recovery).
    pub total_secs: f64,
}

impl TimingBreakdown {
    /// Builds the breakdown as a view over a session's recorded
    /// [`PhaseSpans`]: `preprocess_secs` is the [`FitPhase::Compress`]
    /// span, `iterations_secs` the sum of the per-iteration wall-clocks.
    /// `total_secs` stays an explicit wall-clock measurement (it also
    /// covers setup that no span names).
    pub fn from_spans(
        phases: &PhaseSpans,
        per_iteration_secs: Vec<f64>,
        total_secs: f64,
    ) -> TimingBreakdown {
        TimingBreakdown {
            preprocess_secs: phases.get(FitPhase::Compress),
            iterations_secs: per_iteration_secs.iter().sum(),
            per_iteration_secs,
            total_secs,
        }
    }

    /// Mean seconds per iteration (0 if no iterations ran).
    pub fn mean_iteration_secs(&self) -> f64 {
        if self.per_iteration_secs.is_empty() {
            0.0
        } else {
            self.iterations_secs / self.per_iteration_secs.len() as f64
        }
    }
}

/// A fitted PARAFAC2 model `X_k ≈ U_k S_k Vᵀ` plus solver diagnostics.
///
/// Produced by [`crate::Dpar2`] and by every baseline solver in
/// `dpar2-baselines`, so harness code can treat all methods uniformly.
///
/// `PartialEq` compares every field with `f64` equality (so `NaN != NaN`
/// and `-0.0 == 0.0`, as usual for floats). The `dpar2-serve` persistence
/// layer preserves the underlying bits exactly, hence
/// `load(save(fit)) == fit` for any NaN-free fit — which every solver in
/// this workspace produces.
#[derive(Debug, Clone, PartialEq)]
pub struct Parafac2Fit {
    /// Per-slice factor `U_k ∈ R^{I_k×R}` (`U_k = Q_k H`).
    pub u: Vec<Mat>,
    /// Per-slice diagonal weights `diag(S_k)`, each of length `R`.
    pub s: Vec<Vec<f64>>,
    /// Shared right factor `V ∈ R^{J×R}`.
    pub v: Mat,
    /// Shared `H ∈ R^{R×R}` (`U_k = Q_k H`); stored for analyses that need
    /// the `Q_k` (e.g. reconstructing orthonormal bases).
    pub h: Mat,
    /// Number of ALS iterations executed.
    pub iterations: usize,
    /// Convergence-criterion value after each iteration (whatever criterion
    /// the producing solver uses; DPar2: compressed residual).
    pub criterion_trace: Vec<f64>,
    /// Why the iteration loop ended (typed — convergence, iteration budget,
    /// observer cancellation, or wall-clock budget).
    pub stop_reason: StopReason,
    /// Wall-clock breakdown.
    pub timing: TimingBreakdown,
}

impl Parafac2Fit {
    /// Target rank `R`.
    pub fn rank(&self) -> usize {
        self.v.cols()
    }

    /// Number of slices `K`.
    pub fn k(&self) -> usize {
        self.u.len()
    }

    /// Reconstructs slice `k` as `U_k S_k Vᵀ`.
    pub fn reconstruct_slice(&self, k: usize) -> Mat {
        let mut out = Mat::default();
        self.reconstruct_slice_into(k, &mut Mat::default(), &mut out);
        out
    }

    /// [`Parafac2Fit::reconstruct_slice`] into caller-owned buffers:
    /// `scaled` receives `U_k S_k`, `out` the reconstruction — zero
    /// allocations once both have capacity (the fitness loop reuses one
    /// pair across all slices).
    pub fn reconstruct_slice_into(&self, k: usize, scaled: &mut Mat, out: &mut Mat) {
        scaled.copy_from(&self.u[k]);
        for i in 0..scaled.rows() {
            let row = scaled.row_mut(i);
            for (c, &sv) in self.s[k].iter().enumerate() {
                row[c] *= sv;
            }
        }
        scaled.matmul_nt_into(&self.v, out);
    }

    /// The paper's fitness metric (§IV-A):
    ///
    /// ```text
    /// fitness = 1 − Σ_k ‖X_k − X̂_k‖²_F / Σ_k ‖X_k‖²_F
    /// ```
    ///
    /// 1.0 means perfect reconstruction.
    pub fn fitness(&self, tensor: &IrregularTensor) -> f64 {
        fitness(tensor, self)
    }

    /// Sum of squared reconstruction errors `Σ_k ‖X_k − X̂_k‖²_F`. Runs on
    /// two reused scratch buffers (one `U_k S_k`, one reconstruction) and
    /// zero-copy tensor slice views, so no factor matrix is cloned.
    pub fn reconstruction_error_sq(&self, tensor: &IrregularTensor) -> f64 {
        assert_eq!(tensor.k(), self.k(), "fit and tensor have different K");
        let mut scaled = Mat::default();
        let mut model = Mat::default();
        let mut total = 0.0;
        for k in 0..tensor.k() {
            self.reconstruct_slice_into(k, &mut scaled, &mut model);
            total += tensor.slice(k).diff_norm_sq(&model);
        }
        total
    }
}

/// Standalone fitness evaluation (see [`Parafac2Fit::fitness`]).
pub fn fitness(tensor: &IrregularTensor, fit: &Parafac2Fit) -> f64 {
    1.0 - fit.reconstruction_error_sq(tensor) / tensor.fro_norm_sq()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_linalg::qr;
    use dpar2_linalg::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds an exact PARAFAC2 model and its tensor: fitness must be 1.
    fn exact_model(seed: u64) -> (IrregularTensor, Parafac2Fit) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = 3;
        let j = 10;
        let h = gaussian_mat(r, r, &mut rng);
        let v = gaussian_mat(j, r, &mut rng);
        let row_dims = [12usize, 20, 8];
        let mut u = Vec::new();
        let mut s = Vec::new();
        let mut slices = Vec::new();
        for &ik in &row_dims {
            let q = qr::qr(gaussian_mat(ik, r, &mut rng)).q;
            let uk = q.matmul(&h).unwrap();
            let sk: Vec<f64> = (0..r).map(|i| 1.0 + i as f64 * 0.5).collect();
            let mut us = uk.clone();
            for i in 0..ik {
                let row = us.row_mut(i);
                for (c, &sv) in sk.iter().enumerate() {
                    row[c] *= sv;
                }
            }
            slices.push(us.matmul_nt(&v).unwrap());
            u.push(uk);
            s.push(sk);
        }
        let fit = Parafac2Fit {
            u,
            s,
            v,
            h,
            iterations: 0,
            criterion_trace: vec![],
            stop_reason: StopReason::Converged,
            timing: TimingBreakdown::default(),
        };
        (IrregularTensor::new(slices), fit)
    }

    #[test]
    fn fitness_of_exact_model_is_one() {
        let (t, fit) = exact_model(301);
        let f = fit.fitness(&t);
        assert!((f - 1.0).abs() < 1e-10, "fitness {f}");
    }

    #[test]
    fn fitness_decreases_with_perturbation() {
        let (t, mut fit) = exact_model(302);
        let base = fit.fitness(&t);
        // Perturb V.
        let mut rng = StdRng::seed_from_u64(303);
        fit.v.axpy(0.1, &gaussian_mat(fit.v.rows(), fit.v.cols(), &mut rng));
        let perturbed = fit.fitness(&t);
        assert!(perturbed < base, "perturbation should reduce fitness ({perturbed} vs {base})");
    }

    #[test]
    fn reconstruct_slice_shape() {
        let (t, fit) = exact_model(304);
        for k in 0..t.k() {
            assert_eq!(fit.reconstruct_slice(k).shape(), (t.i(k), t.j()));
        }
    }

    #[test]
    fn timing_mean() {
        let t = TimingBreakdown {
            preprocess_secs: 1.0,
            iterations_secs: 3.0,
            per_iteration_secs: vec![1.0, 1.0, 1.0],
            total_secs: 4.0,
        };
        assert!((t.mean_iteration_secs() - 1.0).abs() < 1e-12);
        assert_eq!(TimingBreakdown::default().mean_iteration_secs(), 0.0);
    }

    #[test]
    fn rank_and_k_accessors() {
        let (t, fit) = exact_model(305);
        assert_eq!(fit.rank(), 3);
        assert_eq!(fit.k(), t.k());
    }
}
