//! Configuration for the DPar2 solver.

use dpar2_rsvd::RsvdConfig;

/// Tuning knobs for [`crate::Dpar2`], defaulted to the paper's experimental
/// settings (§IV-A): maximum 32 iterations, randomized-SVD rank equal to the
/// PARAFAC2 target rank.
#[derive(Debug, Clone, Copy)]
pub struct Dpar2Config {
    /// Target rank `R` of the PARAFAC2 decomposition.
    pub rank: usize,
    /// Upper bound on ALS iterations (paper: 32).
    pub max_iterations: usize,
    /// Relative-change convergence threshold on the compressed criterion
    /// `Σ_k ‖P_k Z_kᵀ F(k) E Dᵀ − H S_k Vᵀ‖²_F`; iteration stops when the
    /// criterion "ceases to decrease" by more than this fraction.
    pub tolerance: f64,
    /// Worker threads for the compression stage and per-slice updates
    /// (paper: 6).
    pub threads: usize,
    /// RNG seed — drives the Gaussian test matrices of both compression
    /// stages; fixing it makes the whole decomposition deterministic.
    pub seed: u64,
    /// Randomized-SVD parameters (oversampling, power iterations).
    pub rsvd: RsvdConfig,
}

impl Dpar2Config {
    /// Default configuration for a given target rank: 32 max iterations,
    /// 1e-4 relative tolerance, single-threaded, seed 0.
    pub fn new(rank: usize) -> Self {
        Dpar2Config {
            rank,
            max_iterations: 32,
            tolerance: 1e-4,
            threads: 1,
            seed: 0,
            rsvd: RsvdConfig::new(rank),
        }
    }

    /// Sets the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.rsvd = RsvdConfig { rank: self.rank, ..self.rsvd };
        self
    }

    /// Sets the iteration budget.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the convergence tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = Dpar2Config::new(10);
        assert_eq!(c.rank, 10);
        assert_eq!(c.max_iterations, 32);
        assert_eq!(c.rsvd.rank, 10);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn builder_chain() {
        let c = Dpar2Config::new(5)
            .with_threads(6)
            .with_seed(42)
            .with_max_iterations(10)
            .with_tolerance(1e-6);
        assert_eq!(c.threads, 6);
        assert_eq!(c.seed, 42);
        assert_eq!(c.max_iterations, 10);
        assert_eq!(c.tolerance, 1e-6);
    }
}
