//! The shared fit configuration for every PARAFAC2 solver.
//!
//! [`FitOptions`] is the single builder driving DPar2 **and** all baseline
//! solvers (`dpar2-baselines`), defaulted to the paper's experimental
//! settings (§IV-A): maximum 32 iterations, 1e-4 tolerance, randomized-SVD
//! rank equal to the PARAFAC2 target rank. It replaces the former
//! `Dpar2Config` / `AlsConfig` pair; see the README's "Solver API" section
//! for the call-site mapping.

use crate::fitness::Parafac2Fit;
use dpar2_rsvd::RsvdConfig;
use std::time::Duration;

/// Configuration for a single fit, shared by every
/// [`crate::Parafac2Solver`] implementation.
///
/// The lifetime `'a` only constrains the optional [warm
/// start](FitOptions::warm_start); options without one are `'static` and
/// can be stored freely (e.g. inside [`crate::StreamingDpar2`]).
#[derive(Debug, Clone, Copy)]
pub struct FitOptions<'a> {
    /// Target rank `R` of the PARAFAC2 decomposition.
    pub rank: usize,
    /// Upper bound on ALS iterations (paper: 32).
    pub max_iterations: usize,
    /// Relative-change convergence threshold on the solver's criterion
    /// (DPar2: the compressed residual; baselines: the true reconstruction
    /// error). Iteration stops when the criterion "ceases to decrease" by
    /// more than this fraction, or is already ≤ `tolerance · ‖X‖²`.
    pub tolerance: f64,
    /// Worker threads for compression, per-slice updates, and the pooled
    /// convergence checks (paper: 6).
    pub threads: usize,
    /// RNG seed — drives the Gaussian test matrices of the randomized
    /// pieces; fixing it makes a deterministic solver fully reproducible.
    pub seed: u64,
    /// Randomized-SVD parameters (oversampling, power iterations). The
    /// rank used by the compression stages always follows
    /// [`FitOptions::rank`]; only the other knobs of this struct apply.
    pub rsvd: RsvdConfig,
    /// Optional wall-clock budget for the iteration phase. Checked after
    /// every completed iteration: the first iteration always runs (a zero
    /// budget yields exactly one iteration), then the fit stops with
    /// [`crate::StopReason::TimeBudget`] once the budget is exhausted.
    pub time_budget: Option<Duration>,
    /// Optional warm start: initialize `H`, `V`, and the slice weights from
    /// a previous fit instead of the solver's cold-start rule. The fit may
    /// cover fewer slices than the tensor (newcomers start at unit
    /// weights — the streaming semantics); rank and column dimension must
    /// match or the fit returns [`crate::Dpar2Error::WarmStart`].
    pub warm_start: Option<&'a Parafac2Fit>,
    /// Adaptive-rank escape hatch: when set to a fraction in `(0, 1]`,
    /// [`crate::Dpar2`] probes the spectrum of the stacked tensor before
    /// compression and **lowers** [`rank`](FitOptions::rank) to the
    /// smallest value capturing that fraction of the spectral energy
    /// (never raising it — `rank` stays the cap). Trades `R` for speed on
    /// tensors whose energy concentrates in few components; see
    /// `dpar2_rsvd::svd_truncated_energy`.
    ///
    /// Honored by `Dpar2::fit` / `fit_observed` only. The baselines and
    /// `StreamingDpar2::refit` (whose rank is fixed by the compressed
    /// state it extends) ignore it. A warm start fixes the rank too, so
    /// combining it with `rank_energy` returns
    /// [`crate::Dpar2Error::WarmStart`] if the adapted rank diverges from
    /// the warm fit's.
    pub rank_energy: Option<f64>,
    /// Density threshold for sparse auto-dispatch, default `None` (off).
    /// When set, `dpar2_baselines::fit_with` sparsifies a dense input
    /// whose nonzero density falls strictly below this fraction and routes
    /// DPar2 through [`crate::Dpar2::fit_sparse`] (O(nnz) compression);
    /// the decision is recorded on the fit metrics' `sparse_dispatch`
    /// gauge. Solvers called directly ignore it — the entry point you call
    /// (`fit` vs `fit_sparse`) already picks the path.
    pub sparse_threshold: Option<f64>,
}

impl FitOptions<'static> {
    /// Default options for a given target rank: 32 max iterations, 1e-4
    /// relative tolerance, single-threaded, seed 0, no time budget, no
    /// warm start.
    pub fn new(rank: usize) -> Self {
        FitOptions {
            rank,
            max_iterations: 32,
            tolerance: 1e-4,
            threads: 1,
            seed: 0,
            rsvd: RsvdConfig::new(rank),
            time_budget: None,
            warm_start: None,
            rank_energy: None,
            sparse_threshold: None,
        }
    }
}

impl<'a> FitOptions<'a> {
    /// Sets the target rank (keeps the randomized-SVD rank in sync).
    pub fn with_rank(mut self, rank: usize) -> Self {
        self.rank = rank;
        self.rsvd = RsvdConfig { rank, ..self.rsvd };
        self
    }

    /// Sets the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the iteration budget.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the convergence tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Sets the randomized-SVD parameters (oversampling, power iterations).
    pub fn with_rsvd(mut self, rsvd: RsvdConfig) -> Self {
        self.rsvd = rsvd;
        self
    }

    /// Sets a wall-clock budget for the iteration phase.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Warm-starts the fit from a previous model's factors.
    pub fn with_warm_start(self, fit: &Parafac2Fit) -> FitOptions<'_> {
        FitOptions { warm_start: Some(fit), ..self }
    }

    /// Enables adaptive rank selection at the given spectral-energy
    /// fraction (see [`FitOptions::rank_energy`]).
    pub fn with_rank_energy(mut self, threshold: f64) -> Self {
        self.rank_energy = Some(threshold);
        self
    }

    /// Enables sparse auto-dispatch below the given density fraction (see
    /// [`FitOptions::sparse_threshold`]).
    pub fn with_sparse_threshold(mut self, threshold: f64) -> Self {
        self.sparse_threshold = Some(threshold);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = FitOptions::new(10);
        assert_eq!(o.rank, 10);
        assert_eq!(o.max_iterations, 32);
        assert_eq!(o.rsvd.rank, 10);
        assert_eq!(o.threads, 1);
        assert!(o.time_budget.is_none());
        assert!(o.warm_start.is_none());
    }

    #[test]
    fn builder_chain() {
        let o = FitOptions::new(5)
            .with_threads(6)
            .with_seed(42)
            .with_max_iterations(10)
            .with_tolerance(1e-6)
            .with_time_budget(Duration::from_millis(250));
        assert_eq!(o.threads, 6);
        assert_eq!(o.seed, 42);
        assert_eq!(o.max_iterations, 10);
        assert_eq!(o.tolerance, 1e-6);
        assert_eq!(o.time_budget, Some(Duration::from_millis(250)));
    }

    #[test]
    fn with_rank_keeps_rsvd_in_sync() {
        let o = FitOptions::new(5).with_rank(8);
        assert_eq!(o.rank, 8);
        assert_eq!(o.rsvd.rank, 8);
    }

    #[test]
    fn rank_energy_defaults_off_and_chains() {
        assert!(FitOptions::new(5).rank_energy.is_none());
        let o = FitOptions::new(5).with_rank_energy(0.95);
        assert_eq!(o.rank_energy, Some(0.95));
    }

    #[test]
    fn sparse_threshold_defaults_off_and_chains() {
        assert!(FitOptions::new(5).sparse_threshold.is_none());
        let o = FitOptions::new(5).with_sparse_threshold(1e-2);
        assert_eq!(o.sparse_threshold, Some(1e-2));
    }
}
