//! The compressed convergence criterion (§III-E, "Convergence Criterion").
//!
//! Measuring the true reconstruction error `Σ_k ‖X_k − X̂_k‖²_F` costs
//! `O(Σ_k I_k J R)` time per iteration — as much as the whole preprocessing.
//! The paper's trick: because the update process minimizes the distance to
//! the *compressed* slices, and `Q_k` has orthonormal columns, the residual
//!
//! ```text
//! Σ_k ‖P_k Z_kᵀ F(k) E Dᵀ − H S_k Vᵀ‖²_F
//!   = Σ_k ‖A_k F(k) E Dᵀ − Q_k H S_k Vᵀ‖²_F
//! ```
//!
//! involves only `R×J` matrices — `O(J K R²)` time, `O(J R)` transient
//! space. (Unitary invariance of the Frobenius norm plus `P_kᵀP_k = I`,
//! `Z_k Z_kᵀ = I` gives the equality; see the derivation in §III-E.)

use crate::session::Workspace;
use dpar2_linalg::Mat;
use dpar2_parallel::ThreadPool;

/// One slice's compressed residual `‖PZF_k·EDᵀ − H S_k Vᵀ‖²_F`, computed
/// into caller-owned scratch buffers. Shared by the serial (workspace) and
/// pooled paths, so both produce bit-identical per-slice values.
#[allow(clippy::too_many_arguments)]
fn slice_residual_sq(
    pzf_k: &Mat,
    edt: &Mat,
    h: &Mat,
    wrow: &[f64],
    v: &Mat,
    yk: &mut Mat,
    hs: &mut Mat,
    model: &mut Mat,
) -> f64 {
    // ŷ_k = PZF_k · E Dᵀ  (R×J)
    pzf_k.matmul_into(edt, yk);
    // H S_k: scale column c of H by W(k, c).
    hs.copy_from(h);
    for i in 0..hs.rows() {
        let row = hs.row_mut(i);
        for (c, &wv) in wrow.iter().enumerate() {
            row[c] *= wv;
        }
    }
    // model_k = H S_k Vᵀ (R×J), then the fused difference-norm
    // (`MatRef::diff_norm_sq` carries the bit-identity ordering guarantee).
    hs.matmul_nt_into(v, model);
    yk.view().diff_norm_sq(&*model)
}

/// Evaluates the compressed residual
/// `Σ_k ‖PZF_k · E Dᵀ − H · diag(W(k,:)) · Vᵀ‖²_F`.
///
/// * `pzf[k] = P_k Z_kᵀ F(k) ∈ R^{R×R}`
/// * `edt = E Dᵀ ∈ R^{R×J}`
/// * `h ∈ R^{R×R}`, `w ∈ R^{K×R}` (row `k` is `diag(S_k)`), `v ∈ R^{J×R}`
pub fn compressed_criterion(
    pzf: &[Mat],
    edt: &Mat,
    h: &Mat,
    w: &Mat,
    v: &Mat,
    pool: &ThreadPool,
) -> f64 {
    compressed_criterion_ws(pzf, edt, h, w, v, pool, &mut Workspace::new())
}

/// [`compressed_criterion`] against a caller-owned [`Workspace`]: the
/// single-threaded path reuses the arena's criterion buffers and performs
/// zero allocations; multi-threaded pools fan slices out as before.
/// Bit-identical to [`compressed_criterion`] for every thread count.
pub fn compressed_criterion_ws(
    pzf: &[Mat],
    edt: &Mat,
    h: &Mat,
    w: &Mat,
    v: &Mat,
    pool: &ThreadPool,
    ws: &mut Workspace,
) -> f64 {
    if pool.threads() == 1 {
        let mut total = 0.0;
        for (k, pzf_k) in pzf.iter().enumerate() {
            total += slice_residual_sq(
                pzf_k,
                edt,
                h,
                w.row(k),
                v,
                &mut ws.crit_pred,
                &mut ws.crit_hs,
                &mut ws.crit_model,
            );
        }
        return total;
    }
    let partial: Vec<f64> = pool.map(pzf, |k, pzf_k| {
        let (mut yk, mut hs, mut model) = (Mat::default(), Mat::default(), Mat::default());
        slice_residual_sq(pzf_k, edt, h, w.row(k), v, &mut yk, &mut hs, &mut model)
    });
    partial.iter().sum()
}

/// The naive equivalent on explicit matrices — `Σ_k ‖Y_k − H S_k Vᵀ‖²_F`
/// with caller-materialized `Y_k`. Used as a test oracle and by the
/// RD-ALS-style baselines that keep explicit reduced slices.
pub fn explicit_criterion(y: &[Mat], h: &Mat, w: &Mat, v: &Mat) -> f64 {
    let r = h.rows();
    let mut total = 0.0;
    let mut hs = Mat::default();
    let mut model = Mat::default();
    for (k, yk) in y.iter().enumerate() {
        hs.copy_from(h);
        let wrow = w.row(k);
        for i in 0..r {
            let row = hs.row_mut(i);
            for (c, &wv) in wrow.iter().enumerate() {
                row[c] *= wv;
            }
        }
        hs.matmul_nt_into(v, &mut model);
        total += (yk - &model).fro_norm_sq();
    }
    total
}

/// Shared stopping rule for every ALS-family solver: stop when the squared
/// criterion `err` ceases to decrease relative to `prev` by more than `tol`,
/// or when it is already negligible against the data norm (`err ≤ tol·‖X‖²`,
/// i.e. fitness ≥ 1 − tol under this repo's `1 − residual²/‖X‖²` fitness
/// convention). Without the absolute test, ALS "swamps" that keep shaving
/// ~1% per iteration off an already-converged solution never terminate.
///
/// DPar2 applies this to the compressed criterion and the baselines to the
/// true reconstruction error (via [`crate::FitSession`]), so cross-method
/// timing comparisons measure algorithmic cost rather than differing
/// stopping rules.
pub fn converged(prev: Option<f64>, err: f64, data_norm_sq: f64, tol: f64) -> bool {
    err <= tol * data_norm_sq || prev.is_some_and(|p| (p - err) / p.max(1e-300) < tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_linalg::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converged_rule() {
        // Absolute branch: residual negligible against the data norm.
        assert!(converged(None, 1e-9, 1.0, 1e-4));
        // Relative branch: stalls by less than tol (absolute branch does
        // not fire: 9.9999 > 1e-4 · 1e4).
        assert!(converged(Some(10.0), 9.9999, 1.0e4, 1e-4));
        // Still making progress: keep going.
        assert!(!converged(Some(10.0), 8.0, 1.0e4, 1e-4));
        // First iteration with a non-negligible residual: keep going.
        assert!(!converged(None, 5.0, 1.0e4, 1e-4));
        // Zero tolerance only stops on an exactly-zero residual.
        assert!(!converged(Some(10.0), 9.9999, 1.0e4, 0.0));
        assert!(converged(None, 0.0, 1.0e4, 0.0));
    }

    #[test]
    fn matches_explicit_materialization() {
        let mut rng = StdRng::seed_from_u64(201);
        let (k, j, r) = (5, 9, 3);
        let pzf: Vec<Mat> = (0..k).map(|_| gaussian_mat(r, r, &mut rng)).collect();
        let edt = gaussian_mat(r, j, &mut rng);
        let h = gaussian_mat(r, r, &mut rng);
        let w = gaussian_mat(k, r, &mut rng);
        let v = gaussian_mat(j, r, &mut rng);
        let pool = ThreadPool::new(1);
        let fast = compressed_criterion(&pzf, &edt, &h, &w, &v, &pool);
        let y: Vec<Mat> = pzf.iter().map(|p| p.matmul(&edt).unwrap()).collect();
        let slow = explicit_criterion(&y, &h, &w, &v);
        assert!((fast - slow).abs() < 1e-9 * (1.0 + slow));
    }

    #[test]
    fn zero_when_model_exact() {
        // Construct PZF_k·EDᵀ = H S_k Vᵀ exactly, criterion must be 0.
        let mut rng = StdRng::seed_from_u64(202);
        let (j, r) = (8, 3);
        let h = gaussian_mat(r, r, &mut rng);
        let v = gaussian_mat(j, r, &mut rng);
        // Choose edt = Vᵀ and PZF_k = H·S_k, then PZF_k·EDᵀ = H S_k Vᵀ.
        let edt = v.transpose();
        let w = Mat::from_rows(&[&[1.0, 2.0, 0.5], &[0.3, 1.5, 2.2]]);
        let pzf: Vec<Mat> = (0..2)
            .map(|k| {
                let mut hs = h.clone();
                for i in 0..r {
                    let row = hs.row_mut(i);
                    for (c, &wv) in w.row(k).iter().enumerate() {
                        row[c] *= wv;
                    }
                }
                hs
            })
            .collect();
        let crit = compressed_criterion(&pzf, &edt, &h, &w, &v, &ThreadPool::new(2));
        assert!(crit < 1e-18, "criterion should vanish, got {crit}");
    }

    #[test]
    fn deterministic_across_threads() {
        let mut rng = StdRng::seed_from_u64(203);
        let (k, j, r) = (17, 6, 4);
        let pzf: Vec<Mat> = (0..k).map(|_| gaussian_mat(r, r, &mut rng)).collect();
        let edt = gaussian_mat(r, j, &mut rng);
        let h = gaussian_mat(r, r, &mut rng);
        let w = gaussian_mat(k, r, &mut rng);
        let v = gaussian_mat(j, r, &mut rng);
        let c1 = compressed_criterion(&pzf, &edt, &h, &w, &v, &ThreadPool::new(1));
        let c3 = compressed_criterion(&pzf, &edt, &h, &w, &v, &ThreadPool::new(3));
        assert!((c1 - c3).abs() < 1e-9 * (1.0 + c1));
    }

    #[test]
    fn nonnegative() {
        let mut rng = StdRng::seed_from_u64(204);
        let pzf = vec![gaussian_mat(2, 2, &mut rng)];
        let edt = gaussian_mat(2, 5, &mut rng);
        let h = gaussian_mat(2, 2, &mut rng);
        let w = gaussian_mat(1, 2, &mut rng);
        let v = gaussian_mat(5, 2, &mut rng);
        assert!(compressed_criterion(&pzf, &edt, &h, &w, &v, &ThreadPool::new(1)) >= 0.0);
    }
}
