//! Error type for the DPar2 solver.

use std::fmt;

/// Errors produced by the DPar2 pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dpar2Error {
    /// The target rank exceeds what a slice can support
    /// (`R > min(I_k, J)` for some `k`). The two-stage compression needs
    /// every `A_k` to have exactly `R` orthonormal columns.
    RankTooLarge {
        /// Requested target rank.
        rank: usize,
        /// Index of the offending slice.
        slice: usize,
        /// `min(I_k, J)` of that slice.
        limit: usize,
    },
    /// A zero target rank was requested.
    ZeroRank,
    /// A decomposition was requested before any data was ingested
    /// (e.g. [`StreamingDpar2::decompose`](crate::StreamingDpar2) with no
    /// appended slices). Long-lived serving workers treat this as a
    /// recoverable caller-ordering error, never a panic.
    Empty,
    /// A warm-start factor does not fit the tensor being decomposed
    /// (wrong rank, column dimension, or more slices than the data).
    WarmStart {
        /// Which factor is inconsistent (`"H"`, `"V"`, or `"W"`).
        factor: &'static str,
        /// Shape the solver needs.
        expected: (usize, usize),
        /// Shape the warm start carries.
        got: (usize, usize),
    },
    /// An underlying linear-algebra routine failed.
    Linalg(dpar2_linalg::LinalgError),
}

impl fmt::Display for Dpar2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dpar2Error::RankTooLarge { rank, slice, limit } => {
                write!(f, "target rank {rank} exceeds min(I_k, J) = {limit} of slice {slice}")
            }
            Dpar2Error::ZeroRank => write!(f, "target rank must be positive"),
            Dpar2Error::Empty => write!(f, "no slices ingested yet (nothing to decompose)"),
            Dpar2Error::WarmStart { factor, expected, got } => write!(
                f,
                "warm-start factor {factor} has shape {}x{}, expected {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            Dpar2Error::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for Dpar2Error {}

impl From<dpar2_linalg::LinalgError> for Dpar2Error {
    fn from(e: dpar2_linalg::LinalgError) -> Self {
        Dpar2Error::Linalg(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Dpar2Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Dpar2Error::RankTooLarge { rank: 10, slice: 3, limit: 8 };
        assert_eq!(e.to_string(), "target rank 10 exceeds min(I_k, J) = 8 of slice 3");
        assert_eq!(Dpar2Error::ZeroRank.to_string(), "target rank must be positive");
        assert_eq!(Dpar2Error::Empty.to_string(), "no slices ingested yet (nothing to decompose)");
        let w = Dpar2Error::WarmStart { factor: "V", expected: (12, 3), got: (10, 3) };
        assert_eq!(w.to_string(), "warm-start factor V has shape 10x3, expected 12x3");
    }

    #[test]
    fn from_linalg_error() {
        let le = dpar2_linalg::LinalgError::Singular { op: "lu" };
        let e: Dpar2Error = le.clone().into();
        assert_eq!(e, Dpar2Error::Linalg(le));
    }
}
