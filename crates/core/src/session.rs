//! The unified solver surface: the [`Parafac2Solver`] trait, the
//! [`FitObserver`] callback API, and the per-fit loop controller
//! ([`FitSession`]) every ALS loop in this workspace drives its iterations
//! through.
//!
//! The paper's whole evaluation (Figs. 5–9, Table III) sweeps one algorithm
//! against three baselines under identical rank/iteration/tolerance
//! settings; streaming and constrained PARAFAC2 follow-ups assume a solver
//! abstraction with per-iteration hooks. This module is that abstraction:
//!
//! * every solver takes the same [`crate::FitOptions`] and produces the
//!   same [`crate::Parafac2Fit`];
//! * an observer sees one [`IterationEvent`] per completed iteration (live
//!   criterion/fitness traces, wall-clock) and can cancel cooperatively by
//!   returning [`ControlFlow::Break`];
//! * fits stop for a *typed* reason ([`StopReason`]) instead of silently
//!   truncating: convergence, iteration budget, observer cancellation, or
//!   wall-clock budget.

use crate::config::FitOptions;
use crate::convergence::converged;
use crate::error::Result;
use crate::fitness::Parafac2Fit;
use dpar2_linalg::{Mat, SvdFactors, SvdScratch};
use dpar2_tensor::{IrregularTensor, MttkrpScratch};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reusable scratch arena for one fit: every temporary an ALS iteration
/// needs — SVD working stores, lemma-kernel accumulators, criterion
/// buffers, factor-update staging — lives here as a named slot, sized
/// lazily on first use and reused verbatim afterwards.
///
/// The contract the allocation-regression suite (`tests/alloc_regression.rs`)
/// pins: after the first (warm-up) iteration has exercised every slot, a
/// steady-state single-threaded ALS iteration of DPar2 or RD-ALS performs
/// **zero heap allocations** — all arithmetic runs through `*_into` kernels
/// against these buffers (multi-threaded fits still allocate inside the
/// fan-out, which thread spawning makes unavoidable).
///
/// [`FitSession::workspace`] hands the arena to the solver loop; solvers
/// borrow individual fields when a helper needs several slots at once
/// (field-disjoint borrows keep the borrow checker happy without `RefCell`).
#[derive(Debug, Default)]
pub struct Workspace {
    /// Jacobi/QR working stores shared by every small SVD of the iteration.
    pub svd: SvdScratch,
    /// Primary SVD output slot (per-slice factors, `pinv` internals).
    pub svd_out: SvdFactors,
    /// Secondary SVD slot (full factorization before truncation).
    pub svd_tmp: SvdFactors,
    /// Unfolding/Khatri-Rao scratch for the textbook MTTKRP baselines.
    pub mttkrp: MttkrpScratch,
    /// Per-slice product scratch (`R×R` or `I_k×R` scale).
    pub slice_a: Mat,
    /// Second per-slice product scratch.
    pub slice_b: Mat,
    /// Criterion scratch: the model row-block `H S_k Vᵀ` (or `Q_k H S_k`).
    pub crit_hs: Mat,
    /// Criterion scratch: the predicted slice.
    pub crit_pred: Mat,
    /// Criterion scratch: the reconstructed slice.
    pub crit_model: Mat,
    /// Lemma-kernel running totals (one `R×R` accumulator per column).
    pub lemma_acc: Vec<Mat>,
    /// Lemma-kernel per-chunk partial sums.
    pub lemma_chunk: Vec<Mat>,
    /// Lemma-kernel dense temporary (`PZF_kᵀH`-sized).
    pub lemma_tmp: Mat,
    /// Column gather buffer (input side).
    pub col_in: Vec<f64>,
    /// Column result buffer (output side).
    pub col_out: Vec<f64>,
    /// Column norms from `normalize_columns_mut`.
    pub norms: Vec<f64>,
    /// Baseline scratch at `I_k×R` / `I_k×J` scale (targets, models).
    pub tall_a: Mat,
    /// Second tall baseline scratch.
    pub tall_b: Mat,
}

impl Workspace {
    /// A fresh, empty arena (all buffers zero-sized until first use).
    pub fn new() -> Self {
        Self::default()
    }
}

// Per-factor staging buffers (Gram operands, pseudoinverse outputs, the
// next factor value swapped in) deliberately live as solver locals, not
// arena slots: their shapes differ per factor, and a shared slot would
// re-grow as it ping-pongs between shapes (see the solvers' `next_h` /
// `next_v` / `next_w` trio).

/// Why a fit's iteration loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The convergence criterion ceased to decrease (or the residual is
    /// negligible against the data norm). "Ceased to decrease" is the
    /// paper's rule: a criterion that stalls — or wobbles *up* at rounding
    /// scale, as ALS traces do on converged swamps — reports this reason
    /// even at `tolerance = 0.0`.
    Converged,
    /// The iteration budget ([`FitOptions::max_iterations`]) was exhausted
    /// first. Also reported for a zero-iteration budget.
    MaxIterations,
    /// An observer returned [`ControlFlow::Break`].
    Cancelled,
    /// The wall-clock budget ([`FitOptions::time_budget`]) ran out.
    TimeBudget,
}

/// The phases a fit reports wall-clock for, refining the paper's timing
/// breakdown (Fig. 9: preprocessing vs. iterations) into the four spans a
/// telemetry consumer wants separated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitPhase {
    /// Compression/preprocessing: DPar2's two-stage compression, RD-ALS's
    /// concatenated SVD, the naive ablation's compress-and-reconstruct.
    Compress,
    /// Setup between compression and the first iteration: factor
    /// initialization (or warm-start validation), static precomputations,
    /// data-norm evaluation.
    Init,
    /// The ALS iteration loop (reported once, after the loop ends).
    Iterate,
    /// Post-loop factor recovery (`U_k = A_k Z_k P_kᵀ H` for DPar2).
    Finalize,
}

impl FitPhase {
    /// Number of phases (the length of [`FitPhase::ALL`]).
    pub const COUNT: usize = 4;

    /// All phases in execution order.
    pub const ALL: [FitPhase; FitPhase::COUNT] =
        [FitPhase::Compress, FitPhase::Init, FitPhase::Iterate, FitPhase::Finalize];

    /// Dense index in `0..COUNT` (execution order).
    pub fn index(self) -> usize {
        match self {
            FitPhase::Compress => 0,
            FitPhase::Init => 1,
            FitPhase::Iterate => 2,
            FitPhase::Finalize => 3,
        }
    }

    /// Lower-case phase name, used as a metric-name suffix.
    pub fn name(self) -> &'static str {
        match self {
            FitPhase::Compress => "compress",
            FitPhase::Init => "init",
            FitPhase::Iterate => "iterate",
            FitPhase::Finalize => "finalize",
        }
    }
}

/// Accumulated wall-clock per [`FitPhase`], recorded by a [`FitSession`]
/// as phases complete. [`crate::TimingBreakdown`] is a view over these
/// spans (see [`crate::TimingBreakdown::from_spans`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseSpans {
    secs: [f64; FitPhase::COUNT],
}

impl PhaseSpans {
    /// No recorded spans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `secs` to `phase`'s accumulated time.
    pub fn record(&mut self, phase: FitPhase, secs: f64) {
        self.secs[phase.index()] += secs;
    }

    /// Accumulated seconds for `phase`.
    pub fn get(&self, phase: FitPhase) -> f64 {
        self.secs[phase.index()]
    }

    /// Total seconds across all phases.
    pub fn total(&self) -> f64 {
        self.secs.iter().sum()
    }
}

/// Snapshot handed to [`FitObserver::on_iteration`] after each completed
/// ALS iteration.
#[derive(Debug, Clone)]
pub struct IterationEvent {
    /// 1-based index of the iteration that just completed.
    pub iteration: usize,
    /// Convergence-criterion value after this iteration (DPar2: compressed
    /// residual; baselines: true squared reconstruction error).
    pub criterion: f64,
    /// Squared norm the criterion is measured against (DPar2: compressed
    /// data norm; baselines: `‖X‖²_F`).
    pub data_norm_sq: f64,
    /// Wall-clock seconds of this iteration.
    pub iteration_secs: f64,
    /// Wall-clock seconds since the iteration loop started.
    pub elapsed_secs: f64,
}

impl IterationEvent {
    /// Live fitness under this repo's `1 − criterion/‖X‖²` convention
    /// (compressed fitness for DPar2, true fitness for the baselines).
    pub fn fitness(&self) -> f64 {
        1.0 - self.criterion / self.data_norm_sq
    }
}

/// Per-iteration callback threaded through every solver's ALS loop.
///
/// Observers see every completed iteration — including the one the solver
/// converges on — and may stop the fit cooperatively by returning
/// `ControlFlow::Break(reason)`; the fit then records that reason (unless
/// the same iteration also converged, in which case
/// [`StopReason::Converged`] wins) and returns the factors computed so far.
///
/// Closures work directly: any
/// `FnMut(&IterationEvent) -> ControlFlow<StopReason>` is an observer.
pub trait FitObserver {
    /// Called after each completed iteration.
    fn on_iteration(&mut self, event: &IterationEvent) -> ControlFlow<StopReason>;

    /// Called when a timed phase completes (preprocessing, iteration loop).
    /// Default: ignore.
    fn on_phase(&mut self, phase: FitPhase, secs: f64) {
        let _ = (phase, secs);
    }

    /// Called once at fit entry by every sparse-capable solver, describing
    /// the input tensor: `nnz` stored entries out of `num_cells`
    /// addressable cells (`nnz == num_cells` for dense fits), and whether
    /// the solver took its sparse path (`sparse_path`) — the dispatch
    /// decision `baselines::fit_with` records through the fit metrics.
    /// Default: ignore.
    fn on_input_shape(&mut self, nnz: u64, num_cells: u64, sparse_path: bool) {
        let _ = (nnz, num_cells, sparse_path);
    }
}

impl<F> FitObserver for F
where
    F: FnMut(&IterationEvent) -> ControlFlow<StopReason>,
{
    fn on_iteration(&mut self, event: &IterationEvent) -> ControlFlow<StopReason> {
        self(event)
    }
}

/// The do-nothing observer behind [`Parafac2Solver::fit`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl FitObserver for NoopObserver {
    fn on_iteration(&mut self, _event: &IterationEvent) -> ControlFlow<StopReason> {
        ControlFlow::Continue(())
    }
}

/// Shared cancellation flag usable as an observer.
///
/// Clone the token, hand one clone to the fit (it is itself a
/// [`FitObserver`]), keep the other; [`CancelToken::cancel`] from any
/// thread stops the fit at the next iteration boundary with
/// [`StopReason::Cancelled`]. `dpar2-serve`'s ingest worker uses this so a
/// shutdown never waits for a full refit.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (idempotent, thread-safe).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

impl FitObserver for CancelToken {
    fn on_iteration(&mut self, _event: &IterationEvent) -> ControlFlow<StopReason> {
        if self.is_cancelled() {
            ControlFlow::Break(StopReason::Cancelled)
        } else {
            ControlFlow::Continue(())
        }
    }
}

/// The uniform fitting interface implemented by DPar2 and every baseline
/// solver in `dpar2-baselines`.
///
/// Implementations are stateless handles — all per-fit settings travel in
/// [`FitOptions`] — so `Box<dyn Parafac2Solver>` registries (see
/// `dpar2_baselines::Method`) and sweep harnesses treat every method
/// identically. Conformance contract: for a fixed seed, fitting through a
/// trait object is bit-identical to calling the solver's inherent `fit`.
pub trait Parafac2Solver {
    /// Display name matching the paper's figures (e.g. `"DPar2"`).
    fn name(&self) -> &'static str;

    /// Fits the PARAFAC2 model, reporting each iteration to `observer`.
    ///
    /// # Errors
    /// Rank validation ([`crate::Dpar2Error::RankTooLarge`] / `ZeroRank`)
    /// and warm-start shape mismatches ([`crate::Dpar2Error::WarmStart`]).
    fn fit_observed(
        &self,
        tensor: &IrregularTensor,
        options: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
    ) -> Result<Parafac2Fit>;

    /// Fits without observation (a [`NoopObserver`] session).
    ///
    /// # Errors
    /// See [`Parafac2Solver::fit_observed`].
    fn fit(&self, tensor: &IrregularTensor, options: &FitOptions<'_>) -> Result<Parafac2Fit> {
        self.fit_observed(tensor, options, &mut NoopObserver)
    }
}

/// Loop controller for one fit: owns the criterion/timing traces and the
/// stopping decision (convergence, observer, time budget, iteration
/// budget), so every solver shares one implementation of the session
/// semantics.
///
/// Usage inside a solver:
///
/// ```text
/// let mut session = FitSession::new(&options, observer);
/// for _ in 0..options.max_iterations {
///     session.start_iteration();
///     /* ... one ALS iteration ... */
///     if session.finish_iteration(criterion, data_norm_sq) { break; }
/// }
/// let outcome = session.finish();
/// ```
pub struct FitSession<'o> {
    max_iterations: usize,
    tolerance: f64,
    time_budget: Option<Duration>,
    observer: &'o mut dyn FitObserver,
    t_loop: Instant,
    t_iter: Instant,
    criterion_trace: Vec<f64>,
    per_iteration_secs: Vec<f64>,
    stop: Option<StopReason>,
    workspace: Workspace,
    spans: PhaseSpans,
}

/// What a completed [`FitSession`] hands back to the solver.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Criterion value after each iteration.
    pub criterion_trace: Vec<f64>,
    /// Wall-clock seconds of each iteration.
    pub per_iteration_secs: Vec<f64>,
    /// Why the loop ended ([`StopReason::MaxIterations`] when the budget —
    /// possibly zero — ran out without any other stop).
    pub stop_reason: StopReason,
    /// Wall-clock recorded per phase (everything reported through
    /// [`FitSession::phase`], plus the [`FitPhase::Iterate`] span stamped
    /// by [`FitSession::finish`]). Solvers append post-loop spans (e.g.
    /// [`FitPhase::Finalize`]) before building the timing view.
    pub phases: PhaseSpans,
}

impl SessionOutcome {
    /// Number of iterations executed.
    pub fn iterations(&self) -> usize {
        self.criterion_trace.len()
    }

    /// Total seconds across all iterations.
    pub fn iterations_secs(&self) -> f64 {
        self.per_iteration_secs.iter().sum()
    }
}

impl<'o> FitSession<'o> {
    /// Opens a session for one fit.
    pub fn new(options: &FitOptions<'_>, observer: &'o mut dyn FitObserver) -> FitSession<'o> {
        let now = Instant::now();
        // Pre-reserve the traces so per-iteration pushes never reallocate
        // (capped: an absurd iteration budget must not pre-commit memory).
        let reserve = options.max_iterations.min(4096);
        FitSession {
            max_iterations: options.max_iterations,
            tolerance: options.tolerance,
            time_budget: options.time_budget,
            observer,
            t_loop: now,
            t_iter: now,
            criterion_trace: Vec::with_capacity(reserve),
            per_iteration_secs: Vec::with_capacity(reserve),
            stop: None,
            workspace: Workspace::new(),
            spans: PhaseSpans::new(),
        }
    }

    /// The session's scratch arena — the solver loop borrows it each
    /// iteration and runs its `*_into` kernels against the named slots.
    pub fn workspace(&mut self) -> &mut Workspace {
        &mut self.workspace
    }

    /// Records a completed timed phase (accumulated into the session's
    /// [`PhaseSpans`]) and reports it to the observer.
    pub fn phase(&mut self, phase: FitPhase, secs: f64) {
        self.spans.record(phase, secs);
        self.observer.on_phase(phase, secs);
    }

    /// Stamps the start of an iteration (for per-iteration wall-clock).
    pub fn start_iteration(&mut self) {
        self.t_iter = Instant::now();
    }

    /// Records a completed iteration and decides whether to stop.
    ///
    /// Order of precedence when several conditions trip on the same
    /// iteration: convergence, then observer cancellation, then the time
    /// budget, then the iteration budget. Returns `true` when the solver
    /// should leave its loop.
    pub fn finish_iteration(&mut self, criterion: f64, data_norm_sq: f64) -> bool {
        let iteration_secs = self.t_iter.elapsed().as_secs_f64();
        let prev = self.criterion_trace.last().copied();
        self.per_iteration_secs.push(iteration_secs);
        self.criterion_trace.push(criterion);

        let event = IterationEvent {
            iteration: self.criterion_trace.len(),
            criterion,
            data_norm_sq,
            iteration_secs,
            elapsed_secs: self.t_loop.elapsed().as_secs_f64(),
        };
        let observer_stop = match self.observer.on_iteration(&event) {
            ControlFlow::Break(reason) => Some(reason),
            ControlFlow::Continue(()) => None,
        };

        if converged(prev, criterion, data_norm_sq, self.tolerance) {
            self.stop = Some(StopReason::Converged);
        } else if let Some(reason) = observer_stop {
            self.stop = Some(reason);
        } else if self.time_budget.is_some_and(|b| self.t_loop.elapsed() >= b) {
            self.stop = Some(StopReason::TimeBudget);
        } else if self.criterion_trace.len() >= self.max_iterations {
            self.stop = Some(StopReason::MaxIterations);
        }
        self.stop.is_some()
    }

    /// Iterations recorded so far.
    pub fn iterations(&self) -> usize {
        self.criterion_trace.len()
    }

    /// Closes the session: stamps the [`FitPhase::Iterate`] span (wall
    /// time since the session opened), reports it to the observer, and
    /// returns the traces, recorded spans and the typed stop reason.
    pub fn finish(self) -> SessionOutcome {
        let Self { observer, t_loop, criterion_trace, per_iteration_secs, stop, mut spans, .. } =
            self;
        let iterate_secs = t_loop.elapsed().as_secs_f64();
        spans.record(FitPhase::Iterate, iterate_secs);
        observer.on_phase(FitPhase::Iterate, iterate_secs);
        SessionOutcome {
            criterion_trace,
            per_iteration_secs,
            stop_reason: stop.unwrap_or(StopReason::MaxIterations),
            phases: spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> FitOptions<'static> {
        FitOptions::new(2).with_tolerance(0.0).with_max_iterations(5)
    }

    /// Drives a fake loop of decreasing criteria through a session.
    fn drive(
        opts: &FitOptions<'_>,
        observer: &mut dyn FitObserver,
        crits: &[f64],
    ) -> SessionOutcome {
        let mut session = FitSession::new(opts, observer);
        for &c in crits.iter().take(opts.max_iterations) {
            session.start_iteration();
            if session.finish_iteration(c, 100.0) {
                break;
            }
        }
        session.finish()
    }

    #[test]
    fn exhausting_the_budget_is_max_iterations() {
        let out = drive(&options(), &mut NoopObserver, &[5.0, 4.0, 3.0, 2.0, 1.0, 0.5]);
        assert_eq!(out.stop_reason, StopReason::MaxIterations);
        assert_eq!(out.iterations(), 5);
        assert_eq!(out.criterion_trace, vec![5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(out.per_iteration_secs.len(), 5);
    }

    #[test]
    fn zero_iteration_budget_never_enters_the_loop() {
        let opts = options().with_max_iterations(0);
        let out = drive(&opts, &mut NoopObserver, &[5.0, 4.0]);
        assert_eq!(out.stop_reason, StopReason::MaxIterations);
        assert_eq!(out.iterations(), 0);
    }

    #[test]
    fn relative_stall_is_converged() {
        let opts = options().with_tolerance(1e-3);
        let out = drive(&opts, &mut NoopObserver, &[5.0, 5.0, 4.0]);
        assert_eq!(out.stop_reason, StopReason::Converged);
        assert_eq!(out.iterations(), 2);
    }

    #[test]
    fn observer_break_is_cancelled_with_exact_count() {
        let mut calls = 0usize;
        let mut obs = |_e: &IterationEvent| {
            calls += 1;
            if calls == 3 {
                ControlFlow::Break(StopReason::Cancelled)
            } else {
                ControlFlow::Continue(())
            }
        };
        let out = drive(&options(), &mut obs, &[5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(out.stop_reason, StopReason::Cancelled);
        assert_eq!(out.iterations(), 3);
    }

    #[test]
    fn convergence_beats_observer_break_on_the_same_iteration() {
        let opts = options().with_tolerance(1e-2);
        let mut obs = |_e: &IterationEvent| ControlFlow::Break(StopReason::Cancelled);
        // First iteration: criterion 0 ≤ tol·norm → absolute convergence.
        let out = drive(&opts, &mut obs, &[0.0]);
        assert_eq!(out.stop_reason, StopReason::Converged);
    }

    #[test]
    fn zero_time_budget_stops_after_first_iteration() {
        let opts = options().with_time_budget(Duration::ZERO);
        let out = drive(&opts, &mut NoopObserver, &[5.0, 4.0, 3.0]);
        assert_eq!(out.stop_reason, StopReason::TimeBudget);
        assert_eq!(out.iterations(), 1);
    }

    #[test]
    fn observer_sees_every_iteration_with_live_fitness() {
        let mut events: Vec<(usize, f64)> = Vec::new();
        let mut obs = |e: &IterationEvent| {
            events.push((e.iteration, e.fitness()));
            ControlFlow::Continue(())
        };
        let out = drive(&options().with_max_iterations(3), &mut obs, &[50.0, 40.0, 30.0]);
        assert_eq!(out.iterations(), 3);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0], (1, 1.0 - 50.0 / 100.0));
        assert_eq!(events[2], (3, 1.0 - 30.0 / 100.0));
    }

    #[test]
    fn cancel_token_stops_a_session() {
        let token = CancelToken::new();
        let mut obs = token.clone();
        token.cancel();
        let out = drive(&options(), &mut obs, &[5.0, 4.0, 3.0]);
        assert_eq!(out.stop_reason, StopReason::Cancelled);
        assert_eq!(out.iterations(), 1);
        assert!(token.is_cancelled());
    }

    #[test]
    fn phases_reach_the_observer() {
        struct PhaseLog(Vec<FitPhase>);
        impl FitObserver for PhaseLog {
            fn on_iteration(&mut self, _e: &IterationEvent) -> ControlFlow<StopReason> {
                ControlFlow::Continue(())
            }
            fn on_phase(&mut self, phase: FitPhase, _secs: f64) {
                self.0.push(phase);
            }
        }
        let mut log = PhaseLog(Vec::new());
        let opts = options();
        let mut session = FitSession::new(&opts, &mut log);
        session.phase(FitPhase::Compress, 0.01);
        session.phase(FitPhase::Init, 0.02);
        let outcome = session.finish();
        assert_eq!(log.0, vec![FitPhase::Compress, FitPhase::Init, FitPhase::Iterate]);
        assert_eq!(outcome.phases.get(FitPhase::Compress), 0.01);
        assert_eq!(outcome.phases.get(FitPhase::Init), 0.02);
        assert!(outcome.phases.get(FitPhase::Iterate) >= 0.0);
        assert_eq!(outcome.phases.get(FitPhase::Finalize), 0.0);
    }

    #[test]
    fn phase_spans_accumulate_and_total() {
        let mut spans = PhaseSpans::new();
        spans.record(FitPhase::Compress, 1.0);
        spans.record(FitPhase::Compress, 0.5);
        spans.record(FitPhase::Finalize, 0.25);
        assert_eq!(spans.get(FitPhase::Compress), 1.5);
        assert_eq!(spans.total(), 1.75);
        for (i, phase) in FitPhase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
    }
}
