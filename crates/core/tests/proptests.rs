//! Property-based tests for the DPar2 core: compression fidelity, lemma
//! kernel equivalence, and criterion consistency over randomized shapes.

use dpar2_core::compress::compress;
use dpar2_core::config::FitOptions;
use dpar2_core::convergence::{compressed_criterion, explicit_criterion};
use dpar2_core::lemmas::{g1, g2, g3, materialize_y, naive_g1, naive_g2, naive_g3};
use dpar2_core::{Dpar2, StreamingDpar2};
use dpar2_linalg::{gaussian_mat, qr, Mat};
use dpar2_parallel::ThreadPool;
use dpar2_tensor::IrregularTensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Planted PARAFAC2 tensor with randomized shape.
fn planted(seed: u64, k: usize, j: usize, r: usize) -> IrregularTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let h = gaussian_mat(r, r, &mut rng);
    let v = gaussian_mat(j, r, &mut rng);
    let slices = (0..k)
        .map(|i| {
            let ik = j + 3 + 7 * i; // varied, ≥ j ≥ r
            let q = qr::qr(gaussian_mat(ik, r, &mut rng)).q;
            q.matmul(&h).unwrap().matmul_nt(&v).unwrap()
        })
        .collect();
    IrregularTensor::new(slices)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two-stage compression is lossless on exactly rank-R data, for any
    /// shape: ‖X_k − A_k F(k) E Dᵀ‖ ≈ 0.
    #[test]
    fn compression_lossless_on_planted(seed in 0u64..500, k in 2usize..6, j in 6usize..14, r in 1usize..4) {
        let t = planted(seed, k, j, r);
        let ct = compress(&t, &FitOptions::new(r).with_seed(seed ^ 1)).unwrap();
        for kk in 0..t.k() {
            let rel = (t.slice(kk) - &ct.reconstruct_slice(kk)).fro_norm()
                / t.slice(kk).fro_norm().max(1e-12);
            prop_assert!(rel < 1e-6, "slice {kk} rel err {rel}");
        }
    }

    /// Lemma kernels equal the naive MTTKRP on the materialized Y for
    /// arbitrary factor contents.
    #[test]
    fn lemmas_match_naive(seed in 0u64..500, k in 1usize..8, j in 2usize..12, r in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pzf: Vec<Mat> = (0..k).map(|_| gaussian_mat(r, r, &mut rng)).collect();
        let edt = gaussian_mat(r, j, &mut rng);
        let de = edt.transpose();
        let v = gaussian_mat(j, r, &mut rng);
        let h = gaussian_mat(r, r, &mut rng);
        let w = gaussian_mat(k, r, &mut rng);
        let edtv = edt.matmul(&v).unwrap();
        let pool = ThreadPool::new(1);
        let y = materialize_y(&pzf, &edt);

        let f1 = g1(&pzf, &w, &edtv, &pool);
        let n1 = naive_g1(&y, &v, &w);
        prop_assert!((&f1 - &n1).fro_norm() < 1e-8 * (1.0 + n1.fro_norm()));

        let f2 = g2(&pzf, &w, &h, &de, &pool);
        let n2 = naive_g2(&y, &h, &w);
        prop_assert!((&f2 - &n2).fro_norm() < 1e-8 * (1.0 + n2.fro_norm()));

        let f3 = g3(&pzf, &edtv, &h, &pool);
        let n3 = naive_g3(&y, &h, &v);
        prop_assert!((&f3 - &n3).fro_norm() < 1e-8 * (1.0 + n3.fro_norm()));
    }

    /// The compressed criterion equals the explicit residual on
    /// materialized Y slices.
    #[test]
    fn criterion_matches_explicit(seed in 0u64..500, k in 1usize..7, j in 2usize..10, r in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pzf: Vec<Mat> = (0..k).map(|_| gaussian_mat(r, r, &mut rng)).collect();
        let edt = gaussian_mat(r, j, &mut rng);
        let h = gaussian_mat(r, r, &mut rng);
        let w = gaussian_mat(k, r, &mut rng);
        let v = gaussian_mat(j, r, &mut rng);
        let pool = ThreadPool::new(1);
        let fast = compressed_criterion(&pzf, &edt, &h, &w, &v, &pool);
        let y: Vec<Mat> = pzf.iter().map(|p| p.matmul(&edt).unwrap()).collect();
        let slow = explicit_criterion(&y, &h, &w, &v);
        prop_assert!((fast - slow).abs() < 1e-8 * (1.0 + slow));
    }

    /// Fitness is always in (−∞, 1] and the solver never panics across
    /// shapes; on planted data it is near 1.
    #[test]
    fn solver_fitness_bounds(seed in 0u64..200, k in 2usize..5, j in 6usize..12, r in 1usize..4) {
        let t = planted(seed, k, j, r);
        let fit = Dpar2
            .fit(&t, &FitOptions::new(r).with_seed(seed).with_max_iterations(8))
            .unwrap();
        let f = fit.fitness(&t);
        prop_assert!(f <= 1.0 + 1e-9);
        prop_assert!(f > 0.5, "planted-data fitness {f} too low");
    }

    /// Streaming ingestion in two batches reproduces batch compression
    /// fidelity on planted data.
    #[test]
    fn streaming_equals_batch_compression(seed in 0u64..200, j in 6usize..12, r in 1usize..4) {
        let t = planted(seed, 4, j, r);
        let slices = t.to_slices();
        let cfg = FitOptions::new(r).with_seed(seed ^ 7);
        let mut stream = StreamingDpar2::new(cfg);
        stream.append(slices[..2].to_vec()).unwrap();
        stream.append(slices[2..].to_vec()).unwrap();
        let ct = stream.compressed().unwrap();
        for kk in 0..t.k() {
            let rel = (t.slice(kk) - &ct.reconstruct_slice(kk)).fro_norm()
                / t.slice(kk).fro_norm().max(1e-12);
            prop_assert!(rel < 1e-5, "slice {kk} rel err {rel}");
        }
    }
}
