//! Differential suite pinning `compress_sparse` / `Dpar2::fit_sparse` to
//! the dense pipeline on densified inputs.
//!
//! Both paths share the per-slice seed derivation and the stage-2 code,
//! so with a sketch width on the naive-dispatch regime (rank + oversample
//! ≤ 5) the sparse compression is **bit-identical** to `compress` on
//! `to_dense()` — including empty slices, all-zero columns, and
//! duplicate-COO inputs. The whole downstream fit then agrees bitwise
//! too, which is what the suite pins end to end.

use dpar2_core::{compress, compress_sparse, Dpar2, Dpar2Error, FitOptions, RsvdConfig};
use dpar2_linalg::{CooBuilder, SparseSlice};
use dpar2_tensor::SparseIrregularTensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options in the bit-identity regime: sketch = rank + 2 ≤ 5.
fn small_sketch_options(rank: usize, seed: u64) -> FitOptions<'static> {
    assert!(rank <= 3);
    FitOptions::new(rank)
        .with_seed(seed)
        .with_rsvd(RsvdConfig { rank, oversample: 2, power_iterations: 1 })
        .with_tolerance(0.0)
        .with_max_iterations(8)
}

/// Random sparse irregular tensor. Slice 0 gets duplicate COO pushes
/// (coalesced by summing, one pair to an explicit zero); when
/// `with_empty_slice` is set the last slice stores no entries at all; the
/// top quarter of columns stays structurally zero everywhere.
fn random_sparse_tensor(
    seed: u64,
    row_dims: &[usize],
    j: usize,
    fill: f64,
    with_empty_slice: bool,
) -> SparseIrregularTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let jmax = (j * 3 / 4).max(1);
    let slices: Vec<SparseSlice> = row_dims
        .iter()
        .enumerate()
        .map(|(k, &ik)| {
            let mut b = CooBuilder::new(ik, j);
            if with_empty_slice && k == row_dims.len() - 1 {
                return b.build();
            }
            let nnz = ((ik * j) as f64 * fill) as usize;
            for _ in 0..nnz {
                let i = (rng.random::<u64>() % ik as u64) as usize;
                let col = (rng.random::<u64>() % jmax as u64) as usize;
                b.push(i, col, rng.random::<f64>() - 0.5);
            }
            if k == 0 {
                b.push(0, 0, 0.75);
                b.push(0, 0, -0.25);
                b.push(ik - 1, 1, 1.0);
                b.push(ik - 1, 1, -1.0);
            }
            b.build()
        })
        .collect();
    SparseIrregularTensor::new(slices)
}

fn assert_compressed_bitwise(
    s: &dpar2_core::CompressedTensor,
    d: &dpar2_core::CompressedTensor,
    ctx: &str,
) {
    assert_eq!(s.rank, d.rank, "{ctx}: rank");
    assert_eq!(s.j, d.j, "{ctx}: j");
    assert_eq!(s.a, d.a, "{ctx}: stage-1 A factors diverged");
    assert_eq!(s.d, d.d, "{ctx}: stage-2 D diverged");
    assert_eq!(s.e, d.e, "{ctx}: stage-2 E diverged");
    assert_eq!(s.f_blocks, d.f_blocks, "{ctx}: F-blocks diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole pin: sparse-path compression is bit-identical to
    /// `compress` on the densified tensor across shapes, densities,
    /// thread counts, and the empty-slice edge case.
    #[test]
    fn compress_sparse_bitwise_matches_densified(
        seed in 0u64..500,
        k in 2usize..5,
        j in 8usize..16,
        rank in 1usize..4,
        fill_pct in 5usize..30,
        threads in 1usize..4,
        empty_sel in 0usize..2,
    ) {
        let with_empty = empty_sel == 1;
        let row_dims: Vec<usize> = (0..k).map(|i| j + 4 + 5 * i).collect();
        let sparse = random_sparse_tensor(seed, &row_dims, j, fill_pct as f64 / 100.0, with_empty);
        let dense = sparse.to_dense();
        let opts = small_sketch_options(rank, seed ^ 0xC0).with_threads(threads);
        let cs = compress_sparse(&sparse, &opts).unwrap();
        let cd = compress(&dense, &opts).unwrap();
        prop_assert_eq!(&cs.a, &cd.a, "stage-1 A factors diverged");
        prop_assert_eq!(&cs.d, &cd.d, "stage-2 D diverged");
        prop_assert_eq!(&cs.e, &cd.e, "stage-2 E diverged");
        prop_assert_eq!(&cs.f_blocks, &cd.f_blocks, "F-blocks diverged");
    }

    /// End-to-end: `fit_sparse` equals `fit` on the densified tensor —
    /// factors, criterion trace, and iteration count, bit for bit.
    #[test]
    fn fit_sparse_bitwise_matches_dense_fit(
        seed in 0u64..200,
        rank in 1usize..4,
        fill_pct in 8usize..25,
    ) {
        let sparse = random_sparse_tensor(seed, &[22, 30, 18], 12, fill_pct as f64 / 100.0, false);
        let dense = sparse.to_dense();
        let opts = small_sketch_options(rank, seed ^ 0xF1);
        let fs = Dpar2.fit_sparse(&sparse, &opts).unwrap();
        let fd = Dpar2.fit(&dense, &opts).unwrap();
        prop_assert_eq!(&fs.u, &fd.u, "U diverged");
        prop_assert_eq!(&fs.s, &fd.s, "S diverged");
        prop_assert_eq!(&fs.v, &fd.v, "V diverged");
        prop_assert_eq!(&fs.h, &fd.h, "H diverged");
        prop_assert_eq!(fs.iterations, fd.iterations);
        prop_assert_eq!(&fs.criterion_trace, &fd.criterion_trace);
    }
}

#[test]
fn compress_sparse_multithreaded_is_bitwise_serial() {
    // nnz-weighted partitioning only schedules; values must not move.
    let sparse = random_sparse_tensor(9, &[40, 18, 55, 25, 33], 14, 0.1, false);
    let serial = compress_sparse(&sparse, &small_sketch_options(3, 10)).unwrap();
    for threads in [2usize, 3, 8] {
        let pooled =
            compress_sparse(&sparse, &small_sketch_options(3, 10).with_threads(threads)).unwrap();
        assert_compressed_bitwise(&pooled, &serial, &format!("threads {threads}"));
    }
}

#[test]
fn fit_sparse_rank_energy_probe_matches_dense() {
    // The adaptive-rank probe runs through SparseVStack on the sparse
    // path; with matching seeds it must pick the same rank and produce
    // the same fit as the dense probe.
    let sparse = random_sparse_tensor(31, &[26, 20, 24], 10, 0.2, false);
    let dense = sparse.to_dense();
    let opts = small_sketch_options(3, 32).with_rank_energy(0.8);
    let fs = Dpar2.fit_sparse(&sparse, &opts).unwrap();
    let fd = Dpar2.fit(&dense, &opts).unwrap();
    assert_eq!(fs.rank(), fd.rank(), "adaptive rank diverged");
    assert_eq!(fs.u, fd.u);
    assert_eq!(fs.criterion_trace, fd.criterion_trace);
}

#[test]
fn compress_sparse_rejects_invalid_ranks() {
    let sparse = random_sparse_tensor(41, &[12, 3], 10, 0.3, false);
    let err = compress_sparse(&sparse, &FitOptions::new(0)).unwrap_err();
    assert_eq!(err, Dpar2Error::ZeroRank);
    // Slice 1 has only 3 rows: rank 4 cannot be supported there.
    let err = compress_sparse(&sparse, &FitOptions::new(4)).unwrap_err();
    assert!(matches!(err, Dpar2Error::RankTooLarge { rank: 4, slice: 1, limit: 3 }), "got {err:?}");
}

#[test]
fn duplicate_coo_and_densify_round_trip_agree() {
    // Sanity check on the oracle itself: the densified tensor the dense
    // path sees carries the coalesced values (duplicates summed in push
    // order, explicit zeros preserved structurally).
    let sparse = random_sparse_tensor(51, &[16, 14], 8, 0.2, false);
    let dense = sparse.to_dense();
    assert_eq!(dense.k(), 2);
    let round_trip = SparseIrregularTensor::from_dense(&dense);
    // from_dense drops exact zeros, so nnz may shrink, but values match.
    for k in 0..2 {
        assert_eq!(round_trip.slice(k).to_dense(), sparse.slice(k).to_dense());
    }
    let opts = small_sketch_options(2, 52);
    let a = compress_sparse(&sparse, &opts).unwrap();
    let b = compress_sparse(&round_trip, &opts).unwrap();
    assert_compressed_bitwise(&a, &b, "explicit zeros must not affect results");
}
