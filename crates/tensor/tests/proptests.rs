//! Property-based tests for tensor operations.

use dpar2_linalg::Mat;
use dpar2_tensor::{khatri_rao, kron, mttkrp, mttkrp_slicewise, CpFactors, Dense3};
use proptest::prelude::*;

/// Strategy: tensor dims in [1, 6] and a rank in [1, 4].
fn dims() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (1usize..6, 1usize..6, 1usize..5, 1usize..4)
}

fn mat_strategy(r: usize, c: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-5.0f64..5.0, r * c).prop_map(move |d| Mat::from_vec(r, c, d))
}

fn tensor_strategy(i: usize, j: usize, k: usize) -> impl Strategy<Value = Dense3> {
    prop::collection::vec(-5.0f64..5.0, i * j * k).prop_map(move |d| {
        let mut t = Dense3::zeros(i, j, k);
        let mut idx = 0;
        for kk in 0..k {
            for ii in 0..i {
                for jj in 0..j {
                    t.set(ii, jj, kk, d[idx]);
                    idx += 1;
                }
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unfoldings_preserve_norm(t in (1usize..6, 1usize..6, 1usize..5)
        .prop_flat_map(|(i, j, k)| tensor_strategy(i, j, k)))
    {
        let n = t.fro_norm_sq();
        prop_assert!((t.unfold1().fro_norm_sq() - n).abs() < 1e-9 * (1.0 + n));
        prop_assert!((t.unfold2().fro_norm_sq() - n).abs() < 1e-9 * (1.0 + n));
        prop_assert!((t.unfold3().fro_norm_sq() - n).abs() < 1e-9 * (1.0 + n));
    }

    #[test]
    fn kron_norm_multiplicative(
        a in (1usize..5, 1usize..5).prop_flat_map(|(r, c)| mat_strategy(r, c)),
        b in (1usize..5, 1usize..5).prop_flat_map(|(r, c)| mat_strategy(r, c)),
    ) {
        // ‖A ⊗ B‖_F = ‖A‖_F ‖B‖_F
        let k = kron(&a, &b);
        prop_assert!((k.fro_norm() - a.fro_norm() * b.fro_norm()).abs() < 1e-8 * (1.0 + k.fro_norm()));
    }

    #[test]
    fn khatri_rao_column_norms(
        (r, m, p) in (1usize..4, 1usize..6, 1usize..6),
        seed in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Mat::from_fn(m, r, |_, _| rng.random::<f64>() - 0.5);
        let b = Mat::from_fn(p, r, |_, _| rng.random::<f64>() - 0.5);
        let kr = khatri_rao(&a, &b);
        // Column norms multiply: ‖a_c ⊗ b_c‖ = ‖a_c‖ ‖b_c‖.
        for c in 0..r {
            let na: f64 = a.col(c).iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.col(c).iter().map(|x| x * x).sum::<f64>().sqrt();
            let nk: f64 = kr.col(c).iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!((nk - na * nb).abs() < 1e-9 * (1.0 + nk));
        }
    }

    #[test]
    fn mttkrp_kernels_agree((i, j, k, r) in dims(), seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = Dense3::from_frontal_slices(
            (0..k).map(|_| Mat::from_fn(i, j, |_, _| rng.random::<f64>() - 0.5)).collect(),
        );
        let f = CpFactors {
            a: Mat::from_fn(i, r, |_, _| rng.random::<f64>() - 0.5),
            b: Mat::from_fn(j, r, |_, _| rng.random::<f64>() - 0.5),
            c: Mat::from_fn(k, r, |_, _| rng.random::<f64>() - 0.5),
        };
        for mode in 1..=3 {
            let naive = mttkrp(&t, &f.a, &f.b, &f.c, mode);
            let fast = mttkrp_slicewise(&t, &f.a, &f.b, &f.c, mode);
            prop_assert!((&naive - &fast).fro_norm() < 1e-8 * (1.0 + naive.fro_norm()));
        }
    }

    #[test]
    fn cp_reconstruct_rank_additivity((i, j, k, _r) in dims(), seed in 0u64..100) {
        // [[A,B,C]] with R columns equals the sum of R rank-1 tensors.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = 2;
        let f = CpFactors {
            a: Mat::from_fn(i, r, |_, _| rng.random::<f64>() - 0.5),
            b: Mat::from_fn(j, r, |_, _| rng.random::<f64>() - 0.5),
            c: Mat::from_fn(k, r, |_, _| rng.random::<f64>() - 0.5),
        };
        let whole = f.reconstruct();
        let part0 = CpFactors {
            a: f.a.block(0, i, 0, 1),
            b: f.b.block(0, j, 0, 1),
            c: f.c.block(0, k, 0, 1),
        }
        .reconstruct();
        let part1 = CpFactors {
            a: f.a.block(0, i, 1, 2),
            b: f.b.block(0, j, 1, 2),
            c: f.c.block(0, k, 1, 2),
        }
        .reconstruct();
        for kk in 0..k {
            let sum = part0.slice(kk) + part1.slice(kk);
            prop_assert!((&sum - whole.slice(kk)).fro_norm() < 1e-9 * (1.0 + sum.fro_norm()));
        }
    }
}
