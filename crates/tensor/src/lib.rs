//! # dpar2-tensor
//!
//! Tensor types and multilinear-algebra operations for the DPar2
//! reproduction — the functionality the paper obtains from the MATLAB
//! Tensor Toolbox, rebuilt on top of [`dpar2_linalg`]:
//!
//! * [`Dense3`] — a regular third-order tensor with frontal-slice storage
//!   and mode-`n` matricization in the Kolda–Bader convention.
//! * [`IrregularTensor`] — the paper's `{X_k}_{k=1..K}`: a collection of
//!   dense slices `X_k ∈ R^{I_k×J}` sharing the column dimension `J`.
//! * [`SparseIrregularTensor`] — the same collection with CSR slices
//!   ([`SparseSlice`]), for SPARTan-parity workloads that are >99% zeros.
//! * [`mod@kron`] ([`kron()`](kron::kron), [`khatri_rao`]) — the ⊗ and ⊙ products of Table I.
//! * [`cp`] — CP-ALS building blocks (MTTKRP, factor updates) used by the
//!   inner loop of PARAFAC2-ALS (Algorithm 2, lines 11–16).
//!
//! ## Conventions
//!
//! For `X ∈ R^{I×J×K}` with entries `x_{ijk}`, the matricizations are
//!
//! * `X_(1) ∈ R^{I×JK}` with column `j + kJ`,
//! * `X_(2) ∈ R^{J×IK}` with column `i + kI`,
//! * `X_(3) ∈ R^{K×IJ}` with column `i + jI`,
//!
//! so that `X_(1) = A (C ⊙ B)ᵀ` etc. hold exactly for a CP decomposition
//! `[[A, B, C]]` — matching Kolda & Bader, "Tensor Decompositions and
//! Applications", SIAM Review 2009 (reference 19 of the paper).

pub mod cp;
pub mod dense3;
pub mod irregular;
pub mod kron;
pub mod sparse;

pub use cp::{
    cp_als, mttkrp, mttkrp_into, mttkrp_slicewise, normalize_columns, normalize_columns_mut,
    CpFactors, MttkrpScratch,
};
pub use dense3::Dense3;
pub use dpar2_linalg::sparse::{CooBuilder, SparseSlice};
pub use irregular::IrregularTensor;
pub use kron::{khatri_rao, khatri_rao_into, kron};
pub use sparse::SparseIrregularTensor;
