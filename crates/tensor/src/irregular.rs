//! The irregular tensor `{X_k}_{k=1..K}` — the paper's central data type.

use dpar2_linalg::Mat;

/// An irregular dense tensor: `K` frontal slices `X_k ∈ R^{I_k×J}` whose
/// row counts `I_k` differ while the column dimension `J` is shared.
///
/// Examples from the paper: per-stock (time × feature) matrices with
/// different listing periods, per-song (time × frequency) spectrograms with
/// different durations.
#[derive(Debug, Clone, PartialEq)]
pub struct IrregularTensor {
    slices: Vec<Mat>,
    j: usize,
}

impl IrregularTensor {
    /// Builds an irregular tensor from slices, validating the shared `J`.
    ///
    /// # Panics
    /// Panics if `slices` is empty or column counts differ.
    pub fn new(slices: Vec<Mat>) -> Self {
        assert!(!slices.is_empty(), "IrregularTensor: need at least one slice");
        let j = slices[0].cols();
        for (k, s) in slices.iter().enumerate() {
            assert_eq!(
                s.cols(),
                j,
                "IrregularTensor: slice {k} has {} columns, expected {j}",
                s.cols()
            );
        }
        IrregularTensor { slices, j }
    }

    /// Wraps a regular tensor (equal `I_k`) in the irregular interface, as
    /// the paper does for the Traffic and PEMS-SF datasets.
    pub fn from_regular(t: crate::Dense3) -> Self {
        IrregularTensor::new(t.into_slices())
    }

    /// Number of slices `K`.
    pub fn k(&self) -> usize {
        self.slices.len()
    }

    /// Shared column dimension `J`.
    pub fn j(&self) -> usize {
        self.j
    }

    /// Row count `I_k` of slice `k`.
    pub fn i(&self, k: usize) -> usize {
        self.slices[k].rows()
    }

    /// All slice row counts `[I_1, …, I_K]`.
    pub fn row_dims(&self) -> Vec<usize> {
        self.slices.iter().map(Mat::rows).collect()
    }

    /// Largest slice row count, `max_k I_k` (the "Max Dim. I_k" column of
    /// Table II).
    pub fn max_i(&self) -> usize {
        self.slices.iter().map(Mat::rows).max().unwrap_or(0)
    }

    /// Total number of rows `Σ_k I_k`.
    pub fn total_rows(&self) -> usize {
        self.slices.iter().map(Mat::rows).sum()
    }

    /// Total number of stored `f64` entries, `Σ_k I_k · J`.
    pub fn num_entries(&self) -> usize {
        self.total_rows() * self.j
    }

    /// Slice `X_k`.
    pub fn slice(&self, k: usize) -> &Mat {
        &self.slices[k]
    }

    /// All slices.
    pub fn slices(&self) -> &[Mat] {
        &self.slices
    }

    /// Consumes the tensor, returning the slices.
    pub fn into_slices(self) -> Vec<Mat> {
        self.slices
    }

    /// Squared Frobenius norm `Σ_k ‖X_k‖²_F` — the denominator of the
    /// paper's fitness metric (§IV-A).
    pub fn fro_norm_sq(&self) -> f64 {
        self.slices.iter().map(Mat::fro_norm_sq).sum()
    }

    /// True if all slices have identical row counts (a regular tensor in
    /// the irregular representation).
    pub fn is_regular(&self) -> bool {
        self.slices.windows(2).all(|w| w[0].rows() == w[1].rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dense3;

    fn sample() -> IrregularTensor {
        IrregularTensor::new(vec![Mat::ones(2, 3), Mat::ones(5, 3), Mat::ones(1, 3)])
    }

    #[test]
    fn shape_queries() {
        let t = sample();
        assert_eq!(t.k(), 3);
        assert_eq!(t.j(), 3);
        assert_eq!(t.i(1), 5);
        assert_eq!(t.row_dims(), vec![2, 5, 1]);
        assert_eq!(t.max_i(), 5);
        assert_eq!(t.total_rows(), 8);
        assert_eq!(t.num_entries(), 24);
    }

    #[test]
    fn fro_norm_sums_slices() {
        let t = sample();
        assert!((t.fro_norm_sq() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn regularity_detection() {
        assert!(!sample().is_regular());
        let reg = IrregularTensor::new(vec![Mat::ones(2, 3); 4]);
        assert!(reg.is_regular());
    }

    #[test]
    fn from_regular_tensor() {
        let d = Dense3::zeros(4, 5, 6);
        let t = IrregularTensor::from_regular(d);
        assert_eq!(t.k(), 6);
        assert_eq!(t.j(), 5);
        assert!(t.is_regular());
    }

    #[test]
    #[should_panic(expected = "slice 1 has 4 columns")]
    fn column_mismatch_panics() {
        IrregularTensor::new(vec![Mat::zeros(2, 3), Mat::zeros(2, 4)]);
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn empty_panics() {
        IrregularTensor::new(vec![]);
    }
}
