//! The irregular tensor `{X_k}_{k=1..K}` — the paper's central data type.
//!
//! Since the zero-copy view refactor, the slices live in **one contiguous
//! backing buffer**: slice `k` occupies `data[offsets[k]..offsets[k+1]]`
//! row-major. [`IrregularTensor::slice`] hands out borrowed
//! [`MatRef`] views into that buffer — no per-slice `Vec`s, no copies —
//! and [`IrregularTensor::stacked`] views the whole buffer as the
//! `(Σ_k I_k) × J` vertical concatenation `[X_1; …; X_K]` for free (the
//! matrix RD-ALS's preprocessing SVD consumes).

use dpar2_linalg::{Mat, MatRef};

/// An irregular dense tensor: `K` frontal slices `X_k ∈ R^{I_k×J}` whose
/// row counts `I_k` differ while the column dimension `J` is shared.
///
/// Examples from the paper: per-stock (time × feature) matrices with
/// different listing periods, per-song (time × frequency) spectrograms with
/// different durations.
#[derive(Debug, Clone, PartialEq)]
pub struct IrregularTensor {
    /// All slices, concatenated row-major: slice `k` starts at
    /// `offsets[k]` and holds `row_dims[k] * j` entries.
    data: Vec<f64>,
    /// Prefix offsets into `data`, length `K + 1`.
    offsets: Vec<usize>,
    /// Row count `I_k` per slice.
    row_dims: Vec<usize>,
    j: usize,
}

impl IrregularTensor {
    /// Builds an irregular tensor from slices, validating the shared `J`.
    /// The slices are copied once into the contiguous backing buffer.
    ///
    /// # Panics
    /// Panics if `slices` is empty or column counts differ.
    // Takes ownership by API contract (callers hand the slices over to the
    // tensor); the data is repacked, not borrowed, so the lint's
    // by-reference suggestion would only push a `.to_vec()` to call sites.
    #[allow(clippy::needless_pass_by_value)]
    pub fn new(slices: Vec<Mat>) -> Self {
        assert!(!slices.is_empty(), "IrregularTensor: need at least one slice");
        let j = slices[0].cols();
        let total: usize = slices.iter().map(Mat::len).sum();
        let mut data = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(slices.len() + 1);
        let mut row_dims = Vec::with_capacity(slices.len());
        offsets.push(0);
        for (k, s) in slices.iter().enumerate() {
            assert_eq!(
                s.cols(),
                j,
                "IrregularTensor: slice {k} has {} columns, expected {j}",
                s.cols()
            );
            data.extend_from_slice(s.data());
            offsets.push(data.len());
            row_dims.push(s.rows());
        }
        IrregularTensor { data, offsets, row_dims, j }
    }

    /// Builds a tensor directly from a packed backing buffer (row-major
    /// slices back to back) and the per-slice row counts — the zero-copy
    /// construction path for loaders that already own a flat buffer.
    ///
    /// # Panics
    /// Panics if `row_dims` is empty or `data.len() != Σ_k I_k · j`.
    pub fn from_packed(data: Vec<f64>, row_dims: Vec<usize>, j: usize) -> Self {
        assert!(!row_dims.is_empty(), "IrregularTensor: need at least one slice");
        let total: usize = row_dims.iter().map(|&i| i * j).sum();
        assert_eq!(
            data.len(),
            total,
            "IrregularTensor::from_packed: buffer length {} != expected {total}",
            data.len()
        );
        let mut offsets = Vec::with_capacity(row_dims.len() + 1);
        offsets.push(0);
        let mut acc = 0;
        for &i in &row_dims {
            acc += i * j;
            offsets.push(acc);
        }
        IrregularTensor { data, offsets, row_dims, j }
    }

    /// Wraps a regular tensor (equal `I_k`) in the irregular interface, as
    /// the paper does for the Traffic and PEMS-SF datasets.
    pub fn from_regular(t: crate::Dense3) -> Self {
        IrregularTensor::new(t.into_slices())
    }

    /// Number of slices `K`.
    pub fn k(&self) -> usize {
        self.row_dims.len()
    }

    /// Shared column dimension `J`.
    pub fn j(&self) -> usize {
        self.j
    }

    /// Row count `I_k` of slice `k`.
    pub fn i(&self, k: usize) -> usize {
        self.row_dims[k]
    }

    /// All slice row counts `[I_1, …, I_K]` as a borrowed slice.
    pub fn dims(&self) -> &[usize] {
        &self.row_dims
    }

    /// All slice row counts `[I_1, …, I_K]`, copied.
    pub fn row_dims(&self) -> Vec<usize> {
        self.row_dims.clone()
    }

    /// Largest slice row count, `max_k I_k` (the "Max Dim. I_k" column of
    /// Table II).
    pub fn max_i(&self) -> usize {
        self.row_dims.iter().copied().max().unwrap_or(0)
    }

    /// Total number of rows `Σ_k I_k`.
    pub fn total_rows(&self) -> usize {
        self.row_dims.iter().sum()
    }

    /// Total number of stored `f64` entries, `Σ_k I_k · J`.
    pub fn num_entries(&self) -> usize {
        self.data.len()
    }

    /// Number of nonzero entries across all slices — the numerator of the
    /// density check behind `FitOptions::sparse_threshold` auto-dispatch
    /// in `dpar2-baselines`. Exact zeros only; `-0.0` counts as zero.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Slice `X_k` as a zero-copy view into the backing buffer.
    pub fn slice(&self, k: usize) -> MatRef<'_> {
        MatRef::from_slice(
            self.row_dims[k],
            self.j,
            &self.data[self.offsets[k]..self.offsets[k + 1]],
        )
    }

    /// The whole tensor as the stacked matrix `[X_1; X_2; …; X_K] ∈
    /// R^{(Σ_k I_k)×J}` — a zero-copy reinterpretation of the backing
    /// buffer (this is RD-ALS's preprocessing operand, transposed).
    pub fn stacked(&self) -> MatRef<'_> {
        MatRef::from_slice(self.total_rows(), self.j, &self.data)
    }

    /// Iterator over all slice views in order.
    pub fn slice_views(&self) -> impl Iterator<Item = MatRef<'_>> + '_ {
        (0..self.k()).map(|k| self.slice(k))
    }

    /// Materializes the slices as owned matrices (one copy each) — for
    /// interop with APIs that need `Vec<Mat>`, e.g. streaming appends.
    pub fn to_slices(&self) -> Vec<Mat> {
        self.slice_views().map(MatRef::to_mat).collect()
    }

    /// The raw backing buffer (row-major slices back to back).
    pub fn packed_data(&self) -> &[f64] {
        &self.data
    }

    /// Squared Frobenius norm `Σ_k ‖X_k‖²_F` — the denominator of the
    /// paper's fitness metric (§IV-A). Summed per slice in ascending `k`
    /// (the historical grouping, preserved bit-for-bit).
    pub fn fro_norm_sq(&self) -> f64 {
        self.slice_views().map(MatRef::fro_norm_sq).sum()
    }

    /// True if all slices have identical row counts (a regular tensor in
    /// the irregular representation).
    pub fn is_regular(&self) -> bool {
        self.row_dims.windows(2).all(|w| w[0] == w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dense3;

    fn sample() -> IrregularTensor {
        IrregularTensor::new(vec![Mat::ones(2, 3), Mat::ones(5, 3), Mat::ones(1, 3)])
    }

    #[test]
    fn shape_queries() {
        let t = sample();
        assert_eq!(t.k(), 3);
        assert_eq!(t.j(), 3);
        assert_eq!(t.i(1), 5);
        assert_eq!(t.row_dims(), vec![2, 5, 1]);
        assert_eq!(t.dims(), &[2, 5, 1]);
        assert_eq!(t.max_i(), 5);
        assert_eq!(t.total_rows(), 8);
        assert_eq!(t.num_entries(), 24);
    }

    #[test]
    fn slices_are_zero_copy_views() {
        let slices = vec![
            Mat::from_fn(2, 3, |i, j| (i * 3 + j) as f64),
            Mat::from_fn(4, 3, |i, j| (100 + i * 3 + j) as f64),
        ];
        let t = IrregularTensor::new(slices.clone());
        for (k, s) in slices.iter().enumerate() {
            assert_eq!(t.slice(k), *s, "slice {k} differs");
            assert!(t.slice(k).is_contiguous());
        }
        // The backing buffer is exactly the slices back to back.
        assert_eq!(&t.packed_data()[..6], slices[0].data());
        assert_eq!(&t.packed_data()[6..], slices[1].data());
    }

    #[test]
    fn stacked_is_vstack() {
        let slices = vec![
            Mat::from_fn(2, 4, |i, j| (i + j) as f64),
            Mat::from_fn(3, 4, |i, j| (i * j) as f64),
        ];
        let t = IrregularTensor::new(slices.clone());
        let stacked = t.stacked();
        assert_eq!(stacked.shape(), (5, 4));
        let explicit = slices[0].vstack(&slices[1]).unwrap();
        assert_eq!(stacked.to_mat(), explicit);
    }

    #[test]
    fn from_packed_matches_new() {
        let slices = vec![Mat::ones(2, 3), Mat::zeros(4, 3)];
        let via_new = IrregularTensor::new(slices);
        let packed =
            IrregularTensor::from_packed(via_new.packed_data().to_vec(), via_new.row_dims(), 3);
        assert_eq!(via_new, packed);
    }

    #[test]
    fn to_slices_roundtrip() {
        let t = sample();
        let again = IrregularTensor::new(t.to_slices());
        assert_eq!(t, again);
    }

    #[test]
    fn fro_norm_sums_slices() {
        let t = sample();
        assert!((t.fro_norm_sq() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn regularity_detection() {
        assert!(!sample().is_regular());
        let reg = IrregularTensor::new(vec![Mat::ones(2, 3); 4]);
        assert!(reg.is_regular());
    }

    #[test]
    fn from_regular_tensor() {
        let d = Dense3::zeros(4, 5, 6);
        let t = IrregularTensor::from_regular(d);
        assert_eq!(t.k(), 6);
        assert_eq!(t.j(), 5);
        assert!(t.is_regular());
    }

    #[test]
    #[should_panic(expected = "slice 1 has 4 columns")]
    fn column_mismatch_panics() {
        IrregularTensor::new(vec![Mat::zeros(2, 3), Mat::zeros(2, 4)]);
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn empty_panics() {
        IrregularTensor::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_packed_length_mismatch_panics() {
        IrregularTensor::from_packed(vec![0.0; 5], vec![2], 3);
    }
}
