//! The sparse irregular tensor `{X_k}_{k=1..K}` in CSR form — the
//! SPARTan-parity counterpart of [`IrregularTensor`].
//!
//! Real PARAFAC2 workloads (EHR records, clickstreams, user–item logs)
//! are >99% sparse; at those densities the dense contiguous backing
//! buffer is millions of times larger than the data. This type holds one
//! [`SparseSlice`] per frontal slice and mirrors the dense tensor's shape
//! API one-for-one, so solver code can be written once against either.
//!
//! Conversions form a validated triangle — CSR ↔ COO
//! ([`dpar2_linalg::sparse::CooBuilder`],
//! [`SparseSlice::iter`]) ↔ dense ([`SparseIrregularTensor::from_dense`],
//! [`SparseIrregularTensor::to_dense`]) — pinned by the tests below and
//! the proptest suite in `dpar2-linalg`.

use crate::IrregularTensor;
use dpar2_linalg::sparse::SparseSlice;
use dpar2_linalg::Mat;

/// An irregular sparse tensor: `K` CSR slices `X_k ∈ R^{I_k×J}` whose row
/// counts `I_k` differ while the column dimension `J` is shared.
///
/// Mirrors [`IrregularTensor`]'s shape/query API (`k`, `j`, `i`, `dims`,
/// `row_dims`, `max_i`, `total_rows`, `fro_norm_sq`, `is_regular`), with
/// nonzero-aware additions (`nnz`, `num_cells`, `density`).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseIrregularTensor {
    slices: Vec<SparseSlice>,
    row_dims: Vec<usize>,
    j: usize,
}

impl SparseIrregularTensor {
    /// Builds a sparse irregular tensor from CSR slices, validating the
    /// shared column dimension `J`.
    ///
    /// # Panics
    /// Panics if `slices` is empty or column counts differ — the same
    /// contract as [`IrregularTensor::new`].
    pub fn new(slices: Vec<SparseSlice>) -> Self {
        assert!(!slices.is_empty(), "SparseIrregularTensor: need at least one slice");
        let j = slices[0].cols();
        let mut row_dims = Vec::with_capacity(slices.len());
        for (k, s) in slices.iter().enumerate() {
            assert_eq!(
                s.cols(),
                j,
                "SparseIrregularTensor: slice {k} has {} columns, expected {j}",
                s.cols()
            );
            row_dims.push(s.rows());
        }
        SparseIrregularTensor { slices, row_dims, j }
    }

    /// Sparsifies a dense irregular tensor, dropping exact zeros per slice
    /// (see [`SparseSlice::from_dense`]).
    pub fn from_dense(t: &IrregularTensor) -> Self {
        SparseIrregularTensor::new(t.slice_views().map(SparseSlice::from_dense).collect())
    }

    /// Densifies into an [`IrregularTensor`] (structural zeros become
    /// `+0.0`). The inverse of [`SparseIrregularTensor::from_dense`] for
    /// tensors without stored `-0.0`.
    pub fn to_dense(&self) -> IrregularTensor {
        IrregularTensor::new(self.slices.iter().map(SparseSlice::to_dense).collect::<Vec<Mat>>())
    }

    /// Number of slices `K`.
    pub fn k(&self) -> usize {
        self.row_dims.len()
    }

    /// Shared column dimension `J`.
    pub fn j(&self) -> usize {
        self.j
    }

    /// Row count `I_k` of slice `k`.
    pub fn i(&self, k: usize) -> usize {
        self.row_dims[k]
    }

    /// All slice row counts `[I_1, …, I_K]` as a borrowed slice.
    pub fn dims(&self) -> &[usize] {
        &self.row_dims
    }

    /// All slice row counts `[I_1, …, I_K]`, copied.
    pub fn row_dims(&self) -> Vec<usize> {
        self.row_dims.clone()
    }

    /// Largest slice row count, `max_k I_k`.
    pub fn max_i(&self) -> usize {
        self.row_dims.iter().copied().max().unwrap_or(0)
    }

    /// Total number of rows `Σ_k I_k`.
    pub fn total_rows(&self) -> usize {
        self.row_dims.iter().sum()
    }

    /// Total number of stored nonzeros, `Σ_k nnz(X_k)`.
    pub fn nnz(&self) -> usize {
        self.slices.iter().map(SparseSlice::nnz).sum()
    }

    /// Total number of logical cells, `Σ_k I_k · J` (what the dense
    /// representation would store).
    pub fn num_cells(&self) -> usize {
        self.total_rows() * self.j
    }

    /// Overall stored fraction `nnz / Σ_k I_k·J` (0 for a degenerate
    /// shape).
    pub fn density(&self) -> f64 {
        let cells = self.num_cells();
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Slice `X_k` as a borrowed CSR slice.
    pub fn slice(&self, k: usize) -> &SparseSlice {
        &self.slices[k]
    }

    /// Iterator over all CSR slices in order.
    pub fn slices(&self) -> impl Iterator<Item = &SparseSlice> + '_ {
        self.slices.iter()
    }

    /// Squared Frobenius norm `Σ_k ‖X_k‖²_F` over stored entries, summed
    /// per slice in ascending `k` — bitwise identical to the densified
    /// tensor's [`IrregularTensor::fro_norm_sq`] (squares are never
    /// `-0.0`, so the skipped structural terms are exact identities).
    pub fn fro_norm_sq(&self) -> f64 {
        self.slices.iter().map(SparseSlice::fro_norm_sq).sum()
    }

    /// True if all slices have identical row counts.
    pub fn is_regular(&self) -> bool {
        self.row_dims.windows(2).all(|w| w[0] == w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_linalg::sparse::CooBuilder;

    fn dense_sample() -> IrregularTensor {
        IrregularTensor::new(vec![
            Mat::from_fn(2, 3, |i, j| if (i + j) % 2 == 0 { (i * 3 + j + 1) as f64 } else { 0.0 }),
            Mat::zeros(5, 3),
            Mat::from_fn(1, 3, |_, j| j as f64),
        ])
    }

    #[test]
    fn shape_queries_mirror_dense() {
        let d = dense_sample();
        let s = SparseIrregularTensor::from_dense(&d);
        assert_eq!(s.k(), d.k());
        assert_eq!(s.j(), d.j());
        assert_eq!(s.i(1), d.i(1));
        assert_eq!(s.dims(), d.dims());
        assert_eq!(s.row_dims(), d.row_dims());
        assert_eq!(s.max_i(), d.max_i());
        assert_eq!(s.total_rows(), d.total_rows());
        assert_eq!(s.num_cells(), d.num_entries());
        assert!(!s.is_regular());
    }

    #[test]
    fn dense_round_trip() {
        let d = dense_sample();
        let s = SparseIrregularTensor::from_dense(&d);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn nnz_and_density() {
        let d = dense_sample();
        let s = SparseIrregularTensor::from_dense(&d);
        // Slice 0 stores entries where (i+j) even: (0,0),(0,2),(1,1) = 3;
        // slice 1 stores nothing; slice 2 stores j=1,2 (j=0 is 0.0) = 2.
        assert_eq!(s.nnz(), 5);
        assert!((s.density() - 5.0 / 24.0).abs() < 1e-15);
    }

    #[test]
    fn fro_norm_matches_dense_bitwise() {
        let d = dense_sample();
        let s = SparseIrregularTensor::from_dense(&d);
        assert_eq!(s.fro_norm_sq().to_bits(), d.fro_norm_sq().to_bits());
    }

    #[test]
    fn coo_triangle_round_trip() {
        // dense → CSR → COO triples → CooBuilder → CSR → dense.
        let d = dense_sample();
        let s = SparseIrregularTensor::from_dense(&d);
        let rebuilt = SparseIrregularTensor::new(
            s.slices()
                .map(|sl| CooBuilder::from_triplets(sl.rows(), sl.cols(), sl.iter()))
                .collect(),
        );
        assert_eq!(rebuilt, s);
        assert_eq!(rebuilt.to_dense(), d);
    }

    #[test]
    #[should_panic(expected = "slice 1 has 4 columns")]
    fn column_mismatch_panics() {
        SparseIrregularTensor::new(vec![SparseSlice::empty(2, 3), SparseSlice::empty(2, 4)]);
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn empty_panics() {
        SparseIrregularTensor::new(vec![]);
    }
}
