//! Regular third-order dense tensor with frontal-slice storage.

use dpar2_linalg::Mat;

/// A dense tensor `X ∈ R^{I×J×K}` stored as `K` frontal slices
/// `X(:, :, k) ∈ R^{I×J}`.
///
/// Frontal-slice storage mirrors how the PARAFAC2 algorithms consume
/// tensors: Algorithm 2 builds `Y ∈ R^{R×J×K}` from slices `Y_k = Q_kᵀ X_k`
/// and immediately matricizes it.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense3 {
    slices: Vec<Mat>,
    i: usize,
    j: usize,
}

impl Dense3 {
    /// Builds a tensor from `K` frontal slices of identical shape.
    ///
    /// # Panics
    /// Panics if `slices` is empty or shapes differ.
    pub fn from_frontal_slices(slices: Vec<Mat>) -> Self {
        assert!(!slices.is_empty(), "Dense3: need at least one slice");
        let (i, j) = slices[0].shape();
        for (k, s) in slices.iter().enumerate() {
            assert_eq!(
                s.shape(),
                (i, j),
                "Dense3: slice {k} has shape {:?}, expected {:?}",
                s.shape(),
                (i, j)
            );
        }
        Dense3 { slices, i, j }
    }

    /// Zero tensor of shape `I × J × K`.
    pub fn zeros(i: usize, j: usize, k: usize) -> Self {
        assert!(k > 0, "Dense3: K must be positive");
        Dense3 { slices: vec![Mat::zeros(i, j); k], i, j }
    }

    /// Mode-1 dimension `I`.
    pub fn dim_i(&self) -> usize {
        self.i
    }

    /// Mode-2 dimension `J`.
    pub fn dim_j(&self) -> usize {
        self.j
    }

    /// Mode-3 dimension `K`.
    pub fn dim_k(&self) -> usize {
        self.slices.len()
    }

    /// Entry accessor `x_{ijk}`.
    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.slices[k].at(i, j)
    }

    /// Mutable entry accessor.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        self.slices[k].set(i, j, v);
    }

    /// Frontal slice `X(:, :, k)`.
    pub fn slice(&self, k: usize) -> &Mat {
        &self.slices[k]
    }

    /// Mutable frontal slice `X(:, :, k)` — lets solvers overwrite the
    /// slices of a persistent `Y` tensor in place instead of rebuilding it
    /// every ALS iteration.
    ///
    /// The caller must preserve the shared slice shape; shape invariants
    /// are re-checked by the unfoldings (debug assertions via `Mat`).
    pub fn slice_mut(&mut self, k: usize) -> &mut Mat {
        &mut self.slices[k]
    }

    /// All frontal slices.
    pub fn slices(&self) -> &[Mat] {
        &self.slices
    }

    /// Consumes the tensor, returning its frontal slices.
    pub fn into_slices(self) -> Vec<Mat> {
        self.slices
    }

    /// Squared Frobenius norm of the whole tensor.
    pub fn fro_norm_sq(&self) -> f64 {
        self.slices.iter().map(Mat::fro_norm_sq).sum()
    }

    /// Mode-1 matricization `X_(1) ∈ R^{I×JK}` (column `j + kJ`).
    pub fn unfold1(&self) -> Mat {
        let mut out = Mat::zeros(0, 0);
        self.unfold1_into(&mut out);
        out
    }

    /// [`Dense3::unfold1`] into a pre-allocated buffer (resized if needed).
    pub fn unfold1_into(&self, out: &mut Mat) {
        let k_dim = self.dim_k();
        out.resize_zeroed(self.i, self.j * k_dim);
        for (k, slice) in self.slices.iter().enumerate() {
            for i in 0..self.i {
                let dst = &mut out.row_mut(i)[k * self.j..(k + 1) * self.j];
                dst.copy_from_slice(slice.row(i));
            }
        }
    }

    /// Mode-2 matricization `X_(2) ∈ R^{J×IK}` (column `i + kI`).
    pub fn unfold2(&self) -> Mat {
        let mut out = Mat::zeros(0, 0);
        self.unfold2_into(&mut out);
        out
    }

    /// [`Dense3::unfold2`] into a pre-allocated buffer (resized if needed).
    pub fn unfold2_into(&self, out: &mut Mat) {
        let k_dim = self.dim_k();
        out.resize_zeroed(self.j, self.i * k_dim);
        for (k, slice) in self.slices.iter().enumerate() {
            for i in 0..self.i {
                for j in 0..self.j {
                    out.set(j, k * self.i + i, slice.at(i, j));
                }
            }
        }
    }

    /// Mode-3 matricization `X_(3) ∈ R^{K×IJ}` (column `i + jI`).
    pub fn unfold3(&self) -> Mat {
        let mut out = Mat::zeros(0, 0);
        self.unfold3_into(&mut out);
        out
    }

    /// [`Dense3::unfold3`] into a pre-allocated buffer (resized if needed).
    pub fn unfold3_into(&self, out: &mut Mat) {
        let k_dim = self.dim_k();
        out.resize_zeroed(k_dim, self.i * self.j);
        for (k, slice) in self.slices.iter().enumerate() {
            let row = out.row_mut(k);
            for j in 0..self.j {
                for i in 0..self.i {
                    row[j * self.i + i] = slice.at(i, j);
                }
            }
        }
    }

    /// Mode-`n` matricization for `n ∈ {1, 2, 3}`.
    ///
    /// # Panics
    /// Panics for any other `n`.
    pub fn unfold(&self, n: usize) -> Mat {
        match n {
            1 => self.unfold1(),
            2 => self.unfold2(),
            3 => self.unfold3(),
            _ => panic!("unfold: mode must be 1, 2, or 3 (got {n})"),
        }
    }

    /// Mode-`n` matricization into a pre-allocated buffer.
    ///
    /// # Panics
    /// Panics for `n ∉ {1, 2, 3}`.
    pub fn unfold_into(&self, n: usize, out: &mut Mat) {
        match n {
            1 => self.unfold1_into(out),
            2 => self.unfold2_into(out),
            3 => self.unfold3_into(out),
            _ => panic!("unfold: mode must be 1, 2, or 3 (got {n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2×3×2 tensor with distinct entries x_{ijk} = 100k + 10i + j.
    fn sample() -> Dense3 {
        let mut t = Dense3::zeros(2, 3, 2);
        for k in 0..2 {
            for i in 0..2 {
                for j in 0..3 {
                    t.set(i, j, k, (100 * k + 10 * i + j) as f64);
                }
            }
        }
        t
    }

    #[test]
    fn dims_and_access() {
        let t = sample();
        assert_eq!((t.dim_i(), t.dim_j(), t.dim_k()), (2, 3, 2));
        assert_eq!(t.at(1, 2, 0), 12.0);
        assert_eq!(t.at(0, 1, 1), 101.0);
    }

    #[test]
    fn unfold1_layout() {
        // Column j + kJ must hold fiber x_{: , j, k}.
        let t = sample();
        let u = t.unfold1();
        assert_eq!(u.shape(), (2, 6));
        for k in 0..2 {
            for j in 0..3 {
                for i in 0..2 {
                    assert_eq!(u.at(i, j + k * 3), t.at(i, j, k));
                }
            }
        }
    }

    #[test]
    fn unfold2_layout() {
        let t = sample();
        let u = t.unfold2();
        assert_eq!(u.shape(), (3, 4));
        for k in 0..2 {
            for i in 0..2 {
                for j in 0..3 {
                    assert_eq!(u.at(j, i + k * 2), t.at(i, j, k));
                }
            }
        }
    }

    #[test]
    fn unfold3_layout() {
        let t = sample();
        let u = t.unfold3();
        assert_eq!(u.shape(), (2, 6));
        for k in 0..2 {
            for j in 0..3 {
                for i in 0..2 {
                    assert_eq!(u.at(k, i + j * 2), t.at(i, j, k));
                }
            }
        }
    }

    #[test]
    fn fro_norm_matches_unfoldings() {
        let t = sample();
        let n = t.fro_norm_sq();
        assert!((n - t.unfold1().fro_norm_sq()).abs() < 1e-9);
        assert!((n - t.unfold2().fro_norm_sq()).abs() < 1e-9);
        assert!((n - t.unfold3().fro_norm_sq()).abs() < 1e-9);
    }

    #[test]
    fn from_frontal_slices_roundtrip() {
        let t = sample();
        let rebuilt = Dense3::from_frontal_slices(t.slices().to_vec());
        assert_eq!(rebuilt, t);
    }

    #[test]
    #[should_panic(expected = "slice 1 has shape")]
    fn mismatched_slices_panic() {
        Dense3::from_frontal_slices(vec![Mat::zeros(2, 2), Mat::zeros(3, 2)]);
    }

    #[test]
    #[should_panic(expected = "mode must be 1, 2, or 3")]
    fn invalid_mode_panics() {
        sample().unfold(4);
    }
}
