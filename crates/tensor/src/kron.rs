//! Kronecker (`⊗`) and Khatri-Rao (`⊙`) products — Table I of the paper.

use dpar2_linalg::Mat;

/// Kronecker product `A ⊗ B`.
///
/// For `A ∈ R^{m×n}` and `B ∈ R^{p×q}` the result is `(mp) × (nq)` with
/// `(A ⊗ B)[(i_a p + i_b), (j_a q + j_b)] = A[i_a, j_a] · B[i_b, j_b]`.
pub fn kron(a: &Mat, b: &Mat) -> Mat {
    let (m, n) = a.shape();
    let (p, q) = b.shape();
    let mut out = Mat::zeros(m * p, n * q);
    for ia in 0..m {
        for ib in 0..p {
            let dst = out.row_mut(ia * p + ib);
            for ja in 0..n {
                let aval = a.at(ia, ja);
                if aval == 0.0 {
                    continue;
                }
                for jb in 0..q {
                    dst[ja * q + jb] = aval * b.at(ib, jb);
                }
            }
        }
    }
    out
}

/// Kronecker product of two vectors, `a ⊗ b` (length `|a|·|b|`, `b` varies
/// fastest). Used in Lemma 3's `E Dᵀ V(:,r) ⊗ H(:,r)` term.
pub fn kron_vec(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for &av in a {
        for &bv in b {
            out.push(av * bv);
        }
    }
    out
}

/// Khatri-Rao (column-wise Kronecker) product `A ⊙ B`.
///
/// `A ∈ R^{m×r}` and `B ∈ R^{p×r}` give `(mp) × r` where column `c` is
/// `A(:,c) ⊗ B(:,c)`. The row ordering (`A`'s index varies slowest) matches
/// the matricization convention of [`crate::Dense3`], so
/// `X_(1) = A (C ⊙ B)ᵀ` holds for a CP decomposition `[[A, B, C]]`.
///
/// # Panics
/// Panics if the column counts differ.
pub fn khatri_rao(a: &Mat, b: &Mat) -> Mat {
    let mut out = Mat::zeros(0, 0);
    khatri_rao_into(a, b, &mut out);
    out
}

/// [`khatri_rao`] into a pre-allocated buffer (resized if needed) — the
/// allocation-free form the scratch-based MTTKRP kernels use.
///
/// # Panics
/// Panics if the column counts differ.
pub fn khatri_rao_into(a: &Mat, b: &Mat, out: &mut Mat) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "khatri_rao: column count mismatch ({} vs {})",
        a.cols(),
        b.cols()
    );
    let r = a.cols();
    let (m, p) = (a.rows(), b.rows());
    out.resize_zeroed(m * p, r);
    for ia in 0..m {
        let arow = a.row(ia);
        for ib in 0..p {
            let brow = b.row(ib);
            let dst = out.row_mut(ia * p + ib);
            for c in 0..r {
                dst[c] = arow[c] * brow[c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpar2_linalg::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kron_known_2x2() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[0.0, 5.0], &[6.0, 7.0]]);
        let k = kron(&a, &b);
        assert_eq!(k.shape(), (4, 4));
        // Top-left block is 1·B.
        assert_eq!(k.at(0, 1), 5.0);
        assert_eq!(k.at(1, 0), 6.0);
        // Bottom-right block is 4·B.
        assert_eq!(k.at(3, 3), 28.0);
    }

    #[test]
    fn kron_identity_blocks() {
        let b = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let k = kron(&Mat::eye(2), &b);
        // Block-diagonal with two copies of B.
        assert_eq!(k.at(0, 0), 1.0);
        assert_eq!(k.at(2, 2), 1.0);
        assert_eq!(k.at(0, 2), 0.0);
        assert_eq!(k.at(3, 3), 4.0);
    }

    #[test]
    fn mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD) — the identity behind Lemma 1.
        let mut rng = StdRng::seed_from_u64(71);
        let a = gaussian_mat(3, 4, &mut rng);
        let b = gaussian_mat(2, 5, &mut rng);
        let c = gaussian_mat(4, 2, &mut rng);
        let d = gaussian_mat(5, 3, &mut rng);
        let lhs = kron(&a, &b).matmul(kron(&c, &d)).unwrap();
        let rhs = kron(&a.matmul(&c).unwrap(), &b.matmul(&d).unwrap());
        assert!((&lhs - &rhs).fro_norm() < 1e-10 * (1.0 + lhs.fro_norm()));
    }

    #[test]
    fn vectorization_identity() {
        // vec(A B) = (Bᵀ ⊗ I) vec(A) — used in the proof of Lemma 3.
        let mut rng = StdRng::seed_from_u64(72);
        let a = gaussian_mat(3, 4, &mut rng);
        let b = gaussian_mat(4, 5, &mut rng);
        let lhs = a.matmul(&b).unwrap().vec_colmajor();
        let rhs = kron(&b.transpose(), &Mat::eye(3)).matvec(&a.vec_colmajor());
        for (x, y) in lhs.iter().zip(&rhs) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn kron_vec_ordering() {
        let v = kron_vec(&[1.0, 2.0], &[10.0, 20.0, 30.0]);
        assert_eq!(v, vec![10.0, 20.0, 30.0, 20.0, 40.0, 60.0]);
    }

    #[test]
    fn khatri_rao_is_columnwise_kron() {
        let mut rng = StdRng::seed_from_u64(73);
        let a = gaussian_mat(4, 3, &mut rng);
        let b = gaussian_mat(5, 3, &mut rng);
        let kr = khatri_rao(&a, &b);
        assert_eq!(kr.shape(), (20, 3));
        for c in 0..3 {
            let expected = kron_vec(&a.col(c), &b.col(c));
            let got = kr.col(c);
            for (x, y) in expected.iter().zip(&got) {
                assert!((x - y).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn khatri_rao_gram_identity() {
        // (A ⊙ B)ᵀ(A ⊙ B) = AᵀA ∗ BᵀB — the identity making the ALS
        // normal equations cheap (used by Algorithm 2 lines 11–13).
        let mut rng = StdRng::seed_from_u64(74);
        let a = gaussian_mat(6, 4, &mut rng);
        let b = gaussian_mat(7, 4, &mut rng);
        let kr = khatri_rao(&a, &b);
        let lhs = kr.gram();
        let rhs = a.gram().hadamard(&b.gram()).unwrap();
        assert!((&lhs - &rhs).fro_norm() < 1e-10 * (1.0 + lhs.fro_norm()));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn khatri_rao_mismatch_panics() {
        khatri_rao(&Mat::zeros(2, 3), &Mat::zeros(2, 4));
    }
}
