//! CP (CANDECOMP/PARAFAC) decomposition building blocks.
//!
//! The PARAFAC2-ALS inner step (Algorithm 2, lines 11–16) is "a single
//! iteration of CP-ALS" on the small tensor `Y ∈ R^{R×J×K}`. This module
//! provides that iteration plus a standalone CP-ALS used as a test oracle.
//!
//! Two MTTKRP (matricized-tensor times Khatri-Rao product) kernels are
//! provided:
//!
//! * [`mttkrp`] — textbook formulation that materializes `X_(n)` and the
//!   Khatri-Rao product. Cost `O(I J K R)` time *and* `O(I J K)` transient
//!   memory; this is what the plain PARAFAC2-ALS baseline pays.
//! * [`mttkrp_slicewise`] — accumulates frontal-slice contributions without
//!   forming either operand, the scheduling trick SPARTan popularized.
//!   Same result, far less memory traffic.

use crate::dense3::Dense3;
use crate::kron::khatri_rao_into;
use dpar2_linalg::{pinv, Mat};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reusable scratch for [`mttkrp_into`]: the materialized unfolding and
/// Khatri-Rao operands. Holding one across ALS iterations makes the
/// textbook MTTKRP allocation-free in steady state without changing a
/// single arithmetic operation.
#[derive(Debug, Default)]
pub struct MttkrpScratch {
    unfold: Mat,
    kr: Mat,
}

/// Factor matrices of a rank-`R` CP decomposition `[[A, B, C]]` of a tensor
/// `X ∈ R^{I×J×K}`: `A ∈ R^{I×R}`, `B ∈ R^{J×R}`, `C ∈ R^{K×R}`.
#[derive(Debug, Clone)]
pub struct CpFactors {
    /// Mode-1 factor (`I × R`).
    pub a: Mat,
    /// Mode-2 factor (`J × R`).
    pub b: Mat,
    /// Mode-3 factor (`K × R`).
    pub c: Mat,
}

impl CpFactors {
    /// Rank of the decomposition.
    pub fn rank(&self) -> usize {
        self.a.cols()
    }

    /// Reconstructs the full tensor `Σ_r a_r ∘ b_r ∘ c_r`.
    pub fn reconstruct(&self) -> Dense3 {
        let (i, j, k) = (self.a.rows(), self.b.rows(), self.c.rows());
        let mut slices = Vec::with_capacity(k);
        for kk in 0..k {
            // X(:,:,k) = A diag(C(k,:)) Bᵀ
            let mut scaled = self.a.clone();
            for row in 0..i {
                let r = scaled.row_mut(row);
                for (col, v) in r.iter_mut().enumerate() {
                    *v *= self.c.at(kk, col);
                }
            }
            slices.push(scaled.matmul_nt(&self.b).expect("CpFactors::reconstruct"));
        }
        let _ = (i, j);
        Dense3::from_frontal_slices(slices)
    }
}

/// Textbook MTTKRP: `X_(mode) · (⊙ of the other two factors)`.
///
/// `factors = (A, B, C)`; for `mode = 1` returns `X_(1)(C ⊙ B)`, for
/// `mode = 2` returns `X_(2)(C ⊙ A)`, for `mode = 3` returns `X_(3)(B ⊙ A)`.
///
/// # Panics
/// Panics if `mode ∉ {1,2,3}`.
pub fn mttkrp(t: &Dense3, a: &Mat, b: &Mat, c: &Mat, mode: usize) -> Mat {
    let mut out = Mat::zeros(0, 0);
    mttkrp_into(t, a, b, c, mode, &mut out, &mut MttkrpScratch::default());
    out
}

/// [`mttkrp`] into a pre-allocated output with reusable operand scratch —
/// bit-identical to [`mttkrp`] (same unfolding, same Khatri-Rao product,
/// same GEMM), but allocation-free once the scratch has warmed up.
///
/// # Panics
/// Panics if `mode ∉ {1,2,3}`.
pub fn mttkrp_into(
    t: &Dense3,
    a: &Mat,
    b: &Mat,
    c: &Mat,
    mode: usize,
    out: &mut Mat,
    ws: &mut MttkrpScratch,
) {
    match mode {
        1 => {
            t.unfold1_into(&mut ws.unfold);
            khatri_rao_into(c, b, &mut ws.kr);
        }
        2 => {
            t.unfold2_into(&mut ws.unfold);
            khatri_rao_into(c, a, &mut ws.kr);
        }
        3 => {
            t.unfold3_into(&mut ws.unfold);
            khatri_rao_into(b, a, &mut ws.kr);
        }
        _ => panic!("mttkrp: mode must be 1, 2, or 3 (got {mode})"),
    }
    ws.unfold.matmul_into(&ws.kr, out);
}

/// Slice-wise MTTKRP that never materializes the unfolding or the
/// Khatri-Rao product:
///
/// * mode 1: `Σ_k X_k B diag(C(k,:))`
/// * mode 2: `Σ_k X_kᵀ A diag(C(k,:))`
/// * mode 3: row `k` is `diag(Aᵀ X_k B)ᵀ`
///
/// # Panics
/// Panics if `mode ∉ {1,2,3}`.
// Lock-step indexing over accumulator/temporary/factor rows is clearer
// than zipped iterators for these accumulation kernels.
#[allow(clippy::needless_range_loop)]
pub fn mttkrp_slicewise(t: &Dense3, a: &Mat, b: &Mat, c: &Mat, mode: usize) -> Mat {
    let r = a.cols();
    let k_dim = t.dim_k();
    match mode {
        1 => {
            let mut g = Mat::zeros(a.rows(), r);
            let mut tmp = Mat::zeros(a.rows(), r);
            for k in 0..k_dim {
                t.slice(k).matmul_into(b, &mut tmp);
                for i in 0..g.rows() {
                    let grow = g.row_mut(i);
                    let trow = tmp.row(i);
                    let crow = c.row(k);
                    for col in 0..r {
                        grow[col] += trow[col] * crow[col];
                    }
                }
            }
            g
        }
        2 => {
            let mut g = Mat::zeros(b.rows(), r);
            let mut tmp = Mat::zeros(b.rows(), r);
            for k in 0..k_dim {
                t.slice(k).matmul_tn_into(a, &mut tmp);
                for i in 0..g.rows() {
                    let grow = g.row_mut(i);
                    let trow = tmp.row(i);
                    let crow = c.row(k);
                    for col in 0..r {
                        grow[col] += trow[col] * crow[col];
                    }
                }
            }
            g
        }
        3 => {
            let mut g = Mat::zeros(k_dim, r);
            let mut tmp = Mat::zeros(b.rows(), r);
            for k in 0..k_dim {
                // tmp = X_kᵀ A ; G(k, r) = B(:,r) · tmp(:,r)
                t.slice(k).matmul_tn_into(a, &mut tmp);
                let grow = g.row_mut(k);
                for col in 0..r {
                    let mut s = 0.0;
                    for row in 0..b.rows() {
                        s += b.at(row, col) * tmp.at(row, col);
                    }
                    grow[col] = s;
                }
            }
            g
        }
        _ => panic!("mttkrp_slicewise: mode must be 1, 2, or 3 (got {mode})"),
    }
}

/// Normalizes the columns of `m` to unit Euclidean norm, returning the
/// normalized matrix and the norms. Zero columns are left untouched with a
/// recorded norm of 0. PARAFAC2 implementations normalize `H` and `V` after
/// each update and absorb the scales into `W` (the `⊿ Normalize` marks in
/// Algorithm 3).
pub fn normalize_columns(m: &Mat) -> (Mat, Vec<f64>) {
    let mut out = m.clone();
    let mut norms = Vec::with_capacity(m.cols());
    normalize_columns_mut(&mut out, &mut norms);
    (out, norms)
}

/// In-place form of [`normalize_columns`]: normalizes `m`'s columns
/// directly and writes the norms into the reusable `norms` buffer —
/// bit-identical to [`normalize_columns`] (each column's norm is read
/// before that column is scaled), with zero allocations once `norms` has
/// capacity.
pub fn normalize_columns_mut(m: &mut Mat, norms: &mut Vec<f64>) {
    norms.clear();
    for c in 0..m.cols() {
        let n: f64 = (0..m.rows()).map(|i| m.at(i, c) * m.at(i, c)).sum::<f64>().sqrt();
        norms.push(n);
        if n > 0.0 {
            let inv = 1.0 / n;
            for i in 0..m.rows() {
                let v = m.at(i, c) * inv;
                m.set(i, c, v);
            }
        }
    }
}

/// One ALS pass over the three factors (the paper's lines 11–13 of
/// Algorithm 2), updating in place:
///
/// ```text
/// A ← X_(1)(C ⊙ B)(CᵀC ∗ BᵀB)†
/// B ← X_(2)(C ⊙ A)(CᵀC ∗ AᵀA)†
/// C ← X_(3)(B ⊙ A)(BᵀB ∗ AᵀA)†
/// ```
pub fn cp_als_iteration(t: &Dense3, f: &mut CpFactors) {
    let g1 = mttkrp_slicewise(t, &f.a, &f.b, &f.c, 1);
    let gram1 = f.c.gram().hadamard(&f.b.gram()).expect("cp gram 1");
    f.a = g1.matmul(pinv(&gram1)).expect("cp update A");

    let g2 = mttkrp_slicewise(t, &f.a, &f.b, &f.c, 2);
    let gram2 = f.c.gram().hadamard(&f.a.gram()).expect("cp gram 2");
    f.b = g2.matmul(pinv(&gram2)).expect("cp update B");

    let g3 = mttkrp_slicewise(t, &f.a, &f.b, &f.c, 3);
    let gram3 = f.b.gram().hadamard(&f.a.gram()).expect("cp gram 3");
    f.c = g3.matmul(pinv(&gram3)).expect("cp update C");
}

/// Full CP-ALS with random initialization — primarily a test oracle for the
/// MTTKRP kernels and a reference point for PARAFAC2's inner step.
///
/// Returns the factors and the per-iteration relative reconstruction errors.
pub fn cp_als(t: &Dense3, rank: usize, iterations: usize, seed: u64) -> (CpFactors, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = CpFactors {
        a: dpar2_linalg::gaussian_mat(t.dim_i(), rank, &mut rng),
        b: dpar2_linalg::gaussian_mat(t.dim_j(), rank, &mut rng),
        c: dpar2_linalg::gaussian_mat(t.dim_k(), rank, &mut rng),
    };
    let norm = t.fro_norm_sq().sqrt().max(1e-300);
    let mut errs = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        cp_als_iteration(t, &mut f);
        let recon = f.reconstruct();
        let mut err_sq = 0.0;
        for k in 0..t.dim_k() {
            err_sq += (t.slice(k) - recon.slice(k)).fro_norm_sq();
        }
        errs.push(err_sq.sqrt() / norm);
    }
    (f, errs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kron::khatri_rao;
    use dpar2_linalg::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_tensor(i: usize, j: usize, k: usize, seed: u64) -> Dense3 {
        let mut rng = StdRng::seed_from_u64(seed);
        Dense3::from_frontal_slices((0..k).map(|_| gaussian_mat(i, j, &mut rng)).collect())
    }

    fn random_factors(i: usize, j: usize, k: usize, r: usize, seed: u64) -> CpFactors {
        let mut rng = StdRng::seed_from_u64(seed);
        CpFactors {
            a: gaussian_mat(i, r, &mut rng),
            b: gaussian_mat(j, r, &mut rng),
            c: gaussian_mat(k, r, &mut rng),
        }
    }

    #[test]
    fn slicewise_matches_naive_all_modes() {
        let t = random_tensor(5, 6, 4, 81);
        let f = random_factors(5, 6, 4, 3, 82);
        for mode in 1..=3 {
            let naive = mttkrp(&t, &f.a, &f.b, &f.c, mode);
            let fast = mttkrp_slicewise(&t, &f.a, &f.b, &f.c, mode);
            assert!(
                (&naive - &fast).fro_norm() < 1e-9 * (1.0 + naive.fro_norm()),
                "mode {mode} mismatch"
            );
        }
    }

    #[test]
    fn reconstruct_exact_cp_tensor() {
        // Build a tensor from known factors; reconstruction must be exact.
        let f = random_factors(4, 5, 3, 2, 83);
        let t = f.reconstruct();
        assert_eq!(t.dim_i(), 4);
        assert_eq!(t.dim_j(), 5);
        assert_eq!(t.dim_k(), 3);
        // Spot-check one entry against the explicit sum.
        let mut expected = 0.0;
        for r in 0..2 {
            expected += f.a.at(1, r) * f.b.at(2, r) * f.c.at(0, r);
        }
        assert!((t.at(1, 2, 0) - expected).abs() < 1e-12);
    }

    #[test]
    fn unfolding_identity_for_cp_tensor() {
        // X_(1) = A (C ⊙ B)ᵀ exactly for a CP tensor.
        let f = random_factors(4, 5, 3, 2, 84);
        let t = f.reconstruct();
        let lhs = t.unfold1();
        let rhs = f.a.matmul_nt(khatri_rao(&f.c, &f.b)).unwrap();
        assert!((&lhs - &rhs).fro_norm() < 1e-10 * (1.0 + lhs.fro_norm()));
        let lhs2 = t.unfold2();
        let rhs2 = f.b.matmul_nt(khatri_rao(&f.c, &f.a)).unwrap();
        assert!((&lhs2 - &rhs2).fro_norm() < 1e-10 * (1.0 + lhs2.fro_norm()));
        let lhs3 = t.unfold3();
        let rhs3 = f.c.matmul_nt(khatri_rao(&f.b, &f.a)).unwrap();
        assert!((&lhs3 - &rhs3).fro_norm() < 1e-10 * (1.0 + lhs3.fro_norm()));
    }

    #[test]
    fn cp_als_recovers_noiseless_low_rank() {
        let f_true = random_factors(6, 7, 5, 2, 85);
        let t = f_true.reconstruct();
        let (_, errs) = cp_als(&t, 2, 40, 86);
        let last = *errs.last().unwrap();
        assert!(last < 1e-6, "CP-ALS failed to fit noiseless rank-2 tensor: err {last}");
    }

    #[test]
    fn cp_als_error_nonincreasing() {
        let t = random_tensor(6, 5, 4, 87);
        let (_, errs) = cp_als(&t, 3, 15, 88);
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "CP-ALS error increased: {:?}", errs);
        }
    }

    #[test]
    fn normalize_columns_unit_norm() {
        let m = Mat::from_rows(&[&[3.0, 0.0], &[4.0, 0.0]]);
        let (n, norms) = normalize_columns(&m);
        assert!((norms[0] - 5.0).abs() < 1e-12);
        assert_eq!(norms[1], 0.0);
        assert!((n.at(0, 0) - 0.6).abs() < 1e-12);
        assert!((n.at(1, 0) - 0.8).abs() < 1e-12);
        // zero column untouched
        assert_eq!(n.at(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "mode must be 1, 2, or 3")]
    fn mttkrp_bad_mode() {
        let t = random_tensor(2, 2, 2, 89);
        let f = random_factors(2, 2, 2, 1, 90);
        mttkrp(&t, &f.a, &f.b, &f.c, 0);
    }
}
