//! Differential test suite for the sparse kernel layer.
//!
//! Unlike the blocked-GEMM differential (`gemm_differential.rs`), which
//! can only require ulp-bounded agreement, every sparse kernel follows
//! the ordering discipline of `dpar2_linalg::sparse`: it accumulates in
//! exactly the order of the dense naive loops with the structural zeros
//! skipped. Skipping a structural zero skips an addition of `±0.0` —
//! an exact identity on any accumulator that is not `-0.0`, and `+=`
//! accumulators seeded at `+0.0` can never become `-0.0` under
//! round-to-nearest. So the oracle here is **bitwise**: densify the
//! slice, run `gemm_naive_into` (or the matching inline naive loop), and
//! require `to_bits()` equality, for every random sparsity pattern.
//!
//! Coverage, per the sparse-subsystem contract:
//! * all kernels — `spmm` (`A·B`), `spmm_t` (`Aᵀ·B`), `spmm_tn` (`Qᵀ·A`),
//!   `sparse_gram` (`AᵀA`), `mttkrp_mode3_into`, `fro_norm_sq`;
//! * proptest-generated patterns including empty slices, empty rows,
//!   all-zero columns, and duplicate COO entries (coalesced by the
//!   builder);
//! * NaN / ±∞ *stored* values — they flow through the same multiply-add
//!   sequence in both paths, so the same entries go non-finite with the
//!   same ±∞ signs; NaN entries match as NaN-to-NaN only, since IEEE-754
//!   leaves a propagated NaN's sign/payload unspecified and x86 codegen
//!   picks them per optimization level (the gram differential is
//!   restricted to finite stored values: a non-finite stored value times
//!   a structural zero densifies to NaN, which the sparse path cannot
//!   see — that boundary is pinned explicitly below);
//! * the `_pooled` variants must be **bit-identical** to their serial
//!   forms for every thread count, across the `SPMM_CHUNK_ROWS` boundary.

use dpar2_linalg::kernel::{gemm_naive_into, Trans};
use dpar2_linalg::sparse::{
    mttkrp_mode3_into, sparse_gram, spmm, spmm_pooled_into, spmm_t, spmm_tn, spmm_tn_pooled_into,
    CooBuilder, SparseSlice, SPMM_CHUNK_ROWS,
};
use dpar2_linalg::Mat;
use dpar2_parallel::ThreadPool;
use proptest::prelude::*;
use proptest::strategy::Just;

/// Bitwise matrix comparison, including zero signs. NaN entries compare
/// as NaN-to-NaN rather than bit-to-bit: IEEE-754 leaves the sign and
/// payload of a propagated NaN unspecified, and on x86 they depend on
/// the operand order the optimizer picks for the commutative `mulsd`/
/// `addsd` (debug and release builds genuinely disagree here).
fn assert_mat_bits(reference: &Mat, got: &Mat, ctx: &str) {
    assert_eq!(reference.shape(), got.shape(), "{ctx}: shape mismatch");
    for (idx, (&r, &g)) in reference.data().iter().zip(got.data()).enumerate() {
        assert!(
            r.to_bits() == g.to_bits() || (r.is_nan() && g.is_nan()),
            "{ctx}: entry {idx} diverges bitwise: reference {r:?} ({:#018x}) vs got {g:?} ({:#018x})",
            r.to_bits(),
            g.to_bits()
        );
    }
}

/// Deterministic dense fill derived from a proptest seed (xorshift64,
/// same scheme as the GEMM differential).
fn filler(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) * 2.0e3 - 1.0e3
    }
}

/// Runs one slice through every kernel against its densified naive
/// oracle, plus the pooled-vs-serial bitwise pins. The dense operands are
/// always finite (the contract's requirement); stored values may be
/// anything. `finite_stored` gates the gram differential.
fn check_all_kernels(s: &SparseSlice, seed: u64, ctx: &str) {
    let d = s.to_dense();
    let finite_stored = s.values().iter().all(|v| v.is_finite());
    let mut next = filler(seed);
    let nrhs = 3;
    let rank = 2;
    let mut reference = Mat::zeros(0, 0);

    // spmm: A·B vs the naive i-p-j loop on the densified slice.
    let b = Mat::from_fn(s.cols(), nrhs, |_, _| next());
    gemm_naive_into(Trans::N, Trans::N, &d, &b, &mut reference);
    let c = spmm(s, &b);
    assert_mat_bits(&reference, &c, &format!("{ctx} spmm"));

    // spmm pooled: bit-identical to serial for every pool size.
    for threads in [1, 2, 4] {
        let pool = ThreadPool::new(threads);
        let mut pooled = Mat::zeros(0, 0);
        spmm_pooled_into(s, &b, &mut pooled, &pool);
        assert_mat_bits(&c, &pooled, &format!("{ctx} spmm_pooled t{threads}"));
    }

    // spmm_t: Aᵀ·B. Per output cell the accumulation runs over source
    // rows ascending in both paths, so the scatter form is still bitwise.
    let b2 = Mat::from_fn(s.rows(), nrhs, |_, _| next());
    gemm_naive_into(Trans::T, Trans::N, &d, &b2, &mut reference);
    assert_mat_bits(&reference, &spmm_t(s, &b2), &format!("{ctx} spmm_t"));

    // spmm_tn: Qᵀ·A (the Y_k product), serial and pooled.
    let q = Mat::from_fn(s.rows(), rank, |_, _| next());
    gemm_naive_into(Trans::T, Trans::N, &q, &d, &mut reference);
    let y = spmm_tn(&q, s);
    assert_mat_bits(&reference, &y, &format!("{ctx} spmm_tn"));
    for threads in [1, 2, 4] {
        let pool = ThreadPool::new(threads);
        let mut pooled = Mat::zeros(0, 0);
        spmm_tn_pooled_into(&q, s, &mut pooled, &pool);
        assert_mat_bits(&y, &pooled, &format!("{ctx} spmm_tn_pooled t{threads}"));
    }

    // gram: AᵀA — both operands are the slice, so a non-finite stored
    // value meets structural zeros of *other* columns (0·∞ densifies to
    // NaN); the bitwise contract only covers finite stored values.
    if finite_stored {
        gemm_naive_into(Trans::T, Trans::N, &d, &d, &mut reference);
        assert_mat_bits(&reference, &sparse_gram(s), &format!("{ctx} gram"));
    }

    // mttkrp mode-3: inline naive oracle over the full dense slice in the
    // same row-major (i, j) order, structural zeros included.
    let u = Mat::from_fn(s.rows(), rank, |_, _| next());
    let v = Mat::from_fn(s.cols(), rank, |_, _| next());
    let mut expect = vec![0.0f64; rank];
    for i in 0..s.rows() {
        let urow = u.row(i);
        for (j, &x) in d.row(i).iter().enumerate() {
            let vrow = v.row(j);
            for (o, (&uv, &vv)) in expect.iter_mut().zip(urow.iter().zip(vrow)) {
                *o += (x * uv) * vv;
            }
        }
    }
    let mut out = vec![f64::NAN; rank];
    mttkrp_mode3_into(s, &u, &v, &mut out);
    for (r, (&e, &g)) in expect.iter().zip(&out).enumerate() {
        assert!(
            e.to_bits() == g.to_bits() || (e.is_nan() && g.is_nan()),
            "{ctx} mttkrp: component {r} diverges: {e:?} vs {g:?}"
        );
    }

    // fro_norm_sq: flat Σx² — squares are never -0.0, so this is bitwise
    // (non-finite stored values included, NaN matching NaN-to-NaN as
    // above) whenever the slice has at least one cell. A 0-cell slice is
    // the documented corner: the sparse side seeds at +0.0 where std's
    // empty `sum()` yields -0.0.
    if s.rows() * s.cols() > 0 {
        let dense_norm: f64 = d.data().iter().map(|&x| x * x).sum();
        let sparse_norm = s.fro_norm_sq();
        assert!(
            dense_norm.to_bits() == sparse_norm.to_bits()
                || (dense_norm.is_nan() && sparse_norm.is_nan()),
            "{ctx} fro_norm_sq: {dense_norm:?} vs {sparse_norm:?}"
        );
    } else {
        assert!(s.fro_norm_sq().to_bits() == 0.0f64.to_bits(), "{ctx} fro_norm_sq: 0-cell slice");
    }
}

/// Builds a slice through the COO path from positional entries: `pos`
/// addresses a cell row-major, so collisions produce genuine duplicate
/// COO entries that `build` must coalesce.
fn slice_from_entries(rows: usize, cols: usize, entries: &[(usize, f64)]) -> SparseSlice {
    let mut b = CooBuilder::new(rows, cols);
    if rows > 0 && cols > 0 {
        for &(pos, v) in entries {
            let p = pos % (rows * cols);
            b.push(p / cols, p % cols, v);
        }
    }
    b.build()
}

/// Strategy: shapes up to 90×8 (straddling the 64-row pooled chunk) with
/// 0..200 finite entries, duplicates included.
fn finite_slice() -> impl Strategy<Value = (SparseSlice, u64)> {
    (0usize..91, 0usize..9)
        .prop_flat_map(|(rows, cols)| {
            let entries =
                prop::collection::vec((0usize..(rows * cols).max(1), -1.0e3f64..1.0e3), 0..200);
            (Just(rows), Just(cols), entries, 0u64..u64::MAX)
        })
        .prop_map(|(rows, cols, entries, seed)| (slice_from_entries(rows, cols, &entries), seed))
}

/// Maps a generated `(kind, magnitude)` pair to a stored value: kinds
/// 0..4 are the specials (NaN, ±∞, -0.0), the rest pass the finite
/// magnitude through — roughly 40% special density.
fn special_value(kind: usize, mag: f64) -> f64 {
    match kind {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        _ => mag,
    }
}

/// Strategy: like [`finite_slice`] but stored values drawn from a pool
/// that includes NaN, ±∞, and -0.0.
fn special_slice() -> impl Strategy<Value = (SparseSlice, u64)> {
    (1usize..41, 1usize..7)
        .prop_flat_map(|(rows, cols)| {
            let entries =
                prop::collection::vec((0usize..rows * cols, 0usize..10, -1.0e3f64..1.0e3), 1..80);
            (Just(rows), Just(cols), entries, 0u64..u64::MAX)
        })
        .prop_map(|(rows, cols, entries, seed)| {
            let mapped: Vec<(usize, f64)> =
                entries.into_iter().map(|(p, k, m)| (p, special_value(k, m))).collect();
            (slice_from_entries(rows, cols, &mapped), seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_match_dense_oracle_bitwise((s, seed) in finite_slice()) {
        check_all_kernels(&s, seed, &format!("{}x{} nnz={}", s.rows(), s.cols(), s.nnz()));
    }

    #[test]
    fn special_stored_values_propagate_bitwise((s, seed) in special_slice()) {
        check_all_kernels(&s, seed, &format!("special {}x{} nnz={}", s.rows(), s.cols(), s.nnz()));
    }

    #[test]
    fn coo_build_is_permutation_invariant_for_distinct_coords(
        rows in 1usize..21,
        cols in 1usize..7,
        entries in prop::collection::vec((0usize..120, -10.0f64..10.0), 0..60),
        rotation in 0usize..60,
    ) {
        // Deduplicate coordinates (keeping the first value per cell) so the
        // only degree of freedom is push order — build must not care.
        let mut seen = std::collections::BTreeMap::new();
        for &(pos, v) in &entries {
            seen.entry(pos % (rows * cols)).or_insert(v);
        }
        let distinct: Vec<(usize, f64)> = seen.into_iter().collect();
        let reference = slice_from_entries(rows, cols, &distinct);
        let mut rotated = distinct.clone();
        rotated.rotate_left(rotation.min(distinct.len().saturating_sub(1)));
        rotated.reverse();
        let permuted = slice_from_entries(rows, cols, &rotated);
        prop_assert_eq!(reference.indptr(), permuted.indptr());
        prop_assert_eq!(reference.indices(), permuted.indices());
        for (a, b) in reference.values().iter().zip(permuted.values()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn coo_duplicates_coalesce_in_push_order(
        pos in 0usize..12,
        dups in prop::collection::vec(-5.0f64..5.0, 2..8),
    ) {
        // Expected stored value: left-to-right sum in push order.
        let expected = dups.iter().fold(0.0f64, |acc, &v| acc + v);
        let entries: Vec<(usize, f64)> = dups.iter().map(|&v| (pos, v)).collect();
        let s = slice_from_entries(3, 4, &entries);
        prop_assert_eq!(s.nnz(), 1, "all entries share one coordinate");
        prop_assert_eq!(s.values()[0].to_bits(), expected.to_bits());
    }
}

// ----------------------------------------------------------------------
// Deterministic edge-case regressions
// ----------------------------------------------------------------------

#[test]
fn degenerate_shapes_and_empty_slices() {
    for (rows, cols) in [(0, 0), (0, 5), (5, 0), (1, 1), (7, 3)] {
        let s = SparseSlice::empty(rows, cols);
        check_all_kernels(&s, 17, &format!("empty {rows}x{cols}"));
    }
}

#[test]
fn empty_rows_and_all_zero_columns() {
    // Rows 1 and 3 empty; columns 0 and 4 never stored (all-zero columns
    // exercise the untouched-lane paths of spmm_t / gram outputs).
    let s = CooBuilder::from_triplets(
        5,
        5,
        [(0, 2, 1.5), (2, 1, -2.0), (2, 3, 4.0), (4, 2, 0.5), (4, 3, -1.0)],
    );
    check_all_kernels(&s, 23, "holes 5x5");
}

#[test]
fn pooled_chunk_boundary_rows() {
    // One below, at, one past, and two chunks past SPMM_CHUNK_ROWS: the
    // pooled kernels must stay bitwise-serial across every boundary.
    for rows in [SPMM_CHUNK_ROWS - 1, SPMM_CHUNK_ROWS, SPMM_CHUNK_ROWS + 1, 2 * SPMM_CHUNK_ROWS + 5]
    {
        let entries: Vec<(usize, f64)> =
            (0..rows * 2).map(|t| (t * 3 + 1, ((t % 13) as f64) - 6.0)).collect();
        let s = slice_from_entries(rows, 6, &entries);
        check_all_kernels(&s, rows as u64, &format!("boundary rows={rows}"));
    }
}

#[test]
fn gram_contract_boundary_is_real() {
    // Documented boundary of the bitwise contract: an ∞ stored next to a
    // structural zero in another column densifies to 0·∞ = NaN in the
    // dense gram, which the sparse gram (touching stored pairs only)
    // cannot produce. This test pins that the *dense* side really does
    // produce NaN there — i.e. the contract's carve-out is not vacuous —
    // and that the sparse side stays finite-structured.
    let s = CooBuilder::from_triplets(2, 2, [(0, 0, f64::INFINITY), (1, 1, 2.0)]);
    let d = s.to_dense();
    let mut dense_gram = Mat::zeros(0, 0);
    gemm_naive_into(Trans::T, Trans::N, &d, &d, &mut dense_gram);
    assert!(dense_gram[(0, 1)].is_nan(), "dense 0·∞ cross-term must be NaN");
    let g = sparse_gram(&s);
    assert_eq!(g[(0, 1)], 0.0, "sparse gram never touches structural-zero pairs");
    assert_eq!(g[(0, 0)], f64::INFINITY, "stored ∞² propagates");
    assert_eq!(g[(1, 1)], 4.0);
}
