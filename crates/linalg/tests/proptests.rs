//! Property-based tests for the linear-algebra substrate.
//!
//! These encode the algebraic identities the PARAFAC2 solvers silently rely
//! on; a violation here would surface as subtle fitness corruption rather
//! than a crash, so we check them over randomized shapes and contents.

use dpar2_linalg::{pinv, qr, svd_thin, Mat};
use proptest::prelude::*;

/// Strategy: a matrix with dimensions in [1, 12] and entries in [-100, 100].
fn small_mat() -> impl Strategy<Value = Mat> {
    (1usize..12, 1usize..12).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Mat::from_vec(r, c, data))
    })
}

/// Strategy: a pair of multiplicable matrices (A: r×k, B: k×c).
fn mul_pair() -> impl Strategy<Value = (Mat, Mat)> {
    (1usize..10, 1usize..10, 1usize..10).prop_flat_map(|(r, k, c)| {
        let a =
            prop::collection::vec(-10.0f64..10.0, r * k).prop_map(move |d| Mat::from_vec(r, k, d));
        let b =
            prop::collection::vec(-10.0f64..10.0, k * c).prop_map(move |d| Mat::from_vec(k, c, d));
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_involution(a in small_mat()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in mul_pair()) {
        // (AB)ᵀ = Bᵀ Aᵀ
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(a.transpose()).unwrap();
        prop_assert!((&ab_t - &bt_at).fro_norm() < 1e-9 * (1.0 + ab_t.fro_norm()));
    }

    #[test]
    fn matmul_tn_nt_consistency((a, b) in mul_pair()) {
        // Aᵀ·B via matmul_tn equals explicit transpose; A·Bᵀ likewise.
        let at = a.transpose();
        let tn = at.matmul_tn(&b).unwrap();          // (Aᵀ)ᵀ·B = A·B
        let plain = a.matmul(&b).unwrap();
        prop_assert!((&tn - &plain).fro_norm() < 1e-9 * (1.0 + plain.fro_norm()));

        let bt = b.transpose();
        let nt = a.matmul_nt(&bt).unwrap();           // A·(Bᵀ)ᵀ = A·B
        prop_assert!((&nt - &plain).fro_norm() < 1e-9 * (1.0 + plain.fro_norm()));
    }

    #[test]
    fn fro_norm_triangle_inequality(a in small_mat()) {
        let double = &a + &a;
        prop_assert!(double.fro_norm() <= 2.0 * a.fro_norm() + 1e-9);
    }

    #[test]
    fn qr_reconstructs(a in small_mat()) {
        let f = qr(&a);
        let recon = f.q.matmul(&f.r).unwrap();
        prop_assert!((&a - &recon).fro_norm() < 1e-8 * (1.0 + a.fro_norm()));
        // Q orthonormal columns.
        let k = f.q.cols();
        prop_assert!((&f.q.gram() - &Mat::eye(k)).fro_norm() < 1e-9);
    }

    #[test]
    fn svd_reconstructs_and_is_sorted(a in small_mat()) {
        let f = svd_thin(&a);
        let recon = f.reconstruct();
        prop_assert!((&a - &recon).fro_norm() < 1e-7 * (1.0 + a.fro_norm()));
        for w in f.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(f.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_frobenius_identity(a in small_mat()) {
        let f = svd_thin(&a);
        let sum_sq: f64 = f.s.iter().map(|&x| x * x).sum();
        prop_assert!((sum_sq - a.fro_norm_sq()).abs() < 1e-7 * (1.0 + a.fro_norm_sq()));
    }

    #[test]
    fn pinv_penrose_one(a in small_mat()) {
        // A A† A = A even for rank-deficient A.
        let p = pinv(&a);
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        prop_assert!((&apa - &a).fro_norm() < 1e-6 * (1.0 + a.fro_norm()));
    }

    #[test]
    fn hstack_then_block_roundtrip((a, b) in mul_pair()) {
        // hstack two same-row matrices then slice them back out.
        let bt = b.transpose();
        if a.rows() == bt.rows() {
            let h = a.hstack(&bt).unwrap();
            prop_assert_eq!(h.block(0, a.rows(), 0, a.cols()), a);
            prop_assert_eq!(h.block(0, a.rows(), a.cols(), h.cols()), bt);
        }
    }

    #[test]
    fn vec_colmajor_preserves_norm(a in small_mat()) {
        let v = a.vec_colmajor();
        let norm_sq: f64 = v.iter().map(|x| x * x).sum();
        prop_assert!((norm_sq - a.fro_norm_sq()).abs() < 1e-9 * (1.0 + a.fro_norm_sq()));
    }
}
