//! Differential test suite for the GEMM kernel layer.
//!
//! The blocked and pooled paths in `dpar2_linalg::kernel` re-group the
//! per-element summation into `KC`-deep register-accumulated partials, so
//! they cannot be bit-equal to the flat naive loops — but they compute the
//! *same multiset of products in a fixed order per group*, so they must
//! agree with the IEEE-faithful naive reference to a summation-length-
//! scaled ulp bound, and must classify non-finite results identically
//! (every product term is identical; NaN-ness and signed-infinity of a sum
//! of a fixed term multiset are order-independent absent overflow).
//!
//! Coverage, per the kernel-layer contract:
//! * all four transpose variants (`N·N`, `T·N`, `N·T`, `T·T`) plus `gram`;
//! * proptest-generated shapes including empty, `1×N`, `N×1`, non-square,
//!   and sizes straddling every tile/panel boundary;
//! * NaN / ±∞ injections (the IEEE-propagation regression class);
//! * the pooled path is additionally required to be **bit-identical** to
//!   the serial blocked path for every thread count — that equality is the
//!   foundation of `Dpar2::fit`'s cross-thread determinism.

use dpar2_linalg::kernel::{gemm_into, gemm_naive_into, gemm_pooled_into, Trans};
use dpar2_linalg::Mat;
use dpar2_parallel::ThreadPool;
use proptest::prelude::*;

const VARIANTS: [(Trans, Trans); 4] =
    [(Trans::N, Trans::N), (Trans::T, Trans::N), (Trans::N, Trans::T), (Trans::T, Trans::T)];

/// Logical operand shapes for `op(A) ∈ R^{m×k}`, `op(B) ∈ R^{k×n}`.
fn operand_shapes(
    m: usize,
    n: usize,
    k: usize,
    ta: Trans,
    tb: Trans,
) -> ((usize, usize), (usize, usize)) {
    let a_shape = match ta {
        Trans::N => (m, k),
        Trans::T => (k, m),
    };
    let b_shape = match tb {
        Trans::N => (k, n),
        Trans::T => (n, k),
    };
    (a_shape, b_shape)
}

/// Asserts `got` agrees with the naive `reference` under the differential
/// contract: identical NaN classification, identical infinities, and for
/// finite entries an error bounded by `(k+2)·4·ε` times the magnitude
/// envelope `Σ_p |a_ip||b_pj|` (each path's compensated error is at most
/// `~k·ε·envelope`; the factor 4 absorbs the FMA-vs-separate-rounding
/// difference between microkernel builds).
fn assert_differential(reference: &Mat, got: &Mat, envelope: &Mat, k: usize, ctx: &str) {
    assert_eq!(reference.shape(), got.shape(), "{ctx}: shape mismatch");
    let tol_scale = 4.0 * (k as f64 + 2.0) * f64::EPSILON;
    for (idx, ((&r, &g), &env)) in
        reference.data().iter().zip(got.data()).zip(envelope.data()).enumerate()
    {
        if r.is_nan() || g.is_nan() {
            assert!(
                r.is_nan() && g.is_nan(),
                "{ctx}: NaN classification mismatch at {idx}: reference {r}, got {g}"
            );
        } else if r.is_infinite() || g.is_infinite() {
            assert_eq!(r, g, "{ctx}: infinity mismatch at {idx}");
        } else {
            let tol = tol_scale * env;
            assert!(
                (r - g).abs() <= tol,
                "{ctx}: entry {idx} deviates: reference {r}, got {g}, |diff| {} > tol {tol}",
                (r - g).abs()
            );
        }
    }
}

/// Runs one (A, B) pair through every kernel path and variant-appropriate
/// oracle comparison. `k` is the summation length.
fn check_all_paths(a: &Mat, b: &Mat, ta: Trans, tb: Trans, k: usize, ctx: &str) {
    let mut reference = Mat::zeros(0, 0);
    gemm_naive_into(ta, tb, a, b, &mut reference);

    // Magnitude envelope for the ulp bound: naive |op(A)|·|op(B)|.
    let abs_a = a.map(f64::abs);
    let abs_b = b.map(f64::abs);
    let mut envelope = Mat::zeros(0, 0);
    gemm_naive_into(ta, tb, &abs_a, &abs_b, &mut envelope);

    let mut blocked = Mat::zeros(0, 0);
    gemm_into(ta, tb, a, b, &mut blocked);
    assert_differential(&reference, &blocked, &envelope, k, &format!("{ctx} blocked"));

    for threads in [1, 3] {
        let pool = ThreadPool::new(threads);
        let mut pooled = Mat::zeros(0, 0);
        gemm_pooled_into(ta, tb, a, b, &mut pooled, &pool);
        // Pooled must agree with serial blocked *bitwise*, not just in ulp
        // (compared via to_bits so identical NaNs count as equal).
        assert_eq!(blocked.shape(), pooled.shape(), "{ctx}: pooled shape");
        for (idx, (&x, &y)) in blocked.data().iter().zip(pooled.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: pooled diverged from serial blocked at {threads} threads, entry {idx}: {x} vs {y}"
            );
        }
    }
}

/// Strategy: shapes around tile/panel boundaries plus the degenerate ones
/// the kernel must survive (empty, vectors, extreme aspect ratios).
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..26, 0usize..26, 0usize..26)
}

/// Strategy: matrix data of the given length with magnitudes spread over
/// many orders but bounded far from overflow (the finite-entry ulp bound
/// assumes no intermediate overflow).
fn finite_data(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e12f64..1.0e12, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_and_pooled_match_naive_all_variants(
        (m, n, k) in dims(),
        seed in 0u64..1_000_000,
    ) {
        for (ta, tb) in VARIANTS {
            let ((ar, ac), (br, bc)) = operand_shapes(m, n, k, ta, tb);
            // Deterministic fill from the proptest seed; cheap and
            // shape-independent.
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) * 2.0e6 - 1.0e6
            };
            let a = Mat::from_fn(ar, ac, |_, _| next());
            let b = Mat::from_fn(br, bc, |_, _| next());
            check_all_paths(&a, &b, ta, tb, k, &format!("{m}x{n}x{k} {ta:?}{tb:?}"));
        }
    }

    #[test]
    fn gram_matches_naive_tn_reference(
        rows in 0usize..40,
        cols in 0usize..20,
        data in finite_data(40 * 20),
    ) {
        let a = Mat::from_fn(rows, cols, |i, j| data[i * 20 + j]);
        let mut reference = Mat::zeros(0, 0);
        gemm_naive_into(Trans::T, Trans::N, &a, &a, &mut reference);
        let abs_a = a.map(f64::abs);
        let mut envelope = Mat::zeros(0, 0);
        gemm_naive_into(Trans::T, Trans::N, &abs_a, &abs_a, &mut envelope);

        let g = a.gram();
        assert_differential(&reference, &g, &envelope, rows, "gram dispatch");
        for threads in [1, 2, 4] {
            let gp = a.gram_pooled(&ThreadPool::new(threads));
            prop_assert_eq!(&g, &gp, "gram_pooled diverged at {} threads", threads);
        }
        // The blocked Gram must stay exactly symmetric: entries (i, j) and
        // (j, i) run the same product sequence in the same order.
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                prop_assert_eq!(g[(i, j)].to_bits(), g[(j, i)].to_bits());
            }
        }
    }

    #[test]
    fn special_values_classify_identically(
        (m, n, k) in (1usize..14, 1usize..14, 1usize..14),
        data in finite_data(14 * 14 * 2),
        specials in prop::collection::vec((0usize..14 * 14 * 2, 0usize..5), 1..6),
    ) {
        for (ta, tb) in VARIANTS {
            let ((ar, ac), (br, bc)) = operand_shapes(m, n, k, ta, tb);
            let mut a_data: Vec<f64> = data[..ar * ac].to_vec();
            let mut b_data: Vec<f64> = data[14 * 14..14 * 14 + br * bc].to_vec();
            // Inject NaN / ±∞ / ±0 at pseudo-random positions of A and B.
            for &(pos, kind) in &specials {
                let val = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0][kind];
                if pos % 2 == 0 {
                    if !a_data.is_empty() {
                        let p = pos / 2 % a_data.len();
                        a_data[p] = val;
                    }
                } else if !b_data.is_empty() {
                    let p = pos / 2 % b_data.len();
                    b_data[p] = val;
                }
            }
            let a = Mat::from_vec(ar, ac, a_data);
            let b = Mat::from_vec(br, bc, b_data);
            check_all_paths(&a, &b, ta, tb, k, &format!("specials {ta:?}{tb:?}"));
        }
    }
}

// ----------------------------------------------------------------------
// Deterministic edge-case regressions
// ----------------------------------------------------------------------

#[test]
fn empty_one_row_one_col_shapes() {
    for (m, n, k) in [
        (0, 0, 0),
        (0, 7, 3),
        (7, 0, 3),
        (7, 3, 0),
        (1, 17, 9), // 1×N
        (17, 1, 9), // N×1
        (1, 1, 300),
        (300, 1, 1),
    ] {
        for (ta, tb) in VARIANTS {
            let ((ar, ac), (br, bc)) = operand_shapes(m, n, k, ta, tb);
            let a = Mat::from_fn(ar, ac, |i, j| (i * 31 + j) as f64 * 0.5 - 3.0);
            let b = Mat::from_fn(br, bc, |i, j| (i as f64) - (j as f64) * 0.25);
            check_all_paths(&a, &b, ta, tb, k, &format!("edge {m}x{n}x{k} {ta:?}{tb:?}"));
        }
    }
}

#[test]
fn boundary_straddling_shapes() {
    // Exactly at / one past the microkernel tile (6×8), the row-panel unit
    // (120), and the depth block (256) — swept over every transpose
    // variant, since each has its own packing index arithmetic that only
    // gets exercised past the first panel/depth block.
    for (m, n, k) in [(6, 8, 256), (7, 9, 257), (120, 8, 16), (121, 16, 255), (12, 24, 512)] {
        for (ta, tb) in VARIANTS {
            let ((ar, ac), (br, bc)) = operand_shapes(m, n, k, ta, tb);
            let a = Mat::from_fn(ar, ac, |i, j| ((i * 13 + j * 7) as f64).sin() * 100.0);
            let b = Mat::from_fn(br, bc, |i, j| ((i + 5 * j) as f64).cos() * 100.0);
            check_all_paths(&a, &b, ta, tb, k, &format!("boundary {m}x{n}x{k} {ta:?}{tb:?}"));
        }
    }
}

/// The IEEE-propagation regression the kernel layer pins (satellite of the
/// kernel-layer issue): the old naive loops skipped `a == 0.0`
/// multiplicands, silently replacing `0·∞` and `0·NaN` (both NaN under
/// IEEE 754) with an additive identity. All paths must now propagate.
#[test]
fn zero_times_special_propagates_nan_through_every_path() {
    // A's zero row meets B's ∞/NaN column head-on.
    let a = Mat::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
    let b = Mat::from_rows(&[&[f64::INFINITY, 1.0], &[3.0, f64::NAN]]);
    let mut c = Mat::zeros(0, 0);

    gemm_naive_into(Trans::N, Trans::N, &a, &b, &mut c);
    assert!(c[(0, 0)].is_nan(), "0·∞ + 2·3 must be NaN, got {}", c[(0, 0)]);
    assert!(c[(0, 1)].is_nan(), "0·1 + 2·NaN must be NaN");
    assert!(c[(1, 0)].is_infinite() && c[(1, 0)] > 0.0);
    assert!(c[(1, 1)].is_nan());

    let mut blocked = Mat::zeros(0, 0);
    gemm_into(Trans::N, Trans::N, &a, &b, &mut blocked);
    let mut pooled = Mat::zeros(0, 0);
    gemm_pooled_into(Trans::N, Trans::N, &a, &b, &mut pooled, &ThreadPool::new(2));
    for (idx, (&n_v, (&b_v, &p_v))) in
        c.data().iter().zip(blocked.data().iter().zip(pooled.data())).enumerate()
    {
        assert_eq!(n_v.is_nan(), b_v.is_nan(), "blocked NaN divergence at {idx}");
        assert_eq!(n_v.is_nan(), p_v.is_nan(), "pooled NaN divergence at {idx}");
        if !n_v.is_nan() {
            assert_eq!(n_v, b_v);
            assert_eq!(n_v, p_v);
        }
    }
}

#[test]
fn matmul_dispatch_consistent_with_direct_kernels() {
    // The public Mat entry points dispatch by size; both sides of the
    // threshold must satisfy the same differential contract.
    for (m, n, k) in [(8, 9, 10), (90, 80, 70)] {
        let a = Mat::from_fn(m, k, |i, j| ((i + 2 * j) as f64).sin());
        let b = Mat::from_fn(k, n, |i, j| ((3 * i + j) as f64).cos());
        let mut reference = Mat::zeros(0, 0);
        gemm_naive_into(Trans::N, Trans::N, &a, &b, &mut reference);
        let abs_prod = {
            let mut e = Mat::zeros(0, 0);
            gemm_naive_into(Trans::N, Trans::N, a.map(f64::abs), b.map(f64::abs), &mut e);
            e
        };
        let via_mat = a.matmul(&b).unwrap();
        assert_differential(&reference, &via_mat, &abs_prod, k, "matmul dispatch");

        let tn = a.transpose().matmul_tn(&b).unwrap();
        assert_differential(&reference, &tn, &abs_prod, k, "matmul_tn dispatch");
        let nt = a.matmul_nt(b.transpose()).unwrap();
        assert_differential(&reference, &nt, &abs_prod, k, "matmul_nt dispatch");
        let tt = a.transpose().matmul_tt(b.transpose()).unwrap();
        assert_differential(&reference, &tt, &abs_prod, k, "matmul_tt dispatch");
    }
}
