//! Differential suite for the zero-copy view layer: a strided sub-block
//! [`MatRef`] must be **bit-identical**, through every GEMM entry point, to
//! the materialized owned copy of the same block. This is the property that
//! lets tensor slices, registry snapshots, and scratch sub-blocks flow
//! through the kernels without defensive copies — any stride-handling bug
//! in the packing/naive loops shows up here as a single differing bit.
//!
//! Coverage: all four transpose variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`, `Aᵀ·Bᵀ`),
//! `gram`, and the pooled paths, over randomized shapes that include empty,
//! `1×N`, `N×1`, and non-unit-stride blocks, plus deterministic
//! boundary-size pins that cross the blocked kernel's tile edges.

use dpar2_linalg::view::MatRef;
use dpar2_linalg::Mat;
use dpar2_parallel::ThreadPool;
use proptest::prelude::*;

/// A host matrix plus a sub-block selection; the block may be empty, a
/// single row/column, or a strict interior block (non-unit stride).
#[derive(Debug, Clone)]
struct Block {
    host: Mat,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
}

impl Block {
    fn view(&self) -> MatRef<'_> {
        self.host.subview(self.r0, self.r1, self.c0, self.c1)
    }

    fn owned(&self) -> Mat {
        self.host.block(self.r0, self.r1, self.c0, self.c1)
    }

    fn rows(&self) -> usize {
        self.r1 - self.r0
    }

    fn cols(&self) -> usize {
        self.c1 - self.c0
    }
}

/// Strategy: a host matrix (up to 40×40) and a sub-block of exactly
/// `rows × cols` carved out at a random offset — strided whenever the host
/// is wider than the block.
fn block_of(rows: usize, cols: usize) -> impl Strategy<Value = Block> {
    (0usize..6, 0usize..6, 0usize..6, 0usize..6).prop_flat_map(move |(top, bottom, left, right)| {
        let (hr, hc) = (rows + top + bottom, cols + left + right);
        prop::collection::vec(-10.0f64..10.0, (hr * hc).max(1)).prop_map(move |data| {
            let host = Mat::from_vec(hr, hc, data[..hr * hc].to_vec());
            Block { host, r0: top, r1: top + rows, c0: left, c1: left + cols }
        })
    })
}

/// Strategy: shapes spanning the interesting degenerate cases — empty,
/// single row, single column, and general small blocks.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..6, 1usize..12, 1usize..12, 1usize..12).prop_map(|(case, m, n, k)| match case {
        // General small shapes (m, n, k up to 12).
        0 => (m, n, k),
        // Row/column vectors.
        1 => (1, n, k),
        2 => (m, 1, k),
        // Empty on each dimension.
        3 => (0, n % 6, k % 6),
        4 => (m % 6, 0, k % 6),
        _ => (m % 6, n % 6, 0),
    })
}

/// Asserts two matrices have identical shapes and bit patterns.
fn assert_bits(label: &str, got: &Mat, want: &Mat) {
    assert_eq!(got.shape(), want.shape(), "{label}: shape");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{label}: entry {i} differs ({g} vs {w})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All four transpose variants: a strided view operand produces the
    /// same bits as the materialized copy (both sides, both operands).
    #[test]
    fn gemm_variants_bitwise_stride_agnostic(
        (m, n, k) in dims(),
        offs in (0usize..4, 0usize..4, 0usize..4, 0usize..4),
        seed in 0u64..1000,
    ) {
        // Builds an interior block of the requested shape inside a larger
        // host (always ≥1 column of margin → non-unit stride when cols > 0).
        let mk_block = |rows: usize, cols: usize, top: usize, left: usize, salt: u64| {
            let (hr, hc) = (rows + top + 1, cols + left + 1);
            let host = Mat::from_fn(hr, hc, |i, j| {
                (((i * 31 + j * 17) as f64) * 0.43 + (seed + salt) as f64 * 0.37).sin()
            });
            Block { host, r0: top, r1: top + rows, c0: left, c1: left + cols }
        };
        let (at, al, bt, bl) = offs;
        // Build A-shaped and B-shaped blocks for each variant's layout.
        type Case = (fn(&Mat, &Mat) -> Mat, (usize, usize), (usize, usize), &'static str);
        let cases: [Case; 4] = [
            (|a, b| a.matmul(b).unwrap(), (m, k), (k, n), "nn"),
            (|a, b| a.matmul_tn(b).unwrap(), (k, m), (k, n), "tn"),
            (|a, b| a.matmul_nt(b).unwrap(), (m, k), (n, k), "nt"),
            (|a, b| a.matmul_tt(b).unwrap(), (k, m), (n, k), "tt"),
        ];
        for (salt, (mul, (ar, ac), (br, bc), label)) in cases.into_iter().enumerate() {
            let a = mk_block(ar, ac, at, al, salt as u64);
            let b = mk_block(br, bc, bt, bl, salt as u64 + 100);
            let (a_owned, b_owned) = (a.owned(), b.owned());
            let want = mul(&a_owned, &b_owned);
            // View on the left, owned on the right…
            let got_left = match label {
                "nn" => a.view().matmul(&b_owned).unwrap(),
                "tn" => a.view().matmul_tn(&b_owned).unwrap(),
                "nt" => a.view().matmul_nt(&b_owned).unwrap(),
                _ => a.view().matmul_tt(&b_owned).unwrap(),
            };
            assert_bits(&format!("{label}: view·owned"), &got_left, &want);
            // …owned on the left, view on the right…
            let got_right = match label {
                "nn" => a_owned.matmul(b.view()).unwrap(),
                "tn" => a_owned.matmul_tn(b.view()).unwrap(),
                "nt" => a_owned.matmul_nt(b.view()).unwrap(),
                _ => a_owned.matmul_tt(b.view()).unwrap(),
            };
            assert_bits(&format!("{label}: owned·view"), &got_right, &want);
            // …and views on both sides.
            let got_both = match label {
                "nn" => a.view().matmul(b.view()).unwrap(),
                "tn" => a.view().matmul_tn(b.view()).unwrap(),
                "nt" => a.view().matmul_nt(b.view()).unwrap(),
                _ => a.view().matmul_tt(b.view()).unwrap(),
            };
            assert_bits(&format!("{label}: view·view"), &got_both, &want);
        }
    }

    /// `gram` on a strided view matches the materialized copy bitwise.
    #[test]
    fn gram_bitwise_stride_agnostic(b in (0usize..14, 0usize..10).prop_flat_map(|(m, n)| block_of(m, n))) {
        let want = b.owned().gram();
        assert_bits("gram", &b.view().gram(), &want);
    }

    /// The pooled entry points accept views and agree bitwise with the
    /// serial result for every thread count.
    #[test]
    fn pooled_paths_bitwise_on_views(
        b in (1usize..10, 1usize..10).prop_flat_map(|(m, n)| block_of(m, n)),
        threads in 1usize..4,
    ) {
        let pool = ThreadPool::new(threads);
        let owned = b.owned();
        let want_nn = owned.matmul_nt(&owned).unwrap();
        let got_nn = b.view().matmul_nt_pooled(b.view(), &pool).unwrap();
        assert_bits("pooled nt", &got_nn, &want_nn);
        assert_bits("pooled gram", &b.view().gram_pooled(&pool), &owned.gram());
    }

    /// Element accessors on a strided view agree with the owned copy.
    #[test]
    fn accessors_match_owned(b in (0usize..8, 0usize..8).prop_flat_map(|(m, n)| block_of(m, n))) {
        let owned = b.owned();
        let v = b.view();
        prop_assert_eq!(v.shape(), owned.shape());
        prop_assert_eq!(v.fro_norm_sq().to_bits(), owned.fro_norm_sq().to_bits());
        prop_assert_eq!(v.max_abs().to_bits(), owned.max_abs().to_bits());
        for i in 0..b.rows() {
            prop_assert_eq!(v.row(i), owned.row(i));
            for j in 0..b.cols() {
                prop_assert_eq!(v.at(i, j).to_bits(), owned.at(i, j).to_bits());
            }
        }
    }
}

/// Deterministic pins at blocked-kernel boundary sizes: a strided view must
/// ride the packed/tiled path identically to its owned copy (these shapes
/// cross the `MR`/`NR`/`MC`/`KC` edges where stride bugs would hide).
#[test]
fn blocked_path_bitwise_on_strided_views() {
    for &(m, n, k) in &[(64usize, 8usize, 256usize), (65, 17, 257), (130, 40, 70)] {
        // Hosts two rows/cols larger than the operands: interior blocks are
        // genuinely strided.
        let host_a = Mat::from_fn(m + 2, k + 2, |i, j| ((i * 7 + j * 3) as f64).sin());
        let host_b = Mat::from_fn(k + 2, n + 2, |i, j| ((i * 5 + j * 11) as f64).cos());
        let va = host_a.subview(1, m + 1, 1, k + 1);
        let vb = host_b.subview(1, k + 1, 1, n + 1);
        let (oa, ob) = (va.to_mat(), vb.to_mat());
        let want = oa.matmul(&ob).unwrap();
        let got = va.matmul(vb).unwrap();
        assert_bits(&format!("blocked {m}x{n}x{k}"), &got, &want);
        // Pooled path on views, every thread count.
        for threads in [1, 2, 3] {
            let pool = ThreadPool::new(threads);
            let pooled = va.matmul_pooled(vb, &pool).unwrap();
            assert_bits(&format!("pooled blocked {m}x{n}x{k}@{threads}"), &pooled, &want);
        }
    }
}
