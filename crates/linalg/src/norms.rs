//! Matrix norms beyond the Frobenius norm that lives on [`crate::Mat`] itself.

use crate::view::AsMatRef;

/// Induced 1-norm: maximum absolute column sum.
pub fn one_norm(a: impl AsMatRef) -> f64 {
    let a = a.as_mat_ref();
    let mut best = 0.0f64;
    for j in 0..a.cols() {
        let s: f64 = (0..a.rows()).map(|i| a.at(i, j).abs()).sum();
        best = best.max(s);
    }
    best
}

/// Induced ∞-norm: maximum absolute row sum.
pub fn inf_norm(a: impl AsMatRef) -> f64 {
    let a = a.as_mat_ref();
    let mut best = 0.0f64;
    for i in 0..a.rows() {
        let s: f64 = a.row(i).iter().map(|x| x.abs()).sum();
        best = best.max(s);
    }
    best
}

/// Spectral norm estimate (largest singular value) by power iteration on
/// `AᵀA`. Deterministic: starts from the all-ones vector.
pub fn two_norm_est(a: impl AsMatRef, iterations: usize) -> f64 {
    let a = a.as_mat_ref();
    if a.rows() == 0 || a.cols() == 0 {
        return 0.0;
    }
    let mut v = vec![1.0; a.cols()];
    let mut norm = 0.0;
    for _ in 0..iterations {
        let av = a.matvec(&v);
        let atav = a.matvec_t(&av);
        norm = atav.iter().map(|x| x * x).sum::<f64>().sqrt().sqrt();
        let vn: f64 = atav.iter().map(|x| x * x).sum::<f64>().sqrt();
        if vn < 1e-300 {
            return 0.0;
        }
        for (vi, &ai) in v.iter_mut().zip(&atav) {
            *vi = ai / vn;
        }
    }
    norm
}

/// Relative Frobenius distance `‖A − B‖_F / ‖A‖_F` (or absolute when `A = 0`).
///
/// # Panics
/// Panics if shapes differ.
pub fn rel_fro_dist(a: impl AsMatRef, b: impl AsMatRef) -> f64 {
    let (a, b) = (a.as_mat_ref(), b.as_mat_ref());
    assert_eq!(a.shape(), b.shape(), "rel_fro_dist: shape mismatch");
    let denom = a.fro_norm();
    let mut num_sq = 0.0;
    for i in 0..a.rows() {
        for (&x, &y) in a.row(i).iter().zip(b.row(i)) {
            let d = x - y;
            num_sq += d * d;
        }
    }
    let num = num_sq.sqrt();
    if denom > 0.0 {
        num / denom
    } else {
        num
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;
    use crate::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_and_inf_norms() {
        let a = Mat::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(one_norm(&a), 6.0); // col 1: |−2| + |4| = 6
        assert_eq!(inf_norm(&a), 7.0); // row 1: |−3| + |4| = 7
    }

    #[test]
    fn two_norm_est_matches_svd() {
        let mut rng = StdRng::seed_from_u64(61);
        let a = gaussian_mat(20, 8, &mut rng);
        let sigma1 = crate::svd::svd_thin(&a).s[0];
        let est = two_norm_est(&a, 100);
        assert!((est - sigma1).abs() < 1e-6 * sigma1);
    }

    #[test]
    fn two_norm_zero_matrix() {
        assert_eq!(two_norm_est(Mat::zeros(3, 3), 10), 0.0);
    }

    #[test]
    fn rel_fro_dist_identity() {
        let a = Mat::ones(3, 3);
        assert_eq!(rel_fro_dist(&a, &a), 0.0);
        let zero = Mat::zeros(2, 2);
        assert_eq!(rel_fro_dist(&zero, &zero), 0.0);
    }

    #[test]
    fn norm_inequalities() {
        // ‖A‖₂ ≤ √(‖A‖₁ ‖A‖_∞)
        let mut rng = StdRng::seed_from_u64(62);
        let a = gaussian_mat(10, 10, &mut rng);
        let two = two_norm_est(&a, 200);
        assert!(two <= (one_norm(&a) * inf_norm(&a)).sqrt() + 1e-9);
    }
}
