//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Used by tests (spectra of Gram matrices) and by analyses that need
//! principal axes of small covariance matrices. Only symmetric input is
//! supported — that is all the PARAFAC2 pipeline requires.

use crate::error::{LinalgError, Result};
use crate::mat::Mat;

/// Maximum Jacobi sweeps; symmetric Jacobi converges quadratically.
const MAX_SWEEPS: usize = 64;

/// Eigendecomposition `A = Q Λ Qᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues in non-increasing order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` pairs with `values[j]`.
    pub vectors: Mat,
}

/// Computes all eigenpairs of a symmetric matrix with cyclic Jacobi
/// rotations.
///
/// # Errors
/// * [`LinalgError::NotSquare`] for rectangular input.
/// * [`LinalgError::NoConvergence`] if the off-diagonal mass fails to vanish
///   in `MAX_SWEEPS` (64) sweeps (does not happen for symmetric input in
///   practice).
///
/// Symmetry is *assumed*: only the upper triangle is read.
pub fn eig_sym(a: &Mat) -> Result<SymEig> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::NotSquare { op: "eig_sym", shape: (m, n) });
    }
    if n == 0 {
        return Ok(SymEig { values: vec![], vectors: Mat::zeros(0, 0) });
    }

    // Work on a symmetrized copy so tiny asymmetries in the input do not
    // leak into the iteration.
    let mut w = Mat::from_fn(n, n, |i, j| 0.5 * (a.at(i, j) + a.at(j, i)));
    let mut q = Mat::eye(n);
    let tol = 1e-14 * w.fro_norm().max(1.0);

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += w.at(i, j) * w.at(i, j);
            }
        }
        if off.sqrt() <= tol {
            converged = true;
            break;
        }
        for p in 0..n {
            for qi in p + 1..n {
                let apq = w.at(p, qi);
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = w.at(p, p);
                let aqq = w.at(qi, qi);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Update rows/columns p and q of the symmetric working copy.
                for k in 0..n {
                    let wkp = w.at(k, p);
                    let wkq = w.at(k, qi);
                    w.set(k, p, c * wkp - s * wkq);
                    w.set(k, qi, s * wkp + c * wkq);
                }
                for k in 0..n {
                    let wpk = w.at(p, k);
                    let wqk = w.at(qi, k);
                    w.set(p, k, c * wpk - s * wqk);
                    w.set(qi, k, s * wpk + c * wqk);
                }
                // Accumulate the rotation into Q.
                for k in 0..n {
                    let qkp = q.at(k, p);
                    let qkq = q.at(k, qi);
                    q.set(k, p, c * qkp - s * qkq);
                    q.set(k, qi, s * qkp + c * qkq);
                }
            }
        }
    }
    if !converged {
        // One final check: the last sweep may have converged exactly.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += w.at(i, j) * w.at(i, j);
            }
        }
        if off.sqrt() > tol * 10.0 {
            return Err(LinalgError::NoConvergence { op: "eig_sym", iterations: MAX_SWEEPS });
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| w.at(i, i)).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Mat::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            vectors.set(i, new_j, q.at(i, old_j));
        }
    }
    Ok(SymEig { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eig_diagonal() {
        let e = eig_sym(&Mat::diag(&[1.0, 5.0, 3.0])).unwrap();
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eig_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eig_sym(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eig_reconstructs_random_symmetric() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = gaussian_mat(10, 10, &mut rng);
        let a = &g + &g.transpose();
        let e = eig_sym(&a).unwrap();
        // Q Λ Qᵀ == A
        let ql = {
            let mut m = e.vectors.clone();
            for i in 0..m.rows() {
                for (j, &lambda) in e.values.iter().enumerate() {
                    let v = m.at(i, j) * lambda;
                    m.set(i, j, v);
                }
            }
            m
        };
        let recon = ql.matmul_nt(&e.vectors).unwrap();
        assert!((&a - &recon).fro_norm() < 1e-9 * a.fro_norm());
        // Orthonormal eigenvectors.
        assert!((&e.vectors.gram() - &Mat::eye(10)).fro_norm() < 1e-10);
    }

    #[test]
    fn eig_gram_matches_svd_squared() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = gaussian_mat(12, 5, &mut rng);
        let g = a.gram();
        let e = eig_sym(&g).unwrap();
        let s = crate::svd::svd_thin(&a).s;
        for (lambda, sigma) in e.values.iter().zip(&s) {
            assert!((lambda - sigma * sigma).abs() < 1e-8 * s[0] * s[0]);
        }
    }

    #[test]
    fn eig_rejects_rectangular() {
        assert!(matches!(eig_sym(&Mat::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn eig_empty() {
        let e = eig_sym(&Mat::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn eigenvalues_of_psd_nonnegative() {
        let mut rng = StdRng::seed_from_u64(33);
        let a = gaussian_mat(8, 8, &mut rng);
        let g = a.gram();
        let e = eig_sym(&g).unwrap();
        assert!(e.values.iter().all(|&v| v > -1e-9));
    }
}
