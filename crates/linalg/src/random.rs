//! Seeded random matrix generation.
//!
//! Randomized SVD (Algorithm 1 of the paper) draws a Gaussian test matrix
//! `Ω ∈ R^{J×(R+s)}`. The `rand` crate in our offline dependency set ships
//! only uniform sampling, so standard normals are produced with the
//! Box–Muller transform — two uniforms per pair of normals, no rejection
//! loop, fully deterministic under a seeded [`rand::Rng`].

use crate::mat::Mat;
use rand::Rng;

/// Draws one standard normal sample using the Box–Muller transform.
///
/// Consumes exactly two uniforms from `rng` and discards the second normal
/// of the pair. Slightly wasteful, but keeps sampling stateless, which
/// matters for reproducibility of the parallel compression stage.
#[inline]
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Guard against log(0).
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > 1e-300 {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates a `rows × cols` matrix with i.i.d. `N(0, 1)` entries.
pub fn gaussian_mat(rows: usize, cols: usize, rng: &mut impl Rng) -> Mat {
    let data = (0..rows * cols).map(|_| standard_normal(rng)).collect();
    Mat::from_vec(rows, cols, data)
}

/// Generates a `rows × cols` matrix with i.i.d. `U[0, 1)` entries — the
/// equivalent of MATLAB Tensor Toolbox's `tenrand` slices used in the
/// paper's scalability experiments (§IV-C).
pub fn uniform_mat(rows: usize, cols: usize, rng: &mut impl Rng) -> Mat {
    let data = (0..rows * cols).map(|_| rng.random::<f64>()).collect();
    Mat::from_vec(rows, cols, data)
}

/// Generates a vector with i.i.d. `N(0, 1)` entries.
pub fn gaussian_vec(len: usize, rng: &mut impl Rng) -> Vec<f64> {
    (0..len).map(|_| standard_normal(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_given_seed() {
        let a = gaussian_mat(4, 4, &mut StdRng::seed_from_u64(99));
        let b = gaussian_mat(4, 4, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
        let c = gaussian_mat(4, 4, &mut StdRng::seed_from_u64(100));
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_moments_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = gaussian_mat(200, 200, &mut rng);
        let n = m.len() as f64;
        let mean: f64 = m.data().iter().sum::<f64>() / n;
        let var: f64 = m.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.02, "sample mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "sample variance {var} too far from 1");
    }

    #[test]
    fn uniform_range() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = uniform_mat(50, 50, &mut rng);
        assert!(m.data().iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean: f64 = m.data().iter().sum::<f64>() / m.len() as f64;
        assert!((mean - 0.5).abs() < 0.02);
    }

    #[test]
    fn gaussian_vec_length() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(gaussian_vec(17, &mut rng).len(), 17);
    }

    #[test]
    fn gaussian_tail_behaviour() {
        // ~99.7% of mass within 3σ; check we are not producing wild values.
        let mut rng = StdRng::seed_from_u64(10);
        let v = gaussian_vec(10_000, &mut rng);
        let outliers = v.iter().filter(|x| x.abs() > 4.0).count();
        assert!(outliers < 20, "too many >4σ samples: {outliers}");
    }
}
