//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! Every PARAFAC2 solver in this repository leans on the SVD:
//!
//! * PARAFAC2-ALS updates `Q_k` from the truncated SVD of `X_k V S_k Hᵀ`
//!   (Algorithm 2, line 4),
//! * DPar2 takes the SVD of the tiny `R×R` matrix `F(k) E Dᵀ V S_k Hᵀ`
//!   (Algorithm 3, line 9),
//! * randomized SVD (Algorithm 1) finishes with an exact SVD of the small
//!   sketch `B = Qᵀ A`.
//!
//! We implement the *one-sided Jacobi* method: it orthogonalizes the columns
//! of the working matrix by plane rotations until convergence, at which point
//! column norms are the singular values. It is simple, unconditionally
//! convergent in practice, and delivers high relative accuracy — a good match
//! for the small/medium matrices these algorithms produce. Tall matrices are
//! QR-preconditioned first (`A = Q·R`, Jacobi on `R`); wide matrices are
//! transposed.

use crate::mat::Mat;
use crate::qr::{qr_into, QrScratch};
use crate::view::{AsMatRef, MatRef};

/// Maximum number of Jacobi sweeps before declaring non-convergence.
/// One-sided Jacobi converges quadratically; well-conditioned inputs finish
/// in < 10 sweeps, so 60 leaves a wide margin.
const MAX_SWEEPS: usize = 60;

/// A (thin) singular value decomposition `A ≈ U · diag(s) · Vᵀ`.
#[derive(Debug, Clone, Default)]
pub struct SvdFactors {
    /// Column-orthonormal left factor, `m × k`.
    pub u: Mat,
    /// Singular values in non-increasing order, length `k`.
    pub s: Vec<f64>,
    /// Column-orthonormal right factor, `n × k`.
    pub v: Mat,
}

impl SvdFactors {
    /// Reconstructs `U · diag(s) · Vᵀ`.
    pub fn reconstruct(&self) -> Mat {
        let us = scale_cols(&self.u, &self.s);
        us.matmul_nt(&self.v).expect("SvdFactors::reconstruct: shape mismatch")
    }

    /// Numerical rank at relative tolerance `rel_tol` (fraction of `s[0]`).
    pub fn rank(&self, rel_tol: f64) -> usize {
        let cutoff = self.s.first().copied().unwrap_or(0.0) * rel_tol;
        self.s.iter().filter(|&&x| x > cutoff).count()
    }
}

/// Returns `m` with column `j` scaled by `s[j]`.
fn scale_cols(m: &Mat, s: &[f64]) -> Mat {
    let mut out = m.clone();
    let cols = m.cols();
    for i in 0..m.rows() {
        let row = out.row_mut(i);
        for (j, &sj) in s.iter().enumerate().take(cols) {
            row[j] *= sj;
        }
    }
    out
}

/// Reusable scratch for the in-place SVD entry points. One instance serves
/// any sequence of factorizations; buffers grow to the largest shape seen
/// and are then reused, so repeated same-shape factorizations (the per-slice
/// `R×R` SVDs of the ALS iterations) perform no heap allocations.
#[derive(Debug, Default)]
pub struct SvdScratch {
    /// Column-major Jacobi working store (`n` columns of length `m`).
    w: Vec<f64>,
    /// Accumulated right-rotation matrix before sorting.
    v: Mat,
    /// Column norms (candidate singular values) before sorting.
    sigmas: Vec<f64>,
    /// Column permutation sorting the spectrum descending.
    order: Vec<usize>,
    /// Indices of numerically-null columns of `U` to re-orthonormalize.
    deficient: Vec<usize>,
    /// Gram–Schmidt candidate vector for basis completion.
    cand: Vec<f64>,
    /// QR-preconditioning scratch (tall inputs).
    qr: QrScratch,
    /// QR factors of tall inputs.
    qr_q: Mat,
    qr_r: Mat,
    /// Left factor of the preconditioned inner SVD.
    u_inner: Mat,
    /// Transposed copy for wide inputs.
    trans: Mat,
}

/// Thin SVD of an arbitrary dense matrix.
///
/// Strategy:
/// * `m ≥ n`: QR-precondition when noticeably tall, then one-sided Jacobi.
/// * `m < n`: factorize the transpose and swap `U`/`V`.
pub fn svd_thin(a: impl AsMatRef) -> SvdFactors {
    let mut out = SvdFactors::default();
    svd_thin_into(a, &mut out, &mut SvdScratch::default());
    out
}

/// [`svd_thin`] into a caller-owned [`SvdFactors`] with reusable scratch —
/// the allocation-free form the ALS hot loops run on. Bit-identical to
/// [`svd_thin`].
pub fn svd_thin_into(a: impl AsMatRef, out: &mut SvdFactors, ws: &mut SvdScratch) {
    let a = a.as_mat_ref();
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        out.u.resize_zeroed(m, 0);
        out.s.clear();
        out.v.resize_zeroed(n, 0);
        return;
    }
    if m < n {
        // Wide: factorize the transpose with U/V output slots swapped.
        let mut t = std::mem::take(&mut ws.trans);
        a.transpose_into(&mut t);
        svd_tall_into(t.view(), &mut out.v, &mut out.s, &mut out.u, ws);
        ws.trans = t;
        return;
    }
    svd_tall_into(a, &mut out.u, &mut out.s, &mut out.v, ws);
}

/// Tall/square driver (`m ≥ n`): QR-precondition when noticeably tall.
fn svd_tall_into(a: MatRef<'_>, u: &mut Mat, s: &mut Vec<f64>, v: &mut Mat, ws: &mut SvdScratch) {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    // QR preconditioning: Jacobi sweeps cost O(m n²) each, so shrinking the
    // row dimension to n first is a large win whenever m is even modestly
    // larger than n (and never hurts accuracy).
    if m > n + n / 4 {
        qr_into(a, &mut ws.qr_q, &mut ws.qr_r, &mut ws.qr);
        let mut u_inner = std::mem::take(&mut ws.u_inner);
        let r = std::mem::take(&mut ws.qr_r);
        jacobi_svd_into(r.view(), &mut u_inner, s, v, ws);
        ws.qr_q.matmul_into(&u_inner, u);
        ws.u_inner = u_inner;
        ws.qr_r = r;
        return;
    }
    jacobi_svd_into(a, u, s, v, ws);
}

/// Rank-`r` truncated SVD: the leading `r` singular triplets of `a`.
///
/// This mirrors MATLAB's `svds(A, r)` as used throughout the paper's
/// pseudocode ("performing truncated SVD at rank R").
pub fn svd_truncated(a: impl AsMatRef, r: usize) -> SvdFactors {
    let f = svd_thin(a);
    truncate(&f, r)
}

/// [`svd_truncated`] into a caller-owned [`SvdFactors`]; `tmp` holds the
/// full factorization before truncation. Bit-identical to [`svd_truncated`].
pub fn svd_truncated_into(
    a: impl AsMatRef,
    r: usize,
    out: &mut SvdFactors,
    tmp: &mut SvdFactors,
    ws: &mut SvdScratch,
) {
    svd_thin_into(a, tmp, ws);
    let k = r.min(tmp.s.len());
    out.u.resize_zeroed(tmp.u.rows(), k);
    for i in 0..tmp.u.rows() {
        out.u.row_mut(i).copy_from_slice(&tmp.u.row(i)[..k]);
    }
    out.s.clear();
    out.s.extend_from_slice(&tmp.s[..k]);
    out.v.resize_zeroed(tmp.v.rows(), k);
    for i in 0..tmp.v.rows() {
        out.v.row_mut(i).copy_from_slice(&tmp.v.row(i)[..k]);
    }
}

/// Keeps the leading `r` triplets of an existing factorization.
pub fn truncate(f: &SvdFactors, r: usize) -> SvdFactors {
    let k = r.min(f.s.len());
    SvdFactors {
        u: f.u.block(0, f.u.rows(), 0, k),
        s: f.s[..k].to_vec(),
        v: f.v.block(0, f.v.rows(), 0, k),
    }
}

/// One-sided Jacobi SVD for `m ≥ n`, writing into caller buffers.
///
/// Works on `W = A` column-wise: each rotation orthogonalizes one pair of
/// columns of `W` while accumulating the same rotation into `V`. On
/// convergence `W = U · diag(s)` and `A = W Vᵀ`. The working store is one
/// flat column-major buffer (column `j` at `w[j·m..(j+1)·m]`), so the
/// rotation loops stream contiguous memory.
fn jacobi_svd_into(
    a: MatRef<'_>,
    u: &mut Mat,
    s: &mut Vec<f64>,
    v_out: &mut Mat,
    ws: &mut SvdScratch,
) {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    // Column-major working copy: rotations touch whole columns, so columns
    // must be contiguous for this loop to vectorize.
    let w = &mut ws.w;
    w.clear();
    w.reserve(n * m);
    for j in 0..n {
        for i in 0..m {
            w.push(a.at(i, j));
        }
    }
    let v = &mut ws.v;
    v.resize_zeroed(n, n);
    for i in 0..n {
        v.set(i, i, 1.0);
    }

    let fro: f64 = a.fro_norm();
    if fro == 0.0 {
        // Zero matrix: arbitrary orthonormal factors, zero spectrum.
        u.resize_zeroed(m, n);
        for j in 0..n {
            u.set(j, j, 1.0);
        }
        s.clear();
        s.resize(n, 0.0);
        v_out.copy_from(&*v);
        return;
    }
    let tol = 1e-15 * fro * fro;

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in p + 1..n {
                let (col_p, col_q) = (&w[p * m..(p + 1) * m], &w[q * m..(q + 1) * m]);
                let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                for i in 0..m {
                    let wp = col_p[i];
                    let wq = col_q[i];
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if apq.abs() <= tol.max(1e-30) || apq.abs() <= 1e-15 * (app * aqq).sqrt() {
                    continue;
                }
                rotated = true;
                // Closed-form Jacobi rotation that zeroes the (p,q) entry of
                // the implicit Gram matrix WᵀW.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s_rot = c * t;
                // Rotate columns p and q of W…
                let (wp, wq) = pair_mut(w, m, p, q);
                for i in 0..m {
                    let xp = wp[i];
                    let xq = wq[i];
                    wp[i] = c * xp - s_rot * xq;
                    wq[i] = s_rot * xp + c * xq;
                }
                // …and the same columns of V.
                for i in 0..n {
                    let vp = v.at(i, p);
                    let vq = v.at(i, q);
                    v.set(i, p, c * vp - s_rot * vq);
                    v.set(i, q, s_rot * vp + c * vq);
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Column norms are the singular values.
    let order = &mut ws.order;
    order.clear();
    order.extend(0..n);
    let sigmas = &mut ws.sigmas;
    sigmas.clear();
    sigmas
        .extend(w.chunks_exact(m.max(1)).map(|col| col.iter().map(|&x| x * x).sum::<f64>().sqrt()));
    order.sort_by(|&i, &j| sigmas[j].partial_cmp(&sigmas[i]).expect("NaN singular value"));

    u.resize_zeroed(m, n);
    s.clear();
    v_out.resize_zeroed(n, n);
    let sigma_max = order.first().map(|&i| sigmas[i]).unwrap_or(0.0);
    let rank_tol = sigma_max * 1e-14;
    ws.deficient.clear();
    for (new_j, &old_j) in order.iter().enumerate() {
        let sigma = sigmas[old_j];
        s.push(sigma);
        if sigma > rank_tol && sigma > 0.0 {
            let inv = 1.0 / sigma;
            let col = &w[old_j * m..(old_j + 1) * m];
            for i in 0..m {
                u.set(i, new_j, col[i] * inv);
            }
        } else {
            ws.deficient.push(new_j);
        }
        for i in 0..n {
            v_out.set(i, new_j, v.at(i, old_j));
        }
    }
    // Rank-deficient inputs leave null columns in U; PARAFAC2's Q_k update
    // needs a fully orthonormal U, so complete the basis deterministically.
    if !ws.deficient.is_empty() {
        complete_orthonormal_columns(u, &ws.deficient, &mut ws.cand);
    }
}

/// Borrows two distinct columns of the flat working store mutably.
fn pair_mut(w: &mut [f64], m: usize, p: usize, q: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert!(p < q);
    let (lo, hi) = w.split_at_mut(q * m);
    (&mut lo[p * m..(p + 1) * m], &mut hi[..m])
}

/// Fills the given columns of `u` with vectors orthonormal to all other
/// columns, using modified Gram–Schmidt against deterministic seed vectors.
fn complete_orthonormal_columns(u: &mut Mat, targets: &[usize], cand: &mut Vec<f64>) {
    let m = u.rows();
    let n = u.cols();
    let mut next_seed = 0usize;
    for &col in targets {
        'seed: loop {
            // Try canonical basis vectors e_0, e_1, … as seeds.
            cand.clear();
            cand.resize(m, 0.0);
            if next_seed < m {
                cand[next_seed] = 1.0;
            } else {
                // Extremely unlikely fallback: pseudo-random deterministic fill.
                for (i, c) in cand.iter_mut().enumerate() {
                    *c = ((i * 2654435761 + next_seed) % 1000) as f64 / 1000.0 - 0.5;
                }
            }
            next_seed += 1;
            // Orthogonalize against every other column (twice for stability).
            for _ in 0..2 {
                for j in 0..n {
                    if j == col {
                        continue;
                    }
                    let proj: f64 = (0..m).map(|i| cand[i] * u.at(i, j)).sum();
                    for (i, c) in cand.iter_mut().enumerate() {
                        *c -= proj * u.at(i, j);
                    }
                }
            }
            let norm: f64 = cand.iter().map(|&x| x * x).sum::<f64>().sqrt();
            if norm > 1e-8 {
                let inv = 1.0 / norm;
                for (i, c) in cand.iter().enumerate() {
                    u.set(i, col, c * inv);
                }
                break 'seed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_valid_svd(a: &Mat, f: &SvdFactors, tol: f64) {
        // Orthonormality.
        let iu = (&f.u.gram() - &Mat::eye(f.u.cols())).fro_norm();
        let iv = (&f.v.gram() - &Mat::eye(f.v.cols())).fro_norm();
        assert!(iu < tol, "U not orthonormal: {iu}");
        assert!(iv < tol, "V not orthonormal: {iv}");
        // Ordering.
        for wpair in f.s.windows(2) {
            assert!(wpair[0] >= wpair[1] - 1e-12, "singular values not sorted: {:?}", f.s);
        }
        // Reconstruction.
        let err = (a - &f.reconstruct()).fro_norm();
        assert!(err < tol * a.fro_norm().max(1.0), "reconstruction error {err}");
    }

    #[test]
    fn svd_known_2x2() {
        // A = [[3, 0], [0, -2]] has singular values {3, 2}.
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, -2.0]]);
        let f = svd_thin(&a);
        assert!((f.s[0] - 3.0).abs() < 1e-12);
        assert!((f.s[1] - 2.0).abs() < 1e-12);
        assert_valid_svd(&a, &f, 1e-10);
    }

    #[test]
    fn svd_square_random() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = gaussian_mat(12, 12, &mut rng);
        assert_valid_svd(&a, &svd_thin(&a), 1e-9);
    }

    #[test]
    fn svd_tall_random_uses_qr_path() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = gaussian_mat(60, 7, &mut rng);
        assert_valid_svd(&a, &svd_thin(&a), 1e-9);
    }

    #[test]
    fn svd_wide_random_transposes() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = gaussian_mat(5, 40, &mut rng);
        let f = svd_thin(&a);
        assert_eq!(f.u.shape(), (5, 5));
        assert_eq!(f.v.shape(), (40, 5));
        assert_valid_svd(&a, &f, 1e-9);
    }

    #[test]
    fn svd_rank_deficient() {
        // rank 1: outer product.
        let u = Mat::col_vector(&[1.0, 2.0, 3.0, 4.0]);
        let v = Mat::row_vector(&[1.0, -1.0, 0.5]);
        let a = u.matmul(&v).unwrap();
        let f = svd_thin(&a);
        assert_valid_svd(&a, &f, 1e-9);
        assert_eq!(f.rank(1e-10), 1);
        assert!(f.s[1] < 1e-10);
        assert!(f.s[2] < 1e-10);
    }

    #[test]
    fn svd_zero_matrix() {
        let a = Mat::zeros(6, 3);
        let f = svd_thin(&a);
        assert_eq!(f.s, vec![0.0; 3]);
        let iu = (&f.u.gram() - &Mat::eye(3)).fro_norm();
        assert!(iu < 1e-12);
    }

    #[test]
    fn svd_matches_frobenius_identity() {
        // ‖A‖²_F = Σ σᵢ².
        let mut rng = StdRng::seed_from_u64(24);
        let a = gaussian_mat(15, 9, &mut rng);
        let f = svd_thin(&a);
        let sum_sq: f64 = f.s.iter().map(|&x| x * x).sum();
        assert!((sum_sq - a.fro_norm_sq()).abs() < 1e-9 * a.fro_norm_sq());
    }

    #[test]
    fn truncated_svd_is_best_low_rank() {
        // Eckart–Young: truncation error equals the tail singular values.
        let mut rng = StdRng::seed_from_u64(25);
        let a = gaussian_mat(20, 10, &mut rng);
        let full = svd_thin(&a);
        let r = 4;
        let tr = svd_truncated(&a, r);
        assert_eq!(tr.s.len(), r);
        let err_sq = (&a - &tr.reconstruct()).fro_norm_sq();
        let tail_sq: f64 = full.s[r..].iter().map(|&x| x * x).sum();
        assert!((err_sq - tail_sq).abs() < 1e-8 * a.fro_norm_sq());
    }

    #[test]
    fn truncate_beyond_rank_is_identity() {
        let mut rng = StdRng::seed_from_u64(26);
        let a = gaussian_mat(6, 4, &mut rng);
        let f = svd_truncated(&a, 99);
        assert_eq!(f.s.len(), 4);
    }

    #[test]
    fn singular_values_invariant_under_orthogonal_transform() {
        let mut rng = StdRng::seed_from_u64(27);
        let a = gaussian_mat(10, 6, &mut rng);
        let q = crate::qr::qr(gaussian_mat(10, 10, &mut rng)).q;
        let qa = q.matmul(&a).unwrap();
        let s1 = svd_thin(&a).s;
        let s2 = svd_thin(&qa).s;
        for (x, y) in s1.iter().zip(&s2) {
            assert!((x - y).abs() < 1e-9 * s1[0]);
        }
    }

    #[test]
    fn empty_matrix() {
        let f = svd_thin(Mat::zeros(0, 0));
        assert!(f.s.is_empty());
    }

    #[test]
    fn reconstruct_diag() {
        let a = Mat::diag(&[5.0, 1.0, 3.0]);
        let f = svd_thin(&a);
        assert_eq!(f.s.len(), 3);
        assert!((f.s[0] - 5.0).abs() < 1e-12);
        assert!((f.s[1] - 3.0).abs() < 1e-12);
        assert!((f.s[2] - 1.0).abs() < 1e-12);
        assert_valid_svd(&a, &f, 1e-10);
    }
}
