//! Error type shared by the factorization routines.

use std::fmt;

/// Errors produced by linear-algebra routines.
///
/// Dimension mismatches in *user-facing* entry points are reported through
/// this type; internal kernels use debug assertions because their callers
/// have already validated shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes. The payload carries
    /// `(left_rows, left_cols, right_rows, right_cols)`.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// A routine that requires a square matrix received a rectangular one.
    NotSquare {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// The offending shape.
        shape: (usize, usize),
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The matrix was singular (or numerically singular) where a
    /// non-singular one was required.
    Singular {
        /// Human-readable name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, left, right } => write!(
                f,
                "{op}: dimension mismatch ({}x{} vs {}x{})",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { op, shape } => {
                write!(f, "{op}: expected square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NoConvergence { op, iterations } => {
                write!(f, "{op}: no convergence after {iterations} iterations")
            }
            LinalgError::Singular { op } => write!(f, "{op}: matrix is singular"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for results of linear-algebra routines.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch { op: "matmul", left: (2, 3), right: (4, 5) };
        assert_eq!(e.to_string(), "matmul: dimension mismatch (2x3 vs 4x5)");
    }

    #[test]
    fn display_not_square() {
        let e = LinalgError::NotSquare { op: "lu", shape: (2, 3) };
        assert_eq!(e.to_string(), "lu: expected square matrix, got 2x3");
    }

    #[test]
    fn display_no_convergence() {
        let e = LinalgError::NoConvergence { op: "jacobi_svd", iterations: 64 };
        assert_eq!(e.to_string(), "jacobi_svd: no convergence after 64 iterations");
    }

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular { op: "lu_solve" };
        assert_eq!(e.to_string(), "lu_solve: matrix is singular");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinalgError::Singular { op: "x" });
    }
}
