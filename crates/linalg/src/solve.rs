//! Direct linear solvers: LU with partial pivoting and triangular solves.
//!
//! These are not on the PARAFAC2 hot path (the ALS updates use the
//! pseudoinverse as the paper's pseudocode prescribes) but are required by
//! baselines, data generators, and a large amount of test oracle code.

use crate::error::{LinalgError, Result};
use crate::mat::Mat;
use crate::view::AsMatRef;

/// LU factorization with partial pivoting: `P A = L U`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Packed LU factors (unit-diagonal `L` below, `U` on/above).
    lu: Mat,
    /// Row permutation: row `i` of `P·A` is row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

/// Factorizes a square matrix with partial pivoting.
///
/// # Errors
/// * [`LinalgError::NotSquare`] for rectangular input.
/// * [`LinalgError::Singular`] if a pivot underflows.
pub fn lu(a: impl AsMatRef) -> Result<LuFactors> {
    let a = a.as_mat_ref();
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::NotSquare { op: "lu", shape: (m, n) });
    }
    let mut lu_m = a.to_mat();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    for k in 0..n {
        // Pivot search in column k.
        let mut p = k;
        let mut best = lu_m.at(k, k).abs();
        for i in k + 1..n {
            let v = lu_m.at(i, k).abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best < 1e-300 {
            return Err(LinalgError::Singular { op: "lu" });
        }
        if p != k {
            // Swap rows k and p.
            for j in 0..n {
                let tmp = lu_m.at(k, j);
                lu_m.set(k, j, lu_m.at(p, j));
                lu_m.set(p, j, tmp);
            }
            perm.swap(k, p);
            sign = -sign;
        }
        let pivot = lu_m.at(k, k);
        for i in k + 1..n {
            let factor = lu_m.at(i, k) / pivot;
            lu_m.set(i, k, factor);
            if factor != 0.0 {
                for j in k + 1..n {
                    let v = lu_m.at(i, j) - factor * lu_m.at(k, j);
                    lu_m.set(i, j, v);
                }
            }
        }
    }
    Ok(LuFactors { lu: lu_m, perm, sign })
}

impl LuFactors {
    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the factorized dimension.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "solve_vec: rhs length mismatch");
        // Forward substitution with permuted rhs (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for j in 0..i {
                s -= self.lu.at(i, j) * y[j];
            }
            y[i] = s;
        }
        // Back substitution on U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self.lu.at(i, j) * x[j];
            }
            x[i] = s / self.lu.at(i, i);
        }
        x
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Panics
    /// Panics if `b.rows()` differs from the factorized dimension.
    pub fn solve_mat(&self, b: &Mat) -> Mat {
        let n = self.lu.rows();
        assert_eq!(b.rows(), n, "solve_mat: rhs row mismatch");
        let mut x = Mat::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve_vec(&b.col(j));
            x.set_col(j, &col);
        }
        x
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu.at(i, i);
        }
        d
    }
}

/// Convenience wrapper: solves `A x = b` in one call.
///
/// # Errors
/// Propagates factorization errors from [`lu`].
pub fn solve(a: impl AsMatRef, b: &[f64]) -> Result<Vec<f64>> {
    Ok(lu(a)?.solve_vec(b))
}

/// Inverts a square non-singular matrix.
///
/// # Errors
/// Propagates factorization errors from [`lu`].
pub fn inverse(a: impl AsMatRef) -> Result<Mat> {
    let a = a.as_mat_ref();
    let n = a.rows();
    Ok(lu(a)?.solve_mat(&Mat::eye(n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solve_known_system() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1
        let a = Mat::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]);
        let x = solve(&a, &[3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_random_roundtrip() {
        let mut rng = StdRng::seed_from_u64(51);
        let a = gaussian_mat(15, 15, &mut rng);
        let x_true: Vec<f64> = (0..15).map(|i| (i as f64 * 0.7).cos()).collect();
        let b = a.matvec(&x_true);
        let x = solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(52);
        let a = gaussian_mat(8, 8, &mut rng);
        let inv = inverse(&a).unwrap();
        assert!((&a.matmul(&inv).unwrap() - &Mat::eye(8)).fro_norm() < 1e-9);
    }

    #[test]
    fn det_of_diag() {
        let f = lu(Mat::diag(&[2.0, 3.0, 4.0])).unwrap();
        assert!((f.det() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn det_sign_under_row_swap() {
        // Permutation matrix has determinant -1.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((lu(&a).unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(lu(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(lu(Mat::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_mat_multiple_rhs() {
        let mut rng = StdRng::seed_from_u64(53);
        let a = gaussian_mat(6, 6, &mut rng);
        let b = gaussian_mat(6, 3, &mut rng);
        let x = lu(&a).unwrap().solve_mat(&b);
        assert!((&a.matmul(&x).unwrap() - &b).fro_norm() < 1e-9);
    }
}
