//! Householder QR factorization.
//!
//! The randomized SVD (Algorithm 1 of the paper, line 3) orthonormalizes the
//! sketch `Y = (AAᵀ)^q A Ω` with a QR factorization; this module provides the
//! thin (`economy-size`) variant `A = Q R` with `Q ∈ R^{m×k}`, `R ∈ R^{k×n}`,
//! `k = min(m, n)` via Householder reflections, which is unconditionally
//! numerically stable (unlike Gram–Schmidt).

use crate::mat::Mat;
use crate::view::AsMatRef;

/// Result of a thin QR factorization `A = Q R`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Column-orthonormal `m × k` factor, `k = min(m, n)`.
    pub q: Mat,
    /// Upper-triangular (trapezoidal when `m < n`) `k × n` factor.
    pub r: Mat,
}

/// Reusable scratch for [`qr_into`]: the full-size working copy of `A` and
/// the Householder vectors. Holding one of these across calls makes
/// repeated factorizations of same-shaped inputs allocation-free.
#[derive(Debug, Default)]
pub struct QrScratch {
    /// Working copy of `A` that the reflectors are applied to.
    work: Mat,
    /// Householder vectors; `vs[j]` has length `m - j`. The outer vector is
    /// never cleared, so inner capacities persist across calls.
    vs: Vec<Vec<f64>>,
    /// Reflector scales, one per column.
    taus: Vec<f64>,
}

/// Computes the thin QR factorization of `a` using Householder reflections.
///
/// For each column `k`, a reflector `H_k = I − τ v vᵀ` annihilates the
/// entries below the diagonal; `Q` is accumulated by applying the reflectors
/// to the thin identity in reverse order.
pub fn qr(a: impl AsMatRef) -> QrFactors {
    let mut f = QrFactors { q: Mat::zeros(0, 0), r: Mat::zeros(0, 0) };
    qr_into(a, &mut f.q, &mut f.r, &mut QrScratch::default());
    f
}

/// [`qr`] into caller-owned output buffers (`q`, `r` resized in place) with
/// reusable scratch — the allocation-free form the per-iteration SVDs of
/// the ALS solvers run on. Bit-identical to [`qr`].
pub fn qr_into(a: impl AsMatRef, q: &mut Mat, r_thin: &mut Mat, ws: &mut QrScratch) {
    let a = a.as_mat_ref();
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let r = &mut ws.work;
    r.copy_from(a);
    // Householder vectors, one per reflected column. v[j] has length m - j.
    while ws.vs.len() < k {
        ws.vs.push(Vec::new());
    }
    ws.taus.clear();

    for j in 0..k {
        // Build the reflector from column j, rows j..m.
        let v = &mut ws.vs[j];
        v.clear();
        v.extend((j..m).map(|i| r.at(i, j)));
        let alpha = v[0];
        let sigma: f64 = v[1..].iter().map(|&x| x * x).sum();
        if sigma == 0.0 && alpha >= 0.0 {
            // Column already in upper-triangular form; identity reflector.
            ws.taus.push(0.0);
            continue;
        }
        let norm = (alpha * alpha + sigma).sqrt();
        // Choose the sign that avoids cancellation.
        let v0 = if alpha <= 0.0 { alpha - norm } else { -sigma / (alpha + norm) };
        let tau = 2.0 * v0 * v0 / (sigma + v0 * v0);
        let inv_v0 = 1.0 / v0;
        v[0] = 1.0;
        for x in &mut v[1..] {
            *x *= inv_v0;
        }

        // Apply H = I − τ v vᵀ to the trailing submatrix R[j.., j..].
        for col in j..n {
            let mut s = 0.0;
            for (idx, &vi) in v.iter().enumerate() {
                s += vi * r.at(j + idx, col);
            }
            s *= tau;
            if s != 0.0 {
                for (idx, &vi) in v.iter().enumerate() {
                    let cur = r.at(j + idx, col);
                    r.set(j + idx, col, cur - s * vi);
                }
            }
        }
        ws.taus.push(tau);
    }

    // Zero the subdiagonal of R explicitly and truncate to k rows.
    r_thin.resize_zeroed(k, n);
    for i in 0..k {
        for j in i..n {
            r_thin.set(i, j, r.at(i, j));
        }
    }

    // Accumulate the thin Q: apply H_0 H_1 … H_{k-1} to the m×k identity,
    // multiplying from the last reflector backwards.
    q.resize_zeroed(m, k);
    for i in 0..k {
        q.set(i, i, 1.0);
    }
    for j in (0..k).rev() {
        let v = &ws.vs[j];
        let tau = ws.taus[j];
        if tau == 0.0 {
            continue;
        }
        for col in 0..k {
            let mut s = 0.0;
            for (idx, &vi) in v.iter().enumerate() {
                s += vi * q.at(j + idx, col);
            }
            s *= tau;
            if s != 0.0 {
                for (idx, &vi) in v.iter().enumerate() {
                    let cur = q.at(j + idx, col);
                    q.set(j + idx, col, cur - s * vi);
                }
            }
        }
    }
}

/// Solves the least-squares problem `min_x ‖A x − b‖₂` for tall full-rank `A`
/// via the thin QR factorization (`R x = Qᵀ b` back-substitution).
///
/// # Panics
/// Panics if `a.rows() < a.cols()` or `b.len() != a.rows()`.
pub fn lstsq(a: impl AsMatRef, b: &[f64]) -> Vec<f64> {
    let a = a.as_mat_ref();
    assert!(a.rows() >= a.cols(), "lstsq: system must be square or overdetermined");
    assert_eq!(b.len(), a.rows(), "lstsq: rhs length mismatch");
    let f = qr(a);
    let qtb = f.q.matvec_t(b);
    // Back substitution on R (k × n with k == n here).
    let n = a.cols();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = qtb[i];
        for j in i + 1..n {
            s -= f.r.at(i, j) * x[j];
        }
        let d = f.r.at(i, i);
        x[i] = if d.abs() > crate::EPS { s / d } else { 0.0 };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_orthonormal_cols(q: &Mat, tol: f64) {
        let g = q.gram();
        let eye = Mat::eye(q.cols());
        assert!(
            (&g - &eye).fro_norm() < tol,
            "columns not orthonormal: deviation {}",
            (&g - &eye).fro_norm()
        );
    }

    #[test]
    fn qr_reconstructs_tall() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = gaussian_mat(20, 5, &mut rng);
        let f = qr(&a);
        assert_eq!(f.q.shape(), (20, 5));
        assert_eq!(f.r.shape(), (5, 5));
        assert_orthonormal_cols(&f.q, 1e-12);
        let recon = f.q.matmul(&f.r).unwrap();
        assert!((&a - &recon).fro_norm() < 1e-12 * a.fro_norm().max(1.0));
    }

    #[test]
    fn qr_reconstructs_square() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = gaussian_mat(9, 9, &mut rng);
        let f = qr(&a);
        assert_orthonormal_cols(&f.q, 1e-12);
        assert!((&a - &f.q.matmul(&f.r).unwrap()).fro_norm() < 1e-11);
    }

    #[test]
    fn qr_reconstructs_wide() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = gaussian_mat(4, 11, &mut rng);
        let f = qr(&a);
        assert_eq!(f.q.shape(), (4, 4));
        assert_eq!(f.r.shape(), (4, 11));
        assert_orthonormal_cols(&f.q, 1e-12);
        assert!((&a - &f.q.matmul(&f.r).unwrap()).fro_norm() < 1e-11);
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = gaussian_mat(8, 6, &mut rng);
        let f = qr(&a);
        for i in 0..f.r.rows() {
            for j in 0..i.min(f.r.cols()) {
                assert_eq!(f.r.at(i, j), 0.0, "R({i},{j}) not zeroed");
            }
        }
    }

    #[test]
    fn qr_of_identity() {
        let f = qr(Mat::eye(5));
        assert!((&f.q.matmul(&f.r).unwrap() - &Mat::eye(5)).fro_norm() < 1e-14);
    }

    #[test]
    fn qr_rank_deficient_still_factorizes() {
        // Two identical columns.
        let a = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let f = qr(&a);
        assert!((&a - &f.q.matmul(&f.r).unwrap()).fro_norm() < 1e-12);
    }

    #[test]
    fn qr_zero_matrix() {
        let a = Mat::zeros(4, 3);
        let f = qr(&a);
        assert!((&a - &f.q.matmul(&f.r).unwrap()).fro_norm() < 1e-15);
    }

    #[test]
    fn lstsq_exact_system() {
        let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]);
        let x = lstsq(&a, &[2.0, 8.0, 0.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_overdetermined_matches_normal_equations() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = gaussian_mat(30, 4, &mut rng);
        let b: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let x = lstsq(&a, &b);
        // Residual must be orthogonal to the column space: Aᵀ(Ax − b) = 0.
        let ax = a.matvec(&x);
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let at_r = a.matvec_t(&resid);
        assert!(at_r.iter().all(|v| v.abs() < 1e-10));
    }
}
