//! Sparse CSR slices and the sparse kernel family — the substrate for
//! SPARTan-parity sparse PARAFAC2 workloads (EHR records, clickstreams,
//! user–item logs, where slices are >99% zeros and the dense backing
//! buffer of `dpar2_tensor` is millions of times too big to materialize).
//!
//! * [`SparseSlice`] — one frontal slice `X_k ∈ R^{I_k×J}` in compressed
//!   sparse row (CSR) form: `indptr` (length `I_k + 1`), per-row
//!   strictly-ascending column `indices`, and `values`.
//! * [`CooBuilder`] — coordinate-format ingestion with duplicate
//!   coalescing, the loader-facing construction path.
//! * Kernels — [`spmm`] (`A·B`), [`spmm_t`] (`Aᵀ·B`), [`spmm_nt`]
//!   (`A·Bᵀ`, the `A·Ωᵀ`-shaped sketching product), [`spmm_tn`]
//!   (`Qᵀ·A`, the `Y_k = Q_kᵀX_k` product of SPARTan's inner step),
//!   [`sparse_gram`] (`AᵀA`), [`mttkrp_mode3_into`] (the per-slice CP
//!   mode-3 row `Σ_{(i,j)} x_{ij} (u_i ∗ v_j)`), and
//!   [`SparseSlice::fro_norm_sq`] — all touching nonzeros only, with
//!   `_pooled` variants over a [`ThreadPool`]. Together with the dense
//!   [`crate::Mat`] products they are exactly the pass set the randomized
//!   compression of DPar2 needs to run at O(nnz) per sketch pass.
//!
//! ## Ordering discipline (the bit-identity contract)
//!
//! Every kernel here accumulates in **exactly the order of the dense
//! naive loops** (`mat.rs`'s `mm_naive`/`gram_naive`) with the structural
//! zeros skipped, using a separate multiply and add (never FMA). Skipping
//! a structural zero means skipping an addition of `±0.0`, which is an
//! exact identity on any IEEE-754 accumulator that is not `-0.0` — and
//! `+=` accumulators seeded by `resize_zeroed` can never become `-0.0`
//! (`+0.0 + -0.0 = +0.0` under round-to-nearest). Hence, whenever the
//! *dense* operand is finite, each kernel is **bitwise identical** to
//! densifying the slice and running the corresponding naive dense loop —
//! the property the differential suite (`tests/sparse_differential.rs`)
//! pins, and the reason `SpartanSparse` fits match their densified
//! `SpartanDense` runs bit for bit. Non-finite *stored* values (NaN, ±∞)
//! propagate identically through both paths because they flow through the
//! same multiply-add sequence; only products of a structural zero with a
//! non-finite dense entry (which densification would turn into NaN)
//! are outside the contract.
//!
//! The `_pooled` variants partition the **output** into fixed-size row
//! blocks ([`SPMM_CHUNK_ROWS`], never thread-count-dependent), each block
//! computed by exactly one worker in the serial per-entry order — so every
//! pooled kernel is bit-identical to its serial form for every pool size,
//! the same guarantee the dense blocked-GEMM layer gives.

use crate::mat::Mat;
use crate::view::{AsMatRef, MatRef};
use dpar2_parallel::ThreadPool;

/// Output rows per work item in the `_pooled` kernels. A fixed constant —
/// chunk boundaries must depend only on the problem shape, never on the
/// thread count, so pooled results are bit-identical for every pool size.
pub const SPMM_CHUNK_ROWS: usize = 64;

/// One sparse frontal slice `X ∈ R^{rows×cols}` in CSR form.
///
/// Row `i`'s nonzeros live at `indptr[i]..indptr[i+1]` in `indices`
/// (strictly ascending columns) and `values`. Explicitly stored zeros are
/// permitted (e.g. duplicates that coalesced to zero); "structural zero"
/// below always means an entry with no stored value.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSlice {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl SparseSlice {
    /// Builds a slice from raw CSR arrays, validating the invariants.
    ///
    /// # Panics
    /// Panics if `indptr.len() != rows + 1`, `indptr` is not monotone from
    /// 0 to `indices.len()`, `indices.len() != values.len()`, or any row's
    /// columns are not strictly ascending and `< cols`.
    pub fn new(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "SparseSlice: indptr length must be rows + 1");
        assert_eq!(indptr[0], 0, "SparseSlice: indptr must start at 0");
        assert_eq!(
            *indptr.last().expect("indptr is non-empty"),
            indices.len(),
            "SparseSlice: indptr must end at nnz"
        );
        assert_eq!(indices.len(), values.len(), "SparseSlice: indices/values length mismatch");
        for i in 0..rows {
            assert!(indptr[i] <= indptr[i + 1], "SparseSlice: indptr must be monotone");
            let row = &indices[indptr[i]..indptr[i + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "SparseSlice: row {i} columns must be strictly ascending");
            }
            if let Some(&last) = row.last() {
                assert!(
                    last < cols,
                    "SparseSlice: row {i} column {last} out of range (cols {cols})"
                );
            }
        }
        SparseSlice { rows, cols, indptr, indices, values }
    }

    /// A slice with no stored entries.
    pub fn empty(rows: usize, cols: usize) -> Self {
        SparseSlice {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Sparsifies a dense matrix, dropping exact zeros (`±0.0`; NaN is
    /// kept — it compares unequal to zero). Round-trips through
    /// [`SparseSlice::to_dense`] for any matrix without stored `-0.0`.
    pub fn from_dense(a: impl AsMatRef) -> Self {
        let a = a.as_mat_ref();
        let (rows, cols) = a.shape();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for i in 0..rows {
            for (j, &x) in a.row(i).iter().enumerate() {
                if x != 0.0 {
                    indices.push(j);
                    values.push(x);
                }
            }
            indptr.push(indices.len());
        }
        SparseSlice { rows, cols, indptr, indices, values }
    }

    /// Densifies into a `rows × cols` matrix (structural zeros become
    /// `+0.0`).
    pub fn to_dense(&self) -> Mat {
        let mut out = Mat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let orow = out.row_mut(i);
            for (&j, &v) in cols.iter().zip(vals) {
                orow[j] = v;
            }
        }
        out
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored fraction `nnz / (rows · cols)` (0 for a degenerate shape).
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Row `i`'s stored columns and values, in ascending column order.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let range = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[range.clone()], &self.values[range])
    }

    /// The CSR row-pointer array (length `rows + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The stored column indices, row-major.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The stored values, row-major.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// COO iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
        })
    }

    /// Squared Frobenius norm over stored entries only. Bitwise identical
    /// to the dense flat `Σ x²` of the densified slice whenever the slice
    /// has at least one cell: squares are never `-0.0`, so the skipped
    /// structural terms are exact `+0.0` identities. (The accumulator is
    /// seeded at `+0.0` explicitly — `std`'s empty float `sum()` yields
    /// `-0.0` — so a fully degenerate 0-cell slice returns `+0.0` where
    /// the dense flat sum would give `-0.0`; the two compare numerically
    /// equal.)
    pub fn fro_norm_sq(&self) -> f64 {
        self.values.iter().fold(0.0, |acc, &v| acc + v * v)
    }
}

/// Coordinate-format (COO) construction buffer for a [`SparseSlice`].
///
/// `push` accepts triples in any order, including duplicates;
/// [`CooBuilder::build`] sorts them by `(row, col)` with a **stable** sort
/// and coalesces duplicates by summing values in push order, so repeated
/// entries accumulate deterministically. Entries that coalesce to exactly
/// zero are **kept** as explicit stored zeros (dropping them would make
/// the result depend on floating-point cancellation).
#[derive(Debug, Clone, Default)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// An empty builder for a `rows × cols` slice.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooBuilder { rows, cols, entries: Vec::new() }
    }

    /// Records one `(row, col, value)` triple.
    ///
    /// # Panics
    /// Panics if `row >= rows` or `col >= cols`.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows, "CooBuilder: row {row} out of range (rows {})", self.rows);
        assert!(col < self.cols, "CooBuilder: col {col} out of range (cols {})", self.cols);
        self.entries.push((row, col, value));
    }

    /// Number of recorded triples (before coalescing).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorts, coalesces duplicates (summing in push order), and emits the
    /// CSR slice.
    pub fn build(mut self) -> SparseSlice {
        // Stable sort: duplicate (row, col) groups keep push order, so the
        // coalescing sum below is deterministic for any input order of
        // *distinct* coordinates.
        self.entries.sort_by_key(|&(i, j, _)| (i, j));
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        let mut row = 0usize;
        for &(i, j, v) in &self.entries {
            while row < i {
                indptr.push(indices.len());
                row += 1;
            }
            if indices.len() > indptr[row] && *indices.last().expect("non-empty row") == j {
                *values.last_mut().expect("non-empty row") += v;
            } else {
                indices.push(j);
                values.push(v);
            }
        }
        while row < self.rows {
            indptr.push(indices.len());
            row += 1;
        }
        SparseSlice { rows: self.rows, cols: self.cols, indptr, indices, values }
    }

    /// Convenience: build directly from an iterator of triples.
    ///
    /// # Panics
    /// Panics if any triple is out of range.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> SparseSlice {
        let mut b = CooBuilder::new(rows, cols);
        for (i, j, v) in triplets {
            b.push(i, j, v);
        }
        b.build()
    }
}

/// `C = A·B` for CSR `A` (`m×k`) and dense `B` (`k×n`), into `c`.
///
/// Per output row `i`, nonzeros `(j, v)` are consumed in ascending column
/// order with `c.row(i) += v * b.row(j)` — exactly the dense naive `i-k-j`
/// loop with structural-zero terms skipped, so the result is bitwise equal
/// to `a.to_dense().matmul(b)` on the naive dispatch path (finite `b`).
///
/// # Panics
/// Panics on shape mismatch.
pub fn spmm_into(a: &SparseSlice, b: impl AsMatRef, c: &mut Mat) {
    let b = b.as_mat_ref();
    let n = b.shape().1;
    assert_eq!(b.shape().0, a.cols(), "spmm: inner dimension mismatch");
    c.resize_zeroed(a.rows(), n);
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        let crow = c.row_mut(i);
        for (&j, &v) in cols.iter().zip(vals) {
            let brow = b.row(j);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += v * bv;
            }
        }
    }
}

/// Allocating wrapper over [`spmm_into`].
pub fn spmm(a: &SparseSlice, b: impl AsMatRef) -> Mat {
    let mut c = Mat::zeros(0, 0);
    spmm_into(a, b, &mut c);
    c
}

/// `C = Aᵀ·B` for CSR `A` (`m×k`) and dense `B` (`m×n`), into `c` (`k×n`).
///
/// Scatter form: rows `i` ascending, nonzeros `(j, v)` ascending within the
/// row, `c.row(j) += v * b.row(i)` — exactly the dense naive `matmul_tn`
/// rank-1 outer loop with structural-zero terms skipped; bitwise equal to
/// `a.to_dense().matmul_tn(b)` on the naive path (finite `b`).
///
/// # Panics
/// Panics on shape mismatch.
pub fn spmm_t_into(a: &SparseSlice, b: impl AsMatRef, c: &mut Mat) {
    let b = b.as_mat_ref();
    let n = b.shape().1;
    assert_eq!(b.shape().0, a.rows(), "spmm_t: row dimension mismatch");
    c.resize_zeroed(a.cols(), n);
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        let brow = b.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            let crow = c.row_mut(j);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += v * bv;
            }
        }
    }
}

/// Allocating wrapper over [`spmm_t_into`].
pub fn spmm_t(a: &SparseSlice, b: impl AsMatRef) -> Mat {
    let mut c = Mat::zeros(0, 0);
    spmm_t_into(a, b, &mut c);
    c
}

/// `C = A·Bᵀ` for CSR `A` (`m×k`) and dense `B` (`n×k`), into `c` (`m×n`).
///
/// The `A·Ωᵀ`-shaped product of sketching pipelines that store the test
/// matrix row-major per direction. Per output row `i`, nonzeros `(p, v)`
/// ascending, `c[i][jj] += v * b[jj][p]` over all output columns — exactly
/// the dense naive `matmul_nt` `i-p-j` loop with structural-zero terms
/// skipped; bitwise equal to `a.to_dense().matmul_nt(b)` on the naive
/// path (finite `b`).
///
/// # Panics
/// Panics on shape mismatch.
pub fn spmm_nt_into(a: &SparseSlice, b: impl AsMatRef, c: &mut Mat) {
    let b = b.as_mat_ref();
    let n = b.shape().0;
    assert_eq!(b.shape().1, a.cols(), "spmm_nt: inner dimension mismatch");
    c.resize_zeroed(a.rows(), n);
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        let crow = c.row_mut(i);
        for (&p, &v) in cols.iter().zip(vals) {
            for (jj, cv) in crow.iter_mut().enumerate() {
                *cv += v * b.at(jj, p);
            }
        }
    }
}

/// Allocating wrapper over [`spmm_nt_into`].
pub fn spmm_nt(a: &SparseSlice, b: impl AsMatRef) -> Mat {
    let mut c = Mat::zeros(0, 0);
    spmm_nt_into(a, b, &mut c);
    c
}

/// `C = Qᵀ·A` for dense `Q` (`m×r`) and CSR `A` (`m×n`), into `c` (`r×n`).
///
/// This is the `Y_k = Q_kᵀ X_k` product of SPARTan's inner step. Rows `i`
/// ascending; for each, `q.row(i)` entries `r` ascending scatter into
/// `c[r][j] += q[i][r] * x` over the row's nonzeros — the dense naive
/// `matmul_tn` order with structural zeros skipped; bitwise equal to
/// `q.matmul_tn(a.to_dense())` on the naive path (finite `q`).
///
/// # Panics
/// Panics on shape mismatch.
pub fn spmm_tn_into(q: impl AsMatRef, a: &SparseSlice, c: &mut Mat) {
    let q = q.as_mat_ref();
    let (qm, qr) = q.shape();
    assert_eq!(qm, a.rows(), "spmm_tn: Q rows must match A rows");
    c.resize_zeroed(qr, a.cols());
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        for (r, &qir) in q.row(i).iter().enumerate() {
            let crow = c.row_mut(r);
            for (&j, &x) in cols.iter().zip(vals) {
                crow[j] += qir * x;
            }
        }
    }
}

/// Allocating wrapper over [`spmm_tn_into`].
pub fn spmm_tn(q: impl AsMatRef, a: &SparseSlice) -> Mat {
    let mut c = Mat::zeros(0, 0);
    spmm_tn_into(q, a, &mut c);
    c
}

/// `G = AᵀA` (`n×n`) over stored entries, into `g`.
///
/// Row-outer form: for each row, every stored pair `(ja, jb)` accumulates
/// `g[ja][jb] += va * vb` — the dense `gram_naive` rank-1 row-outer order
/// with structural-zero pairs skipped; bitwise equal to
/// `a.to_dense().gram()` on the naive path for **finite** stored values
/// (a non-finite stored value times a structural zero densifies to NaN,
/// which the sparse path cannot see).
///
/// # Panics
/// Panics on shape mismatch.
pub fn sparse_gram_into(a: &SparseSlice, g: &mut Mat) {
    g.resize_zeroed(a.cols(), a.cols());
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        for (&ja, &va) in cols.iter().zip(vals) {
            let grow = g.row_mut(ja);
            for (&jb, &vb) in cols.iter().zip(vals) {
                grow[jb] += va * vb;
            }
        }
    }
}

/// Allocating wrapper over [`sparse_gram_into`].
pub fn sparse_gram(a: &SparseSlice) -> Mat {
    let mut g = Mat::zeros(0, 0);
    sparse_gram_into(a, &mut g);
    g
}

/// Per-slice sparse mode-3 MTTKRP row: `out[r] = Σ_{(i,j)} x_{ij} · u[i][r] · v[j][r]`.
///
/// `u` is `rows×R` (e.g. `Q_k·H`), `v` is `cols×R`, `out` is length `R`.
/// Entries are consumed in row-major CSR order with a separate multiply per
/// factor (`(x * u) * v`, no FMA), matching the dense SPARTan mode-3
/// accumulation over `Y_k = A_kᵀ·U` up to the shared ordering discipline.
///
/// # Panics
/// Panics if `u`/`v`/`out` shapes do not match the slice and each other.
pub fn mttkrp_mode3_into(a: &SparseSlice, u: impl AsMatRef, v: impl AsMatRef, out: &mut [f64]) {
    let u = u.as_mat_ref();
    let v = v.as_mat_ref();
    let r = out.len();
    assert_eq!(u.shape(), (a.rows(), r), "mttkrp_mode3: U shape mismatch");
    assert_eq!(v.shape(), (a.cols(), r), "mttkrp_mode3: V shape mismatch");
    out.fill(0.0);
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        let urow = u.row(i);
        for (&j, &x) in cols.iter().zip(vals) {
            let vrow = v.row(j);
            for (o, (&uv, &vv)) in out.iter_mut().zip(urow.iter().zip(vrow)) {
                *o += (x * uv) * vv;
            }
        }
    }
}

/// Pooled [`spmm_into`]: output rows are split into fixed
/// [`SPMM_CHUNK_ROWS`] blocks, each computed by one worker in the serial
/// per-entry order. Bitwise identical to the serial kernel for every pool
/// size (chunk boundaries depend only on the shape).
///
/// # Panics
/// Panics on shape mismatch.
pub fn spmm_pooled_into(a: &SparseSlice, b: impl AsMatRef, c: &mut Mat, pool: &ThreadPool) {
    let b = b.as_mat_ref();
    let n = b.shape().1;
    assert_eq!(b.shape().0, a.cols(), "spmm: inner dimension mismatch");
    c.resize_zeroed(a.rows(), n);
    if pool.threads() == 1 || a.rows() <= SPMM_CHUNK_ROWS || n == 0 {
        spmm_serial_body(a, b, c);
        return;
    }
    pool.for_each_chunk_mut(c.data_mut(), SPMM_CHUNK_ROWS * n, |chunk_idx, chunk| {
        let row0 = chunk_idx * SPMM_CHUNK_ROWS;
        let rows_here = chunk.len() / n;
        for (di, crow) in chunk.chunks_exact_mut(n).enumerate() {
            let (cols, vals) = a.row(row0 + di);
            for (&j, &v) in cols.iter().zip(vals) {
                for (cv, &bv) in crow.iter_mut().zip(b.row(j)) {
                    *cv += v * bv;
                }
            }
        }
        debug_assert!(rows_here <= SPMM_CHUNK_ROWS);
    });
}

fn spmm_serial_body(a: &SparseSlice, b: MatRef<'_>, c: &mut Mat) {
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        let crow = c.row_mut(i);
        for (&j, &v) in cols.iter().zip(vals) {
            for (cv, &bv) in crow.iter_mut().zip(b.row(j)) {
                *cv += v * bv;
            }
        }
    }
}

/// Pooled [`spmm_tn_into`]: the `r×n` output is split into fixed
/// column-range blocks; every worker scans the full nonzero stream but
/// writes only its own column block, preserving the serial per-entry
/// accumulation order within each output cell. Bitwise identical to the
/// serial kernel for every pool size. (This parallelizes the flops, not
/// the CSR scan — slice-level parallelism in the solver is the primary
/// axis; this variant exists for very wide single slices.)
///
/// # Panics
/// Panics on shape mismatch.
pub fn spmm_tn_pooled_into(q: impl AsMatRef, a: &SparseSlice, c: &mut Mat, pool: &ThreadPool) {
    let q = q.as_mat_ref();
    let (qm, qr) = q.shape();
    assert_eq!(qm, a.rows(), "spmm_tn: Q rows must match A rows");
    c.resize_zeroed(qr, a.cols());
    if pool.threads() == 1 || qr <= 1 || a.cols() == 0 {
        spmm_tn_into(q, a, c);
        return;
    }
    // One chunk per output row (a full row of length cols): rank r of the
    // projection. Each worker handles a disjoint set of r's; per-cell
    // accumulation order (i ascending, then nonzero order) is unchanged.
    let n = a.cols();
    pool.for_each_chunk_mut(c.data_mut(), n, |r, crow| {
        for i in 0..a.rows() {
            let qir = q.row(i)[r];
            let (cols, vals) = a.row(i);
            for (&j, &x) in cols.iter().zip(vals) {
                crow[j] += qir * x;
            }
        }
    });
}

/// Pooled [`spmm_t_into`]: the `k×n` output is split into fixed
/// [`SPMM_CHUNK_ROWS`] row blocks; every worker scans the full nonzero
/// stream (rows `i` ascending, nonzeros ascending) but scatters only into
/// its own block of output rows, preserving the serial per-cell
/// accumulation order. Bitwise identical to the serial kernel for every
/// pool size. (Like [`spmm_tn_pooled_into`], this parallelizes the flops
/// of one product, not the CSR scan — slice-level fan-out remains the
/// solvers' primary axis.)
///
/// # Panics
/// Panics on shape mismatch.
pub fn spmm_t_pooled_into(a: &SparseSlice, b: impl AsMatRef, c: &mut Mat, pool: &ThreadPool) {
    let b = b.as_mat_ref();
    let n = b.shape().1;
    assert_eq!(b.shape().0, a.rows(), "spmm_t: row dimension mismatch");
    c.resize_zeroed(a.cols(), n);
    if pool.threads() == 1 || a.cols() <= SPMM_CHUNK_ROWS || n == 0 {
        spmm_t_into(a, b, c);
        return;
    }
    pool.for_each_chunk_mut(c.data_mut(), SPMM_CHUNK_ROWS * n, |chunk_idx, chunk| {
        let row0 = chunk_idx * SPMM_CHUNK_ROWS;
        let rows_here = chunk.len() / n;
        for i in 0..a.rows() {
            let (cols, vals) = a.row(i);
            let brow = b.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j < row0 || j >= row0 + rows_here {
                    continue;
                }
                let crow = &mut chunk[(j - row0) * n..(j - row0 + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += v * bv;
                }
            }
        }
    });
}

/// Pooled [`spmm_nt_into`]: output rows are split into fixed
/// [`SPMM_CHUNK_ROWS`] blocks, each computed by one worker in the serial
/// per-entry order. Bitwise identical to the serial kernel for every pool
/// size.
///
/// # Panics
/// Panics on shape mismatch.
pub fn spmm_nt_pooled_into(a: &SparseSlice, b: impl AsMatRef, c: &mut Mat, pool: &ThreadPool) {
    let b = b.as_mat_ref();
    let n = b.shape().0;
    assert_eq!(b.shape().1, a.cols(), "spmm_nt: inner dimension mismatch");
    c.resize_zeroed(a.rows(), n);
    if pool.threads() == 1 || a.rows() <= SPMM_CHUNK_ROWS || n == 0 {
        spmm_nt_into(a, b, c);
        return;
    }
    pool.for_each_chunk_mut(c.data_mut(), SPMM_CHUNK_ROWS * n, |chunk_idx, chunk| {
        let row0 = chunk_idx * SPMM_CHUNK_ROWS;
        for (di, crow) in chunk.chunks_exact_mut(n).enumerate() {
            let (cols, vals) = a.row(row0 + di);
            for (&p, &v) in cols.iter().zip(vals) {
                for (jj, cv) in crow.iter_mut().enumerate() {
                    *cv += v * b.at(jj, p);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_fixture() -> Mat {
        Mat::from_vec(
            3,
            4,
            vec![
                1.0, 0.0, 2.0, 0.0, //
                0.0, 0.0, 0.0, 0.0, //
                -3.0, 4.0, 0.0, 5.0,
            ],
        )
    }

    #[test]
    fn from_dense_round_trips() {
        let d = dense_fixture();
        let s = SparseSlice::from_dense(&d);
        assert_eq!(s.nnz(), 5);
        assert_eq!(s.to_dense(), d);
        assert!(s.row(1).0.is_empty() && s.row(1).1.is_empty());
        assert_eq!(s.row(2).0, &[0, 1, 3]);
    }

    #[test]
    fn coo_builder_coalesces_duplicates_in_push_order() {
        let mut b = CooBuilder::new(2, 3);
        b.push(1, 2, 1.0);
        b.push(0, 0, 2.0);
        b.push(1, 2, 0.5);
        b.push(1, 2, -1.5);
        let s = b.build();
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.row(1), (&[2usize][..], &[0.0f64][..]));
        assert_eq!(s.row(0), (&[0usize][..], &[2.0f64][..]));
    }

    #[test]
    fn coo_keeps_explicit_zero_from_cancellation() {
        let s = CooBuilder::from_triplets(1, 2, [(0, 1, 3.0), (0, 1, -3.0)]);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.values(), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn new_rejects_unsorted_columns() {
        SparseSlice::new(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coo_push_rejects_out_of_range() {
        CooBuilder::new(2, 2).push(0, 5, 1.0);
    }

    #[test]
    fn spmm_matches_dense() {
        let d = dense_fixture();
        let s = SparseSlice::from_dense(&d);
        let b = Mat::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let dense = d.matmul(&b).expect("shapes agree");
        assert_eq!(spmm(&s, &b), dense);
        let pool = ThreadPool::new(3);
        let mut c = Mat::zeros(0, 0);
        spmm_pooled_into(&s, &b, &mut c, &pool);
        assert_eq!(c, dense);
    }

    #[test]
    fn spmm_t_and_tn_match_dense() {
        let d = dense_fixture();
        let s = SparseSlice::from_dense(&d);
        let b = Mat::from_vec(3, 2, vec![1.0, -1.0, 2.0, 0.5, -0.25, 3.0]);
        assert_eq!(spmm_t(&s, &b), d.matmul_tn(&b).expect("shapes agree"));
        let qta = b.matmul_tn(&d).expect("shapes agree");
        assert_eq!(spmm_tn(&b, &s), qta);
        let pool = ThreadPool::new(2);
        let mut c = Mat::zeros(0, 0);
        spmm_tn_pooled_into(&b, &s, &mut c, &pool);
        assert_eq!(c, qta);
    }

    #[test]
    fn spmm_nt_matches_dense() {
        let d = dense_fixture();
        let s = SparseSlice::from_dense(&d);
        let b = Mat::from_vec(2, 4, vec![1.0, -2.0, 0.5, 3.0, -0.25, 1.5, 2.0, -1.0]);
        let dense = d.matmul_nt(&b).expect("shapes agree");
        assert_eq!(spmm_nt(&s, &b), dense);
        let pool = ThreadPool::new(3);
        let mut c = Mat::zeros(0, 0);
        spmm_nt_pooled_into(&s, &b, &mut c, &pool);
        assert_eq!(c, dense);
    }

    /// The pooled scatter/gather kernels must agree with their serial
    /// forms bitwise even when the output spans several row chunks.
    #[test]
    fn pooled_t_and_nt_bitwise_match_serial_across_chunks() {
        // 300 columns so Aᵀ·B's output (cols × n) spans >4 chunks; values
        // and pattern vary per row so chunk mix-ups would show.
        let rows = 130;
        let cols = 300;
        let mut coo = CooBuilder::new(rows, cols);
        for i in 0..rows {
            for t in 0..7 {
                let j = (i * 31 + t * 43) % cols;
                coo.push(i, j, (i as f64 - 3.0) * 0.25 + t as f64);
            }
        }
        let a = coo.build();
        let b_t = Mat::from_fn(rows, 3, |i, j| ((i * 7 + j * 5) % 11) as f64 - 4.0);
        let b_nt = Mat::from_fn(9, cols, |i, j| ((i * 13 + j * 3) % 17) as f64 - 7.5);
        let serial_t = spmm_t(&a, &b_t);
        let serial_nt = spmm_nt(&a, &b_nt);
        for threads in [2, 4] {
            let pool = ThreadPool::new(threads);
            let mut c = Mat::zeros(0, 0);
            spmm_t_pooled_into(&a, &b_t, &mut c, &pool);
            assert_eq!(c, serial_t, "spmm_t diverged at {threads} threads");
            spmm_nt_pooled_into(&a, &b_nt, &mut c, &pool);
            assert_eq!(c, serial_nt, "spmm_nt diverged at {threads} threads");
        }
    }

    #[test]
    fn gram_and_norm_match_dense() {
        let d = dense_fixture();
        let s = SparseSlice::from_dense(&d);
        assert_eq!(sparse_gram(&s), d.gram());
        let dense_norm: f64 = d.data().iter().map(|&x| x * x).sum();
        assert_eq!(s.fro_norm_sq().to_bits(), dense_norm.to_bits());
    }

    #[test]
    fn mttkrp_mode3_matches_manual() {
        let d = dense_fixture();
        let s = SparseSlice::from_dense(&d);
        let u = Mat::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = Mat::from_vec(4, 2, vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]);
        let mut out = vec![f64::NAN; 2];
        mttkrp_mode3_into(&s, &u, &v, &mut out);
        let mut expect = vec![0.0f64; 2];
        for (i, j, x) in s.iter() {
            for r in 0..2 {
                expect[r] += (x * u.row(i)[r]) * v.row(j)[r];
            }
        }
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_slice_kernels() {
        let s = SparseSlice::empty(4, 3);
        let b = Mat::from_vec(3, 2, vec![1.0; 6]);
        assert_eq!(spmm(&s, &b), Mat::zeros(4, 2));
        assert_eq!(sparse_gram(&s), Mat::zeros(3, 3));
        assert_eq!(s.density(), 0.0);
        assert_eq!(s.fro_norm_sq(), 0.0);
    }
}
