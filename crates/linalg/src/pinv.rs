//! Moore–Penrose pseudoinverse.
//!
//! The CP-ALS update rules in both PARAFAC2-ALS (Algorithm 2, lines 11–13)
//! and DPar2 (Algorithm 3, lines 15/17/19) post-multiply by
//! `(WᵀW ∗ VᵀV)†` — the pseudoinverse of a small `R×R` Hadamard product of
//! Gram matrices. The paper notes this is cheap because the operand is tiny;
//! we compute it through the SVD, zeroing singular values below a relative
//! tolerance, exactly as MATLAB's `pinv` does.

use crate::mat::Mat;
use crate::svd::{svd_thin_into, SvdFactors, SvdScratch};
use crate::view::AsMatRef;

/// Computes the Moore–Penrose pseudoinverse `A†` via the SVD.
///
/// Singular values `≤ max(m,n) · eps · σ₁` are treated as zero
/// (MATLAB-compatible default tolerance).
pub fn pinv(a: impl AsMatRef) -> Mat {
    let a = a.as_mat_ref();
    pinv_with_tol(a, f64::EPSILON * a.rows().max(a.cols()) as f64)
}

/// [`pinv`] into a caller-owned output with reusable SVD scratch — the
/// allocation-free form of the `(WᵀW ∗ VᵀV)†` step of every ALS update.
/// Bit-identical to [`pinv`].
pub fn pinv_into(a: impl AsMatRef, out: &mut Mat, tmp: &mut SvdFactors, ws: &mut SvdScratch) {
    let a = a.as_mat_ref();
    let rel_tol = f64::EPSILON * a.rows().max(a.cols()) as f64;
    pinv_with_tol_into(a, rel_tol, out, tmp, ws);
}

/// Pseudoinverse with an explicit relative tolerance: singular values
/// `≤ rel_tol · σ₁` are discarded.
pub fn pinv_with_tol(a: impl AsMatRef, rel_tol: f64) -> Mat {
    let mut out = Mat::zeros(0, 0);
    pinv_with_tol_into(
        a,
        rel_tol,
        &mut out,
        &mut SvdFactors::default(),
        &mut SvdScratch::default(),
    );
    out
}

/// [`pinv_with_tol`] into a caller-owned output with reusable scratch.
pub fn pinv_with_tol_into(
    a: impl AsMatRef,
    rel_tol: f64,
    out: &mut Mat,
    tmp: &mut SvdFactors,
    ws: &mut SvdScratch,
) {
    svd_thin_into(a, tmp, ws);
    let sigma_max = tmp.s.first().copied().unwrap_or(0.0);
    let cutoff = sigma_max * rel_tol;
    // A† = V Σ† Uᵀ, built as (V · Σ†) · Uᵀ; Σ† is applied to the scratch
    // copy of V in place.
    for i in 0..tmp.v.rows() {
        let row = tmp.v.row_mut(i);
        for (j, &sigma) in tmp.s.iter().enumerate() {
            row[j] = if sigma > cutoff && sigma > 0.0 { row[j] / sigma } else { 0.0 };
        }
    }
    tmp.v.matmul_nt_into(&tmp.u, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian_mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let a = Mat::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let p = pinv(&a);
        let prod = a.matmul(&p).unwrap();
        assert!((&prod - &Mat::eye(2)).fro_norm() < 1e-10);
    }

    #[test]
    fn penrose_conditions_hold_for_rectangular() {
        let mut rng = StdRng::seed_from_u64(41);
        let a = gaussian_mat(9, 4, &mut rng);
        let p = pinv(&a);
        let ap = a.matmul(&p).unwrap();
        let pa = p.matmul(&a).unwrap();
        // 1. A A† A = A
        assert!((&ap.matmul(&a).unwrap() - &a).fro_norm() < 1e-9 * a.fro_norm());
        // 2. A† A A† = A†
        assert!((&pa.matmul(&p).unwrap() - &p).fro_norm() < 1e-9 * p.fro_norm());
        // 3. (A A†)ᵀ = A A†
        assert!((&ap.transpose() - &ap).fro_norm() < 1e-9);
        // 4. (A† A)ᵀ = A† A
        assert!((&pa.transpose() - &pa).fro_norm() < 1e-9);
    }

    #[test]
    fn pinv_rank_deficient() {
        // Rank-1 matrix: A = u vᵀ with ‖u‖, ‖v‖ known.
        let u = Mat::col_vector(&[1.0, 2.0]);
        let v = Mat::row_vector(&[3.0, 0.0, 4.0]);
        let a = u.matmul(&v).unwrap();
        let p = pinv(&a);
        // Penrose condition 1 suffices to validate handling of zero σ.
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!((&apa - &a).fro_norm() < 1e-9 * a.fro_norm());
    }

    #[test]
    fn pinv_zero_matrix_is_zero() {
        let p = pinv(Mat::zeros(3, 2));
        assert_eq!(p.shape(), (2, 3));
        assert!(p.fro_norm() < 1e-300);
    }

    #[test]
    fn pinv_of_transpose_is_transpose_of_pinv() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = gaussian_mat(6, 3, &mut rng);
        let p1 = pinv(a.transpose());
        let p2 = pinv(&a).transpose();
        assert!((&p1 - &p2).fro_norm() < 1e-9 * p1.fro_norm());
    }

    #[test]
    fn pinv_hadamard_gram_psd() {
        // Exactly the shape used by the ALS update: (WᵀW ∗ VᵀV)†.
        let mut rng = StdRng::seed_from_u64(43);
        let w = gaussian_mat(30, 5, &mut rng);
        let v = gaussian_mat(20, 5, &mut rng);
        let g = w.gram().hadamard(&v.gram()).unwrap();
        let p = pinv(&g);
        let gpg = g.matmul(&p).unwrap().matmul(&g).unwrap();
        assert!((&gpg - &g).fro_norm() < 1e-8 * g.fro_norm());
    }
}
